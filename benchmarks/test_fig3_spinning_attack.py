"""Fig. 3: Spinning throughput under attack, relative to fault-free.

Paper shape: the malicious primary delays its batch by just under
S_timeout (40 ms) every time its turn comes around; throughput collapses
to 1 % (static) / 4.5 % (dynamic) of fault-free.
"""

from conftest import run_once


def test_fig3_spinning_under_attack(benchmark, spinning_sweep):
    rows = run_once(benchmark, lambda: spinning_sweep)

    from repro.experiments.report import format_attack_rows

    print()
    print(
        format_attack_rows(
            "Fig. 3: Spinning relative throughput under attack",
            rows,
            paper_note="collapses to 1 % (static) / 4.5 % (dynamic)",
        )
    )

    for row in rows:
        assert row["static_pct"] < 20.0, row
    # Under the dynamic load the collapse shows wherever the spike
    # exceeds the attacked system's residual capacity (at large request
    # sizes our gentler large-payload spike stays under it — see
    # EXPERIMENTS.md).
    assert min(row["dynamic_pct"] for row in rows) < 25.0
