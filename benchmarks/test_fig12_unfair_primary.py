"""Fig. 12: an unfair master primary is caught by the latency monitor.

Paper shape: with Λ = 1.5 ms, the primary serves both clients fairly for
500 requests, then delays one client's requests (latency rises but stays
under Λ), and at request ~1000 a single request exceeds Λ — the nodes
vote a protocol instance change, the unfair primary is evicted, and both
clients see identical latency again.
"""

import statistics

from conftest import run_once

from repro.experiments import unfair_primary_run


def test_fig12_unfair_primary_evicted_by_lambda(benchmark, scale):
    result = run_once(benchmark, lambda: unfair_primary_run(scale=scale))

    series = result["series"]
    attacked = series["client0"].values()
    other = series["client1"].values()

    def mean_ms(values, lo, hi):
        segment = values[lo:hi]
        return statistics.mean(segment) * 1e3 if segment else 0.0

    print()
    print("Fig. 12: per-request latency of the attacked client (ms)")
    print("  phase 1 (fair)       : %.2f" % mean_ms(attacked, 100, 450))
    print("  phase 2 (delayed)    : %.2f" % mean_ms(attacked, 600, 950))
    print("  after instance change: %.2f" % mean_ms(attacked, 1060, None))
    print("  other client phase 2 : %.2f" % mean_ms(other, 600, 950))
    print("  instance change at t=%.3fs (Λ=%.1f ms)"
          % (result["instance_change_at"] or -1, result["lambda_max"] * 1e3))

    # Phase 2: the attacked client's latency rises; the other's does not
    # rise anywhere near as much.
    fair = mean_ms(attacked, 100, 450)
    delayed = mean_ms(attacked, 600, 950)
    assert delayed > fair + 0.3
    assert mean_ms(other, 600, 950) < fair + 0.3

    # The Λ violation triggers a protocol instance change...
    assert result["instance_change_at"] is not None
    assert result["instance_changes"] >= 1
    # ...and afterwards the new (fair) primary restores the latency.
    assert mean_ms(attacked, 1060, None) < fair + 0.3
