"""Ablations the paper calls out in §VI-B.

* "we disabled the view changes in Aardvark and we obtained the same
  performance as RBFT for small requests" — regular view changes are
  what separates Aardvark's peak from RBFT's;
* RBFT's instances order request *identifiers*; ordering whole requests
  loads the replica cores with the full payload (in the paper this
  dropped the 4 kB peak from 5 to 1.8 kreq/s; in this substrate the
  PROPAGATE phase dominates at 4 kB, so the effect shows up as replica
  core load rather than end-to-end throughput — see EXPERIMENTS.md);
* the TCP and UDP transports peak identically, with UDP ~20 % lower
  latency.
"""

from conftest import run_once

from repro.clients import LoadGenerator, static_profile
from repro.experiments import (
    latency_throughput_curve,
    make_deployment,
    probe_capacity,
)


def test_aardvark_without_view_changes_matches_rbft(benchmark, scale):
    def probe_both():
        return (
            probe_capacity("rbft", 8, scale),
            probe_capacity("aardvark-no-vc", 8, scale),
        )

    rbft_peak, no_vc_peak = run_once(benchmark, probe_both)
    print(
        "\nAblation: RBFT %.1f kreq/s vs Aardvark-without-view-changes %.1f kreq/s"
        % (rbft_peak / 1e3, no_vc_peak / 1e3)
    )
    # §VI-B: "the same performance as RBFT for small requests".
    assert abs(rbft_peak - no_vc_peak) / rbft_peak < 0.15


def test_ordering_identifiers_relieves_replica_cores(benchmark, scale):
    """Identifier vs full-request ordering, measured at the replica cores."""

    def run(protocol):
        deployment = make_deployment(protocol, 4096, scale)
        rate = 0.9 * probe_capacity("rbft", 4096, scale)
        generator = LoadGenerator(
            deployment.sim,
            deployment.clients,
            static_profile(rate, 0.8),
            deployment.rng.stream("load"),
        )
        generator.start()
        deployment.sim.run(until=0.8)
        node = deployment.nodes[1]
        replica_util = max(
            engine.core.utilization() for engine in node.engines
        )
        return replica_util, node.executed_count

    def both():
        return run("rbft"), run("rbft-full-order")

    (ids_util, ids_executed), (full_util, full_executed) = run_once(benchmark, both)
    print(
        "\nAblation (4 kB): replica-core utilisation — identifiers %.3f, "
        "full requests %.3f" % (ids_util, full_util)
    )
    # Ordering full 4 kB requests loads the instance replicas far more.
    assert full_util > 5 * ids_util
    # Identifier ordering never executes fewer requests.
    assert ids_executed >= 0.9 * full_executed


def test_udp_latency_below_tcp(benchmark, scale):
    def curves():
        tcp = latency_throughput_curve("rbft", 8, scale=scale)
        udp = latency_throughput_curve("rbft-udp", 8, scale=scale)
        return tcp, udp

    tcp, udp = run_once(benchmark, curves)
    print(
        "\nAblation: low-load latency TCP %.2f ms vs UDP %.2f ms"
        % (tcp[0]["latency_ms"], udp[0]["latency_ms"])
    )
    # §VI-B: identical peaks, UDP latency ~20 % lower.
    tcp_peak = max(r["throughput"] for r in tcp)
    udp_peak = max(r["throughput"] for r in udp)
    assert abs(tcp_peak - udp_peak) / tcp_peak < 0.15
    assert udp[0]["latency_ms"] < tcp[0]["latency_ms"]


def test_delta_sensitivity(benchmark, scale):
    """Our addition: the Δ threshold bounds what a worst-2 attacker takes.

    The residual throughput under worst-attack-2 tracks Δ: a looser
    threshold hands the malicious primary a bigger licence.
    """
    from repro.core import RBFTConfig
    from repro.experiments.deployments import build_rbft
    from repro.faults import install_rbft_worst_attack_2

    def run(delta):
        config = RBFTConfig(
            f=1, monitoring_period=scale.monitoring_period, delta=delta
        )
        deployment = build_rbft(config, n_clients=12, payload=8)
        install_rbft_worst_attack_2(deployment)
        rate = 1.25 * probe_capacity("rbft", 8, scale)
        generator = LoadGenerator(
            deployment.sim,
            deployment.clients,
            static_profile(rate, scale.duration),
            deployment.rng.stream("load"),
        )
        generator.start()
        deployment.sim.run(until=scale.duration)
        return deployment.nodes[1].executed_count

    def both():
        return run(0.97), run(0.75)

    tight, loose = run_once(benchmark, both)
    print("\nAblation: worst-2 executed with Δ=0.97: %d, with Δ=0.75: %d"
          % (tight, loose))
    assert loose < tight  # a looser Δ lets the attacker shave more
