"""Table I: maximum throughput degradation of the robust baselines.

Paper: Prime 78 %, Aardvark 87 %, Spinning 99 %.  The reproduction must
preserve the *ordering* (Spinning worst, Prime least) and the fact that
every baseline suffers a dramatic worst-case degradation while RBFT
(Figs 8/10) stays within a few percent.
"""

from conftest import run_once


def worst_degradation(rows):
    return 100.0 - min(min(r["static_pct"], r["dynamic_pct"]) for r in rows)


def test_table1_degradations(benchmark, prime_sweep, aardvark_sweep, spinning_sweep):
    def compute():
        return {
            "prime": worst_degradation(prime_sweep),
            "aardvark": worst_degradation(aardvark_sweep),
            "spinning": worst_degradation(spinning_sweep),
        }

    degradations = run_once(benchmark, compute)

    from repro.experiments.report import format_table1

    print()
    print(format_table1(degradations))

    # Every "robust" baseline suffers a large worst-case degradation...
    assert degradations["spinning"] > 80.0
    assert degradations["aardvark"] > 40.0
    assert degradations["prime"] > 40.0
    # ...and Spinning is the worst of the three, as in the paper.
    assert degradations["spinning"] == max(degradations.values())
