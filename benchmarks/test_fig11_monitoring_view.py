"""Fig. 11: per-node monitored throughput under worst-attack-2.

Paper shape (f=1, static load, 4 kB requests): the malicious master
primary shaves throughput down to just above the Δ limit, so every
correct node sees the master instance *slightly* below — but within Δ of
— the backup instance, and no instance change fires.
"""

from conftest import run_once

from repro.experiments import monitoring_view
from repro.experiments.report import format_monitoring_view


def test_fig11_per_node_monitoring_under_worst_attack2(benchmark, scale):
    view = run_once(benchmark, lambda: monitoring_view(2, payload=4096, scale=scale))

    print()
    print(
        format_monitoring_view(
            "Fig. 11: monitored throughput per node (worst-attack-2, 4 kB)", view
        )
    )

    assert len(view) == 3
    rates = list(view.values())
    for other in rates[1:]:
        for a, b in zip(rates[0], other):
            assert abs(a - b) / max(a, b) < 0.05
    for node_rates in rates:
        master, backups = node_rates[0], node_rates[1:]
        backup_mean = sum(backups) / len(backups)
        # The attacker stays at or above the Δ ratio — close, not equal.
        assert master >= 0.90 * backup_mean
        assert master <= 1.05 * backup_mean
