"""Fig. 10: RBFT under worst-attack-2 (faulty master primary).

Paper shape: the malicious master primary delays requests down to the
limit ratio Δ while its accomplices degrade the backups; the maximum
throughput loss stays below 3 % with f=1 and below 1 % with f=2.
"""

import os

from conftest import run_once

from repro.experiments import attack_sweep, relative_throughput
from repro.experiments.report import format_attack_rows


def test_fig10a_worst_attack2_f1(benchmark, scale):
    rows = run_once(
        benchmark, lambda: attack_sweep("rbft", scale=scale, attack="rbft-worst2")
    )

    print()
    print(
        format_attack_rows(
            "Fig. 10a: RBFT under worst-attack-2 (f=1)",
            rows,
            paper_note="loss below 3 %",
        )
    )
    for row in rows:
        assert row["static_pct"] > 88.0, row
        assert row["dynamic_pct"] > 88.0, row


def test_fig10b_worst_attack2_f2(benchmark, scale):
    sizes = scale.sizes if os.environ.get("RBFT_FULL") else (8,)

    def sweep():
        rows = []
        for size in sizes:
            static_pct, _, _ = relative_throughput(
                "rbft", size, dynamic=False, scale=scale, attack="rbft-worst2", f=2
            )
            dynamic_pct, _, _ = relative_throughput(
                "rbft", size, dynamic=True, scale=scale, attack="rbft-worst2", f=2
            )
            rows.append(
                {"size": size, "static_pct": static_pct, "dynamic_pct": dynamic_pct}
            )
        return rows

    rows = run_once(benchmark, sweep)

    print()
    print(
        format_attack_rows(
            "Fig. 10b: RBFT under worst-attack-2 (f=2)",
            rows,
            paper_note="loss below 1 %",
        )
    )
    for row in rows:
        assert row["static_pct"] > 85.0, row
        assert row["dynamic_pct"] > 85.0, row
