"""Fig. 7: latency vs throughput in the fault-free case (8 B and 4 kB).

Paper shapes at 8 B (Fig. 7a):
* Spinning has the highest peak throughput (MACs only, UDP multicast);
* RBFT and Aardvark are close, with Aardvark paying for its regular
  view changes;
* Prime peaks far lower and its latency is an order of magnitude above
  the others (signatures everywhere + periodic ordering);
* the UDP variant of RBFT matches TCP's peak with lower latency.

At 4 kB (Fig. 7b) RBFT peaks around 5 kreq/s in the paper; our substrate
reproduces that figure closely (see EXPERIMENTS.md for the deviations on
the other protocols at 4 kB).
"""

import pytest
from conftest import run_once

from repro.experiments import latency_throughput_curve
from repro.experiments.report import format_curve

VARIANTS = ("rbft", "rbft-udp", "prime", "aardvark", "spinning")


@pytest.mark.parametrize("payload", [8, 4096])
def test_fig7_latency_vs_throughput(benchmark, scale, payload):
    def sweep():
        return {
            variant: latency_throughput_curve(variant, payload, scale=scale)
            for variant in VARIANTS
        }

    curves = run_once(benchmark, sweep)

    print()
    for variant, rows in curves.items():
        print(format_curve("Fig. 7 (%d B) — %s" % (payload, variant), rows))

    peaks = {v: max(r["throughput"] for r in rows) for v, rows in curves.items()}
    low_load_latency = {v: rows[0]["latency_ms"] for v, rows in curves.items()}

    if payload == 8:
        # Spinning provides the highest peak throughput (§VI-B).
        assert peaks["spinning"] == max(peaks.values())
        # Prime peaks far below RBFT/Aardvark/Spinning.
        assert peaks["prime"] < 0.7 * peaks["rbft"]
        # Paper: RBFT peak ~35 kreq/s on their testbed; same order here.
        assert 15_000 < peaks["rbft"] < 60_000
    else:
        # Paper: RBFT peaks at ~5 kreq/s with 4 kB requests.
        assert 3_000 < peaks["rbft"] < 9_000

    # Prime's latency sits far above the others (§VI-B: an order of
    # magnitude on their testbed; several-fold here).
    assert low_load_latency["prime"] > 3 * low_load_latency["rbft"]
    # The UDP variant has lower latency than TCP at low load (§VI-B).
    assert low_load_latency["rbft-udp"] < low_load_latency["rbft"]
