"""Shared fixtures for the benchmark harness.

The attack sweeps are expensive and feed several benchmarks (the figure
they reproduce plus Table I), so they are computed once per session.
Set ``RBFT_FULL=1`` for the paper's full request-size sweep and longer
simulated windows.
"""

from __future__ import annotations

import pytest

from repro.experiments import attack_sweep, current_scale


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def prime_sweep(scale):
    # §III-A / §VI-A: Prime's experiments use 0.1 ms requests (1 ms heavy).
    return attack_sweep("prime", scale=scale, exec_cost=1e-4)


@pytest.fixture(scope="session")
def aardvark_sweep(scale):
    return attack_sweep("aardvark", scale=scale)


@pytest.fixture(scope="session")
def spinning_sweep(scale):
    return attack_sweep("spinning", scale=scale)


def run_once(benchmark, fn):
    """Run a macro-benchmark exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
