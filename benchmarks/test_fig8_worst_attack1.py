"""Fig. 8: RBFT under worst-attack-1 (correct master primary).

Paper shape: the throughput loss stays below 2.2 % with f=1 (null under
the dynamic load) and below 0.4 % with f=2 — and crucially, no protocol
instance change is triggered.
"""

import os

from conftest import run_once

from repro.experiments import attack_sweep, relative_throughput
from repro.experiments.report import format_attack_rows


def test_fig8a_worst_attack1_f1(benchmark, scale):
    rows = run_once(
        benchmark, lambda: attack_sweep("rbft", scale=scale, attack="rbft-worst1")
    )

    print()
    print(
        format_attack_rows(
            "Fig. 8a: RBFT under worst-attack-1 (f=1)",
            rows,
            paper_note="loss below 2.2 % static, null dynamic",
        )
    )

    for row in rows:
        assert row["static_pct"] > 90.0, row
        assert row["dynamic_pct"] > 90.0, row


def test_fig8b_worst_attack1_f2(benchmark, scale):
    # f=2 doubles the cluster; the QUICK scale checks one size per load.
    sizes = scale.sizes if os.environ.get("RBFT_FULL") else (8,)

    def sweep():
        rows = []
        for size in sizes:
            static_pct, _, _ = relative_throughput(
                "rbft", size, dynamic=False, scale=scale, attack="rbft-worst1", f=2
            )
            dynamic_pct, _, _ = relative_throughput(
                "rbft", size, dynamic=True, scale=scale, attack="rbft-worst1", f=2
            )
            rows.append(
                {"size": size, "static_pct": static_pct, "dynamic_pct": dynamic_pct}
            )
        return rows

    rows = run_once(benchmark, sweep)

    print()
    print(
        format_attack_rows(
            "Fig. 8b: RBFT under worst-attack-1 (f=2)",
            rows,
            paper_note="loss at most 0.4 %",
        )
    )
    for row in rows:
        assert row["static_pct"] > 88.0, row
        assert row["dynamic_pct"] > 88.0, row
