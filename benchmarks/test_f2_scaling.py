"""f=1 vs f=2 fault-free scaling (the paper runs both, §VI-A).

Moving from 4 to 7 nodes grows the PROPAGATE exchange quadratically and
every quorum from 3 to 5, so the fault-free peak drops — but the system
stays comfortably in the same order of magnitude and all the robustness
properties (Figs 8b/10b) carry over.
"""

from conftest import run_once

from repro.experiments import probe_capacity


def test_f2_capacity_within_same_order_of_magnitude(benchmark, scale):
    def probe_both():
        return (
            probe_capacity("rbft", 8, scale, f=1),
            probe_capacity("rbft", 8, scale, f=2),
        )

    f1, f2 = run_once(benchmark, probe_both)
    print("\nRBFT fault-free peak: f=1 %.1f kreq/s, f=2 %.1f kreq/s"
          % (f1 / 1e3, f2 / 1e3))
    assert f2 < f1  # larger quorums and more propagation cost something
    assert f2 > 0.4 * f1  # but not an order of magnitude
