"""Fig. 1: Prime throughput under attack, relative to fault-free.

Paper shape: a colluding heavy-request client plus a delaying primary
push Prime down to 22-40 % of its fault-free throughput across request
sizes, under both static and dynamic loads.
"""

from conftest import run_once


def test_fig1_prime_under_attack(benchmark, prime_sweep):
    rows = run_once(benchmark, lambda: prime_sweep)

    from repro.experiments.report import format_attack_rows

    print()
    print(
        format_attack_rows(
            "Fig. 1: Prime relative throughput under attack",
            rows,
            paper_note="drops to 22-40 % across sizes",
        )
    )

    for row in rows:
        # Substantial degradation at every size, but never a full stall.
        assert row["static_pct"] < 65.0, row
        assert row["dynamic_pct"] < 65.0, row
        assert row["static_pct"] > 5.0, row
