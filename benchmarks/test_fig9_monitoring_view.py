"""Fig. 9: per-node monitored throughput under worst-attack-1.

Paper shape (f=1, static load, 4 kB requests): every correct node
measures the same throughput, and the master instance's throughput is
within ~2 % of the backup instance's — which is why no instance change
is triggered.  The faulty node's (arbitrary) values are omitted, as in
the paper.
"""

from conftest import run_once

from repro.experiments import monitoring_view
from repro.experiments.report import format_monitoring_view


def test_fig9_per_node_monitoring_under_worst_attack1(benchmark, scale):
    view = run_once(benchmark, lambda: monitoring_view(1, payload=4096, scale=scale))

    print()
    print(
        format_monitoring_view(
            "Fig. 9: monitored throughput per node (worst-attack-1, 4 kB)", view
        )
    )

    assert len(view) == 3  # 4 nodes minus the faulty one
    rates = list(view.values())
    # Every correct node measures (almost exactly) the same throughput.
    for other in rates[1:]:
        for a, b in zip(rates[0], other):
            assert abs(a - b) / max(a, b) < 0.05
    # Master and backup instances are close (paper: ~2 % apart).
    for node_rates in rates:
        master, backups = node_rates[0], node_rates[1:]
        backup_mean = sum(backups) / len(backups)
        assert abs(master - backup_mean) / backup_mean < 0.10
