"""Fig. 2: Aardvark throughput under attack, relative to fault-free.

Paper shape: robust under a static load (at least 76 % of fault-free),
but a dynamic load lets the malicious primary ride the low historical
expectations — down to 13 %.
"""

from conftest import run_once


def test_fig2_aardvark_under_attack(benchmark, aardvark_sweep):
    rows = run_once(benchmark, lambda: aardvark_sweep)

    from repro.experiments.report import format_attack_rows

    print()
    print(
        format_attack_rows(
            "Fig. 2: Aardvark relative throughput under attack",
            rows,
            paper_note="static >= 76 %, dynamic down to 13 %",
        )
    )

    for row in rows:
        assert row["static_pct"] > 65.0, row
    # The dynamic load is where Aardvark breaks.
    worst_dynamic = min(row["dynamic_pct"] for row in rows)
    assert worst_dynamic < 45.0
    # Dynamic is strictly worse than static at the worst point.
    assert worst_dynamic < min(row["static_pct"] for row in rows)
