"""Per-core profiling: turn a trace into a bottleneck report.

The :data:`~repro.trace.events.K_CORE_JOB` events carry everything the
analytic CPU model knows about a job — submission time ``t``, service
``start``, completion ``done`` and its ``cost`` — so busy time, queue
depth and utilization timelines are all reconstructed here, offline,
with no extra bookkeeping on the hot path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .events import K_CORE_JOB, K_STAGE, TraceEvent

__all__ = [
    "CoreProfile",
    "build_core_profiles",
    "utilization_timeline",
    "stage_counts",
    "format_profile_report",
]


class CoreProfile:
    """Aggregated statistics of one core over a traced run."""

    __slots__ = (
        "name",
        "jobs",
        "busy",
        "wait",
        "max_queue_depth",
        "first_t",
        "last_done",
        "_intervals",
    )

    def __init__(self, name: str):
        self.name = name
        self.jobs = 0
        self.busy = 0.0  # seconds of service time
        self.wait = 0.0  # seconds jobs spent queued before service
        self.max_queue_depth = 0
        self.first_t: Optional[float] = None
        self.last_done = 0.0
        self._intervals: List[Tuple[float, float]] = []  # (submit, done)

    @property
    def module(self) -> str:
        """The pinned actor, e.g. ``verification`` of ``node0/verification``."""
        return self.name.split("/", 1)[1] if "/" in self.name else self.name

    @property
    def node(self) -> str:
        return self.name.split("/", 1)[0]

    def add_job(self, t: float, start: float, done: float, cost: float) -> None:
        self.jobs += 1
        self.busy += cost
        self.wait += max(0.0, start - t)
        if self.first_t is None or t < self.first_t:
            self.first_t = t
        if done > self.last_done:
            self.last_done = done
        self._intervals.append((t, done))

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Busy fraction of the traced interval (or of ``horizon``)."""
        start = self.first_t or 0.0
        end = horizon if horizon is not None else self.last_done
        elapsed = end - start
        if elapsed <= 0:
            return 0.0
        return min(self.busy, elapsed) / elapsed

    def mean_wait(self) -> float:
        return self.wait / self.jobs if self.jobs else 0.0

    def _compute_depth(self) -> None:
        """Max number of jobs in the system (queued + in service) at once."""
        marks: List[Tuple[float, int]] = []
        for submit, done in self._intervals:
            marks.append((submit, 1))
            marks.append((done, -1))
        # Completions at time t free the slot before a submission at t uses it.
        marks.sort(key=lambda mark: (mark[0], mark[1]))
        depth = peak = 0
        for _, delta in marks:
            depth += delta
            if depth > peak:
                peak = depth
        self.max_queue_depth = peak

    def __repr__(self) -> str:
        return "CoreProfile(%s, jobs=%d, busy=%g)" % (self.name, self.jobs, self.busy)


def build_core_profiles(events: Iterable[TraceEvent]) -> Dict[str, CoreProfile]:
    """Fold ``core.job`` events into one :class:`CoreProfile` per core."""
    profiles: Dict[str, CoreProfile] = {}
    for event in events:
        if event.kind != K_CORE_JOB:
            continue
        profile = profiles.get(event.name)
        if profile is None:
            profile = profiles[event.name] = CoreProfile(event.name)
        data = event.data
        profile.add_job(event.t, data["start"], data["done"], data["cost"])
    for profile in profiles.values():
        profile._compute_depth()
    return profiles


def utilization_timeline(
    events: Iterable[TraceEvent],
    core: str,
    window: float,
    until: Optional[float] = None,
) -> List[Tuple[float, float]]:
    """Windowed busy fraction of one core: ``[(window_end, util), ...]``.

    Service intervals are reconstructed from ``start``/``done`` and
    clipped to each window, so a job spanning a window boundary is
    charged proportionally to both windows.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    spans = [
        (event.data["start"], event.data["done"])
        for event in events
        if event.kind == K_CORE_JOB and event.name == core
    ]
    if not spans:
        return []
    end = until if until is not None else max(done for _, done in spans)
    timeline = []
    w0 = 0.0
    while w0 < end:
        w1 = min(w0 + window, end)
        busy = 0.0
        for start, done in spans:
            overlap = min(done, w1) - max(start, w0)
            if overlap > 0:
                busy += overlap
        timeline.append((w1, busy / (w1 - w0)))
        w0 = w1
    return timeline


def stage_counts(events: Iterable[TraceEvent]) -> Dict[str, int]:
    """How many requests crossed each module-pipeline stage."""
    counts: Dict[str, int] = {}
    for event in events:
        if event.kind == K_STAGE:
            stage = event.data.get("stage", "?")
            counts[stage] = counts.get(stage, 0) + 1
    return counts


def format_profile_report(
    events: Iterable[TraceEvent],
    horizon: Optional[float] = None,
    top: int = 0,
) -> str:
    """Render the per-core utilization / bottleneck report.

    ``horizon`` is the run duration used for utilization; ``top`` limits
    the table to the busiest N cores (0 = all cores that did work).
    """
    events = list(events)
    profiles = build_core_profiles(events)
    if not profiles:
        return "no core.job events in trace (was the tracer attached before run?)"
    ranked = sorted(profiles.values(), key=lambda p: p.busy, reverse=True)
    if top:
        ranked = ranked[:top]
    lines = []
    span = horizon if horizon is not None else max(p.last_done for p in ranked)
    lines.append("Per-core utilization over %.3f simulated seconds" % span)
    header = "%-28s %-14s %8s %10s %7s %6s %10s" % (
        "core", "module", "jobs", "busy(s)", "util%", "maxQ", "wait(ms)"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for profile in ranked:
        if profile.jobs == 0:
            continue
        lines.append(
            "%-28s %-14s %8d %10.4f %7.1f %6d %10.3f"
            % (
                profile.name,
                profile.module,
                profile.jobs,
                profile.busy,
                100.0 * profile.utilization(horizon),
                profile.max_queue_depth,
                profile.mean_wait() * 1e3,
            )
        )
    busiest = ranked[0]
    lines.append("")
    lines.append(
        "Busiest core: %s (%.1f%% busy, %d jobs) — module '%s' on %s"
        % (
            busiest.name,
            100.0 * busiest.utilization(horizon),
            busiest.jobs,
            busiest.module,
            busiest.node,
        )
    )
    # Cross-node module totals: which pipeline stage is the global bottleneck.
    module_busy: Dict[str, float] = {}
    for profile in profiles.values():
        module_busy[profile.module] = module_busy.get(profile.module, 0.0) + profile.busy
    hottest = max(module_busy, key=lambda module: module_busy[module])
    lines.append(
        "Busiest module across nodes: %s (%.4f core-seconds total)"
        % (hottest, module_busy[hottest])
    )
    counts = stage_counts(events)
    if counts:
        ordered = ", ".join(
            "%s=%d" % (stage, counts[stage]) for stage in sorted(counts)
        )
        lines.append("Pipeline stage events: %s" % ordered)
    return "\n".join(lines)
