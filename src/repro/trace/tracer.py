"""The tracer and its sinks.

Design rules, in priority order:

1. **Zero cost when disabled.**  Instrumented hot paths (the sim run
   loop, ``Core.submit``, NIC reservations) guard every emission with::

       tracer = self.sim.tracer
       if tracer is not None and tracer.enabled:
           tracer.emit(...)

   so a run without tracing pays two attribute loads and an ``is None``
   test per site — no event objects, no kwargs dicts, no sink calls.
   ``Simulator.tracer`` defaults to ``None``.

2. **One emission API.**  ``emit(t, kind, name, **data)`` builds a
   :class:`~repro.trace.events.TraceEvent` and hands it to the sink.
   Sinks are anything with ``append``; three are provided:

   * :class:`ListSink` — unbounded in-memory retention (profiling runs);
   * :class:`RingBufferSink` — keep only the last N events (long runs
     where only the tail matters, e.g. post-mortem of a livelock);
   * :class:`JsonlStreamSink` — stream each event to a file object as
     one JSON line, retaining nothing in memory.

3. **Round-trippable.**  :func:`export_jsonl` / :func:`load_jsonl`
   serialize any event iterable losslessly, so traces can be archived
   next to ``BENCH_*.json`` artifacts and re-profiled offline.
"""

from __future__ import annotations

import io
import json
from collections import deque
from typing import IO, Iterable, Iterator, List, Optional, Union

from .events import TraceEvent

__all__ = [
    "Tracer",
    "ListSink",
    "RingBufferSink",
    "JsonlStreamSink",
    "export_jsonl",
    "load_jsonl",
]


class ListSink:
    """Retain every event in memory, in emission order."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


class RingBufferSink:
    """Retain only the most recent ``capacity`` events."""

    __slots__ = ("events", "dropped")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("ring buffer capacity must be positive")
        self.events: deque = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, event: TraceEvent) -> None:
        if len(self.events) == self.events.maxlen:
            self.dropped += 1
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


class JsonlStreamSink:
    """Write each event to ``stream`` as one JSON line; retain nothing."""

    __slots__ = ("stream", "written")

    def __init__(self, stream: IO[str]):
        self.stream = stream
        self.written = 0

    def append(self, event: TraceEvent) -> None:
        self.stream.write(json.dumps(event.to_dict(), separators=(",", ":")))
        self.stream.write("\n")
        self.written += 1

    def __len__(self) -> int:
        return self.written

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(())  # streamed away; use load_jsonl on the file


class Tracer:
    """Structured event collection behind a single ``enabled`` switch.

    ``kinds`` optionally restricts collection to a set of event kinds —
    high-volume traces (every NIC reservation, every kernel dispatch)
    can then be filtered out at the source instead of post-hoc, which
    keeps long profiling runs within memory.
    """

    __slots__ = ("sink", "enabled", "kinds", "emitted")

    def __init__(self, sink=None, enabled: bool = True, kinds: Optional[frozenset] = None):
        self.sink = sink if sink is not None else ListSink()
        self.enabled = enabled
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.emitted = 0

    def emit(self, t: float, kind: str, name: str, **data) -> None:
        """Record one event (no-op while disabled)."""
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        self.emitted += 1
        self.sink.append(TraceEvent(t, kind, name, data))

    def events(self) -> List[TraceEvent]:
        """The retained events (empty for streaming sinks)."""
        return list(self.sink)

    def __repr__(self) -> str:
        return "Tracer(enabled=%r, emitted=%d)" % (self.enabled, self.emitted)


def export_jsonl(
    events: Iterable[TraceEvent], target: Union[str, IO[str]]
) -> int:
    """Write ``events`` to a path or file object as JSON lines."""
    if isinstance(target, (str, bytes)):
        with io.open(target, "w", encoding="utf-8") as fileobj:
            return export_jsonl(events, fileobj)
    n = 0
    for event in events:
        target.write(json.dumps(event.to_dict(), separators=(",", ":")))
        target.write("\n")
        n += 1
    return n


def load_jsonl(source: Union[str, IO[str]]) -> List[TraceEvent]:
    """Read JSON-lines trace data from a path or file object."""
    if isinstance(source, (str, bytes)):
        with io.open(source, "r", encoding="utf-8") as fileobj:
            return load_jsonl(fileobj)
    events = []
    for line in source:
        line = line.strip()
        if line:
            events.append(TraceEvent.from_dict(json.loads(line)))
    return events
