"""Structured event tracing and per-core profiling.

Attach a :class:`Tracer` to a simulator before running and every
instrumented layer — the event kernel, CPU cores, NICs and channels, the
RBFT module pipeline, the monitoring module and the ordering engines —
emits typed :class:`TraceEvent` records::

    from repro.experiments import make_deployment
    from repro.trace import Tracer

    deployment = make_deployment("rbft")
    deployment.sim.tracer = Tracer()
    deployment.sim.run(until=1.0)
    events = deployment.sim.tracer.events()

Tracing is **off by default** (``Simulator.tracer is None``) and the
instrumented call sites guard on that, so undisturbed runs pay nothing.
See :mod:`repro.trace.profile` for the per-core utilization consumers
and ``python -m repro.experiments profile <fig>`` for the CLI.
"""

from .events import (
    K_CHANNEL_DELIVER,
    K_CHANNEL_DROP,
    K_CORE_JOB,
    K_IC_VOTE,
    K_INSTANCE_CHANGE,
    K_LOG_SIZE,
    K_MONITOR_TICK,
    K_MONITOR_TRIGGER,
    K_NIC_DROP,
    K_NIC_RX,
    K_NIC_TX,
    K_PHASE,
    K_SIM_DISPATCH,
    K_STAGE,
    K_STATE_TRANSFER,
    K_VIEW_CHANGE,
    TraceEvent,
)
from .gauge import LogSizeWatch, collect_final
from .profile import (
    CoreProfile,
    build_core_profiles,
    format_profile_report,
    stage_counts,
    utilization_timeline,
)
from .tracer import (
    JsonlStreamSink,
    ListSink,
    RingBufferSink,
    Tracer,
    export_jsonl,
    load_jsonl,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "ListSink",
    "RingBufferSink",
    "JsonlStreamSink",
    "export_jsonl",
    "load_jsonl",
    "LogSizeWatch",
    "collect_final",
    "CoreProfile",
    "build_core_profiles",
    "utilization_timeline",
    "stage_counts",
    "format_profile_report",
    "K_SIM_DISPATCH",
    "K_CORE_JOB",
    "K_NIC_TX",
    "K_NIC_RX",
    "K_NIC_DROP",
    "K_CHANNEL_DELIVER",
    "K_CHANNEL_DROP",
    "K_STAGE",
    "K_MONITOR_TICK",
    "K_MONITOR_TRIGGER",
    "K_INSTANCE_CHANGE",
    "K_IC_VOTE",
    "K_PHASE",
    "K_VIEW_CHANGE",
    "K_STATE_TRANSFER",
    "K_LOG_SIZE",
]
