"""Typed trace event records.

Every trace event is a ``(t, kind, name, data)`` quadruple:

* ``t`` — the virtual time the event happened at;
* ``kind`` — one of the ``K_*`` constants below, naming the subsystem
  and the thing that happened (``"core.job"``, ``"nic.tx"``, ...);
* ``name`` — the emitting entity (a core, NIC, channel, node or
  replica name), so events filter naturally per resource;
* ``data`` — a small dict of JSON-able payload fields (byte counts,
  costs, phase names, ...).

Events are deliberately flat and schema-light: the profiling consumers
in :mod:`repro.trace.profile` reconstruct spans (busy intervals, queue
depths) from the recorded timestamps rather than requiring the emitters
to maintain open/close pairs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "TraceEvent",
    "K_SIM_DISPATCH",
    "K_CORE_JOB",
    "K_NIC_TX",
    "K_NIC_RX",
    "K_NIC_DROP",
    "K_CHANNEL_DELIVER",
    "K_CHANNEL_DROP",
    "K_STAGE",
    "K_MONITOR_TICK",
    "K_MONITOR_TRIGGER",
    "K_INSTANCE_CHANGE",
    "K_IC_VOTE",
    "K_PHASE",
    "K_VIEW_CHANGE",
    "K_STATE_TRANSFER",
    "K_LOG_SIZE",
]

#: the sim kernel dispatched one queued callback/event
K_SIM_DISPATCH = "sim.dispatch"
#: a Core accepted one job (fields: cost, start, done, wait, job)
K_CORE_JOB = "core.job"
#: a NIC queued bytes for transmission (fields: size, done)
K_NIC_TX = "nic.tx"
#: a NIC queued arriving bytes (fields: size, done)
K_NIC_RX = "nic.rx"
#: a NIC dropped traffic while closed (fields: —)
K_NIC_DROP = "nic.drop"
#: a channel delivered a message (fields: src, dst, size, at)
K_CHANNEL_DELIVER = "chan.deliver"
#: a channel dropped a message (fields: src, dst, size, reason)
K_CHANNEL_DROP = "chan.drop"
#: a request crossed one module-pipeline stage (fields: stage, ...)
K_STAGE = "node.stage"
#: a monitoring window closed (fields: rates, master)
K_MONITOR_TICK = "monitor.tick"
#: the monitor demanded an instance change (fields: reason)
K_MONITOR_TRIGGER = "monitor.trigger"
#: 2f+1 INSTANCE-CHANGEs completed (fields: cpi, master)
K_INSTANCE_CHANGE = "node.instance-change"
#: a node emitted one INSTANCE-CHANGE vote (fields: reason, cpi, choice)
K_IC_VOTE = "node.ic-vote"
#: an ordering instance crossed a protocol phase (fields: phase, seq, view, items)
K_PHASE = "pbft.phase"
#: an ordering instance installed a new view (fields: view)
K_VIEW_CHANGE = "pbft.view-change"
#: a replica fast-forwarded past garbage-collected batches (fields: from, to)
K_STATE_TRANSFER = "pbft.state-transfer"
#: protocol-log size gauge after checkpoint garbage collection
#: (fields: total plus one count per structure; see
#: ``OrderingInstance.log_sizes`` / ``RBFTNode.log_sizes``)
K_LOG_SIZE = "pbft.log-size"


class TraceEvent:
    """One structured trace record."""

    __slots__ = ("t", "kind", "name", "data")

    def __init__(self, t: float, kind: str, name: str, data: Optional[Dict[str, Any]] = None):
        self.t = t
        self.kind = kind
        self.name = name
        self.data = data or {}

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"t": self.t, "kind": self.kind, "name": self.name}
        if self.data:
            record["data"] = self.data
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TraceEvent":
        return cls(
            float(record["t"]),
            record["kind"],
            record["name"],
            record.get("data") or {},
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (
            self.t == other.t
            and self.kind == other.kind
            and self.name == other.name
            and self.data == other.data
        )

    def __hash__(self) -> int:
        return hash((self.t, self.kind, self.name))

    def __repr__(self) -> str:
        return "TraceEvent(t=%g, kind=%r, name=%r, data=%r)" % (
            self.t,
            self.kind,
            self.name,
            self.data,
        )
