"""High-water-mark tracking for the ``pbft.log-size`` gauge.

The checkpoint garbage collector (``OrderingInstance._collect_garbage``
and its node-level counterparts) emits one :data:`~repro.trace.events.
K_LOG_SIZE` event per collection with the current size of every
per-sequence structure.  :class:`LogSizeWatch` is a tracer sink that
retains only the *peak* value per (emitter, field) — O(emitters), not
O(events) — which is exactly what a bounded-memory assertion needs on a
long-horizon soak run.

Peaks observed mid-run miss whatever grew after the last emission, so
:func:`collect_final` folds in a direct end-of-run inspection of every
node (and every RBFT engine) exposing a ``log_sizes()`` method.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from .events import K_LOG_SIZE, TraceEvent

__all__ = ["LogSizeWatch", "collect_final"]


class LogSizeWatch:
    """Tracer sink keeping per-emitter peak gauge values only."""

    __slots__ = ("peaks", "observed")

    def __init__(self) -> None:
        #: emitter name -> field -> maximum value seen.
        self.peaks: Dict[str, Dict[str, int]] = {}
        self.observed = 0

    def append(self, event: TraceEvent) -> None:
        if event.kind != K_LOG_SIZE:
            return
        self.observe(event.name, event.data)

    def observe(self, name: str, sizes: Mapping[str, int]) -> None:
        """Fold one gauge reading into the per-emitter peaks."""
        self.observed += 1
        peaks = self.peaks.setdefault(name, {})
        for field, value in sizes.items():
            if isinstance(value, int) and value > peaks.get(field, -1):
                peaks[field] = value

    def peak(self, field: str = "total") -> int:
        """The largest ``field`` value any emitter ever reported."""
        return max(
            (peaks.get(field, 0) for peaks in self.peaks.values()),
            default=0,
        )

    def __len__(self) -> int:
        return len(self.peaks)

    def __repr__(self) -> str:
        return "LogSizeWatch(emitters=%d, peak_total=%d)" % (
            len(self.peaks),
            self.peak(),
        )


def collect_final(watch: LogSizeWatch, nodes: Iterable) -> None:
    """Fold every node's end-of-run ``log_sizes()`` into ``watch``.

    Gauge emissions happen at collection points (stable checkpoints,
    monitor ticks); the state reached *after* the last one still counts
    toward the high-water mark.  RBFT nodes additionally expose their
    f+1 engines individually.
    """
    for node in nodes:
        log_sizes = getattr(node, "log_sizes", None)
        if log_sizes is None:
            continue
        watch.observe(node.name, log_sizes())
        engines = getattr(node, "engines", None)
        if engines:
            for engine in engines:
                watch.observe(engine._trace_name, engine.log_sizes())
