"""Attack orchestration — every adversary evaluated in the paper.

Each installer takes a :class:`~repro.experiments.deployments.Deployment`
and wires the malicious behaviour into it.  The adversaries are *smart*:
they monitor exactly what the correct replicas monitor and stay just
below the detection thresholds, which is the paper's core observation
about why Prime, Aardvark and Spinning are not actually robust.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.clients import OpenLoopClient

# Annotation-only: a runtime import would close the cycle
# faults -> experiments -> runner -> faults and make `import
# repro.verify` (whose vocabulary pulls in repro.faults) order-dependent.
if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.deployments import Deployment

from .flooding import MAX_FLOOD_SIZE, Flooder
from .pacing import BatchPacer

__all__ = [
    "install_prime_attack",
    "install_aardvark_attack",
    "install_spinning_attack",
    "install_rbft_worst_attack_1",
    "install_rbft_worst_attack_2",
    "install_unfair_primary",
    "HeavyClient",
]


# --------------------------------------------------------------------- Prime
class HeavyClient:
    """The Prime attack's colluding client: heavy (1 ms) requests (§III-A)."""

    def __init__(
        self,
        deployment: Deployment,
        rate: float,
        exec_cost: float = 1e-3,
        name: str = "heavy-client",
    ):
        self.client = OpenLoopClient(deployment.cluster, name, payload_size=8)
        self.sim = deployment.sim
        self.rate = rate
        self.exec_cost = exec_cost
        self._running = False

    def start(self) -> None:
        self._running = True
        self.sim.process(self._run(), name="heavy-client")

    def stop(self) -> None:
        self._running = False

    def _run(self):
        gap = 1.0 / self.rate
        while self._running:
            self.client.send_request(exec_cost=self.exec_cost)
            yield self.sim.timeout(gap)


def install_prime_attack(
    deployment: Deployment,
    heavy_rate: float = 3000.0,
    heavy_exec_cost: float = 1e-3,
    margin: float = 0.85,
) -> HeavyClient:
    """§III-A: heavy requests inflate the monitored execution time; the
    malicious primary stretches its ordering period to just below the
    (inflated) acceptable delay."""
    primary = deployment.nodes[0]  # primary of view 0
    primary.ordering_period_fn = lambda: max(
        primary.config.ordering_period, margin * primary.acceptable_order_delay()
    )
    heavy = HeavyClient(deployment, heavy_rate, heavy_exec_cost)
    heavy.start()
    return heavy


# ------------------------------------------------------------------ Aardvark
def install_aardvark_attack(
    deployment: Deployment,
    margin: float = 1.02,
    activate_after: float = 0.35,
):
    """§III-B: whenever the faulty replica is primary, it orders at just
    above the *required* throughput — which tracks observed history, so
    low-load phases buy it a licence to throttle the spikes.

    The attack activates after ``activate_after`` seconds: the replicas'
    expectations must first form from normal operation (the paper's
    clusters were warm; a cold start has no expectations at all, which
    would let the attacker stall almost completely — an artifact, not
    the scenario the paper measures).
    """
    faulty = deployment.nodes[0]
    sim = deployment.sim
    heartbeat_floor = (
        faulty.config.instance.batch_size / (0.5 * faulty.aconfig.heartbeat_timeout)
    )

    def target_rate() -> float:
        return max(margin * faulty.required_throughput(), heartbeat_floor)

    pacer = BatchPacer(sim, target_rate)

    def delay(msg) -> float:
        if sim.now < activate_after:
            return 0.0
        return pacer.delay_for(len(msg.items))

    faulty.engine.preprepare_delay_fn = delay
    return pacer


# ------------------------------------------------------------------ Spinning
def install_spinning_attack(deployment: Deployment, delay: Optional[float] = None):
    """§III-C: the malicious primary delays its one batch per turn by a
    little less than S_timeout (the paper uses 40 ms)."""
    faulty = deployment.nodes[0]
    if delay is None:
        delay = 0.9 * faulty.sconfig.s_timeout
    faulty.engine.preprepare_delay_fn = lambda msg: delay
    return delay


# ------------------------------------------------------------- RBFT attacks
@dataclass
class RbftAttackHandle:
    """What an RBFT attack installed (for inspection by experiments)."""

    faulty_nodes: List
    flooders: List[Flooder] = field(default_factory=list)
    pacer: Optional[BatchPacer] = None
    client_send_kwargs: Dict = field(default_factory=dict)
    junk_clients: List = field(default_factory=list)


def install_rbft_worst_attack_1(
    deployment: Deployment,
    flood_rate: float = 500.0,
) -> RbftAttackHandle:
    """§VI-C-1 — the master primary is correct; f nodes and all clients
    collude to slow the master instance without triggering an instance
    change:

    (i)   clients' MAC authenticators are invalid for the master
          primary's node (``client_send_kwargs``, applied by the load
          generator);
    (ii)  the f faulty nodes flood that node with invalid PROPAGATEs of
          maximal size;
    (iii) the faulty replicas of the master instance flood the correct
          replicas with invalid messages of maximal size;
    (iv)  the faulty replicas do not take part in the protocol.

    The default flood rate stays below the victims' NIC-closing threshold:
    once a NIC closes, the flood is free for the victim *and* the faulty
    node's remaining useful traffic (its PROPAGATEs) disappears, which in
    this substrate relieves the correct nodes — a rational worst-case
    adversary keeps its links open.
    """
    f = deployment.cluster.f
    n = deployment.cluster.n
    master_primary_node = "node0"  # master instance, view 0
    # The f+1 primaries live on nodes 0..f; take faulty nodes from the rest.
    faulty = [deployment.nodes[n - 1 - i] for i in range(f)]
    flooders = []
    for node in faulty:
        # (iv) concerns "the faulty replicas of the master protocol
        # instance": only the master-instance replica goes silent; the
        # node keeps propagating (a mute propagator would *relieve* the
        # correct nodes, helping the system).
        node.engines[deployment.nodes[0].config.master].silent = True
        correct_names = [
            other.name for other in deployment.nodes if other not in faulty
        ]
        # (ii) flood the master primary's node; (iii) flood the correct
        # replicas of the master instance (same NICs, maximal-size junk).
        flooder = Flooder(node.machine, correct_names, MAX_FLOOD_SIZE, flood_rate)
        flooder.start()
        flooders.append(flooder)
    return RbftAttackHandle(
        faulty_nodes=faulty,
        flooders=flooders,
        client_send_kwargs={"mac_invalid_for": [master_primary_node]},  # (i)
    )


class _JunkClientStream:
    """Worst-attack-2 (i): invalid requests aimed at the correct nodes.

    The requests carry MACs the correct nodes cannot verify, so each one
    costs a verification-core MAC check and is then dropped — sustainable
    harassment that never triggers the signature blacklist.
    """

    def __init__(self, deployment: Deployment, targets: List[str], rate: float):
        self.client = OpenLoopClient(
            deployment.cluster, "junk-client", payload_size=8
        )
        self.sim = deployment.sim
        self.targets = targets
        self.rate = rate
        self._running = False

    def start(self) -> None:
        self._running = True
        self.sim.process(self._run(), name="junk-client")

    def stop(self) -> None:
        self._running = False

    def _run(self):
        gap = 1.0 / self.rate
        while self._running:
            self.client.send_request(
                mac_invalid_for=self.targets, targets=self.targets
            )
            yield self.sim.timeout(gap)


def install_rbft_worst_attack_2(
    deployment: Deployment,
    margin: float = 0.015,
    flood_rate: float = 500.0,
    junk_rate: float = 2000.0,
    propagate_silent: bool = False,
) -> RbftAttackHandle:
    """§VI-C-2 — the master primary is faulty and delays requests down to
    the limit ratio Δ while its accomplices degrade the backups:

    (i)   faulty clients send invalid requests to the correct nodes;
    (ii)  the f faulty nodes flood the correct nodes and do not take part
          in the PROPAGATE phase;
    (iii) the backup replicas on the faulty nodes flood and stay silent.

    The default flood rate stays below the victims' NIC-closing threshold:
    a faulty node that hosts the (delaying) master primary must keep its
    NICs open or the closure would cut its own ordering messages off and
    hand the system a trivially detected failure.

    Deviation from the paper's recipe: (ii) says the faulty nodes do not
    participate in PROPAGATE, but in this substrate a missing propagator
    *relieves* the correct nodes (they verify fewer duplicates), so the
    damage-maximising adversary keeps propagating.  Set
    ``propagate_silent=True`` to run the paper's literal recipe.
    """
    f = deployment.cluster.f
    n = deployment.cluster.n
    # node0 hosts the master primary (view 0); the remaining faulty nodes
    # are taken from the non-primary hosts (primaries live on nodes 0..f).
    faulty = [deployment.nodes[0]] + [
        deployment.nodes[n - 1 - i] for i in range(f - 1)
    ]
    leader = faulty[0]
    faulty_names = {node.name for node in faulty}
    correct_names = [
        node.name for node in deployment.nodes if node.name not in faulty_names
    ]
    flooders = []
    for node in faulty:
        node.propagate_silent = propagate_silent  # (ii), see docstring
        for engine in node.engines[1:]:
            engine.silent = True  # (iii) backup replicas opt out
        flooder = Flooder(node.machine, correct_names, MAX_FLOOD_SIZE, flood_rate)
        flooder.start()
        flooders.append(flooder)

    delta = leader.config.delta

    def target_rate() -> float:
        rates = leader.monitor.last_rates
        backups = rates[1:]
        backup_mean = sum(backups) / len(backups) if backups else 0.0
        if backup_mean <= 0:
            return 0.0  # no data yet: order at full speed
        return (delta + margin) * backup_mean

    pacer = BatchPacer(deployment.sim, target_rate)
    leader.engines[0].preprepare_delay_fn = lambda msg: pacer.delay_for(
        len(msg.items)
    )
    junk = _JunkClientStream(deployment, correct_names, junk_rate)  # (i)
    junk.start()
    return RbftAttackHandle(
        faulty_nodes=faulty,
        flooders=flooders,
        pacer=pacer,
        junk_clients=[junk],
    )


def install_unfair_primary(
    deployment: Deployment,
    victim: str,
    delay_schedule: Callable[[int], float],
):
    """§VI-C-3 — the master primary delays one client's requests.

    ``delay_schedule(i)`` returns the extra delay for the victim's i-th
    request (0-based) before the primary lets it into a batch.
    """
    leader = deployment.nodes[0]
    master = leader.engines[0]
    original_submit = master.submit
    counter = {"n": 0}
    sim = deployment.sim

    def unfair_submit(item):
        if item.client == victim:
            delay = delay_schedule(counter["n"])
            counter["n"] += 1
            if delay > 0:
                sim.call_after(delay, original_submit, item)
                return
        original_submit(item)

    master.submit = unfair_submit
    return counter
