"""Flooding attackers (§VI-C).

A faulty node floods victims with invalid messages of maximal size: the
victim pays reception bandwidth plus a MAC verification per message until
it closes the flooder's NIC (§V).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.cluster import Machine
from repro.core.messages import FloodMsg

__all__ = ["Flooder", "MAX_FLOOD_SIZE"]

#: "invalid messages of the maximal size" — jumbo-frame sized junk.
MAX_FLOOD_SIZE = 9000


class Flooder:
    """A process on a faulty machine that floods selected victims."""

    def __init__(
        self,
        machine: Machine,
        victims: Iterable[str],
        size: int = MAX_FLOOD_SIZE,
        rate: float = 10_000.0,  # messages/second per victim
    ):
        self.machine = machine
        self.victims: List[str] = list(victims)
        self.size = size
        self.rate = rate
        self.sim = machine.cluster.sim
        self.sent = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._run(), name="flooder-%s" % self.machine.name)

    def stop(self) -> None:
        self._running = False

    def _run(self):
        gap = 1.0 / self.rate
        while self._running:
            for victim in self.victims:
                self.machine.send_to_node(
                    victim, FloodMsg(self.machine.name, self.size)
                )
                self.sent += 1
            yield self.sim.timeout(gap)
