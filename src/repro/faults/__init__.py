"""Attack orchestration: the adversaries of §III and §VI-C."""

from .attacks import (
    HeavyClient,
    install_aardvark_attack,
    install_prime_attack,
    install_rbft_worst_attack_1,
    install_rbft_worst_attack_2,
    install_spinning_attack,
    install_unfair_primary,
)
from .flooding import MAX_FLOOD_SIZE, Flooder
from .pacing import BatchPacer

__all__ = [
    "BatchPacer",
    "Flooder",
    "MAX_FLOOD_SIZE",
    "HeavyClient",
    "install_aardvark_attack",
    "install_prime_attack",
    "install_rbft_worst_attack_1",
    "install_rbft_worst_attack_2",
    "install_spinning_attack",
    "install_unfair_primary",
]
