"""Rate pacing for smartly-malicious primaries.

Every attack in the paper boils down to the same move: the primary
releases ordering messages just fast enough to stay below the detection
threshold.  :class:`BatchPacer` turns a target rate into the per-batch
delay the engine's attack hook expects, keeping a virtual send horizon so
bursts cannot defeat the pacing.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Simulator

__all__ = ["BatchPacer"]


class BatchPacer:
    """Computes the delay that holds a primary to ``target_rate_fn()``.

    ``target_rate_fn`` is evaluated at every batch, so adaptive attackers
    (tracking Aardvark's rising requirement or RBFT's Δ·backup bound)
    plug their live estimate straight in.
    """

    def __init__(self, sim: Simulator, target_rate_fn: Callable[[], float]):
        self.sim = sim
        self.target_rate_fn = target_rate_fn
        self._next_send_at = 0.0

    def delay_for(self, items: int) -> float:
        """Delay to apply before sending a batch of ``items`` requests."""
        now = self.sim.now
        rate = self.target_rate_fn()
        if rate <= 0:
            return 0.0
        start = self._next_send_at if self._next_send_at > now else now
        self._next_send_at = start + items / rate
        return start - now

    def reset(self) -> None:
        self._next_send_at = 0.0
