"""Deterministic random-number streams.

Every source of randomness in an experiment (client arrivals, network
jitter, packet loss, attack timing) draws from its own named stream
derived from a single experiment seed.  Adding a new consumer therefore
never perturbs the draws seen by existing ones, which keeps regression
baselines stable.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["RngTree"]


class RngTree:
    """A tree of independent ``random.Random`` streams keyed by name."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            child_seed = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
            rng = random.Random(child_seed)
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngTree":
        """Derive a child tree, e.g. one per node."""
        child_seed = (self.seed * 0x85EBCA77 + zlib.crc32(name.encode())) & 0xFFFFFFFF
        return RngTree(child_seed)

    def __repr__(self) -> str:
        return "RngTree(seed=%d, streams=%d)" % (self.seed, len(self._streams))
