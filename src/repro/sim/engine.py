"""Discrete-event simulation kernel.

The kernel is deliberately small and fast: a binary-heap event queue, a
virtual clock, cancellable timer handles, and generator-based processes in
the style of SimPy.  Protocol actors in this repository are mostly
callback-driven (they schedule work on :class:`repro.sim.resources.Core`
objects), while load generators and attack scripts are written as
generator processes.

Determinism — the ``(time, seq, ...)`` ordering contract
--------------------------------------------------------
Every heap entry starts with ``(time, seq)`` where ``seq`` is drawn from
a single monotonically increasing counter shared by *all* scheduling
entry points (:meth:`Simulator.call_at`, :meth:`Simulator.call_soon`,
:meth:`Simulator.call_anon`, event triggering, ``Timeout``).  The heap
therefore yields entries ordered by time first and, within one
timestamp, by **schedule order** — strict FIFO among ties, regardless of
whether the entry is a :class:`Handle`, an :class:`Event` or an
anonymous fast-path callable.  Two runs with the same seed replay the
exact same schedule, and callers may rely on same-timestamp callbacks
firing in the order they were scheduled.  The sequence number is unique,
so tuple comparison never reaches the heterogeneous third element.
Anything that re-orders same-timestamp entries (including the batched
clock update below and :meth:`Simulator.fast_forward`) must preserve
this contract; ``tests/sim/test_engine.py`` pins it for both the traced
and untraced loops.

Performance: every heap entry is a 4-tuple ``(time, seq, target, args)``.
``args is None`` marks a :class:`Handle` or :class:`Event` target, which
is dispatched through its ``_dispatch`` method; otherwise ``target`` is
a bare callable invoked as ``target(*args)`` — the *anonymous fast path*
used by schedulers that never need to cancel (core completions, channel
deliveries, process resumption).  The fast path skips the Handle
allocation, its ``__init__`` frame and the cancelled/done bookkeeping,
which together dominate per-event cost in saturated runs.

Batched event execution: saturated protocol runs cluster many entries on
one timestamp (a broadcast's fan-out, a core draining its backlog).  The
untraced run loop exploits this by keeping the current batch timestamp
in a local and touching ``self.now`` and the ``until`` limit check only
when the popped entry's time *changes* — same-timestamp entries drain
back-to-back with one clock update per batch.  Entries scheduled from
inside a batch at the current time carry higher sequence numbers, so
they join the tail of the same batch; ordering is identical to the
per-entry loop.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Handle",
    "Simulator",
    "AllOf",
    "AnyOf",
]


class Interrupt(Exception):
    """Raised inside a process that another actor interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Handle:
    """A cancellable reference to a scheduled callback."""

    __slots__ = ("_sim", "time", "fn", "args", "cancelled", "done")

    def __init__(self, sim: "Simulator", time: float, fn: Callable, args: tuple):
        self._sim = sim
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.done = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call multiple times."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled and not self.done

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.done = True
        self.fn(*self.args)

    #: uniform dispatch protocol shared with :class:`Event`, so the run
    #: loop never needs an ``isinstance`` branch.
    _dispatch = _fire


class Event:
    """A one-shot occurrence other actors can wait on.

    An event is *triggered* exactly once, either with :meth:`succeed` or
    :meth:`fail`.  Callbacks registered before triggering fire when the
    event is processed; callbacks registered afterwards fire immediately.
    """

    __slots__ = ("sim", "callbacks", "triggered", "ok", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self.triggered = False
        self.ok = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.ok = True
        self.value = value
        # _schedule_event, inlined: triggering is a hot path.
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heapq.heappush(sim._heap, (sim.now, seq, self, None))
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.ok = False
        self.value = exception
        self.sim._schedule_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately, preserving causal order.
            fn(self)
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    #: uniform dispatch protocol shared with :class:`Handle`.
    _dispatch = _process


class Timeout(Event):
    """An event that succeeds after a fixed virtual-time delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative timeout delay: %r" % delay)
        # Event.__init__ and _schedule_event, inlined: load generators
        # create one Timeout per request, making this a hot path.
        self.sim = sim
        self.callbacks = []
        self.triggered = True
        self.ok = True
        self.value = value
        sim._seq = seq = sim._seq + 1
        heapq.heappush(sim._heap, (sim.now + delay, seq, self, None))


class AllOf(Event):
    """Succeeds when every child event has succeeded.

    Fails fast with the first child failure.
    """

    __slots__ = ("_pending",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        if self._pending == 0:
            self.succeed([])
            return
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(None)


class AnyOf(Event):
    """Succeeds when the first child event triggers."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(event)
        else:
            self.fail(event.value)


class Process(Event):
    """A generator coroutine driven by the events it yields.

    The wrapped generator yields :class:`Event` objects; the process
    resumes when each yielded event triggers.  The process itself is an
    event that succeeds with the generator's return value, so processes
    can wait on each other.
    """

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Start on the next queue drain, at the current time.  Anonymous
        # fast path: a process start is never cancelled, only the process
        # itself can be interrupted once running.
        sim.call_soon(self._resume, None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self.triggered:
            return
        waiting = self._waiting_on
        self._waiting_on = None
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._on_event)
            except ValueError:
                pass
        self.sim.call_soon(self._throw, Interrupt(cause))

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wake-up after an interrupt
        self._waiting_on = None
        if event.ok:
            self._resume(event.value)
        else:
            self._throw(event.value)

    def _resume(self, value: Any) -> None:
        if self.triggered:
            return
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            raise
        # _wait_for, inlined: one resume per yielded event makes the
        # extra frames (wait_for + add_callback) measurable.
        if not isinstance(target, Event):
            raise TypeError(
                "process %r yielded %r; processes must yield Event objects"
                % (self.name, target)
            )
        self._waiting_on = target
        callbacks = target.callbacks
        if callbacks is None:
            # Already processed: fire immediately, preserving causal order.
            self._on_event(target)
        else:
            callbacks.append(self._on_event)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        try:
            target = self._gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise TypeError(
                "process %r yielded %r; processes must yield Event objects"
                % (self.name, target)
            )
        self._waiting_on = target
        target.add_callback(self._on_event)


class Simulator:
    """The event loop: a virtual clock plus a time-ordered callback heap."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[tuple] = []
        self._seq = 0
        self._running = False
        #: total queue items dispatched over the simulator's lifetime
        #: (includes cancelled handles popped off the heap).
        self.dispatched = 0
        #: optional :class:`repro.trace.Tracer`; None (the default) keeps
        #: every instrumented call site on its no-allocation fast path.
        self.tracer = None

    # ------------------------------------------------------------- scheduling
    def call_at(self, time: float, fn: Callable, *args: Any) -> Handle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError(
                "cannot schedule in the past: %r < now=%r" % (time, self.now)
            )
        handle = Handle(self, time, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, handle, None))
        return handle

    def call_after(self, delay: float, fn: Callable, *args: Any) -> Handle:
        """Schedule ``fn(*args)`` after a relative delay."""
        return self.call_at(self.now + delay, fn, *args)

    def call_soon(self, fn: Callable, *args: Any) -> None:
        """Anonymous fast path: run ``fn(*args)`` on the next queue drain.

        Unlike :meth:`call_after` this allocates no :class:`Handle`, so
        the callback cannot be cancelled.  FIFO order with everything
        else scheduled at the current time is preserved (the shared
        sequence number breaks the tie).
        """
        self._seq += 1
        heapq.heappush(self._heap, (self.now, self._seq, fn, args))

    def call_anon(self, time: float, fn: Callable, args: tuple) -> None:
        """Anonymous fast path at an absolute time, for hot schedulers.

        The caller guarantees ``time >= now`` (e.g. a core completion or
        a channel delivery horizon); the past-scheduling check, the
        Handle allocation and cancellation support are all skipped.
        """
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event, None))

    # -------------------------------------------------------------- factories
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # ------------------------------------------------------------------- loop
    def run(self, until: Optional[float] = None) -> None:
        """Drain the queue until empty or until the clock passes ``until``.

        When ``until`` is given the clock is left exactly at ``until`` even
        if the queue drained early, so successive ``run`` calls compose.
        """
        if self._running:
            raise RuntimeError("simulator is already running")
        self._running = True
        # Hoisted once: attach a tracer *before* run() (re-checking the
        # attribute per dispatch would tax every untraced run).
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        # Bind the heap and the heap primitives to locals: the loop body
        # is small enough that global/attribute lookups are measurable.
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        limit = until if until is not None else float("inf")
        count = self.dispatched
        try:
            if tracing:
                while heap:
                    entry = pop(heap)
                    time = entry[0]
                    if time > limit:
                        push(heap, entry)
                        break
                    self.now = time
                    count += 1
                    target, args = entry[2], entry[3]
                    if args is not None:
                        tracer.emit(
                            time,
                            "sim.dispatch",
                            getattr(target, "__qualname__", repr(target)),
                        )
                        target(*args)
                    elif type(target) is Handle:
                        fn = target.fn
                        tracer.emit(
                            time,
                            "sim.dispatch",
                            getattr(fn, "__qualname__", repr(fn)),
                            cancelled=target.cancelled,
                        )
                        target._fire()
                    else:
                        tracer.emit(time, "sim.dispatch", type(target).__name__)
                        target._dispatch()
            else:
                # The hot loop: pop once (no peek-then-pop double heap
                # traversal); a popped entry beyond the limit is pushed
                # back, which happens at most once per run() call.
                #
                # Batched clock update: `now` starts at a sentinel below
                # any schedulable time, so the first popped entry always
                # takes the time-change branch (limit check + clock
                # store).  Subsequent entries at the same timestamp skip
                # both — they are the tail of the current batch.  After
                # fast_forward() shifts the heap mid-run the stale local
                # re-triggers the time-change branch naturally.
                now = float("-inf")
                while heap:
                    entry = pop(heap)
                    time = entry[0]
                    if time != now:
                        if time > limit:
                            push(heap, entry)
                            break
                        self.now = now = time
                    count += 1
                    args = entry[3]
                    if args is None:
                        entry[2]._dispatch()
                    else:
                        entry[2](*args)
        finally:
            self._running = False
            self.dispatched = count
        if until is not None and self.now < until:
            self.now = until

    def fast_forward(self, dt: float) -> None:
        """Jump the clock forward by ``dt``, shifting every pending entry.

        The mesoscale controller (:mod:`repro.experiments.meso`) uses
        this to delete a window of steady state: the clock advances by
        ``dt`` and all pending events move with it, so relative timings
        — retransmit timers, monitor periods, rate-profile boundaries
        already on the heap — are preserved exactly.  A uniform shift
        keeps the heap invariant (no re-heapify) and the relative order
        of ties (sequence numbers are untouched), so the
        ``(time, seq, ...)`` contract above survives the jump.

        Safe to call from a callback while :meth:`run` is draining: the
        shift is done with in-place slice assignment so the run loop's
        local heap binding still sees it, and its stale batch timestamp
        makes the next pop take the clock-update branch.
        """
        if dt < 0:
            raise ValueError("cannot fast-forward backwards: %r" % dt)
        if dt == 0:
            return
        heap = self._heap
        heap[:] = [(t + dt, seq, target, args) for t, seq, target, args in heap]
        self.now += dt

    def peek(self) -> Optional[float]:
        """Return the time of the next pending item, or None."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:
        return "Simulator(now=%g, pending=%d)" % (self.now, len(self._heap))
