"""CPU model: cores as non-preemptive FIFO servers.

The RBFT paper pins every module (Verification, Propagation, Dispatch &
Monitoring, Execution) and every replica process to a distinct core of an
8-core machine.  What matters for throughput is that each of those is a
*serial* resource: work queues up behind it.  A :class:`Core` models
exactly that — jobs are executed in submission order, each occupying the
core for its cost, with completion callbacks fired on the simulator
clock.

The implementation is analytic rather than process-based: a core keeps a
``busy_until`` horizon, so submitting a job is O(log n) in the event heap
and no generator machinery is involved.  This keeps saturated runs (tens
of thousands of requests per simulated second) fast in pure Python.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, List, Optional

from .engine import Simulator

__all__ = ["Core", "CoreSet"]


class Core:
    """A single CPU core: a non-preemptive FIFO work queue.

    ``submit(cost, fn, *args)`` runs ``fn(*args)`` once the core has
    finished everything submitted before it plus ``cost`` seconds of work.
    """

    __slots__ = ("sim", "name", "busy_until", "busy_time", "jobs", "_started_at")

    def __init__(self, sim: Simulator, name: str = "core"):
        self.sim = sim
        self.name = name
        self.busy_until = 0.0
        self.busy_time = 0.0  # cumulative seconds of work executed
        self.jobs = 0
        self._started_at = sim.now

    def submit(self, cost: float, fn: Optional[Callable] = None, *args: Any):
        """Charge ``cost`` seconds of work; call ``fn`` at completion.

        Returns the virtual completion time.
        """
        if cost < 0:
            raise ValueError("negative job cost: %r" % cost)
        sim = self.sim
        now = sim.now
        start = now if now > self.busy_until else self.busy_until
        done = start + cost
        self.busy_until = done
        self.busy_time += cost
        self.jobs += 1
        tracer = sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                now,
                "core.job",
                self.name,
                cost=cost,
                start=start,
                done=done,
                job=getattr(fn, "__qualname__", None) if fn is not None else None,
            )
        if fn is not None:
            # Completions are never cancelled: anonymous fast path,
            # inlined (``done >= now`` always holds, the past-check is
            # redundant, and the extra call frame is measurable here).
            sim._seq = seq = sim._seq + 1
            heappush(sim._heap, (done, seq, fn, args))
        return done

    def charge(self, cost: float) -> float:
        """Charge work with no completion callback (e.g. dropped messages)."""
        return self.submit(cost, None)

    @property
    def queue_delay(self) -> float:
        """Seconds a job submitted now would wait before starting."""
        backlog = self.busy_until - self.sim.now
        return backlog if backlog > 0 else 0.0

    def utilization(self) -> float:
        """Fraction of elapsed simulated time this core spent busy."""
        elapsed = self.sim.now - self._started_at
        if elapsed <= 0:
            return 0.0
        busy = min(self.busy_time, elapsed)
        return busy / elapsed

    def time_shift(self, dt: float) -> None:
        """Shift absolute-time state after a mesoscale clock jump.

        ``busy_until`` moves with the (already shifted) completion events
        in the heap; ``_started_at`` moves so the skipped window — during
        which no work was simulated — is excluded from ``utilization``.
        ``busy_time`` is relative and untouched.
        """
        self.busy_until += dt
        self._started_at += dt

    def __repr__(self) -> str:
        return "Core(%s, busy_until=%g, jobs=%d)" % (
            self.name,
            self.busy_until,
            self.jobs,
        )


class CoreSet:
    """The cores of one physical machine.

    Modules/replicas are *pinned*: callers allocate a dedicated core per
    actor (mirroring the paper's deployment).  ``allocate`` hands out
    cores round-robin and raises once the socket is oversubscribed, which
    catches configuration errors such as running f=3 RBFT on 8 cores.
    """

    def __init__(self, sim: Simulator, count: int, name: str = "node"):
        if count < 1:
            raise ValueError("a machine needs at least one core")
        self.sim = sim
        self.name = name
        self.cores: List[Core] = [
            Core(sim, "%s/cpu%d" % (name, i)) for i in range(count)
        ]
        self._next = 0

    def allocate(self, label: str = "") -> Core:
        """Hand out the next unallocated core; error when exhausted."""
        if self._next >= len(self.cores):
            raise RuntimeError(
                "machine %s has only %d cores; cannot pin %r"
                % (self.name, len(self.cores), label or "actor")
            )
        core = self.cores[self._next]
        self._next += 1
        if label:
            core.name = "%s/%s" % (self.name, label)
        return core

    @property
    def allocated(self) -> int:
        return self._next

    @property
    def available(self) -> int:
        return len(self.cores) - self._next

    def utilizations(self) -> List[float]:
        return [core.utilization() for core in self.cores]

    def time_shift(self, dt: float) -> None:
        for core in self.cores:
            core.time_shift(dt)
