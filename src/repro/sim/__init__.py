"""Discrete-event simulation kernel: clock, events, processes, cores, RNG."""

from .engine import AllOf, AnyOf, Event, Handle, Interrupt, Process, Simulator, Timeout
from .resources import Core, CoreSet
from .rng import RngTree

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Handle",
    "Interrupt",
    "Process",
    "Simulator",
    "Timeout",
    "Core",
    "CoreSet",
    "RngTree",
]
