"""Reproduction of "RBFT: Redundant Byzantine Fault Tolerance" (ICDCS 2013).

The package is organised bottom-up:

* :mod:`repro.sim` — discrete-event kernel (clock, cores, RNG);
* :mod:`repro.net` — NICs, TCP/UDP channels, multicast, flooding;
* :mod:`repro.crypto` — cost model and structural authentication tags;
* :mod:`repro.common` — requests, quorums, batching, services, clusters;
* :mod:`repro.protocols` — the PBFT ordering engine and the three robust
  baselines (Prime, Aardvark, Spinning);
* :mod:`repro.core` — RBFT itself;
* :mod:`repro.clients`, :mod:`repro.faults`, :mod:`repro.metrics`,
  :mod:`repro.experiments` — workloads, adversaries, instruments, and
  one experiment runner per table/figure of the paper.

Quickstart::

    from repro.core import RBFTConfig
    from repro.experiments import build_rbft

    deployment = build_rbft(RBFTConfig(f=1), n_clients=3)
    deployment.clients[0].send_request()
    deployment.sim.run(until=0.5)
"""

__version__ = "1.0.0"
__all__ = ["__version__"]
