"""Reproduction of "RBFT: Redundant Byzantine Fault Tolerance" (ICDCS 2013).

The package is organised bottom-up:

* :mod:`repro.sim` — discrete-event kernel (clock, cores, RNG);
* :mod:`repro.net` — NICs, TCP/UDP channels, multicast, flooding;
* :mod:`repro.crypto` — cost model and structural authentication tags;
* :mod:`repro.common` — requests, quorums, batching, services, clusters;
* :mod:`repro.protocols` — the PBFT ordering engine, the three robust
  baselines (Prime, Aardvark, Spinning), and the protocol registry;
* :mod:`repro.core` — RBFT itself;
* :mod:`repro.clients`, :mod:`repro.faults`, :mod:`repro.metrics`,
  :mod:`repro.experiments`, :mod:`repro.verify` — workloads,
  adversaries, instruments, one experiment runner per table/figure of
  the paper, and the fault-space explorer.

Quickstart::

    from repro import Scenario, Workload, run

    result = run(Scenario(protocol="rbft", attack="rbft-worst1"))
    print(result.executed_rate)

    # a million-user day-in-the-life population, aggregated:
    result = run(Scenario(protocol="rbft", workload="diurnal"))

The names in ``__all__`` are the package's **stable public surface**
(see ``docs/api.md`` for the stability policy); they are re-exported
lazily so ``import repro`` stays cheap.
"""

__version__ = "1.0.0"

#: stable top-level surface, snapshot-tested by tests/test_public_api.py.
__all__ = [
    "__version__",
    "Scenario",
    "Workload",
    "run",
    "RunResult",
    "Simulator",
    "Topology",
]

_LAZY = {
    "Scenario": ("repro.experiments.scenario", "Scenario"),
    "Workload": ("repro.clients.registry", "Workload"),
    "run": ("repro.experiments.scenario", "run"),
    "RunResult": ("repro.experiments.runner", "RunResult"),
    "Simulator": ("repro.sim.engine", "Simulator"),
    "Topology": ("repro.net.topology", "Topology"),
}


def __getattr__(name):
    """PEP 562 lazy re-exports: resolve on first attribute access."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: subsequent accesses skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
