"""Shared helpers for the ``bench`` artifact files.

Every benchmark JSON (``BENCH_kernel.json``, ``BENCH_protocol.json``,
``BENCH_meso.json``) records a **host fingerprint** — python version,
platform string, CPU count — so a gate failure can be attributed: a
regression on the *same* host is a lost optimisation, while a shortfall
against a baseline recorded on *different* hardware may just be the
hardware.  ``--check`` prints a warning when the baseline's fingerprint
differs from the current host.
"""

from __future__ import annotations

import os
import platform
from typing import List, Optional

__all__ = ["host_fingerprint", "fingerprint_mismatch", "warn_on_foreign_baseline"]


def host_fingerprint() -> dict:
    """Identify the machine producing a benchmark artifact."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 0,
    }


def fingerprint_mismatch(
    current: dict, baseline: Optional[dict]
) -> List[str]:
    """Fields on which ``baseline``'s host differs from ``current``.

    An empty list means "same host as far as we can tell"; a baseline
    with no recorded fingerprint (pre-fingerprint artifacts) reports
    every field as unknown-vs-current so the warning still fires.
    """
    if not baseline:
        return ["%s (baseline has no host fingerprint)" % key for key in current]
    return [
        "%s: %r != baseline %r" % (key, current[key], baseline.get(key))
        for key in current
        if baseline.get(key) != current[key]
    ]


def warn_on_foreign_baseline(record: dict, baseline: Optional[dict]) -> None:
    """Print the cross-host warning a ``--check`` comparison deserves.

    ``record`` is the freshly produced benchmark record (carrying its
    own ``host`` fingerprint); ``baseline`` is the loaded baseline file,
    or None when there is nothing to compare against (no warning then —
    without a baseline the gate has nothing to misattribute).
    """
    if baseline is None:
        return
    mismatches = fingerprint_mismatch(
        record.get("host") or host_fingerprint(), baseline.get("host")
    )
    if mismatches:
        print(
            "BENCH WARNING: baseline was recorded on a different host "
            "(%s); treat absolute events/sec gaps as hardware variance, "
            "not regressions" % "; ".join(mismatches)
        )
