"""Workload-pack benchmark: ``python -m repro.experiments bench workload``.

Two gates in one artifact (``BENCH_workload.json``):

* **Million-client pack sweep** — every registered workload pack runs at
  a **declared population of 10^6 clients** on the paper's n = 4 RBFT
  testbed, at a fixed offered rate (no capacity probes, so event counts
  are identical on every machine).  The gate asserts the population
  machinery holds its envelope: each point must keep a sane fraction of
  its offered rate and the whole sweep must finish inside the wall-clock
  budget — 10^6 declared users must cost event-count time, not
  object-count time.

* **Population ≡ exploded equivalence** — for every protocol family at
  n = 4, the same seeded scenario runs twice at a small declared count:
  once aggregated behind one :class:`~repro.clients.population
  .ClientPopulation`, once exploded into real client objects.  Paced
  identity sampling makes the arrival schedules identical, so the two
  runs must agree on completions, throughput and latency within tight
  tolerances (on the flat LAN they are byte-identical; the tolerances
  absorb nothing today and exist to keep the gate honest if the wiring
  ever legitimately diverges).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro.clients import Workload, workload_names

from .benchutil import host_fingerprint
from .scale import SMOKE

__all__ = [
    "PACK_RATES",
    "EQUIVALENCE_PROTOCOLS",
    "WORKLOAD_BOUNDS",
    "run_workload_bench",
    "check_workload",
    "write_workload_bench",
]

BENCH_SEED = 11

#: the acceptance population: a million declared users per pack.
DECLARED_CLIENTS = 1_000_000

#: pack -> fixed offered rate (requests/second; the spike pack's rate is
#: per-client, matching ``run_dynamic``).  Probing would make run length
#: depend on host speed; fixed rates keep every point deterministic.
PACK_RATES: Dict[str, float] = {
    "static": 20_000.0,
    "spike": 120.0,
    "diurnal": 24_000.0,
    "flash-crowd": 4_000.0,
    "churn": 16_000.0,
    "heavy-mix": 8_000.0,
}

#: the equivalence gate covers one variant per protocol family.
EQUIVALENCE_PROTOCOLS = ("rbft", "aardvark", "spinning", "prime", "pbft")
EQUIVALENCE_RATE = 1_500.0
EQUIVALENCE_CLIENTS = 6
EQUIVALENCE_SEED = 2

WORKLOAD_BOUNDS: Dict[str, float] = {
    # each pack must execute at least this fraction of its offered rate
    # (whole-run packs measure against the profile's time average).
    "min_throughput_fraction": 0.5,
    # the full sweep — packs plus equivalence runs — must fit the
    # 10-minute acceptance envelope.
    "max_wall_clock_s": 600.0,
    # population vs exploded tolerances (see the module docstring).
    "max_completed_rel_err": 0.02,
    "max_throughput_rel_err": 0.02,
    "max_latency_rel_err": 0.15,
}


def _run_point(
    protocol: str,
    workload: Workload,
    seed: int,
) -> dict:
    from .scenario import Scenario, run

    start = time.perf_counter()
    result = run(Scenario(
        protocol=protocol,
        payload=8,
        workload=workload,
        seed=seed,
        scale=SMOKE,
    ))
    wall = time.perf_counter() - start
    return {
        "offered_rps": round(result.offered_rate, 1),
        "throughput_rps": round(result.executed_rate, 1),
        "completed": result.completed,
        "events": result.events,
        "mean_latency_ms": round(result.mean_latency * 1e3, 4),
        "declared_clients": result.declared_clients,
        "wall_clock_s": round(wall, 4),
    }


def _rel_err(a: float, b: float) -> float:
    hi = max(abs(a), abs(b))
    return abs(a - b) / hi if hi > 0 else 0.0


def run_workload_bench(seed: int = BENCH_SEED) -> dict:
    """Run every pack at 10^6 declared clients plus the equivalence gate."""
    t0 = time.perf_counter()

    packs: Dict[str, dict] = {}
    for name in workload_names():
        rate = PACK_RATES.get(name)
        if rate is None:
            # A pack registered after this benchmark was written: run it
            # at the static point's rate rather than silently skipping.
            rate = PACK_RATES["static"]
        packs[name] = _run_point(
            "rbft",
            Workload(name, rate=rate, clients=DECLARED_CLIENTS),
            seed,
        )

    equivalence: Dict[str, dict] = {}
    for protocol in EQUIVALENCE_PROTOCOLS:
        population = _run_point(
            protocol,
            Workload(
                "static", rate=EQUIVALENCE_RATE,
                clients=EQUIVALENCE_CLIENTS, population=True,
            ),
            EQUIVALENCE_SEED,
        )
        exploded = _run_point(
            protocol,
            Workload(
                "static", rate=EQUIVALENCE_RATE,
                clients=EQUIVALENCE_CLIENTS, population=False,
            ),
            EQUIVALENCE_SEED,
        )
        equivalence[protocol] = {
            "population": population,
            "exploded": exploded,
            "completed_rel_err": round(
                _rel_err(population["completed"], exploded["completed"]), 6
            ),
            "throughput_rel_err": round(
                _rel_err(
                    population["throughput_rps"], exploded["throughput_rps"]
                ), 6,
            ),
            "latency_rel_err": round(
                _rel_err(
                    population["mean_latency_ms"], exploded["mean_latency_ms"]
                ), 6,
            ),
        }

    return {
        "schema": "rbft-bench-workload/1",
        "seed": seed,
        "host": host_fingerprint(),
        "declared_clients": DECLARED_CLIENTS,
        "packs": packs,
        "equivalence": equivalence,
        "wall_clock_s": round(time.perf_counter() - t0, 3),
        "bounds": dict(WORKLOAD_BOUNDS),
    }


def check_workload(record: dict) -> List[str]:
    """Return the list of bound violations (empty = gate passes)."""
    bounds = record.get("bounds", WORKLOAD_BOUNDS)
    violations = []
    for name, point in sorted(record["packs"].items()):
        floor = bounds["min_throughput_fraction"] * point["offered_rps"]
        if point["throughput_rps"] < floor:
            violations.append(
                "pack %s executed %.0f req/s, below %.0f%% of its offered "
                "%.0f req/s — the population path is dropping load" % (
                    name, point["throughput_rps"],
                    bounds["min_throughput_fraction"] * 100,
                    point["offered_rps"],
                )
            )
        if point["declared_clients"] != record["declared_clients"]:
            violations.append(
                "pack %s ran %d declared clients, expected %d" % (
                    name, point["declared_clients"],
                    record["declared_clients"],
                )
            )
    for protocol, entry in sorted(record["equivalence"].items()):
        for key, bound_key in (
            ("completed_rel_err", "max_completed_rel_err"),
            ("throughput_rel_err", "max_throughput_rel_err"),
            ("latency_rel_err", "max_latency_rel_err"),
        ):
            if entry[key] > bounds[bound_key]:
                violations.append(
                    "%s population/exploded %s %.4f exceeds %.4f — "
                    "aggregation changed what the clients observe" % (
                        protocol, key, entry[key], bounds[bound_key],
                    )
                )
    if record["wall_clock_s"] > bounds["max_wall_clock_s"]:
        violations.append(
            "workload sweep took %.1fs, over the %.0fs envelope — 10^6 "
            "declared clients must not cost object-count time" % (
                record["wall_clock_s"], bounds["max_wall_clock_s"],
            )
        )
    return violations


def write_workload_bench(
    output: str = "BENCH_workload.json",
    seed: int = BENCH_SEED,
    check: bool = False,
) -> int:
    """Run, write the artifact, print a summary; non-zero on violation."""
    record = run_workload_bench(seed=seed)
    violations = check_workload(record) if check else []
    record["violations"] = violations
    with open(output, "w", encoding="utf-8") as fileobj:
        json.dump(record, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    exact = sum(
        1 for entry in record["equivalence"].values()
        if entry["completed_rel_err"] == 0.0
        and entry["throughput_rel_err"] == 0.0
    )
    print(
        "bench workload: %d packs @ %s declared clients | equivalence "
        "%d/%d exact | wall %.1fs -> %s"
        % (
            len(record["packs"]),
            "{:,}".format(record["declared_clients"]),
            exact,
            len(record["equivalence"]),
            record["wall_clock_s"],
            output,
        )
    )
    for violation in violations:
        print("BOUND VIOLATION: %s" % violation)
    return 1 if violations else 0
