"""Kernel microbenchmark: ``python -m repro.experiments bench kernel``.

Two fixed-seed workloads measure the raw dispatch rate of the
discrete-event kernel, independent of any protocol physics:

* an **event storm** — generator processes ping-ponging timeouts,
  one-shot events and :class:`~repro.sim.resources.Core` completions,
  plus a timer-churn process that schedules and cancels handles.  This
  exercises every scheduling path the kernel has (cancellable handles,
  the internal non-cancellable fast path, event triggering, process
  resumption);
* a **fig7 point** — one fault-free RBFT run at the SMOKE scale under a
  *fixed* offered load (no capacity probe), i.e. the kernel under the
  real protocol's event mix.

Both are deterministic: the event *counts* are identical on every run
and across kernel refactors — only the wall clock moves.  The headline
metric ``events_per_sec`` is the **storm** dispatch rate: the storm
spends essentially all of its wall clock inside the kernel's scheduling
machinery, so it isolates exactly what a kernel fast path changes.  The
fig7 point is recorded alongside with its own events/sec and speedup —
its wall clock mixes kernel dispatch with protocol bookkeeping (MAC
cost models, quorum tracking, batching), so it improves less than the
storm when only dispatch gets cheaper.  ``BENCH_kernel.json`` records
both next to the speedups against the checked-in reference baseline
(``benchmarks/kernel_baseline.json``, recorded on the reference
development machine).

``--check`` turns the benchmark into a CI gate: the job fails when
events/sec regresses more than 20 % below the baseline.  Absolute
dispatch rates vary across machines, so the gate is deliberately
loose — it catches "the fast path got lost", not percent-level drift.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Optional, Tuple

from repro.sim import Simulator
from repro.sim.resources import Core

from .benchutil import host_fingerprint, warn_on_foreign_baseline
from .scale import SMOKE
from .scenario import Scenario, run as run_scenario

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "REGRESSION_TOLERANCE",
    "run_kernel_bench",
    "write_kernel_bench",
]

DEFAULT_BASELINE_PATH = os.path.join("benchmarks", "kernel_baseline.json")

#: CI fails when events/sec drops more than this fraction below baseline.
REGRESSION_TOLERANCE = 0.20

STORM_SEED = 1234
STORM_DURATION = 0.35  # simulated seconds
STORM_WORKERS = 24
#: fixed fig7 offered load — probing capacity here would add two whole
#: runs whose length depends on the machine's throughput, breaking the
#: "identical event count everywhere" property.
FIG7_RATE = 18_000.0


def _noop() -> None:
    pass


def _event_storm(
    duration: float = STORM_DURATION,
    workers: int = STORM_WORKERS,
    seed: int = STORM_SEED,
) -> Tuple[int, float]:
    """Run the synthetic storm; return (events dispatched, wall clock)."""
    sim = Simulator()
    rng = random.Random(seed)
    cores = [Core(sim, "bench/cpu%d" % i) for i in range(4)]

    def worker(index):
        core = cores[index % len(cores)]
        while True:
            yield sim.timeout(rng.random() * 1e-4 + 2e-5)
            done = sim.event()
            core.submit(2e-6, done.succeed, None)
            yield done

    for index in range(workers):
        sim.process(worker(index), name="storm-%d" % index)

    def churn():
        pending = []
        while True:
            yield sim.timeout(1.5e-4)
            for handle in pending[::2]:
                handle.cancel()
            pending = [
                sim.call_after(rng.random() * 1e-3, _noop) for _ in range(8)
            ]

    sim.process(churn(), name="churn")
    start = time.perf_counter()
    sim.run(until=duration)
    wall = time.perf_counter() - start
    return sim.dispatched, wall


def _fig7_point(seed: int = 0) -> Tuple[int, float, float]:
    """One fixed-rate RBFT run; return (events, wall, throughput)."""
    from repro.clients import Workload

    scenario = Scenario(
        protocol="rbft", payload=8,
        workload=Workload("static", rate=FIG7_RATE, population=False),
        seed=seed, scale=SMOKE,
    )
    start = time.perf_counter()
    result = run_scenario(scenario)
    wall = time.perf_counter() - start
    return result.events, wall, result.executed_rate


def _load_baseline(path: Optional[str]) -> Optional[dict]:
    if not path or not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as fileobj:
            return json.load(fileobj)
    except (OSError, ValueError):
        return None


def run_kernel_bench(repeat: int = 3, baseline_path: Optional[str] = None) -> dict:
    """Execute both workloads ``repeat`` times; keep the best wall clock.

    Event counts are checked to be identical across repeats — a varying
    count means the benchmark (or the kernel's determinism) broke.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    storm_events, storm_wall = _event_storm()
    fig7_events, fig7_wall, fig7_rate = _fig7_point()
    for _ in range(repeat - 1):
        events, wall = _event_storm()
        if events != storm_events:
            raise RuntimeError(
                "storm dispatched %d events, expected %d — kernel "
                "determinism broke" % (events, storm_events)
            )
        storm_wall = min(storm_wall, wall)
        events, wall, _ = _fig7_point()
        if events != fig7_events:
            raise RuntimeError(
                "fig7 point dispatched %d events, expected %d — kernel "
                "determinism broke" % (events, fig7_events)
            )
        fig7_wall = min(fig7_wall, wall)

    storm_eps = storm_events / storm_wall if storm_wall > 0 else 0.0
    fig7_eps = fig7_events / fig7_wall if fig7_wall > 0 else 0.0

    record = {
        "schema": "rbft-bench-kernel/1",
        "repeat": repeat,
        "host": host_fingerprint(),
        # Headline: the storm's pure kernel-dispatch rate (see module doc).
        "events_per_sec": round(storm_eps, 1),
        "wall_clock_s": round(storm_wall + fig7_wall, 4),
        "storm": {
            "events": storm_events,
            "wall_clock_s": round(storm_wall, 4),
            "events_per_sec": round(storm_eps, 1),
        },
        "fig7": {
            "events": fig7_events,
            "wall_clock_s": round(fig7_wall, 4),
            "events_per_sec": round(fig7_eps, 1),
            "offered_rps": FIG7_RATE,
            "throughput_rps": round(fig7_rate, 1),
        },
    }
    baseline = _load_baseline(baseline_path)
    if baseline and baseline.get("events_per_sec"):
        record["baseline"] = {
            "path": baseline_path,
            "events_per_sec": baseline["events_per_sec"],
            "recorded": baseline.get("recorded", "pre-fast-path kernel"),
        }
        record["speedup"] = round(storm_eps / baseline["events_per_sec"], 3)
        fig7_base = baseline.get("fig7", {}).get("events_per_sec")
        if fig7_base:
            record["fig7"]["speedup"] = round(fig7_eps / fig7_base, 3)
    return record


def check_regression(record: dict) -> Optional[str]:
    """Return a violation message when events/sec regressed, else None."""
    baseline = record.get("baseline")
    if not baseline:
        return None
    floor = (1.0 - REGRESSION_TOLERANCE) * baseline["events_per_sec"]
    if record["events_per_sec"] < floor:
        return (
            "kernel events/sec %.0f regressed more than %.0f%% below the "
            "baseline %.0f (floor %.0f)"
            % (
                record["events_per_sec"],
                REGRESSION_TOLERANCE * 100,
                baseline["events_per_sec"],
                floor,
            )
        )
    return None


def write_kernel_bench(
    output: str = "BENCH_kernel.json",
    baseline_path: Optional[str] = DEFAULT_BASELINE_PATH,
    repeat: int = 3,
    check: bool = False,
) -> int:
    """Run, write the artifact, print a summary; non-zero on regression."""
    record = run_kernel_bench(repeat=repeat, baseline_path=baseline_path)
    if check:
        warn_on_foreign_baseline(record, _load_baseline(baseline_path))
    violation = check_regression(record) if check else None
    record["violations"] = [violation] if violation else []
    with open(output, "w", encoding="utf-8") as fileobj:
        json.dump(record, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    speedup = record.get("speedup")
    print(
        "bench kernel: %.0f events/s (storm %.0f, fig7 %.0f) | wall %.2fs%s -> %s"
        % (
            record["events_per_sec"],
            record["storm"]["events_per_sec"],
            record["fig7"]["events_per_sec"],
            record["wall_clock_s"],
            " | %.2fx vs baseline" % speedup if speedup else "",
            output,
        )
    )
    if violation:
        print("BENCH REGRESSION: %s" % violation)
        return 1
    return 0
