"""Experiment harness: one runner per table/figure of the paper."""

from repro.clients import Workload

from .deployments import (
    Deployment,
    build_aardvark,
    build_pbft,
    build_prime,
    build_rbft,
    build_spinning,
)
from .runner import (
    PROTOCOL_VARIANTS,
    RunResult,
    attack_sweep,
    latency_throughput_curve,
    make_deployment,
    monitoring_view,
    probe_capacity,
    relative_throughput,
    run_dynamic,
    run_static,
    table1,
    unfair_primary_run,
)
from .kernelbench import check_regression, run_kernel_bench, write_kernel_bench
from .meso import MesoConfig
from .mesobench import run_meso_bench, write_meso_bench
from .parallel import RunSpec, execute_specs, execute_tasks, resolve_jobs
from .profiling import profile_report, profile_run
from .protocolbench import run_protocol_bench, write_protocol_bench
from .scale import FULL, QUICK, SMOKE, ScenarioScale, current_scale
from .scalebench import run_scale_bench, write_scale_bench
from .scenario import Scenario, run
from .smoke import check_bounds, run_smoke, write_smoke
from .soak import check_soak, run_soak, write_soak
from .stats import SweepResult, seed_sweep
from .workloadbench import (
    check_workload,
    run_workload_bench,
    write_workload_bench,
)

__all__ = [
    "Scenario",
    "Workload",
    "run",
    "Deployment",
    "build_aardvark",
    "build_pbft",
    "build_prime",
    "build_rbft",
    "build_spinning",
    "PROTOCOL_VARIANTS",
    "RunResult",
    "attack_sweep",
    "latency_throughput_curve",
    "make_deployment",
    "monitoring_view",
    "probe_capacity",
    "relative_throughput",
    "run_dynamic",
    "run_static",
    "table1",
    "unfair_primary_run",
    "FULL",
    "QUICK",
    "SMOKE",
    "ScenarioScale",
    "current_scale",
    "profile_report",
    "profile_run",
    "run_smoke",
    "check_bounds",
    "write_smoke",
    "run_soak",
    "check_soak",
    "write_soak",
    "run_kernel_bench",
    "check_regression",
    "write_kernel_bench",
    "run_protocol_bench",
    "write_protocol_bench",
    "run_scale_bench",
    "write_scale_bench",
    "run_workload_bench",
    "check_workload",
    "write_workload_bench",
    "MesoConfig",
    "run_meso_bench",
    "write_meso_bench",
    "RunSpec",
    "execute_specs",
    "execute_tasks",
    "resolve_jobs",
    "SweepResult",
    "seed_sweep",
]
