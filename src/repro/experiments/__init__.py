"""Experiment harness: one runner per table/figure of the paper."""

from .deployments import (
    Deployment,
    build_aardvark,
    build_pbft,
    build_prime,
    build_rbft,
    build_spinning,
)
from .runner import (
    PROTOCOL_VARIANTS,
    RunResult,
    attack_sweep,
    latency_throughput_curve,
    make_deployment,
    monitoring_view,
    probe_capacity,
    relative_throughput,
    run_dynamic,
    run_static,
    table1,
    unfair_primary_run,
)
from .scale import FULL, QUICK, ScenarioScale, current_scale
from .stats import SweepResult, seed_sweep

__all__ = [
    "Deployment",
    "build_aardvark",
    "build_pbft",
    "build_prime",
    "build_rbft",
    "build_spinning",
    "PROTOCOL_VARIANTS",
    "RunResult",
    "attack_sweep",
    "latency_throughput_curve",
    "make_deployment",
    "monitoring_view",
    "probe_capacity",
    "relative_throughput",
    "run_dynamic",
    "run_static",
    "table1",
    "unfair_primary_run",
    "FULL",
    "QUICK",
    "ScenarioScale",
    "current_scale",
    "SweepResult",
    "seed_sweep",
]
