"""Protocol microbenchmark: ``python -m repro.experiments bench protocol``.

Where ``bench kernel`` isolates the discrete-event kernel (its storm
spends all wall clock inside scheduling machinery), this benchmark
measures the **protocol hot path**: digest/authenticator cost lookups,
message routing, quorum tracking, batching and NIC/channel delivery —
the per-message Python work the RBFT paper attributes to cryptography
and message handling on the master's cores (§VI-B).

Two fixed-seed, fixed-rate workloads (no capacity probes, so the event
counts are identical on every machine and across refactors):

* a **fig7 point** — fault-free RBFT at the SMOKE scale under a fixed
  offered load: the fault-free pipeline (verification, propagation,
  dispatch, f+1 ordering instances, execution) at saturation;
* an **attack point** — the same deployment under worst-attack-1
  (flooding + targeted MAC corruption): exercises the flooding defence,
  invalid-message accounting, monitoring and instance changes.

The headline ``events_per_sec`` is the combined dispatch rate over both
workloads.  ``BENCH_protocol.json`` records it next to the speedup
against the checked-in reference baseline
(``benchmarks/protocol_baseline.json``, recorded on the reference
development machine *before* the protocol hot-path optimisation pass).

``--check`` turns the benchmark into a CI gate: the job fails when
events/sec regresses more than 20 % below the baseline.  Absolute rates
vary across machines, so the gate is deliberately loose — it catches
"the memoised hot path got lost", not percent-level drift.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional, Tuple

from .benchutil import host_fingerprint, warn_on_foreign_baseline
from .scale import SMOKE

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "REGRESSION_TOLERANCE",
    "run_protocol_bench",
    "write_protocol_bench",
]

DEFAULT_BASELINE_PATH = os.path.join("benchmarks", "protocol_baseline.json")

#: CI fails when events/sec drops more than this fraction below baseline.
REGRESSION_TOLERANCE = 0.20

#: fixed offered loads — probing capacity would add runs whose length
#: depends on the machine's speed, breaking cross-machine comparability.
FIG7_RATE = 24_000.0
ATTACK_RATE = 16_000.0
BENCH_SEED = 7


def _protocol_point(attack: Optional[str], rate: float) -> Tuple[int, float, float]:
    """One fixed-rate RBFT run; return (events, wall, executed rate)."""
    from repro.clients import Workload

    from .scenario import Scenario, run

    scenario = Scenario(
        protocol="rbft",
        payload=8,
        workload=Workload("static", rate=rate, population=False),
        attack=attack,
        seed=BENCH_SEED,
        scale=SMOKE,
    )
    start = time.perf_counter()
    result = run(scenario)
    wall = time.perf_counter() - start
    return result.events, wall, result.executed_rate


def _load_baseline(path: Optional[str]) -> Optional[dict]:
    if not path or not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as fileobj:
            return json.load(fileobj)
    except (OSError, ValueError):
        return None


def run_protocol_bench(
    repeat: int = 3, baseline_path: Optional[str] = None
) -> dict:
    """Execute both workloads ``repeat`` times; keep the best wall clock.

    Event counts are checked to be identical across repeats — a varying
    count means the benchmark (or the simulator's determinism) broke.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    fig7_events, fig7_wall, fig7_rate = _protocol_point(None, FIG7_RATE)
    atk_events, atk_wall, atk_rate = _protocol_point("rbft-worst1", ATTACK_RATE)
    for _ in range(repeat - 1):
        events, wall, _ = _protocol_point(None, FIG7_RATE)
        if events != fig7_events:
            raise RuntimeError(
                "fig7 point dispatched %d events, expected %d — protocol "
                "determinism broke" % (events, fig7_events)
            )
        fig7_wall = min(fig7_wall, wall)
        events, wall, _ = _protocol_point("rbft-worst1", ATTACK_RATE)
        if events != atk_events:
            raise RuntimeError(
                "attack point dispatched %d events, expected %d — protocol "
                "determinism broke" % (events, atk_events)
            )
        atk_wall = min(atk_wall, wall)

    total_events = fig7_events + atk_events
    total_wall = fig7_wall + atk_wall
    eps = total_events / total_wall if total_wall > 0 else 0.0
    fig7_eps = fig7_events / fig7_wall if fig7_wall > 0 else 0.0
    atk_eps = atk_events / atk_wall if atk_wall > 0 else 0.0

    record = {
        "schema": "rbft-bench-protocol/1",
        "repeat": repeat,
        "seed": BENCH_SEED,
        "host": host_fingerprint(),
        # Headline: combined dispatch rate over both protocol workloads.
        "events_per_sec": round(eps, 1),
        "wall_clock_s": round(total_wall, 4),
        "fig7": {
            "events": fig7_events,
            "wall_clock_s": round(fig7_wall, 4),
            "events_per_sec": round(fig7_eps, 1),
            "offered_rps": FIG7_RATE,
            "throughput_rps": round(fig7_rate, 1),
        },
        "attack": {
            "events": atk_events,
            "wall_clock_s": round(atk_wall, 4),
            "events_per_sec": round(atk_eps, 1),
            "offered_rps": ATTACK_RATE,
            "attack": "rbft-worst1",
            "throughput_rps": round(atk_rate, 1),
        },
    }
    baseline = _load_baseline(baseline_path)
    if baseline and baseline.get("events_per_sec"):
        record["baseline"] = {
            "path": baseline_path,
            "events_per_sec": baseline["events_per_sec"],
            "recorded": baseline.get("recorded", "pre-memoisation protocol"),
        }
        record["speedup"] = round(eps / baseline["events_per_sec"], 3)
        for part in ("fig7", "attack"):
            part_base = baseline.get(part, {}).get("events_per_sec")
            if part_base:
                record[part]["speedup"] = round(
                    record[part]["events_per_sec"] / part_base, 3
                )
    return record


def check_regression(
    record: dict, baseline: Optional[dict] = None
) -> Optional[str]:
    """Return a violation message when the benchmark regressed, else None.

    Two failure modes: events/sec below the tolerance floor (a lost
    optimisation), and drift in the **deterministic** per-workload
    numbers — event counts and executed throughput are pure functions of
    the seed, so any difference from the full baseline means protocol
    behaviour changed, however fast it runs.
    """
    summary = record.get("baseline")
    if not summary:
        return None
    floor = (1.0 - REGRESSION_TOLERANCE) * summary["events_per_sec"]
    if record["events_per_sec"] < floor:
        return (
            "protocol events/sec %.0f regressed more than %.0f%% below the "
            "baseline %.0f (floor %.0f)"
            % (
                record["events_per_sec"],
                REGRESSION_TOLERANCE * 100,
                summary["events_per_sec"],
                floor,
            )
        )
    baseline = baseline if baseline is not None else _load_baseline(
        summary.get("path")
    )
    if baseline:
        for part in ("fig7", "attack"):
            for key in ("events", "throughput_rps"):
                expected = baseline.get(part, {}).get(key)
                got = record[part].get(key)
                if expected is not None and got != expected:
                    return (
                        "%s %s drifted from the baseline (%s != %s) — "
                        "seeded protocol behaviour changed" % (part, key, got, expected)
                    )
    return None


def write_protocol_bench(
    output: str = "BENCH_protocol.json",
    baseline_path: Optional[str] = DEFAULT_BASELINE_PATH,
    repeat: int = 3,
    check: bool = False,
) -> int:
    """Run, write the artifact, print a summary; non-zero on regression."""
    record = run_protocol_bench(repeat=repeat, baseline_path=baseline_path)
    if check:
        warn_on_foreign_baseline(record, _load_baseline(baseline_path))
    violation = check_regression(record) if check else None
    record["violations"] = [violation] if violation else []
    with open(output, "w", encoding="utf-8") as fileobj:
        json.dump(record, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    speedup = record.get("speedup")
    print(
        "bench protocol: %.0f events/s (fig7 %.0f, attack %.0f) | wall %.2fs%s -> %s"
        % (
            record["events_per_sec"],
            record["fig7"]["events_per_sec"],
            record["attack"]["events_per_sec"],
            record["wall_clock_s"],
            " | %.2fx vs baseline" % speedup if speedup else "",
            output,
        )
    )
    if violation:
        print("BENCH REGRESSION: %s" % violation)
        return 1
    return 0
