"""Command-line interface: regenerate any table or figure of the paper.

Examples::

    python -m repro.experiments table1
    python -m repro.experiments fig1
    python -m repro.experiments fig7 --payload 4096
    python -m repro.experiments fig8 --f 2
    python -m repro.experiments fig12
    RBFT_FULL=1 python -m repro.experiments fig2   # full-scale sweep

Beyond the paper's figures, three instrumentation commands::

    python -m repro.experiments profile fig8       # per-core bottleneck report
    python -m repro.experiments profile fig7 --trace-out fig7.trace.jsonl
    python -m repro.experiments smoke              # CI gate: BENCH_smoke.json
    python -m repro.experiments soak               # CI gate: BENCH_soak.json
    python -m repro.experiments bench kernel       # kernel dispatch benchmark
    python -m repro.experiments bench protocol     # protocol hot-path benchmark
    python -m repro.experiments bench meso         # mesoscale speed+accuracy gate
    python -m repro.experiments bench scale        # kreq/s-vs-n scale-out curve
    python -m repro.experiments bench workload     # million-client pack gate

Traffic models are first-class: ``workloads`` lists the registered
packs and ``run`` drives one scenario with any of them::

    python -m repro.experiments workloads
    python -m repro.experiments run --workload diurnal --clients 1000000
    python -m repro.experiments smoke --workload flash-crowd

Sweeps fan out across worker processes: ``--jobs N`` (or the
``REPRO_JOBS`` environment variable) sets the worker count, default
``cpu_count() - 1``; ``--jobs 1`` forces the serial path.  Parallel and
serial sweeps produce identical numbers.

Verification commands (see ``docs/testing.md``)::

    python -m repro.experiments explore --episodes 20 --seed 0 --check
    python -m repro.experiments explore --search --budget 48 --seed 0 \\
        --strategy both --protocol rbft --out adversary --check
    python -m repro.experiments check --replay benchmarks/adversary/

Exit codes are distinct so a CI job log alone tells you *what* failed:

* ``0`` — success;
* ``1`` — a gate failed: an invariant violation, a replay digest
  mismatch, or a benchmark regression (the command ran fine and is
  reporting a genuine finding);
* ``2`` — a usage error: unknown flags or subcommands (argparse),
  unknown protocol/strategy names, or unreadable/malformed artifacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

#: exit codes, see the module docstring.
EX_OK = 0
EX_GATE = 1
EX_USAGE = 2

from .report import (
    format_attack_rows,
    format_curve,
    format_monitoring_view,
    format_table1,
)
from .runner import (
    attack_sweep,
    latency_throughput_curve,
    monitoring_view,
    table1,
    unfair_primary_run,
)
from .scale import current_scale

__all__ = ["main"]


def _cmd_table1(args) -> None:
    print(format_table1(table1(scale=current_scale(), jobs=args.jobs)))


def _cmd_fig1(args) -> None:
    rows = attack_sweep(
        "prime", scale=current_scale(), exec_cost=1e-4, jobs=args.jobs
    )
    print(format_attack_rows(
        "Fig. 1: Prime relative throughput under attack", rows,
        paper_note="drops to 22-40 % across sizes",
    ))


def _cmd_fig2(args) -> None:
    rows = attack_sweep("aardvark", scale=current_scale(), jobs=args.jobs)
    print(format_attack_rows(
        "Fig. 2: Aardvark relative throughput under attack", rows,
        paper_note="static >= 76 %, dynamic down to 13 %",
    ))


def _cmd_fig3(args) -> None:
    rows = attack_sweep("spinning", scale=current_scale(), jobs=args.jobs)
    print(format_attack_rows(
        "Fig. 3: Spinning relative throughput under attack", rows,
        paper_note="collapses to 1 % (static) / 4.5 % (dynamic)",
    ))


def _cmd_fig7(args) -> None:
    from .ascii_chart import multi_scatter

    series = {}
    for variant in ("rbft", "rbft-udp", "prime", "aardvark", "spinning"):
        rows = latency_throughput_curve(
            variant, args.payload, scale=current_scale(), jobs=args.jobs
        )
        print(format_curve("Fig. 7 (%d B) — %s" % (args.payload, variant), rows))
        print()
        series[variant] = [
            (row["throughput"] / 1e3, row["latency_ms"]) for row in rows
        ]
    print(multi_scatter(
        series, x_label="throughput (kreq/s)", y_label="latency (ms)",
    ))


def _cmd_fig8(args) -> None:
    rows = attack_sweep(
        "rbft", scale=current_scale(), attack="rbft-worst1", f=args.f,
        jobs=args.jobs,
    )
    print(format_attack_rows(
        "Fig. 8: RBFT under worst-attack-1 (f=%d)" % args.f, rows,
        paper_note="loss below 2.2 % (f=1) / 0.4 % (f=2)",
    ))


def _cmd_fig9(args) -> None:
    view = monitoring_view(1, payload=args.payload, scale=current_scale())
    print(format_monitoring_view(
        "Fig. 9: monitored throughput per node (worst-attack-1)", view
    ))


def _cmd_fig10(args) -> None:
    rows = attack_sweep(
        "rbft", scale=current_scale(), attack="rbft-worst2", f=args.f,
        jobs=args.jobs,
    )
    print(format_attack_rows(
        "Fig. 10: RBFT under worst-attack-2 (f=%d)" % args.f, rows,
        paper_note="loss below 3 % (f=1) / 1 % (f=2)",
    ))


def _cmd_fig11(args) -> None:
    view = monitoring_view(2, payload=args.payload, scale=current_scale())
    print(format_monitoring_view(
        "Fig. 11: monitored throughput per node (worst-attack-2)", view
    ))


def _cmd_fig12(args) -> None:
    result = unfair_primary_run(scale=current_scale())
    attacked = result["series"]["client0"].values()
    other = result["series"]["client1"].values()

    def mean_ms(values, lo, hi):
        segment = values[lo:hi]
        return sum(segment) / len(segment) * 1e3 if segment else 0.0

    print("Fig. 12: unfair primary vs the latency monitor (Λ = %.1f ms)"
          % (result["lambda_max"] * 1e3))
    print("  attacked client: fair %.2f ms -> delayed %.2f ms -> after "
          "change %.2f ms"
          % (mean_ms(attacked, 100, 450), mean_ms(attacked, 600, 950),
             mean_ms(attacked, 1060, None)))
    print("  other client stayed at %.2f ms" % mean_ms(other, 100, 950))
    if result["instance_change_at"] is not None:
        print("  protocol instance change at t=%.3f s"
              % result["instance_change_at"])
    from .ascii_chart import multi_scatter

    print()
    print(multi_scatter(
        {
            "attacked": list(enumerate(v * 1e3 for v in attacked)),
            "other": list(enumerate(v * 1e3 for v in other)),
        },
        x_label="request number",
        y_label="latency (ms)",
    ))


def _cmd_workloads(args) -> int:
    from repro.clients import get_workload, workload_names

    print("registered workload packs:")
    for name in workload_names():
        spec = get_workload(name)
        print("  %-12s %s%s" % (
            name, spec.description,
            "  [whole-run]" if spec.whole_run else "",
        ))
    return EX_OK


def _cmd_run(args) -> int:
    from repro.clients import Workload

    from .scenario import Scenario, run

    try:
        workload = Workload(
            args.workload, rate=args.rate, clients=args.clients
        )
        scenario = Scenario(
            protocol=args.protocol,
            payload=args.payload,
            workload=workload,
            f=args.f,
            seed=args.seed,
            scale=current_scale(),
            duration=args.duration,
        )
    except ValueError as exc:
        print("run: %s" % exc, file=sys.stderr)
        return EX_USAGE
    result = run(scenario)
    print(
        "%s %s: %d declared clients | offered %.0f req/s | executed "
        "%.0f req/s | %d completed | mean latency %.2f ms | p99 %.2f ms"
        % (
            result.protocol, result.workload, result.declared_clients,
            result.offered_rate, result.executed_rate, result.completed,
            result.mean_latency * 1e3, result.p99_latency * 1e3,
        )
    )
    return EX_OK


def _cmd_profile(args) -> int:
    from .profiling import profile_report

    print(profile_report(
        args.fig,
        payload=args.payload if args.payload is not None else None,
        f=args.f,
        top=args.top,
        trace_out=args.trace_out,
    ))
    return 0


def _cmd_smoke(args) -> int:
    from .smoke import write_smoke

    return write_smoke(
        output=args.output, seed=args.seed, jobs=args.jobs,
        workload=args.workload,
    )


def _cmd_soak(args) -> int:
    from .soak import write_soak

    return write_soak(
        output=args.output, seed=args.seed, workload=args.workload
    )


def _cmd_bench(args) -> int:
    if args.what == "scale":
        from .scalebench import (
            DEFAULT_BASELINE_PATH as scale_baseline,
            write_scale_bench,
        )

        # The ladder reaches n = 148; one pass is minutes of wall clock,
        # so default to a single repeat instead of the microbenchmarks' 3.
        return write_scale_bench(
            output=args.output or "BENCH_scale.json",
            baseline_path=args.baseline or scale_baseline,
            repeat=args.repeat if args.repeat is not None else 1,
            check=args.check,
        )
    if args.what == "meso":
        from .mesobench import (
            DEFAULT_BASELINE_PATH as meso_baseline,
            write_meso_bench,
        )

        return write_meso_bench(
            output=args.output or "BENCH_meso.json",
            baseline_path=args.baseline or meso_baseline,
            repeat=args.repeat if args.repeat is not None else 3,
            check=args.check,
        )
    if args.what == "protocol":
        from .protocolbench import (
            DEFAULT_BASELINE_PATH as protocol_baseline,
            write_protocol_bench,
        )

        return write_protocol_bench(
            output=args.output or "BENCH_protocol.json",
            baseline_path=args.baseline or protocol_baseline,
            repeat=args.repeat if args.repeat is not None else 3,
            check=args.check,
        )
    if args.what == "workload":
        from .workloadbench import write_workload_bench

        return write_workload_bench(
            output=args.output or "BENCH_workload.json",
            check=args.check,
        )
    from .kernelbench import (
        DEFAULT_BASELINE_PATH as kernel_baseline,
        write_kernel_bench,
    )

    return write_kernel_bench(
        output=args.output or "BENCH_kernel.json",
        baseline_path=args.baseline or kernel_baseline,
        repeat=args.repeat if args.repeat is not None else 3,
        check=args.check,
    )


def _cmd_explore(args) -> int:
    if args.search:
        return _cmd_search(args)
    from repro.verify import explore

    report = explore(
        args.seed,
        episodes=args.episodes,
        jobs=args.jobs,
        out_dir=args.out,
        duration=args.duration,
        rate=args.rate,
        workload=args.workload,
    )
    for index, result in enumerate(report.results):
        status = "ok" if result.ok else "VIOLATION"
        plan = ", ".join(spec.kind for spec in result.spec.plan) or "(no faults)"
        print("episode %04d  seed=%-10d  %-42s %s"
              % (index, result.spec.seed, plan, status))
    print("%d/%d episodes passed" % (
        len(report.results) - len(report.failures), len(report.results)
    ))
    for spec, result in report.counterexamples:
        plan = ", ".join(s.kind for s in spec.plan) or "(no faults)"
        print("counterexample: seed=%d plan=[%s] violates %s"
              % (spec.seed, plan, ", ".join(sorted(result.violated()))))
    if report.artifacts:
        print("wrote %d artifacts under %s" % (len(report.artifacts), args.out))
    if args.check and not report.ok:
        return EX_GATE
    return EX_OK


def _format_plan(plan) -> str:
    return ", ".join(
        "%s(%s)" % (
            spec.kind,
            ", ".join("%s=%s" % kv for kv in sorted(spec.params.items())),
        )
        for spec in plan
    ) or "(no faults)"


def _cmd_search(args) -> int:
    from repro.verify import run_search

    try:
        report = run_search(
            master_seed=args.seed,
            budget=args.budget,
            strategy=args.strategy,
            protocol=args.protocol,
            jobs=args.jobs,
            out_dir=args.out,
            duration=args.duration,
            rate=args.rate,
            workload=args.workload,
        )
    except ValueError as exc:
        # Unknown strategy/protocol names are usage errors, not findings.
        print("explore --search: %s" % exc, file=sys.stderr)
        return EX_USAGE
    print("adversary search: protocol=%s seed=%d budget=%d strategies=%s"
          % (report.protocol, report.master_seed, report.budget,
             ",".join(report.strategies)))
    print("baseline: %d completed (%.1f req/s, mean latency %.2f ms)"
          % (report.baseline.completed, report.baseline.throughput,
             report.baseline.mean_latency * 1e3))
    for name, entry in sorted(report.scripted.items()):
        print("scripted %-12s reward=%.4f degradation=%.2f%% latency x%.2f"
              % (name, entry.reward, 100 * entry.degradation,
                 entry.latency_ratio))
    for rank, entry in enumerate(report.entries, start=1):
        print("#%d [%s] reward=%.4f degradation=%.2f%% latency x%.2f  %s"
              % (rank, entry.strategy, entry.reward,
                 100 * entry.degradation, entry.latency_ratio,
                 _format_plan(entry.plan)))
    best = report.best
    if best is not None:
        verdict = "beats" if report.beats_scripted else "DOES NOT beat"
        print("best discovered attack %s the scripted worst1/worst2 bar "
              "(%.4f vs %.4f)" % (verdict, best.reward, report.scripted_bar))
    for spec, result in report.counterexamples:
        print("counterexample: plan=[%s] violates %s"
              % (_format_plan(spec.plan), ", ".join(sorted(result.violated()))))
    if report.artifacts:
        print("wrote %d artifacts under %s" % (len(report.artifacts), args.out))
    if args.check and not report.ok:
        return EX_GATE
    return EX_OK


def _replay_paths(arguments: List[str]) -> List[str]:
    """Expand directories into their episode artifacts, keep files as-is."""
    import json
    import os

    paths: List[str] = []
    for argument in arguments:
        if os.path.isdir(argument):
            found = []
            for name in sorted(os.listdir(argument)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(argument, name)
                try:
                    with open(path, "r", encoding="utf-8") as fileobj:
                        record = json.load(fileobj)
                except (OSError, ValueError) as exc:
                    raise ValueError("unreadable artifact %s: %s" % (path, exc))
                if isinstance(record, dict) and "spec" in record:
                    found.append(path)
            if not found:
                raise ValueError("no episode artifacts under %s" % argument)
            paths.extend(found)
        else:
            paths.append(argument)
    return paths


def _cmd_check(args) -> int:
    from repro.verify import check_replay

    try:
        paths = _replay_paths(args.replay)
    except ValueError as exc:
        print("check: %s" % exc, file=sys.stderr)
        return EX_USAGE
    mismatches = 0
    for path in paths:
        try:
            verdict = check_replay(path)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print("check: unreadable or malformed artifact %s: %s"
                  % (path, exc), file=sys.stderr)
            return EX_USAGE
        status = "ok" if verdict["match"] else "MISMATCH"
        print("replay %-60s %s" % (verdict["path"], status))
        print("  digest   %s" % verdict["digest"])
        print("  recorded %s" % verdict["recorded_digest"])
        print("  violations: %s (recorded: %s)" % (
            ", ".join(verdict["violations"]) or "none",
            ", ".join(verdict["recorded_violations"]) or "none",
        ))
        if not verdict["match"]:
            mismatches += 1
    if mismatches:
        print("%d/%d replays diverged from their recorded episodes"
              % (mismatches, len(paths)))
        return EX_GATE
    print("%d/%d byte-identical replays" % (len(paths), len(paths)))
    return EX_OK


COMMANDS = {
    "table1": (_cmd_table1, "Table I: baseline worst-case degradations"),
    "fig1": (_cmd_fig1, "Prime under attack"),
    "fig2": (_cmd_fig2, "Aardvark under attack"),
    "fig3": (_cmd_fig3, "Spinning under attack"),
    "fig7": (_cmd_fig7, "latency vs throughput, fault-free"),
    "fig8": (_cmd_fig8, "RBFT under worst-attack-1"),
    "fig9": (_cmd_fig9, "monitoring view, worst-attack-1"),
    "fig10": (_cmd_fig10, "RBFT under worst-attack-2"),
    "fig11": (_cmd_fig11, "monitoring view, worst-attack-2"),
    "fig12": (_cmd_fig12, "unfair primary vs latency monitoring"),
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figures of the RBFT paper "
        "(set RBFT_FULL=1 for the full-scale sweeps).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, (_, help_text) in COMMANDS.items():
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--payload", type=int, default=8 if name == "fig7" else 4096,
                         help="request payload size in bytes")
        cmd.add_argument("--f", type=int, default=1,
                         help="number of tolerated faults")
        cmd.add_argument("--jobs", type=int, default=None,
                         help="worker processes for the sweep (default: "
                         "REPRO_JOBS or cpu_count()-1; 1 = serial)")

    sub.add_parser(
        "workloads",
        help="list the registered workload packs (traffic models)",
    )

    run_cmd = sub.add_parser(
        "run",
        help="run one scenario with a named workload pack and print the "
        "headline numbers",
    )
    run_cmd.add_argument("--workload", default="static",
                         help="registered workload pack (see `workloads`)")
    run_cmd.add_argument("--protocol", default="rbft",
                         help="registry protocol variant")
    run_cmd.add_argument("--rate", type=float, default=None,
                         help="aggregate offered rate, requests/second "
                         "(default: derived from a capacity probe)")
    run_cmd.add_argument("--clients", type=int, default=None,
                         help="declared client-population size "
                         "(default: the pack's)")
    run_cmd.add_argument("--payload", type=int, default=8,
                         help="request payload size in bytes")
    run_cmd.add_argument("--f", type=int, default=1,
                         help="number of tolerated faults")
    run_cmd.add_argument("--seed", type=int, default=0,
                         help="experiment seed")
    run_cmd.add_argument("--duration", type=float, default=None,
                         help="measured window, simulated seconds "
                         "(default: the scale's)")

    from .profiling import PROFILABLE

    profile = sub.add_parser(
        "profile",
        help="re-run a figure with tracing on; print per-core bottlenecks",
    )
    profile.add_argument("fig", choices=sorted(PROFILABLE),
                         help="which figure's scenario to profile")
    profile.add_argument("--payload", type=int, default=None,
                         help="override the scenario's payload size")
    profile.add_argument("--f", type=int, default=1,
                         help="number of tolerated faults")
    profile.add_argument("--top", type=int, default=16,
                         help="show only the busiest N cores")
    profile.add_argument("--trace-out", default=None, metavar="PATH",
                         help="also export the raw trace as JSON lines")

    smoke = sub.add_parser(
        "smoke",
        help="fast fig7+fig8 subset; writes BENCH_smoke.json (CI gate)",
    )
    smoke.add_argument("--output", default="BENCH_smoke.json",
                       help="where to write the benchmark artifact")
    smoke.add_argument("--seed", type=int, default=0,
                       help="experiment seed")
    smoke.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: REPRO_JOBS or "
                       "cpu_count()-1; 1 = serial)")
    smoke.add_argument("--workload", default=None,
                       help="swap the smoke points' traffic shape for a "
                       "registered workload pack (default: static)")

    soak = sub.add_parser(
        "soak",
        help="10x-horizon bounded-memory run; writes BENCH_soak.json "
        "(CI gate)",
    )
    soak.add_argument("--output", default="BENCH_soak.json",
                      help="where to write the benchmark artifact")
    soak.add_argument("--seed", type=int, default=0,
                      help="experiment seed")
    soak.add_argument("--workload", default=None,
                      help="swap the main soak point's traffic shape for a "
                      "registered workload pack (default: static)")

    bench = sub.add_parser(
        "bench",
        help="microbenchmarks; `bench kernel` writes BENCH_kernel.json, "
        "`bench protocol` writes BENCH_protocol.json, `bench meso` "
        "writes BENCH_meso.json (meso speed + accuracy gate), `bench "
        "scale` writes BENCH_scale.json (kreq/s-vs-n curve per protocol)",
    )
    bench.add_argument("what",
                       choices=["kernel", "protocol", "meso", "scale",
                                "workload"],
                       help="which benchmark to run")
    bench.add_argument("--output", default=None,
                       help="where to write the benchmark artifact "
                       "(default: BENCH_<what>.json)")
    bench.add_argument("--baseline", default=None,
                       help="reference baseline JSON for the speedup "
                       "(default: benchmarks/<what>_baseline.json)")
    bench.add_argument("--repeat", type=int, default=None,
                       help="repetitions per workload, best wall kept "
                       "(default: 3; `bench scale` defaults to 1)")
    bench.add_argument("--check", action="store_true",
                       help="fail (exit 1) when events/sec regresses below "
                       "the baseline floor (meso: also when accuracy drifts "
                       "past its documented tolerances)")

    explore = sub.add_parser(
        "explore",
        help="run seeded fault-space episodes with online invariants, "
        "or search the fault space adversarially (--search)",
    )
    explore.add_argument("--episodes", type=int, default=20,
                         help="number of episodes to derive and run")
    explore.add_argument("--seed", type=int, default=0,
                         help="master seed the episodes derive from")
    explore.add_argument("--out", default=None, metavar="DIR",
                         help="write episode/counterexample JSON artifacts "
                         "(with --search: LEADERBOARD.json + episodes)")
    explore.add_argument("--duration", type=float, default=1.0,
                         help="load window per episode, simulated seconds")
    explore.add_argument("--rate", type=float, default=1500.0,
                         help="offered load per episode, requests/second")
    explore.add_argument("--workload", default="static",
                         help="traffic shape per episode: a registered "
                         "workload pack")
    explore.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: REPRO_JOBS or "
                         "cpu_count()-1; 1 = serial)")
    explore.add_argument("--check", action="store_true",
                         help="exit 1 if any episode violates an invariant")
    explore.add_argument("--search", action="store_true",
                         help="adaptive adversary: maximise throughput/"
                         "latency degradation over the fault vocabulary")
    explore.add_argument("--budget", type=int, default=48,
                         help="(--search) attacked-episode evaluations, "
                         "split across strategies")
    explore.add_argument("--strategy", default="both",
                         help="(--search) bandit, evolve, or both")
    explore.add_argument("--protocol", default="rbft",
                         help="(--search) registry protocol to attack "
                         "(RBFT family: rbft, rbft-udp, rbft-full-order)")

    check = sub.add_parser(
        "check",
        help="re-run recorded episodes and compare invariant digests",
    )
    check.add_argument("--replay", required=True, metavar="PATH", nargs="+",
                       help="episode/counterexample JSON artifacts, or "
                       "directories of them (e.g. benchmarks/adversary/)")

    args = parser.parse_args(argv)
    if args.command == "workloads":
        return _cmd_workloads(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "smoke":
        return _cmd_smoke(args)
    if args.command == "soak":
        return _cmd_soak(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "explore":
        return _cmd_explore(args)
    if args.command == "check":
        return _cmd_check(args)
    COMMANDS[args.command][0](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
