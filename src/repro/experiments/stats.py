"""Multi-seed statistics for experiment results.

Single simulated runs carry seed-dependent noise (Poisson arrivals,
network jitter).  ``seed_sweep`` repeats a measurement across seeds and
summarises it, so EXPERIMENTS.md can quote mean ± stdev instead of one
draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.metrics.recorder import summarize

__all__ = ["SweepResult", "seed_sweep"]


@dataclass
class SweepResult:
    """Per-seed values plus summary statistics."""

    values: List[float]
    seeds: List[int]

    @property
    def mean(self) -> float:
        return self.summary["mean"]

    @property
    def stdev(self) -> float:
        return self.summary["stdev"]

    @property
    def summary(self) -> dict:
        return summarize(self.values)

    def __str__(self) -> str:
        return "%.2f ± %.2f (n=%d)" % (self.mean, self.stdev, len(self.values))


def seed_sweep(
    measure: Callable[[int], float],
    seeds: Sequence[int] = (0, 1, 2),
) -> SweepResult:
    """Run ``measure(seed)`` for each seed and summarise the results."""
    seeds = list(seeds)
    values = [float(measure(seed)) for seed in seeds]
    return SweepResult(values=values, seeds=seeds)
