"""Mesoscale fast-forward: hybrid exact/analytic execution.

Saturated fault-free runs spend most of their simulated time in steady
state: the offered rate is constant, queues are stationary, and every
event is statistically like the last one.  Exact discrete-event
simulation grinds through all of them; the mesoscale controller instead
**deletes** windows it can prove are steady, jumping the clock with
:meth:`repro.sim.engine.Simulator.fast_forward` and shifting every piece
of absolute-time state (cores, NICs, channels, protocol memos, client
send times) so the simulation resumes as if the window had simply never
been scheduled.  The spans that *are* simulated remain exact and — the
load being stationary — are unbiased samples of the deleted windows, so
throughput and latency are measured over the **effective window**
(duration − warmup − skipped time) with no synthetic samples injected.

Detection is conservative, driven by the calibrated cost models rather
than guesswork:

* **stationarity** — consecutive probe windows must agree on executed
  rate, completion rate and mean latency within ``tolerance``, with no
  instance change and no NIC closure inside the window;
* **queueing guard** — every allocated core's utilisation over the
  window (``Δbusy_time / Δt``, i.e. the CryptoCostModel's charged work)
  and every NIC direction's byte rate against its configured bandwidth
  must stay below ``rho_max``: a resource near saturation has growing
  queues, and deleting time under growth would bias latency;
* **horizon** — a jump never crosses a :class:`RateProfile` boundary or
  the end of the run; it lands ``tail`` seconds short so the simulation
  re-enters exact mode *before* anything changes, and the controller
  re-verifies stationarity from scratch after every jump.

Eligibility is checked once per run (see :func:`eligibility`): exact
mode remains the default and the only mode used when an attack is
armed, tracing is attached, the rate profile has unknown boundaries, or
the protocol's node class does not implement ``time_shift`` (only the
RBFT node does; Spinning's mutable primary selector, and the PBFT /
Aardvark / Prime baselines, fall back to exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["MesoConfig", "MesoController", "eligibility"]


@dataclass(frozen=True)
class MesoConfig:
    """Tuning knobs of the mesoscale controller."""

    #: length of one stationarity probe window (simulated seconds).
    probe_window: float = 0.05
    #: maximum relative disagreement between consecutive windows'
    #: executed rate / completion rate / mean latency.
    tolerance: float = 0.15
    #: utilisation ceiling for the queueing guard: any core or NIC
    #: direction busier than this fraction of the window blocks the jump.
    rho_max: float = 0.95
    #: consecutive *agreeing* window pairs required before jumping.
    calibration: int = 2
    #: seconds of exact simulation kept before each horizon (a rate
    #: boundary or the end of the run).
    tail: float = 0.05
    #: jumps shorter than this are not worth the state shift.
    min_skip: float = 0.05


def eligibility(deployment, profile) -> Optional[str]:
    """Why this run cannot fast-forward, or None when it can.

    The attack check lives in the caller (:func:`repro.experiments
    .scenario.run` knows the scenario's attack before installing it);
    everything observable from the deployment is checked here.
    """
    tracer = deployment.sim.tracer
    if tracer is not None:
        return "tracing attached"
    if profile.boundaries is None:
        return "rate profile has unknown boundaries"
    for node in deployment.nodes:
        if not hasattr(node, "time_shift"):
            return "node class %s is not fast-forwardable" % type(node).__name__
    for client in deployment.client_units():
        if not hasattr(client, "time_shift"):
            return (
                "client class %s is not fast-forwardable" % type(client).__name__
            )
    return None


class MesoController:
    """Probes for steady state and performs the clock jumps."""

    def __init__(
        self,
        deployment,
        generator,
        profile,
        duration: float,
        warmup: float,
        config: MesoConfig,
    ):
        self.sim = deployment.sim
        self.cluster = deployment.cluster
        self.nodes = deployment.nodes
        self.generator = generator
        self.clients = generator.clients
        self.duration = duration
        self.config = config
        #: total simulated time deleted, and number of jumps taken.
        self.skipped_time = 0.0
        self.jumps = 0
        # Rate-change horizons, absolute (the generator starts at t=0).
        self._boundaries: Tuple[float, ...] = tuple(
            sorted(b for b in (profile.boundaries or ()) if 0.0 < b < duration)
        )
        # Flat hot-state arrays for the queueing guard: every allocated
        # core, and every NIC deduplicated by identity (shared NICs
        # appear behind several attachment points).
        cores = []
        nics = {}
        for machine in self.cluster.machines:
            cores.extend(machine.cores.cores[: machine.cores.allocated])
            nics[id(machine.client_nic)] = machine.client_nic
            for nic in machine.peer_nics.values():
                nics[id(nic)] = nic
        for port in self.cluster.clients.values():
            nics[id(port.nic)] = port.nic
        self._cores = cores
        self._nics = list(nics.values())
        self._prev_snapshot = None
        self._last_stats = None
        self._streak = 0
        self._first_tick_at = warmup + config.probe_window

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Arm the probe; ticks start one window after warmup."""
        if self._first_tick_at < self.duration:
            self.sim.call_at(self._first_tick_at, self._tick)

    # -------------------------------------------------------------- sampling
    def _snapshot(self):
        """Cumulative counters whose deltas describe one probe window."""
        lat_total = 0.0
        lat_count = 0
        for client in self.clients:
            recorder = client.latencies
            lat_total += recorder.total
            lat_count += recorder.count
        return (
            max(node.executed_count for node in self.nodes),
            self.generator.total_completed(),
            lat_total,
            lat_count,
            sum(getattr(node, "instance_changes", 0) for node in self.nodes),
            sum(getattr(node, "nics_closed", 0) for node in self.nodes),
            [core.busy_time for core in self._cores],
            [nic.bytes_tx for nic in self._nics],
            [nic.bytes_rx for nic in self._nics],
        )

    def _window_stats(self, prev, cur) -> Optional[Tuple[float, float, float]]:
        """(executed rate, completion rate, mean latency) over one window,
        or None when a guard rules the window out entirely."""
        if cur[4] != prev[4] or cur[5] != prev[5]:
            return None  # instance change or NIC closure inside the window
        window = self.config.probe_window
        d_exec = cur[0] - prev[0]
        d_comp = cur[1] - prev[1]
        d_lat_n = cur[3] - prev[3]
        if d_exec <= 0 or d_comp <= 0 or d_lat_n <= 0:
            return None  # stalled or idle: nothing safe to extrapolate
        # Queueing guard on the calibrated cost models: charged CPU work
        # per core, and bytes per NIC direction against its bandwidth.
        budget = self.config.rho_max * window
        for busy, busy_was in zip(cur[6], prev[6]):
            if busy - busy_was > budget:
                return None
        for tx, tx_was, rx, rx_was, nic in zip(
            cur[7], prev[7], cur[8], prev[8], self._nics
        ):
            byte_budget = budget * nic.bandwidth
            if tx - tx_was > byte_budget or rx - rx_was > byte_budget:
                return None
        return (
            d_exec / window,
            d_comp / window,
            (cur[2] - prev[2]) / d_lat_n,
        )

    def _close(self, a, b) -> bool:
        tolerance = self.config.tolerance
        for x, y in zip(a, b):
            hi = x if x > y else y
            if hi <= 0.0 or abs(x - y) > tolerance * hi:
                return False
        return True

    # ------------------------------------------------------------- the tick
    def _tick(self) -> None:
        sim = self.sim
        now = sim.now
        window = self.config.probe_window
        cur = self._snapshot()
        prev, self._prev_snapshot = self._prev_snapshot, cur
        stats = self._window_stats(prev, cur) if prev is not None else None
        last, self._last_stats = self._last_stats, stats
        if stats is not None and last is not None and self._close(stats, last):
            self._streak += 1
        else:
            self._streak = 0
        if self._streak >= self.config.calibration:
            dt = self._skip_span(now)
            if dt > 0.0:
                # Reschedule *before* jumping: the pending tick shifts
                # with the heap and re-verifies one window after landing.
                sim.call_after(window, self._tick)
                sim.fast_forward(dt)
                self.cluster.time_shift(dt)
                for node in self.nodes:
                    node.time_shift(dt)
                for client in self.clients:
                    client.time_shift(dt)
                self.skipped_time += dt
                self.jumps += 1
                self._streak = 0
                self._prev_snapshot = None
                self._last_stats = None
                return
        if now + window < self.duration:
            sim.call_after(window, self._tick)

    def _skip_span(self, now: float) -> float:
        """How far ahead the clock may jump from ``now``, or 0."""
        horizon = self.duration
        for boundary in self._boundaries:
            if boundary > now:
                if boundary < horizon:
                    horizon = boundary
                break
        dt = (horizon - self.config.tail) - now
        return dt if dt >= self.config.min_skip else 0.0
