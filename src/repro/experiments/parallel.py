"""Process-parallel experiment fan-out.

The figure sweeps are embarrassingly parallel: every point is one
self-contained simulated run, fully determined by (protocol, payload,
rate, attack, f, seed, scale).  This module enumerates those points as
picklable :class:`RunSpec` values and executes them across a
:class:`~concurrent.futures.ProcessPoolExecutor`, merging the results
back **in spec order** — a parallel sweep is byte-identical to the
serial one because each run is deterministic given its spec and the
parent does exactly the same arithmetic on the results either way.

Worker-count resolution (first match wins):

1. an explicit ``jobs=`` argument (the CLI's ``--jobs`` flag),
2. the ``REPRO_JOBS`` environment variable (``REPRO_JOBS=1`` forces the
   serial path — useful for debugging and for determinism tests),
3. ``os.cpu_count() - 1``, leaving one core for the parent.

Capacity probes are the one shared computation: a sweep of N attacked
runs needs each (protocol, payload, f, exec_cost, scale, seed) capacity
once, not N times.  The fan-out therefore runs a **probe pre-wave** for
the distinct capacities the specs will need, and shares the values with
the workers through :func:`repro.experiments.runner.probe_capacity`'s
persistent cache file (``REPRO_CAPACITY_CACHE``): the parent seeds the
file with everything it already knows, probe results are merged in as
they arrive, and the measured wave's workers hit the file instead of
re-probing.

If the pool cannot be set up or dies (sandboxed environments without
working ``fork``, for instance), the fan-out silently degrades to the
serial path — same results, just slower.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.clients import Workload

from . import runner
from .scale import ScenarioScale, current_scale
from .scenario import Scenario, run as run_scenario

__all__ = ["RunSpec", "resolve_jobs", "execute_specs", "execute_tasks"]


@dataclass(frozen=True)
class RunSpec:
    """One point of a figure sweep, picklable and hashable.

    ``kind`` selects the runner:

    * ``"probe"`` — :func:`~repro.experiments.runner.probe_capacity`,
      returns the capacity in requests/second;
    * ``"static"`` — :func:`~repro.experiments.runner.run_static`
      (``rate=None`` means "1.25 × probed capacity", as usual);
    * ``"dynamic"`` — :func:`~repro.experiments.runner.run_dynamic`
      (``rate`` is the per-client rate, ``None`` probes);
    * ``"curve-point"`` — one fixed-rate latency/throughput measurement
      (fig 7), with explicit ``duration``/``warmup``;
    * ``"workload"`` — one run of a named registry workload pack
      (``workload``/``n_clients`` select the pack and declared
      population; population aggregation follows the pack's defaults).
    """

    kind: str
    protocol: str
    payload: int = 8
    rate: Optional[float] = None
    attack: Optional[str] = None
    f: int = 1
    seed: int = 0
    exec_cost: float = 20e-6
    scale: Optional[ScenarioScale] = None
    duration: Optional[float] = None
    warmup: Optional[float] = None
    #: registry pack name for ``kind="workload"`` specs.
    workload: Optional[str] = None
    #: declared client count for ``kind="workload"`` specs.
    n_clients: Optional[int] = None


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Apply the jobs resolution order documented in the module doc."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = None
    if jobs is None:
        jobs = (os.cpu_count() or 2) - 1
    return max(1, jobs)


def _execute_spec(spec: RunSpec):
    """Run one spec to completion.  Must stay module-level (picklable)."""
    if spec.kind == "probe":
        return runner.probe_capacity(
            spec.protocol, spec.payload, spec.scale, spec.f,
            spec.exec_cost, spec.seed,
        )
    if spec.kind == "static":
        return run_scenario(Scenario(
            protocol=spec.protocol, payload=spec.payload,
            workload=Workload("static", rate=spec.rate, population=False),
            attack=spec.attack, f=spec.f, seed=spec.seed,
            exec_cost=spec.exec_cost, scale=spec.scale,
        ))
    if spec.kind == "dynamic":
        return run_scenario(Scenario(
            protocol=spec.protocol, payload=spec.payload,
            workload=Workload("spike", rate=spec.rate, population=False),
            attack=spec.attack, f=spec.f, seed=spec.seed,
            exec_cost=spec.exec_cost, scale=spec.scale,
        ))
    if spec.kind == "curve-point":
        # A curve point is a static run with a pinned rate and an
        # explicit (shorter) measurement window.
        return run_scenario(Scenario(
            protocol=spec.protocol, payload=spec.payload,
            workload=Workload("static", rate=spec.rate, population=False),
            f=spec.f, seed=spec.seed,
            exec_cost=spec.exec_cost, scale=spec.scale,
            duration=spec.duration, warmup=spec.warmup,
        ))
    if spec.kind == "workload":
        return run_scenario(Scenario(
            protocol=spec.protocol, payload=spec.payload,
            workload=Workload(
                spec.workload or "static", rate=spec.rate,
                clients=spec.n_clients,
            ),
            attack=spec.attack, f=spec.f, seed=spec.seed,
            exec_cost=spec.exec_cost, scale=spec.scale,
            duration=spec.duration, warmup=spec.warmup,
        ))
    raise ValueError("unknown spec kind %r" % spec.kind)


def _probe_key(spec: RunSpec) -> Tuple:
    scale = spec.scale or current_scale()
    return (
        spec.protocol, spec.payload, spec.f, spec.exec_cost,
        scale.name, spec.seed,
    )


def _capacity_prewave(specs: List[RunSpec]) -> List[RunSpec]:
    """Distinct probe specs the measured wave would otherwise repeat."""
    probes: List[RunSpec] = []
    seen = set()
    for spec in specs:
        if spec.kind not in ("static", "dynamic") or spec.rate is not None:
            continue
        probe = RunSpec(
            kind="probe", protocol=spec.protocol, payload=spec.payload,
            f=spec.f, seed=spec.seed, exec_cost=spec.exec_cost,
            scale=spec.scale,
        )
        key = _probe_key(probe)
        if key in seen or key in runner._capacity_cache:
            continue
        seen.add(key)
        probes.append(probe)
    return probes


def _worker_init(cache_path: str) -> None:
    # Mostly redundant under fork (the env is inherited) but makes the
    # sharing explicit and keeps spawn-based platforms working.
    os.environ["REPRO_CAPACITY_CACHE"] = cache_path


def _call_task(task):
    """Invoke one task.  Must stay module-level (picklable)."""
    return task()


def execute_tasks(tasks: Iterable, jobs: Optional[int] = None) -> List:
    """Generic fan-out: run picklable nullary callables, results in order.

    The simpler sibling of :func:`execute_specs` for workloads with no
    shared capacity cache — the explorer's episode batches, for one.
    Same degradation contract: if no pool can be set up (or it dies),
    the tasks run serially in the parent with identical results.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]

    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            return list(pool.map(_call_task, tasks))
    except (BrokenProcessPool, OSError, PermissionError):
        return [task() for task in tasks]


def execute_specs(
    specs: Iterable[RunSpec], jobs: Optional[int] = None
) -> List:
    """Execute all specs; return their results in spec order."""
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        return [_execute_spec(spec) for spec in specs]

    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    cache_path = os.environ.get("REPRO_CAPACITY_CACHE")
    own_cache = not cache_path
    if own_cache:
        fd, cache_path = tempfile.mkstemp(
            prefix="rbft-capacity-", suffix=".json"
        )
        os.close(fd)
        os.environ["REPRO_CAPACITY_CACHE"] = cache_path
    try:
        runner._store_capacity_entries(
            cache_path, dict(runner._capacity_cache)
        )
        probes = _capacity_prewave(specs)
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(specs)),
            initializer=_worker_init,
            initargs=(cache_path,),
        ) as pool:
            if probes:
                for probe, capacity in zip(
                    probes, pool.map(_execute_spec, probes)
                ):
                    # The probing worker already wrote the file; mirror
                    # the value into the parent's in-memory cache too.
                    runner._capacity_cache[_probe_key(probe)] = capacity
            return list(pool.map(_execute_spec, specs))
    except (BrokenProcessPool, OSError, PermissionError):
        # No usable pool here (or it died mid-flight): degrade to the
        # serial path — identical results, just slower.
        return [_execute_spec(spec) for spec in specs]
    finally:
        if own_cache:
            os.environ.pop("REPRO_CAPACITY_CACHE", None)
            try:
                os.unlink(cache_path)
            except OSError:
                pass
