"""Deployment builders: one call to stand up each protocol's cluster.

These are the entry points both the test suite and the benchmark harness
use, so every experiment runs against identically wired hardware.

Clients attach in one of two ways: ``n_clients`` explodes that many
:class:`~repro.clients.openloop.OpenLoopClient` objects (the classic
path — every pre-existing seeded run), or a ``clients_factory`` builds
a single :class:`~repro.clients.population.ClientPopulation` carrying a
declared population of any size behind one port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.clients import ClientPopulation, OpenLoopClient
from repro.common import Cluster, ClusterConfig, NullService, Service
from repro.core import RBFTConfig, RBFTNode
from repro.net.network import LinkProfile
from repro.net.topology import Topology
from repro.protocols.aardvark import AardvarkConfig, AardvarkNode
from repro.protocols.base import BftNode, NodeConfig
from repro.protocols.prime import PrimeConfig, PrimeNode
from repro.protocols.spinning import SpinningConfig, SpinningNode
from repro.sim import RngTree, Simulator

__all__ = [
    "Deployment",
    "build_rbft",
    "build_aardvark",
    "build_spinning",
    "build_prime",
    "build_pbft",
]


@dataclass
class Deployment:
    """A running cluster plus its client population."""

    sim: Simulator
    cluster: Cluster
    nodes: list
    clients: List[OpenLoopClient]
    rng: RngTree
    #: set when clients aggregate into one population event source;
    #: ``clients`` is empty in that case.
    population: Optional[ClientPopulation] = None

    def node(self, index: int):
        return self.nodes[index]

    def client_units(self) -> list:
        """The load-bearing client objects: the population, or the pool."""
        return [self.population] if self.population is not None else self.clients

    def total_executed(self) -> int:
        """Executed requests as counted by node0 (a correct node)."""
        return self.nodes[0].executed_count

    def total_completed(self) -> int:
        return sum(unit.completed for unit in self.client_units())


def _make_clients(cluster, count, payload):
    return [
        OpenLoopClient(cluster, "client%d" % i, payload_size=payload)
        for i in range(count)
    ]


def _attach_clients(cluster, count, payload, factory):
    """Explode ``count`` clients, or delegate to a population factory."""
    if factory is not None:
        return [], factory(cluster, payload)
    return _make_clients(cluster, count, payload), None


def build_rbft(
    config: Optional[RBFTConfig] = None,
    n_clients: int = 10,
    payload: int = 8,
    service_factory: Callable[[], Service] = NullService,
    tcp: bool = True,
    seed: int = 0,
    link: Optional[LinkProfile] = None,
    topology: Optional[Topology] = None,
    clients_factory: Optional[Callable[[Cluster, int], ClientPopulation]] = None,
) -> Deployment:
    """An RBFT deployment (§V): 3f+1 machines, f+1 instances each."""
    config = config or RBFTConfig()
    sim = Simulator()
    cluster_config = ClusterConfig(
        f=config.f, seed=seed, tcp=tcp, cores_per_node=config.cores_per_machine
    )
    if link is not None:
        cluster_config = cluster_config.with_(link=link)
    if topology is not None:
        cluster_config = cluster_config.with_(topology=topology)
    cluster = Cluster(sim, cluster_config)
    nodes = [
        RBFTNode(machine, config, service_factory()) for machine in cluster.machines
    ]
    clients, population = _attach_clients(cluster, n_clients, payload, clients_factory)
    return Deployment(sim, cluster, nodes, clients, RngTree(seed), population)


def _cluster_config(
    f: int,
    seed: int,
    link: Optional[LinkProfile],
    topology: Optional[Topology] = None,
    **kwargs,
):
    config = ClusterConfig(f=f, seed=seed, **kwargs)
    if link is not None:
        config = config.with_(link=link)
    if topology is not None:
        config = config.with_(topology=topology)
    return config


def build_aardvark(
    config: Optional[AardvarkConfig] = None,
    f: int = 1,
    n_clients: int = 10,
    payload: int = 8,
    service_factory: Callable[[], Service] = NullService,
    seed: int = 0,
    link: Optional[LinkProfile] = None,
    topology: Optional[Topology] = None,
    clients_factory: Optional[Callable[[Cluster, int], ClientPopulation]] = None,
) -> Deployment:
    config = config or AardvarkConfig()
    sim = Simulator()
    cluster = Cluster(sim, _cluster_config(config.instance.f, seed, link, topology))
    nodes = [
        AardvarkNode(machine, config, service_factory())
        for machine in cluster.machines
    ]
    clients, population = _attach_clients(cluster, n_clients, payload, clients_factory)
    return Deployment(sim, cluster, nodes, clients, RngTree(seed), population)


def build_spinning(
    config: Optional[SpinningConfig] = None,
    n_clients: int = 10,
    payload: int = 8,
    service_factory: Callable[[], Service] = NullService,
    seed: int = 0,
    link: Optional[LinkProfile] = None,
    topology: Optional[Topology] = None,
    clients_factory: Optional[Callable[[Cluster, int], ClientPopulation]] = None,
) -> Deployment:
    """Spinning runs over UDP multicast on a shared NIC (§VI-B)."""
    config = config or SpinningConfig()
    sim = Simulator()
    cluster = Cluster(
        sim,
        _cluster_config(
            config.instance.f, seed, link, topology,
            tcp=False, separate_nics=False,
        ),
    )
    nodes = [
        SpinningNode(machine, config, service_factory())
        for machine in cluster.machines
    ]
    clients, population = _attach_clients(cluster, n_clients, payload, clients_factory)
    return Deployment(sim, cluster, nodes, clients, RngTree(seed), population)


def build_prime(
    config: Optional[PrimeConfig] = None,
    n_clients: int = 10,
    payload: int = 8,
    service_factory: Callable[[], Service] = NullService,
    seed: int = 0,
    link: Optional[LinkProfile] = None,
    topology: Optional[Topology] = None,
    clients_factory: Optional[Callable[[Cluster, int], ClientPopulation]] = None,
) -> Deployment:
    config = config or PrimeConfig()
    sim = Simulator()
    cluster = Cluster(sim, _cluster_config(config.f, seed, link, topology))
    nodes = [
        PrimeNode(machine, config, service_factory()) for machine in cluster.machines
    ]
    clients, population = _attach_clients(cluster, n_clients, payload, clients_factory)
    return Deployment(sim, cluster, nodes, clients, RngTree(seed), population)


def build_pbft(
    config: Optional[NodeConfig] = None,
    n_clients: int = 10,
    payload: int = 8,
    service_factory: Callable[[], Service] = NullService,
    seed: int = 0,
    link: Optional[LinkProfile] = None,
    topology: Optional[Topology] = None,
    clients_factory: Optional[Callable[[Cluster, int], ClientPopulation]] = None,
) -> Deployment:
    """Plain PBFT — used by ablations, not by the paper's figures."""
    config = config or NodeConfig()
    sim = Simulator()
    cluster = Cluster(sim, _cluster_config(config.f, seed, link, topology))
    nodes = [
        BftNode(machine, config, service_factory()) for machine in cluster.machines
    ]
    clients, population = _attach_clients(cluster, n_clients, payload, clients_factory)
    return Deployment(sim, cluster, nodes, clients, RngTree(seed), population)
