"""The bounded-memory soak gate: ``python -m repro.experiments soak``.

Runs one fault-free RBFT scenario for **ten times** the smoke horizon
with the ``pbft.log-size`` gauge attached
(:attr:`~repro.experiments.scenario.Scenario.track_log_sizes`) and
asserts that the peak per-instance protocol-log size stays below the
checkpoint garbage collector's analytical bound.

A correct collector keeps every per-sequence structure inside the
sliding admission window: at most ``watermark_window`` live sequence
numbers plus up to ``checkpoint_interval`` entries that ordered after
the last stable checkpoint but have not yet been collected.  With the
defaults (1024 + 128 = 1152) that bound is independent of the horizon —
a leak anywhere in the batch/prepare/commit/checkpoint/view-change
bookkeeping grows the peak with the number of ordered batches instead
(several thousand over this horizon) and trips the gate immediately.

The throughput floor is a liveness cross-check: a "pass" produced by a
stalled run that never filled its logs would be meaningless.

A second, shorter **large-n point** (PBFT at n = 148) repeats the
bounded-log assertion at two orders of magnitude more replicas, where
any per-sender structure that escapes the collector — vote masks,
authenticator caches, channel buffers — would grow 37x faster than at
the paper's n = 4 testbed.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro.clients import Workload
from repro.protocols.pbft.engine import InstanceConfig

from .scale import SMOKE, ScenarioScale
from .scenario import Scenario, run

__all__ = ["SOAK_BOUNDS", "run_soak", "check_soak", "write_soak"]

#: soak horizon as a multiple of the scale's smoke duration.
HORIZON_FACTOR = 10.0

#: fixed offered load (requests/second), deliberately below fault-free
#: RBFT capacity (~19 kreq/s at 8-byte requests) so the client-side
#: pending backlog stays bounded and the gate measures *protocol* state.
SOAK_RATE = 16_000.0

#: the large-n soak point: the same bounded-log assertion at n = 148
#: (f = 49), where a leak in any per-sender or per-sequence structure
#: would be amplified by two orders of magnitude more replicas.  PBFT
#: keeps the point affordable (RBFT would pay (f+1)x the certificate
#: traffic); the log bound is per ordering instance, so it is the same
#: 1152-entry envelope the n = 4 point asserts.
LARGE_N_PROTOCOL = "pbft"
LARGE_N_F = 49
LARGE_N_RATE = 400.0
LARGE_N_CLIENTS = 4

_DEFAULTS = InstanceConfig()

#: sanity envelope for the soak numbers; violating any entry fails CI.
SOAK_BOUNDS: Dict[str, float] = {
    # the collector's analytical bound on per-instance log entries:
    # watermark_window live sequences + one checkpoint_interval of
    # not-yet-collected ones.  Horizon-independent by construction.
    "max_peak_log_size": float(
        _DEFAULTS.watermark_window + _DEFAULTS.checkpoint_interval
    ),
    # liveness floor: the run must actually order requests at rate.
    "min_throughput_rps": 5_000.0,
    # large-n floor: half the (much lower) offered rate at n = 148.
    "min_large_n_throughput_rps": LARGE_N_RATE / 2.0,
}


def run_soak(
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    workload: Optional[str] = None,
) -> dict:
    """Execute the soak scenario and return the benchmark record.

    ``workload`` swaps the main soak point's traffic shape for another
    registered pack (same offered rate); the default is the classic
    static profile, byte-identical to every seeded soak run.
    """
    scale = scale or SMOKE
    duration = HORIZON_FACTOR * scale.duration
    t0 = time.perf_counter()
    result = run(Scenario(
        protocol="rbft",
        payload=8,
        workload=(
            Workload("static", rate=SOAK_RATE, population=False)
            if workload is None
            else Workload(workload, rate=SOAK_RATE)
        ),
        seed=seed,
        scale=scale,
        duration=duration,
        track_log_sizes=True,
    ))
    wall = time.perf_counter() - t0
    t1 = time.perf_counter()
    large = run(Scenario(
        protocol=LARGE_N_PROTOCOL,
        payload=8,
        workload=Workload(
            "static", rate=LARGE_N_RATE, clients=LARGE_N_CLIENTS,
            population=False,
        ),
        f=LARGE_N_F,
        seed=seed,
        scale=scale,
        track_log_sizes=True,
    ))
    large_wall = time.perf_counter() - t1
    return {
        "schema": "rbft-bench-soak/1",
        "scale": scale.name,
        "seed": seed,
        "workload": workload or "static",
        "wall_clock_s": round(wall + large_wall, 3),
        "soak": {
            "protocol": "rbft",
            "payload": 8,
            "offered_rps": round(result.offered_rate, 1),
            "duration_s": duration,
            "horizon_factor": HORIZON_FACTOR,
            "throughput_rps": round(result.executed_rate, 1),
            "mean_latency_s": round(result.mean_latency, 6),
            "peak_log_size": result.peak_log_size,
            "watermark_window": _DEFAULTS.watermark_window,
            "checkpoint_interval": _DEFAULTS.checkpoint_interval,
        },
        "large_n": {
            "protocol": LARGE_N_PROTOCOL,
            "f": LARGE_N_F,
            "n": 3 * LARGE_N_F + 1,
            "payload": 8,
            "offered_rps": LARGE_N_RATE,
            "duration_s": scale.duration,
            "wall_clock_s": round(large_wall, 3),
            "throughput_rps": round(large.executed_rate, 1),
            "peak_log_size": large.peak_log_size,
        },
        "bounds": dict(SOAK_BOUNDS),
    }


def check_soak(record: dict) -> List[str]:
    """Return the list of bound violations (empty = gate passes)."""
    bounds = record.get("bounds", SOAK_BOUNDS)
    soak = record["soak"]
    violations = []
    if soak["peak_log_size"] > bounds["max_peak_log_size"]:
        violations.append(
            "peak protocol-log size %d above bound %d "
            "(watermark_window + checkpoint_interval) — per-sequence "
            "state is leaking past stable checkpoints" % (
                soak["peak_log_size"], int(bounds["max_peak_log_size"]),
            )
        )
    if soak["throughput_rps"] < bounds["min_throughput_rps"]:
        violations.append(
            "soak throughput %.0f req/s below floor %.0f — the bounded "
            "peak is meaningless on a stalled run" % (
                soak["throughput_rps"], bounds["min_throughput_rps"],
            )
        )
    large = record.get("large_n")
    if large:
        if large["peak_log_size"] > bounds["max_peak_log_size"]:
            violations.append(
                "n=%d peak protocol-log size %d above bound %d — "
                "per-sequence state leaks at scale" % (
                    large["n"], large["peak_log_size"],
                    int(bounds["max_peak_log_size"]),
                )
            )
        floor = bounds.get(
            "min_large_n_throughput_rps", SOAK_BOUNDS["min_large_n_throughput_rps"]
        )
        if large["throughput_rps"] < floor:
            violations.append(
                "n=%d throughput %.0f req/s below floor %.0f — the "
                "large-n soak point stalled" % (
                    large["n"], large["throughput_rps"], floor,
                )
            )
    return violations


def write_soak(
    output: str = "BENCH_soak.json",
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    workload: Optional[str] = None,
) -> int:
    """Run, write the artifact, print a summary; non-zero on violation."""
    record = run_soak(scale=scale, seed=seed, workload=workload)
    violations = check_soak(record)
    record["violations"] = violations
    with open(output, "w", encoding="utf-8") as fileobj:
        json.dump(record, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    soak = record["soak"]
    large = record["large_n"]
    print(
        "soak: %.1fs horizon | %.0f req/s | peak log %d (bound %d) | "
        "n=%d peak log %d | wall %.1fs -> %s"
        % (
            soak["duration_s"],
            soak["throughput_rps"],
            soak["peak_log_size"],
            int(record["bounds"]["max_peak_log_size"]),
            large["n"],
            large["peak_log_size"],
            record["wall_clock_s"],
            output,
        )
    )
    for violation in violations:
        print("BOUND VIOLATION: %s" % violation)
    return 1 if violations else 0
