"""The benchmark-smoke gate: ``python -m repro.experiments smoke``.

Runs a fixed, fast subset of the paper's evaluation —

* a **fig7** point: fault-free RBFT at saturating static load (peak
  throughput and client latency), and
* a **fig8** point: the same deployment under worst-attack-1, reported
  as the attacked/fault-free *degradation ratio* (the paper's headline
  robustness number: RBFT loses at most a few percent);

— and writes a machine-readable ``BENCH_smoke.json``.  CI runs this on
every push, uploads the artifact (the seed of the repo's benchmark
trajectory), and **fails the build** when any number leaves the sane
bounds below: a regression that halves throughput, explodes latency or
breaks the robustness story cannot land silently.

Bounds are deliberately loose — the smoke scale trades variance for
speed — and only catch order-of-magnitude breakage, not percent-level
drift; the FULL-scale benchmark suite remains the precision instrument.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from .parallel import RunSpec, execute_specs
from .runner import _relative_pct, probe_capacity
from .scale import SMOKE, ScenarioScale

__all__ = ["SMOKE_BOUNDS", "run_smoke", "check_bounds", "write_smoke"]

#: sanity envelope for the smoke numbers; violating any entry fails CI.
SMOKE_BOUNDS: Dict[str, float] = {
    # fault-free RBFT at 8-byte requests peaks in the tens of kreq/s;
    # anything below this means the pipeline is broken, not slow.
    "fig7_min_throughput_rps": 5_000.0,
    # client latency at saturation sits in the milliseconds.
    "fig7_max_mean_latency_s": 0.25,
    # worst-attack-1 costs RBFT only a few percent at full scale; at
    # smoke scale allow generous noise but catch real degradation.
    "fig8_min_degradation_ratio": 0.60,
    "fig8_max_degradation_ratio": 1.15,
}


def run_smoke(
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
    workload: Optional[str] = None,
) -> dict:
    """Execute the smoke subset and return the benchmark record.

    The fault-free and attacked runs are independent given the probed
    capacity, so they fan out across ``jobs`` worker processes (the
    fault-free run doubles as the fig7 point and the fig8 reference —
    the runs are deterministic, so one run *is* the other).

    ``workload`` swaps the traffic shape for another registered pack;
    the default is the classic static profile, byte-identical to every
    seeded smoke run.
    """
    scale = scale or SMOKE
    t0 = time.perf_counter()

    capacity = probe_capacity("rbft", 8, scale, f=1, seed=seed)
    kind = "static" if workload is None else "workload"
    fault_free, attacked = execute_specs(
        [
            RunSpec(kind=kind, protocol="rbft", payload=8,
                    seed=seed, scale=scale, workload=workload),
            RunSpec(kind=kind, protocol="rbft", payload=8,
                    attack="rbft-worst1", seed=seed, scale=scale,
                    workload=workload),
        ],
        jobs=jobs,
    )
    fig7 = fault_free
    pct = _relative_pct(attacked, fault_free)
    wall = time.perf_counter() - t0

    ratio = (
        attacked.executed_rate / fault_free.executed_rate
        if fault_free.executed_rate > 0
        else 0.0
    )
    return {
        "schema": "rbft-bench-smoke/1",
        "scale": scale.name,
        "seed": seed,
        "workload": workload or "static",
        "wall_clock_s": round(wall, 3),
        "fig7": {
            "payload": 8,
            "probed_capacity_rps": round(capacity, 1),
            "offered_rps": round(fig7.offered_rate, 1),
            "throughput_rps": round(fig7.executed_rate, 1),
            "mean_latency_s": round(fig7.mean_latency, 6),
            "p99_latency_s": round(fig7.p99_latency, 6),
        },
        "fig8": {
            "payload": 8,
            "attack": "rbft-worst1",
            "fault_free_rps": round(fault_free.executed_rate, 1),
            "attacked_rps": round(attacked.executed_rate, 1),
            "degradation_ratio": round(ratio, 4),
            "relative_pct": round(pct, 2),
            "instance_changes": attacked.instance_changes,
        },
        "bounds": dict(SMOKE_BOUNDS),
    }


def check_bounds(record: dict) -> List[str]:
    """Return the list of bound violations (empty = gate passes)."""
    bounds = record.get("bounds", SMOKE_BOUNDS)
    fig7 = record["fig7"]
    fig8 = record["fig8"]
    violations = []
    if fig7["throughput_rps"] < bounds["fig7_min_throughput_rps"]:
        violations.append(
            "fig7 throughput %.0f req/s below floor %.0f"
            % (fig7["throughput_rps"], bounds["fig7_min_throughput_rps"])
        )
    if fig7["mean_latency_s"] > bounds["fig7_max_mean_latency_s"]:
        violations.append(
            "fig7 mean latency %.4f s above ceiling %.4f s"
            % (fig7["mean_latency_s"], bounds["fig7_max_mean_latency_s"])
        )
    ratio = fig8["degradation_ratio"]
    if ratio < bounds["fig8_min_degradation_ratio"]:
        violations.append(
            "fig8 degradation ratio %.3f below floor %.3f — the attack "
            "hurts far more than the paper allows" % (
                ratio, bounds["fig8_min_degradation_ratio"],
            )
        )
    if ratio > bounds["fig8_max_degradation_ratio"]:
        violations.append(
            "fig8 degradation ratio %.3f above ceiling %.3f — attacked "
            "outrunning fault-free suggests a measurement bug" % (
                ratio, bounds["fig8_max_degradation_ratio"],
            )
        )
    return violations


def write_smoke(
    output: str = "BENCH_smoke.json",
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
    workload: Optional[str] = None,
) -> int:
    """Run, write the artifact, print a summary; non-zero on violation."""
    record = run_smoke(scale=scale, seed=seed, jobs=jobs, workload=workload)
    violations = check_bounds(record)
    record["violations"] = violations
    with open(output, "w", encoding="utf-8") as fileobj:
        json.dump(record, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    print(
        "smoke: fig7 %.0f req/s @ %.2f ms mean | fig8 ratio %.3f "
        "(%.1f%% of fault-free) | wall %.1fs -> %s"
        % (
            record["fig7"]["throughput_rps"],
            record["fig7"]["mean_latency_s"] * 1e3,
            record["fig8"]["degradation_ratio"],
            record["fig8"]["relative_pct"],
            record["wall_clock_s"],
            output,
        )
    )
    for violation in violations:
        print("BOUND VIOLATION: %s" % violation)
    return 1 if violations else 0
