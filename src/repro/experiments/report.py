"""Formatting helpers: print experiment results the way the paper does."""

from __future__ import annotations

from typing import Dict, List

__all__ = [
    "format_attack_rows",
    "format_curve",
    "format_monitoring_view",
    "format_table1",
]


def format_attack_rows(title: str, rows: List[dict], paper_note: str = "") -> str:
    """Figs 1/2/3/8/10: relative throughput vs request size."""
    lines = [title]
    if paper_note:
        lines.append("  (paper: %s)" % paper_note)
    lines.append("  %10s  %18s  %18s" % ("size", "static load", "dynamic load"))
    for row in rows:
        lines.append(
            "  %8d B  %16.1f %%  %16.1f %%"
            % (row["size"], row["static_pct"], row["dynamic_pct"])
        )
    return "\n".join(lines)


def format_curve(title: str, rows: List[dict]) -> str:
    """Fig 7: latency vs throughput."""
    lines = [title]
    lines.append(
        "  %14s  %14s  %12s" % ("offered (k/s)", "tput (kreq/s)", "latency (ms)")
    )
    for row in rows:
        lines.append(
            "  %14.1f  %14.1f  %12.2f"
            % (row["offered"] / 1e3, row["throughput"] / 1e3, row["latency_ms"])
        )
    return "\n".join(lines)


def format_monitoring_view(title: str, view: Dict[str, List[float]]) -> str:
    """Figs 9/11: per-node monitored throughput, master vs backups."""
    lines = [title]
    for name in sorted(view):
        rates = view[name]
        cells = "  ".join(
            "%s=%.2f kreq/s" % ("master" if k == 0 else "backup%d" % k, r / 1e3)
            for k, r in enumerate(rates)
        )
        lines.append("  %s: %s" % (name, cells))
    return "\n".join(lines)


def format_table1(degradations: Dict[str, float]) -> str:
    """Table I: maximum throughput degradation under attack."""
    lines = ["Table I: maximum throughput degradation under attack"]
    lines.append("  (paper: Prime 78 %, Aardvark 87 %, Spinning 99 %)")
    for protocol in ("prime", "aardvark", "spinning"):
        if protocol in degradations:
            lines.append(
                "  %-10s %6.1f %%" % (protocol.capitalize(), degradations[protocol])
            )
    return "\n".join(lines)
