"""Experiment runners — one function per table/figure of the paper.

Measurement conventions:

* **throughput** is the rate of requests *executed by a correct node*
  inside the measurement window (after warm-up) — the quantity the
  paper's monitoring also uses;
* **relative throughput** (Figs 1, 2, 3, 8, 10) is the ratio between an
  attacked run and a fault-free run with identical offered load and
  seed;
* **latency** is client-side: request send to f+1 matching replies.

Static loads saturate the system (offered = 1.25 × a probed capacity);
dynamic loads follow the paper's spike profile (§VI-A).
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.clients import LoadGenerator, Workload, build_profile
from repro.common import NullService
from repro.core import RBFTConfig
from repro.faults import (
    install_aardvark_attack,
    install_prime_attack,
    install_rbft_worst_attack_1,
    install_rbft_worst_attack_2,
    install_spinning_attack,
)
from repro.net.network import LinkProfile
from repro.net.topology import Topology
from repro.protocols import registry as protocol_registry

from .deployments import Deployment
from .scale import ScenarioScale, current_scale

__all__ = [
    "RunResult",
    "make_deployment",
    "probe_capacity",
    "run_static",
    "run_dynamic",
    "relative_throughput",
    "attack_sweep",
    "latency_throughput_curve",
    "monitoring_view",
    "unfair_primary_run",
    "table1",
    "PROTOCOL_VARIANTS",
]

#: registered variant names, in registration order (see
#: :mod:`repro.protocols.registry`, the single source of truth).
PROTOCOL_VARIANTS = protocol_registry.names()

#: capacity cache: (protocol, payload, f, exec_cost, scale name, seed)
#: -> requests/second.  In-memory, per-process; when the
#: ``REPRO_CAPACITY_CACHE`` environment variable names a JSON file, the
#: cache is additionally persisted there so probe results survive
#: process boundaries (the parallel fan-out's worker pool, or explicit
#: reuse across CLI invocations).
_capacity_cache: Dict[Tuple, float] = {}


def _capacity_key_string(key: Tuple) -> str:
    """A stable JSON-file key for one cache tuple."""
    return json.dumps(list(key))


def _load_capacity_file(path: str) -> Dict[str, float]:
    try:
        with open(path, "r", encoding="utf-8") as fileobj:
            data = json.load(fileobj)
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def _store_capacity_entries(path: str, entries: Dict[Tuple, float]) -> None:
    """Read-merge-write ``entries`` into the persistent cache file.

    The write is atomic (tempfile + ``os.replace``) so concurrent
    writers never leave a torn file.  Two probes racing on different
    keys can still drop one another's entry (last write wins); that
    only costs a redundant re-probe later, never a wrong value, because
    every entry is deterministic given its key.
    """
    data = _load_capacity_file(path)
    for key, value in entries.items():
        data[_capacity_key_string(key)] = value
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(prefix=".capacity-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fileobj:
            json.dump(data, fileobj, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


@dataclass
class RunResult:
    """What one simulated run measured."""

    protocol: str
    payload: int
    offered_rate: float
    executed_rate: float  # requests/s at a correct node, post-warmup
    completed: int  # client-side completions over the whole run
    completed_rate: float
    mean_latency: float  # seconds, client-side
    p99_latency: float
    instance_changes: int = 0
    view_changes: int = 0
    events: int = 0  # simulator queue items dispatched over the run
    #: peak per-instance protocol-log size, populated only when the
    #: scenario ran with ``track_log_sizes=True`` (see docs/simulator.md,
    #: "Memory model & garbage collection").
    peak_log_size: int = 0
    #: execution mode this run actually used: "exact" (the default) or
    #: "meso" (mesoscale fast-forward, see docs/simulator.md).
    mode: str = "exact"
    #: simulated seconds deleted by mesoscale fast-forward (0 in exact
    #: mode); rates are computed over the remaining effective window.
    ff_time: float = 0.0
    #: number of fast-forward jumps the mesoscale controller took.
    ff_windows: int = 0
    #: why a ``mode="meso"`` scenario fell back to exact execution
    #: (attack armed, tracing attached, ...); None when it did not.
    meso_fallback: Optional[str] = None
    #: workload pack the run offered (see repro.clients.registry).
    workload: str = "static"
    #: declared client-population size; 0 when the run was driven
    #: outside the Scenario path (probes, hand-built generators).
    declared_clients: int = 0


def make_deployment(
    protocol: str,
    payload: int = 8,
    scale: Optional[ScenarioScale] = None,
    f: int = 1,
    seed: int = 0,
    exec_cost: float = 20e-6,
    n_clients: int = 12,
    link: Optional[LinkProfile] = None,
    topology: Optional[Topology] = None,
    clients_factory: Optional[Callable] = None,
) -> Deployment:
    """Stand up one of the protocol variants on identical hardware.

    ``clients_factory`` (a ``(cluster, payload) -> ClientPopulation``
    callable) attaches an aggregated population instead of exploding
    ``n_clients`` objects — the Scenario layer passes it for workloads
    whose declared client count crosses the population threshold.
    """
    scale = scale or current_scale()
    spec = protocol_registry.get(protocol)

    def service():
        return NullService(exec_cost=exec_cost)

    return spec.build(
        f, scale, payload=payload, n_clients=n_clients,
        service_factory=service, seed=seed, link=link, topology=topology,
        clients_factory=clients_factory,
    )


def _correct_observers(deployment: Deployment, faulty_nodes) -> list:
    faulty = set(id(node) for node in (faulty_nodes or []))
    observers = [n for n in deployment.nodes if id(n) not in faulty]
    if not observers:
        raise RuntimeError("no correct node to observe")
    return observers


def _execute_run(
    deployment: Deployment,
    profile,
    duration: float,
    warmup: float,
    send_kwargs: Optional[dict] = None,
    faulty_nodes=None,
    meso=None,
) -> RunResult:
    sim = deployment.sim
    observers = _correct_observers(deployment, faulty_nodes)
    generator = LoadGenerator(
        sim,
        deployment.population
        if deployment.population is not None
        else deployment.clients,
        profile,
        deployment.rng.stream("load"),
        send_kwargs=send_kwargs or {},
    )
    generator.start()
    controller = None
    if meso is not None:
        # Mesoscale fast-forward (docs/simulator.md, "Execution modes"):
        # the caller has already verified eligibility, so ``meso`` is a
        # MesoConfig and the controller arms its steady-state probe.
        from .meso import MesoController

        controller = MesoController(
            deployment, generator, profile, duration, warmup, meso
        )
        controller.start()
    marks = {}
    sim.call_at(
        warmup,
        lambda: marks.__setitem__(
            "start", [node.executed_count for node in observers]
        ),
    )
    sim.run(until=duration)
    starts = marks.get("start", [0] * len(observers))
    # System throughput is what the up-to-date correct replicas executed;
    # an attack may deliberately impair one correct node (worst-attack-1
    # targets the master primary's node), and a lagging replica catches
    # up by state transfer rather than by re-executing history.
    executed = max(
        node.executed_count - start for node, start in zip(observers, starts)
    )
    # Rates are per second of *simulated* activity: fast-forwarded spans
    # were never simulated, so they count in neither numerator (no
    # requests executed there) nor denominator (effective window).
    skipped = controller.skipped_time if controller is not None else 0.0
    window = duration - warmup - skipped
    completed = generator.total_completed()
    observer = max(observers, key=lambda node: node.executed_count)
    instance_changes = getattr(observer, "instance_changes", 0)
    view_changes = getattr(
        getattr(observer, "engine", None), "view_changes", 0
    ) or getattr(observer, "view_changes", 0)
    return RunResult(
        protocol="",
        payload=0,
        offered_rate=0.0,
        executed_rate=executed / window if window > 0 else 0.0,
        completed=completed,
        completed_rate=completed / (duration - skipped),
        mean_latency=generator.mean_latency(),
        p99_latency=generator.latency_percentile(0.99),
        instance_changes=instance_changes,
        view_changes=view_changes,
        events=sim.dispatched,
        mode="meso" if controller is not None else "exact",
        ff_time=skipped,
        ff_windows=controller.jumps if controller is not None else 0,
    )


def probe_capacity(
    protocol: str,
    payload: int = 8,
    scale: Optional[ScenarioScale] = None,
    f: int = 1,
    exec_cost: float = 20e-6,
    seed: int = 0,
) -> float:
    """Measure the fault-free saturation throughput (cached).

    The cache key includes the probe ``seed``: probing is a measurement
    of a seeded simulation, so two sweeps probing under different seeds
    must not share results.  Cached values are also read from / written
    to the ``REPRO_CAPACITY_CACHE`` file when that variable is set, so
    a fresh process (a pool worker, a re-run) skips the probe.
    """
    scale = scale or current_scale()
    key = (protocol, payload, f, exec_cost, scale.name, seed)
    cached = _capacity_cache.get(key)
    if cached is not None:
        return cached
    cache_path = os.environ.get("REPRO_CAPACITY_CACHE")
    if cache_path:
        persisted = _load_capacity_file(cache_path).get(
            _capacity_key_string(key)
        )
        if persisted is not None:
            _capacity_cache[key] = persisted
            return persisted

    def probe(rate: float) -> float:
        deployment = make_deployment(
            protocol, payload, scale, f=f, seed=seed, exec_cost=exec_cost
        )
        result = _execute_run(
            deployment,
            build_profile("static", rate, scale.probe_duration),
            duration=scale.probe_duration,
            warmup=scale.probe_duration * 0.4,
        )
        return max(result.executed_rate, 1.0)

    # Stage 1: coarse over-offering, capped so large payloads don't swamp
    # the client NICs before the protocol even sees the requests.
    wire = 176 + payload
    coarse_rate = min(90_000.0, 0.6 * 125_000_000.0 / wire)
    coarse = probe(coarse_rate)
    # Stage 2: saturate just past the knee, like the paper's static load.
    capacity = probe(1.4 * coarse)
    _capacity_cache[key] = capacity
    if cache_path:
        _store_capacity_entries(cache_path, {key: capacity})
    return capacity


ATTACK_INSTALLERS: Dict[str, Callable[[Deployment], object]] = {
    "prime": install_prime_attack,
    "aardvark": install_aardvark_attack,
    "spinning": install_spinning_attack,
    "rbft-worst1": install_rbft_worst_attack_1,
    "rbft-worst2": install_rbft_worst_attack_2,
}


def _attack_for(protocol: str, attack: Optional[str]) -> Optional[str]:
    if attack is None:
        return None
    if attack == "default":
        return protocol if protocol in ATTACK_INSTALLERS else None
    return attack


def _deprecated_shim(name: str) -> None:
    warnings.warn(
        "%s() is deprecated; use repro.experiments.run(Scenario(...)) "
        "instead" % name,
        DeprecationWarning,
        stacklevel=3,
    )


def run_static(
    protocol: str,
    payload: int = 8,
    rate: Optional[float] = None,
    scale: Optional[ScenarioScale] = None,
    attack: Optional[str] = None,
    f: int = 1,
    seed: int = 0,
    exec_cost: float = 20e-6,
) -> RunResult:
    """Deprecated shim: one saturating static-load run.

    Use ``run(Scenario(protocol=..., load="static", ...))`` instead.
    """
    from .scenario import Scenario, run

    _deprecated_shim("run_static")
    return run(Scenario(
        protocol=protocol, payload=payload,
        workload=Workload("static", rate=rate, population=False),
        attack=attack, f=f, seed=seed, exec_cost=exec_cost, scale=scale,
    ))


def run_dynamic(
    protocol: str,
    payload: int = 8,
    per_client_rate: Optional[float] = None,
    scale: Optional[ScenarioScale] = None,
    attack: Optional[str] = None,
    f: int = 1,
    seed: int = 0,
    exec_cost: float = 20e-6,
) -> RunResult:
    """Deprecated shim: one spike-workload run (§VI-A).

    Use ``run(Scenario(protocol=..., load="dynamic", ...))`` instead.
    """
    from .scenario import Scenario, run

    _deprecated_shim("run_dynamic")
    return run(Scenario(
        protocol=protocol, payload=payload,
        workload=Workload("spike", rate=per_client_rate, population=False),
        attack=attack, f=f, seed=seed, exec_cost=exec_cost, scale=scale,
    ))


def relative_throughput(
    protocol: str,
    payload: int = 8,
    dynamic: bool = False,
    scale: Optional[ScenarioScale] = None,
    attack: str = "default",
    f: int = 1,
    seed: int = 0,
    exec_cost: float = 20e-6,
) -> Tuple[float, RunResult, RunResult]:
    """Throughput under attack as a percentage of the fault-free run."""
    from .scenario import Scenario, run

    base = Scenario(
        protocol=protocol, payload=payload,
        workload=Workload("spike" if dynamic else "static"), scale=scale,
        f=f, seed=seed, exec_cost=exec_cost,
    )
    fault_free = run(base)
    attacked = run(base.with_(attack=attack))
    if fault_free.executed_rate <= 0:
        return 0.0, fault_free, attacked
    percent = 100.0 * attacked.executed_rate / fault_free.executed_rate
    return percent, fault_free, attacked


def _relative_pct(attacked: RunResult, fault_free: RunResult) -> float:
    """The same arithmetic as :func:`relative_throughput`, on results."""
    if fault_free.executed_rate <= 0:
        return 0.0
    return 100.0 * attacked.executed_rate / fault_free.executed_rate


def _sweep_specs(
    protocol: str,
    scale: ScenarioScale,
    attack: str,
    f: int,
    exec_cost: float,
) -> List:
    """Four runs per request size, in the serial execution order."""
    from .parallel import RunSpec

    specs = []
    for size in scale.sizes:
        for kind in ("static", "dynamic"):
            for att in (None, attack):
                specs.append(
                    RunSpec(
                        kind=kind, protocol=protocol, payload=size,
                        attack=att, f=f, exec_cost=exec_cost, scale=scale,
                    )
                )
    return specs


def _sweep_rows(scale: ScenarioScale, results: List[RunResult]) -> List[dict]:
    rows = []
    for index, size in enumerate(scale.sizes):
        static_ff, static_att, dyn_ff, dyn_att = results[
            4 * index : 4 * index + 4
        ]
        rows.append(
            {
                "size": size,
                "static_pct": _relative_pct(static_att, static_ff),
                "dynamic_pct": _relative_pct(dyn_att, dyn_ff),
            }
        )
    return rows


def attack_sweep(
    protocol: str,
    scale: Optional[ScenarioScale] = None,
    attack: str = "default",
    f: int = 1,
    exec_cost: float = 20e-6,
    jobs: Optional[int] = None,
) -> List[dict]:
    """Figs 1, 2, 3, 8, 10: relative throughput vs request size, for both
    the static and the dynamic load.

    The per-size runs are independent simulations; ``jobs`` (default:
    ``REPRO_JOBS`` or ``cpu_count() - 1``) fans them out across worker
    processes.  Results are merged in spec order, so the rows are
    byte-identical to a serial sweep.
    """
    from .parallel import execute_specs

    scale = scale or current_scale()
    specs = _sweep_specs(protocol, scale, attack, f, exec_cost)
    results = execute_specs(specs, jobs=jobs)
    return _sweep_rows(scale, results)


def latency_throughput_curve(
    protocol: str,
    payload: int = 8,
    scale: Optional[ScenarioScale] = None,
    f: int = 1,
    exec_cost: float = 20e-6,
    jobs: Optional[int] = None,
) -> List[dict]:
    """Fig 7: (achieved throughput, mean latency) as offered load rises.

    The capacity probe runs first (it anchors every point's rate); the
    points themselves fan out across ``jobs`` worker processes.
    """
    from .parallel import RunSpec, execute_specs

    scale = scale or current_scale()
    capacity = probe_capacity(protocol, payload, scale, f, exec_cost)
    duration = max(0.6, scale.duration / 2)
    specs = []
    for i in range(scale.rate_points):
        fraction = 0.15 + (1.05 - 0.15) * i / max(1, scale.rate_points - 1)
        specs.append(
            RunSpec(
                kind="curve-point", protocol=protocol, payload=payload,
                rate=fraction * capacity, f=f, exec_cost=exec_cost,
                scale=scale, duration=duration, warmup=duration * 0.25,
            )
        )
    results = execute_specs(specs, jobs=jobs)
    return [
        {
            "offered": spec.rate,
            "throughput": result.completed_rate,
            "latency_ms": result.mean_latency * 1e3,
        }
        for spec, result in zip(specs, results)
    ]


def monitoring_view(
    worst_attack: int = 1,
    payload: int = 4096,
    scale: Optional[ScenarioScale] = None,
    f: int = 1,
) -> Dict[str, List[float]]:
    """Figs 9 and 11: per-node monitored throughput, master vs backups.

    Returns {node_name: [rate of instance 0, rate of instance 1, ...]}
    averaged over the post-warmup monitoring windows, for correct nodes.
    """
    scale = scale or current_scale()
    capacity = probe_capacity("rbft", payload, scale, f)
    deployment = make_deployment("rbft", payload, scale, f=f, n_clients=12)
    installer = (
        install_rbft_worst_attack_1
        if worst_attack == 1
        else install_rbft_worst_attack_2
    )
    handle = installer(deployment)
    generator = LoadGenerator(
        deployment.sim,
        deployment.clients,
        build_profile("static", 1.25 * capacity, scale.duration),
        deployment.rng.stream("load"),
        send_kwargs=getattr(handle, "client_send_kwargs", {}) or {},
    )
    generator.start()
    deployment.sim.run(until=scale.duration)
    faulty = set(node.name for node in handle.faulty_nodes)
    view: Dict[str, List[float]] = {}
    for node in deployment.nodes:
        if node.name in faulty:
            continue  # the paper omits the faulty node's (arbitrary) values
        rates = []
        for series in node.monitor.rate_series:
            samples = [r for t, r in series if t >= scale.warmup]
            rates.append(sum(samples) / len(samples) if samples else 0.0)
        view[node.name] = rates
    return view


def unfair_primary_run(
    lambda_max: float = 1.5e-3,
    payload: int = 4096,
    requests_per_client: int = 700,
    scale: Optional[ScenarioScale] = None,
) -> dict:
    """Fig 12: two clients; the master primary delays one of them.

    Phase 1 (first ~500 victim requests): fair.  Phase 2 (next ~500):
    the victim's requests are delayed so its latency rises but stays
    under Λ.  Then one request exceeds Λ and the nodes vote a protocol
    instance change; the new master primary is fair again.
    """
    from repro.faults import install_unfair_primary
    from repro.metrics import TimeSeries

    scale = scale or current_scale()
    config = RBFTConfig(
        f=1,
        batch_size=4,
        batch_delay=2e-4,
        monitoring_period=scale.monitoring_period,
        lambda_max=lambda_max,
    )
    deployment = protocol_registry.get("rbft").builder(
        config, n_clients=2, payload=payload
    )
    victim, other = deployment.clients[0], deployment.clients[1]

    def schedule(i: int) -> float:
        if i < 500:
            return 0.0
        if i < 1000:
            return 0.55e-3  # latency ~1.3 ms, still under Λ
        if i == 1000:
            return 1.1e-3  # one request beyond Λ = 1.5 ms
        return 0.0

    install_unfair_primary(deployment, victim.name, schedule)

    series = {victim.name: TimeSeries("attacked"), other.name: TimeSeries("other")}
    counters = {victim.name: 0, other.name: 0}

    for client in (victim, other):

        def record(latency, _client=client, _recorder=client.latencies):
            counters[_client.name] += 1
            series[_client.name].append(counters[_client.name], latency)
            _recorder.record(latency)

        # Re-route the latency recording to also keep per-request order.
        client.latencies = type(client.latencies)()
        client.latencies.record = record  # type: ignore[method-assign]

    sim = deployment.sim
    gap = 0.8e-3

    def run_client(client):
        for _ in range(requests_per_client + 400):
            client.send_request()
            yield sim.timeout(gap)

    sim.process(run_client(victim))
    sim.process(run_client(other))
    sim.run(until=(requests_per_client + 450) * gap)

    change_at = None
    for node in deployment.nodes:
        for t, reason in node.monitor.triggers:
            if reason == "latency-lambda":
                change_at = t if change_at is None else min(change_at, t)
    return {
        "series": series,
        "lambda_max": lambda_max,
        "instance_change_at": change_at,
        "instance_changes": deployment.nodes[1].instance_changes,
        "deployment": deployment,
    }


def table1(
    scale: Optional[ScenarioScale] = None, jobs: Optional[int] = None
) -> Dict[str, float]:
    """Table I: maximum throughput degradation of the three baselines.

    All three protocols' sweeps are enumerated up front and executed as
    one fan-out, so the pool sees the whole table's worth of runs.
    """
    from .parallel import execute_specs

    scale = scale or current_scale()
    protocols = ("prime", "aardvark", "spinning")
    specs = []
    for protocol in protocols:
        exec_cost = 1e-4 if protocol == "prime" else 20e-6
        specs.extend(
            _sweep_specs(protocol, scale, "default", 1, exec_cost)
        )
    results = execute_specs(specs, jobs=jobs)
    per_protocol = 4 * len(scale.sizes)
    degradations = {}
    for index, protocol in enumerate(protocols):
        rows = _sweep_rows(
            scale,
            results[index * per_protocol : (index + 1) * per_protocol],
        )
        worst = min(
            min(row["static_pct"], row["dynamic_pct"]) for row in rows
        )
        degradations[protocol] = 100.0 - worst
    return degradations
