"""Traced profiling runs: ``python -m repro.experiments profile <fig>``.

Each profiled figure re-runs a short version of the corresponding
scenario with a :class:`repro.trace.Tracer` attached to the simulator,
then renders the per-core utilization / bottleneck report from the
collected ``core.job`` spans.  This answers the question the paper's
§VI keeps asking — *which pinned core limits which protocol at which
request size* — directly from the reproduction, per run.
"""

from __future__ import annotations

from typing import Optional

from repro.clients import LoadGenerator, build_profile
from repro.trace import (
    K_CORE_JOB,
    K_INSTANCE_CHANGE,
    K_MONITOR_TICK,
    K_MONITOR_TRIGGER,
    K_PHASE,
    K_STAGE,
    K_VIEW_CHANGE,
    Tracer,
    export_jsonl,
    format_profile_report,
)

from .runner import ATTACK_INSTALLERS, make_deployment, probe_capacity
from .scale import SMOKE, ScenarioScale

__all__ = ["PROFILABLE", "PROFILE_KINDS", "profile_run", "profile_report"]

#: what the bottleneck report consumes; the very high-volume kinds
#: (per-message kernel dispatches and NIC reservations) are filtered at
#: the source so a saturating profile run stays within memory.
PROFILE_KINDS = frozenset({
    K_CORE_JOB,
    K_STAGE,
    K_MONITOR_TICK,
    K_MONITOR_TRIGGER,
    K_INSTANCE_CHANGE,
    K_PHASE,
    K_VIEW_CHANGE,
})

#: figure -> (protocol, attack, payload) of the profiled scenario.
PROFILABLE = {
    "fig7": ("rbft", None, 8),
    "fig8": ("rbft", "rbft-worst1", 8),
    "fig10": ("rbft", "rbft-worst2", 8),
}


def profile_run(
    fig: str,
    scale: Optional[ScenarioScale] = None,
    payload: Optional[int] = None,
    f: int = 1,
    seed: int = 0,
):
    """Run one figure's scenario with tracing on.

    Returns ``(tracer, deployment, duration)``; the trace covers the
    whole run including warm-up.  Defaults to the SMOKE scale — a short
    saturating window is all the bottleneck report needs.
    """
    try:
        protocol, attack, default_payload = PROFILABLE[fig]
    except KeyError:
        raise ValueError(
            "cannot profile %r; choose one of %s" % (fig, sorted(PROFILABLE))
        ) from None
    scale = scale or SMOKE
    payload = default_payload if payload is None else payload
    capacity = probe_capacity(protocol, payload, scale, f=f, seed=seed)
    deployment = make_deployment(protocol, payload, scale, f=f, seed=seed)
    send_kwargs = {}
    if attack is not None:
        handle = ATTACK_INSTALLERS[attack](deployment)
        send_kwargs = getattr(handle, "client_send_kwargs", {}) or {}
    tracer = Tracer(kinds=PROFILE_KINDS)
    deployment.sim.tracer = tracer
    generator = LoadGenerator(
        deployment.sim,
        deployment.clients,
        build_profile("static", 1.25 * capacity, scale.duration),
        deployment.rng.stream("load"),
        send_kwargs=send_kwargs,
    )
    generator.start()
    deployment.sim.run(until=scale.duration)
    return tracer, deployment, scale.duration


def profile_report(
    fig: str,
    scale: Optional[ScenarioScale] = None,
    payload: Optional[int] = None,
    f: int = 1,
    seed: int = 0,
    top: int = 16,
    trace_out: Optional[str] = None,
) -> str:
    """Profile ``fig`` and return the formatted per-core report."""
    tracer, deployment, duration = profile_run(
        fig, scale=scale, payload=payload, f=f, seed=seed
    )
    events = tracer.events()
    if trace_out:
        export_jsonl(events, trace_out)
    header = "profile %s — %d trace events over %.2f simulated s\n" % (
        fig,
        len(events),
        duration,
    )
    return header + format_profile_report(events, horizon=duration, top=top)
