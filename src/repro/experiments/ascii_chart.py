"""Terminal rendering of the paper's figures.

No plotting dependencies are available offline, so the CLI draws its
figures as ASCII scatter plots: good enough to eyeball the knee of a
latency/throughput curve or the step in the unfair-primary trace.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["scatter", "multi_scatter"]


def _scale(values: Sequence[float], cells: int) -> Tuple[float, float]:
    lo = min(values)
    hi = max(values)
    if hi == lo:
        hi = lo + 1.0
    return lo, (hi - lo) / max(1, cells - 1)


def scatter(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 16,
    marker: str = "o",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render (x, y) points as an ASCII plot."""
    return multi_scatter({marker: list(points)}, width, height, x_label, y_label)


def multi_scatter(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render several series, keyed by their single-character marker."""
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        return "(no data)"
    xs = [x for x, _ in all_points]
    ys = [y for _, y in all_points]
    x0, x_step = _scale(xs, width)
    y0, y_step = _scale(ys, height)

    grid = [[" "] * width for _ in range(height)]
    for marker, points in series.items():
        mark = (marker or "o")[0]
        for x, y in points:
            col = int(round((x - x0) / x_step))
            row = int(round((y - y0) / y_step))
            col = min(max(col, 0), width - 1)
            row = min(max(row, 0), height - 1)
            grid[height - 1 - row][col] = mark

    y_hi = y0 + y_step * (height - 1)
    lines = []
    if y_label:
        lines.append(y_label)
    for i, row in enumerate(grid):
        if i == 0:
            prefix = "%10.3g |" % y_hi
        elif i == height - 1:
            prefix = "%10.3g |" % y0
        else:
            prefix = "           |"
        lines.append(prefix + "".join(row))
    lines.append("           +" + "-" * width)
    x_hi = x0 + x_step * (width - 1)
    footer = "            %-.3g%s%.3g" % (x0, " " * max(1, width - 16), x_hi)
    lines.append(footer)
    if x_label:
        lines.append("            " + x_label.center(width))
    if len(series) > 1:
        legend = "   ".join("%s = %s" % (m[0], m) for m in series)
        lines.append("            " + legend)
    return "\n".join(lines)
