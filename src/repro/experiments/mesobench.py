"""Mesoscale benchmark + accuracy gate: ``bench meso``.

Where ``bench kernel`` measures raw dispatch and ``bench protocol`` the
per-message hot path, this benchmark measures what the **mesoscale
fast-forward** mode (docs/simulator.md, "Execution modes") buys on a
steady-state-heavy workload — and polices that the speed does not come
at the price of accuracy.

One fixed-seed, fixed-rate fig7-style workload (fault-free RBFT at a
pinned offered load, stretched to a long steady-state plateau) runs
twice:

* the **exact twin** — ``mode="exact"``, every event simulated; its
  event count is the amount of work a full-fidelity run represents;
* the **meso run** — ``mode="meso"``; the controller deletes the
  steady-state plateau and simulates only warmup, probe windows and the
  tail.

The headline ``events_per_sec`` is **effective**: the exact twin's
event count divided by the meso run's wall clock — how fast mesoscale
chews through full-fidelity work.  It is compared against the *fig7*
rate in ``benchmarks/kernel_baseline.json`` (the same steady-state
workload family measured when the baseline was recorded).

``--check`` gates on three things:

* the meso run actually fast-forwarded (``ff_time > 0``) and its wall
  clock beat the exact twin by at least ``MESO_SPEEDUP_FLOOR``;
* effective events/sec is at least ``MESO_SPEEDUP_FLOOR`` × the
  baseline's fig7 events/sec;
* accuracy: meso throughput within ``THROUGHPUT_TOLERANCE``, mean
  latency within ``LATENCY_TOLERANCE`` and p99 latency within
  ``P99_TOLERANCE`` of the exact twin (relative).
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional, Tuple

from .benchutil import host_fingerprint, warn_on_foreign_baseline
from .scale import SMOKE

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "MESO_SPEEDUP_FLOOR",
    "THROUGHPUT_TOLERANCE",
    "LATENCY_TOLERANCE",
    "P99_TOLERANCE",
    "run_meso_bench",
    "write_meso_bench",
]

#: compared against the *kernel* baseline: effective events/sec must
#: beat the fig7 rate recorded there (the same workload family).
DEFAULT_BASELINE_PATH = os.path.join("benchmarks", "kernel_baseline.json")

#: the meso mode must at least double throughput on steady-state-heavy
#: workloads — both against the exact twin's wall clock on this machine
#: and against the baseline's fig7 events/sec.
MESO_SPEEDUP_FLOOR = 2.0

#: relative accuracy tolerances of the meso run against its exact twin
#: (documented in docs/simulator.md; the measured errors are well under
#: 1 %, the gates catch a broken detector, not percent drift).
THROUGHPUT_TOLERANCE = 0.05
LATENCY_TOLERANCE = 0.10
P99_TOLERANCE = 0.15

#: fixed workload — same protocol/rate family as ``bench kernel``'s
#: fig7 point, stretched so steady state dominates the run.
MESO_RATE = 18_000.0
MESO_DURATION = 2.4
MESO_WARMUP = 0.3
MESO_SEED = 0


def _meso_point(mode: str) -> Tuple[object, float]:
    """One run of the workload; return (RunResult, wall clock)."""
    from repro.clients import Workload

    from .scenario import Scenario, run

    scenario = Scenario(
        protocol="rbft",
        payload=8,
        workload=Workload("static", rate=MESO_RATE, population=False),
        seed=MESO_SEED,
        scale=SMOKE,
        duration=MESO_DURATION,
        warmup=MESO_WARMUP,
        mode=mode,
    )
    start = time.perf_counter()
    result = run(scenario)
    wall = time.perf_counter() - start
    return result, wall


def _load_baseline(path: Optional[str]) -> Optional[dict]:
    if not path or not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as fileobj:
            return json.load(fileobj)
    except (OSError, ValueError):
        return None


def _rel_err(got: float, want: float) -> float:
    if want == 0.0:
        return 0.0 if got == 0.0 else float("inf")
    return abs(got - want) / abs(want)


def run_meso_bench(repeat: int = 2, baseline_path: Optional[str] = None) -> dict:
    """Run exact twin + meso run ``repeat`` times; keep the best walls.

    Both modes are deterministic given the scenario, so event counts
    (and every measured rate) must be identical across repeats — a
    varying count means determinism broke in that mode.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    exact, exact_wall = _meso_point("exact")
    meso, meso_wall = _meso_point("meso")
    for _ in range(repeat - 1):
        again, wall = _meso_point("exact")
        if again.events != exact.events:
            raise RuntimeError(
                "exact twin dispatched %d events, expected %d — "
                "determinism broke" % (again.events, exact.events)
            )
        exact_wall = min(exact_wall, wall)
        again, wall = _meso_point("meso")
        if again.events != meso.events:
            raise RuntimeError(
                "meso run dispatched %d events, expected %d — meso "
                "determinism broke" % (again.events, meso.events)
            )
        meso_wall = min(meso_wall, wall)

    effective_eps = exact.events / meso_wall if meso_wall > 0 else 0.0
    record = {
        "schema": "rbft-bench-meso/1",
        "repeat": repeat,
        "seed": MESO_SEED,
        "host": host_fingerprint(),
        # Headline: full-fidelity work per wall-clock second of meso.
        "events_per_sec": round(effective_eps, 1),
        "wall_clock_s": round(exact_wall + meso_wall, 4),
        "meso_speedup": round(
            exact_wall / meso_wall if meso_wall > 0 else 0.0, 3
        ),
        "workload": {
            "protocol": "rbft",
            "offered_rps": MESO_RATE,
            "duration_s": MESO_DURATION,
            "warmup_s": MESO_WARMUP,
        },
        "exact": {
            "events": exact.events,
            "wall_clock_s": round(exact_wall, 4),
            "events_per_sec": round(
                exact.events / exact_wall if exact_wall > 0 else 0.0, 1
            ),
            "throughput_rps": round(exact.executed_rate, 1),
            "mean_latency_ms": round(exact.mean_latency * 1e3, 4),
            "p99_latency_ms": round(exact.p99_latency * 1e3, 4),
        },
        "meso": {
            "events": meso.events,
            "wall_clock_s": round(meso_wall, 4),
            "ff_time_s": round(meso.ff_time, 4),
            "ff_windows": meso.ff_windows,
            "fallback": meso.meso_fallback,
            "throughput_rps": round(meso.executed_rate, 1),
            "mean_latency_ms": round(meso.mean_latency * 1e3, 4),
            "p99_latency_ms": round(meso.p99_latency * 1e3, 4),
        },
        "accuracy": {
            "throughput_rel_err": round(
                _rel_err(meso.executed_rate, exact.executed_rate), 5
            ),
            "mean_latency_rel_err": round(
                _rel_err(meso.mean_latency, exact.mean_latency), 5
            ),
            "p99_latency_rel_err": round(
                _rel_err(meso.p99_latency, exact.p99_latency), 5
            ),
            "throughput_tolerance": THROUGHPUT_TOLERANCE,
            "mean_latency_tolerance": LATENCY_TOLERANCE,
            "p99_latency_tolerance": P99_TOLERANCE,
        },
    }
    baseline = _load_baseline(baseline_path)
    fig7_base = (baseline or {}).get("fig7", {}).get("events_per_sec")
    if fig7_base:
        record["baseline"] = {
            "path": baseline_path,
            "fig7_events_per_sec": fig7_base,
            "recorded": baseline.get("recorded", "pre-fast-path kernel"),
        }
        record["speedup"] = round(effective_eps / fig7_base, 3)
    return record


def check_regression(record: dict) -> Optional[str]:
    """Return a violation message when the meso gate fails, else None."""
    meso = record["meso"]
    if meso.get("fallback"):
        return "meso run fell back to exact: %s" % meso["fallback"]
    if meso.get("ff_time_s", 0.0) <= 0.0:
        return "meso run never fast-forwarded (steady state not detected)"
    accuracy = record["accuracy"]
    for key, tolerance in (
        ("throughput", THROUGHPUT_TOLERANCE),
        ("mean_latency", LATENCY_TOLERANCE),
        ("p99_latency", P99_TOLERANCE),
    ):
        err = accuracy["%s_rel_err" % key]
        if err > tolerance:
            return (
                "meso %s diverged %.1f%% from the exact twin "
                "(tolerance %.0f%%)" % (key, err * 100, tolerance * 100)
            )
    if record["meso_speedup"] < MESO_SPEEDUP_FLOOR:
        return (
            "meso wall-clock speedup %.2fx below the %.1fx floor "
            "(exact twin %.2fs vs meso %.2fs)"
            % (
                record["meso_speedup"],
                MESO_SPEEDUP_FLOOR,
                record["exact"]["wall_clock_s"],
                record["meso"]["wall_clock_s"],
            )
        )
    speedup = record.get("speedup")
    if speedup is not None and speedup < MESO_SPEEDUP_FLOOR:
        return (
            "effective events/sec %.0f is only %.2fx the baseline fig7 "
            "rate (floor %.1fx)"
            % (record["events_per_sec"], speedup, MESO_SPEEDUP_FLOOR)
        )
    return None


def write_meso_bench(
    output: str = "BENCH_meso.json",
    baseline_path: Optional[str] = DEFAULT_BASELINE_PATH,
    repeat: int = 2,
    check: bool = False,
) -> int:
    """Run, write the artifact, print a summary; non-zero on gate failure."""
    record = run_meso_bench(repeat=repeat, baseline_path=baseline_path)
    if check:
        warn_on_foreign_baseline(record, _load_baseline(baseline_path))
    violation = check_regression(record) if check else None
    record["violations"] = [violation] if violation else []
    with open(output, "w", encoding="utf-8") as fileobj:
        json.dump(record, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    speedup = record.get("speedup")
    print(
        "bench meso: %.0f effective events/s | meso %.2fx vs exact twin | "
        "ff %.2fs/%d jumps | tp err %.2f%% lat err %.2f%%%s -> %s"
        % (
            record["events_per_sec"],
            record["meso_speedup"],
            record["meso"]["ff_time_s"],
            record["meso"]["ff_windows"],
            record["accuracy"]["throughput_rel_err"] * 100,
            record["accuracy"]["mean_latency_rel_err"] * 100,
            " | %.2fx vs baseline fig7" % speedup if speedup else "",
            output,
        )
    )
    if violation:
        print("BENCH REGRESSION: %s" % violation)
        return 1
    return 0
