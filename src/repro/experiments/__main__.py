"""Entry point: ``python -m repro.experiments <table1|fig1..fig12>``."""

import sys

from .cli import main

sys.exit(main())
