"""The stable experiment entry point: :class:`Scenario` + :func:`run`.

One frozen dataclass captures everything that determines a simulated
run — protocol variant, scale, attack, workload, seed, link profile —
and one function executes it:

    >>> from repro.experiments import Scenario, run
    >>> result = run(Scenario(protocol="rbft", attack="rbft-worst1"))
    >>> result.executed_rate  # doctest: +SKIP
    31519.3

What load to offer is a first-class value: ``workload`` takes a
:class:`~repro.clients.registry.Workload` (or a bare pack name such as
``"diurnal"``) resolved through the workload registry.  Packs that
declare large populations (the day-in-the-life workloads default to
10^6 clients) aggregate into a single
:class:`~repro.clients.population.ClientPopulation` event source;
small counts explode into real per-client objects exactly as before,
so every pre-existing seeded run is byte-identical.

A :class:`Scenario` is hashable and picklable, so it doubles as a cache
key and travels across the process-parallel fan-out unchanged.  Runs
are deterministic given the scenario: two calls with the same value
produce byte-identical :class:`~repro.experiments.runner.RunResult`\\ s
(and identical ``repro.verify`` invariant digests).

This is the **only** run path the experiment modules use internally;
the legacy ``load``/``rate``/``n_clients`` scenario fields (and the
``run_static``/``run_dynamic`` functions) are deprecated shims that
fold into a :class:`Workload` and delegate here.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.clients import POPULATION_THRESHOLD, Workload
from repro.clients import registry as workload_registry
from repro.net.network import LinkProfile
from repro.net.topology import Topology

from .scale import ScenarioScale, current_scale

__all__ = ["Scenario", "run"]

#: legacy load-profile shapes the deprecated ``load`` field accepts.
_LOADS = ("static", "dynamic")

#: execution modes a scenario can request.
_MODES = ("exact", "meso")


@dataclass(frozen=True)
class Scenario:
    """One fully specified simulated run.

    ``workload`` names the traffic model: a registered pack name
    (``"static"``, ``"spike"``, ``"diurnal"``, ``"flash-crowd"``,
    ``"churn"``, ``"heavy-mix"``) or a full
    :class:`~repro.clients.registry.Workload` value carrying the
    offered rate and declared client count.  ``Workload(rate=None)``
    derives the rate from a capacity probe exactly like the paper's
    experiments: static loads offer 1.25 × the probed capacity, spike
    loads give each client capacity/12 (≈ 83 % of capacity from the ten
    steady clients).  Probes always measure the **flat LAN**, so
    topology scenarios must carry an explicit rate (enforced with a
    ``ValueError``).

    The ``load``/``rate``/``n_clients`` fields are deprecated: they
    fold into an equivalent :class:`Workload` with a
    ``DeprecationWarning``.
    """

    protocol: str
    payload: int = 8
    #: deprecated — use ``workload=Workload(shape)`` instead.
    load: Optional[str] = None
    #: deprecated — use ``workload=Workload(rate=...)`` instead.
    rate: Optional[float] = None
    attack: Optional[str] = None
    f: int = 1
    seed: int = 0
    exec_cost: float = 20e-6
    scale: Optional[ScenarioScale] = None
    link: Optional[LinkProfile] = None
    #: geo-distributed layout (see :mod:`repro.net.topology`); ``None``
    #: keeps the flat Gigabit LAN of the paper's testbed.
    topology: Optional[Topology] = None
    #: deprecated — use ``workload=Workload(clients=...)`` instead.
    n_clients: Optional[int] = None
    #: measurement-window overrides; None uses the scale's values
    #: (whole-run workloads — spike, diurnal, flash-crowd — always
    #: measure the whole run, as in §VI-A).
    duration: Optional[float] = None
    warmup: Optional[float] = None
    #: attach a ``pbft.log-size`` gauge watch and report the peak
    #: per-instance protocol-log size in ``RunResult.peak_log_size``
    #: (the soak harness's bounded-memory assertion).  Tracing stays
    #: off — and the result byte-identical — when False.
    track_log_sizes: bool = False
    #: execution mode: "exact" (the default — every event simulated,
    #: seeded runs byte-identical) or "meso" (opt-in mesoscale
    #: fast-forward of fault-free steady-state windows; an approximation
    #: with its own determinism, see docs/simulator.md).  A "meso"
    #: scenario that is ineligible — attack armed, tracing attached,
    #: non-fast-forwardable protocol — silently runs exact and records
    #: the reason in ``RunResult.meso_fallback``.
    mode: str = "exact"
    #: the traffic model (a pack name or a Workload value); ``None``
    #: means the default static workload.
    workload: Optional[Union[str, Workload]] = None

    def __post_init__(self):
        if self.mode not in _MODES:
            raise ValueError(
                "unknown mode %r (expected one of %s)" % (self.mode, _MODES)
            )
        workload = self.workload
        if (
            self.load is not None
            or self.rate is not None
            or self.n_clients is not None
        ):
            if workload is not None:
                raise ValueError(
                    "pass either workload=... or the deprecated "
                    "load/rate/n_clients fields, not both"
                )
            load = "static" if self.load is None else self.load
            if load not in _LOADS:
                raise ValueError(
                    "unknown load %r (expected one of %s)" % (load, _LOADS)
                )
            warnings.warn(
                "Scenario's load/rate/n_clients fields are deprecated; "
                "pass workload=Workload(%r, rate=..., clients=...) instead"
                % ("spike" if load == "dynamic" else "static",),
                DeprecationWarning,
                stacklevel=3,
            )
            workload = Workload(
                shape="spike" if load == "dynamic" else "static",
                rate=self.rate,
                clients=self.n_clients,
                # The legacy fields always exploded real client objects,
                # whatever the count — keep that behaviour bit-for-bit.
                population=False,
            )
            # Fold the shim fields away so equality, hashing and
            # re-normalisation (pickle, ``with_``) see one canonical
            # form and never re-warn.
            object.__setattr__(self, "load", None)
            object.__setattr__(self, "rate", None)
            object.__setattr__(self, "n_clients", None)
        elif workload is None:
            workload = Workload()
        elif isinstance(workload, str):
            workload = Workload(shape=workload)
        object.__setattr__(self, "workload", workload)

    def with_(self, **changes) -> "Scenario":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def run(self):
        """Execute this scenario; see :func:`run`."""
        return run(self)


def _resolved_rate(
    scenario: Scenario, spec, scale: ScenarioScale
) -> float:
    from .runner import probe_capacity

    workload = scenario.workload
    if workload.rate is not None:
        return workload.rate
    if scenario.topology is not None:
        # A capacity probe always measures the flat LAN — silently using
        # it would size a WAN run against the wrong network entirely.
        raise ValueError(
            "rate=None cannot be probed for a topology scenario: capacity "
            "probes measure the flat LAN; pass an explicit Workload rate"
        )
    capacity = probe_capacity(
        scenario.protocol, scenario.payload, scale, scenario.f,
        scenario.exec_cost, scenario.seed,
    )
    return spec.probe_rate(capacity)


def run(scenario: Scenario):
    """Execute one scenario and return its :class:`RunResult`."""
    from repro.clients import ClientPopulation

    from .runner import (
        ATTACK_INSTALLERS,
        _attack_for,
        _execute_run,
        make_deployment,
    )

    scale = scenario.scale or current_scale()
    workload = scenario.workload
    spec = workload_registry.get(workload.shape)
    rate = _resolved_rate(scenario, spec, scale)
    declared = (
        spec.default_clients(scenario.payload)
        if workload.clients is None
        else workload.clients
    )
    duration = scale.duration if scenario.duration is None else scenario.duration
    if spec.whole_run:
        # "When the load is dynamic, we consider the average throughput
        # observed on the whole experiment" (§VI-A): no warm-up cut for
        # workloads whose shape spans the run.
        warmup = 0.0 if scenario.warmup is None else scenario.warmup
    else:
        warmup = scale.warmup if scenario.warmup is None else scenario.warmup
    profile = spec.profile_factory(rate, duration, scenario.payload, declared)
    offered = profile.mean_rate() if spec.whole_run else rate

    aggregate = (
        declared >= POPULATION_THRESHOLD
        if workload.population is None
        else workload.population
    )
    clients_factory = None
    n_clients = declared
    if aggregate:
        sampling = workload.sampling

        def clients_factory(cluster, payload):
            return ClientPopulation(
                cluster, declared, payload_size=payload, sampling=sampling
            )

        n_clients = 0

    deployment = make_deployment(
        scenario.protocol, scenario.payload, scale, f=scenario.f,
        seed=scenario.seed, exec_cost=scenario.exec_cost,
        n_clients=n_clients, link=scenario.link, topology=scenario.topology,
        clients_factory=clients_factory,
    )
    watch = None
    if scenario.track_log_sizes:
        from repro.trace import Tracer
        from repro.trace.events import K_LOG_SIZE
        from repro.trace.gauge import LogSizeWatch

        # Source-filtered to the gauge kind: emissions never schedule
        # simulator events, so the run's dispatch sequence — and with it
        # every seeded result — is unchanged by watching.
        watch = LogSizeWatch()
        deployment.sim.tracer = Tracer(
            sink=watch, kinds=frozenset({K_LOG_SIZE})
        )
    send_kwargs = {}
    faulty_nodes = None
    attack_name = _attack_for(scenario.protocol, scenario.attack)
    if attack_name is not None:
        handle = ATTACK_INSTALLERS[attack_name](deployment)
        send_kwargs = getattr(handle, "client_send_kwargs", {}) or {}
        faulty_nodes = getattr(handle, "faulty_nodes", None)
        if faulty_nodes is None and attack_name in (
            "prime", "aardvark", "spinning"
        ):
            faulty_nodes = [deployment.nodes[0]]
    meso_config = None
    meso_fallback = None
    if scenario.mode == "meso":
        from .meso import MesoConfig, eligibility

        if attack_name is not None:
            meso_fallback = "attack %r armed" % attack_name
        else:
            meso_fallback = eligibility(deployment, profile)
        if meso_fallback is None:
            meso_config = MesoConfig()
    result = _execute_run(
        deployment,
        profile,
        duration=duration,
        warmup=warmup,
        send_kwargs=send_kwargs,
        faulty_nodes=faulty_nodes,
        meso=meso_config,
    )
    result.meso_fallback = meso_fallback
    result.protocol = scenario.protocol
    result.payload = scenario.payload
    result.offered_rate = offered
    result.workload = workload.shape
    result.declared_clients = declared
    if watch is not None:
        from repro.trace.gauge import collect_final

        collect_final(watch, deployment.nodes)
        result.peak_log_size = watch.peak("total")
    return result
