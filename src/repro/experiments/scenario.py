"""The stable experiment entry point: :class:`Scenario` + :func:`run`.

One frozen dataclass captures everything that determines a simulated
run — protocol variant, scale, attack, load profile, seed, link
profile — and one function executes it:

    >>> from repro.experiments import Scenario, run
    >>> result = run(Scenario(protocol="rbft", attack="rbft-worst1"))
    >>> result.executed_rate  # doctest: +SKIP
    31519.3

A :class:`Scenario` is hashable and picklable, so it doubles as a cache
key and travels across the process-parallel fan-out unchanged.  Runs
are deterministic given the scenario: two calls with the same value
produce byte-identical :class:`~repro.experiments.runner.RunResult`\\ s
(and identical ``repro.verify`` invariant digests).

This is the **only** run path the experiment modules use internally;
the legacy ``run_static`` / ``run_dynamic`` functions are deprecated
shims that build a :class:`Scenario` and delegate here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.clients import dynamic_profile, static_profile
from repro.net.network import LinkProfile
from repro.net.topology import Topology

from .scale import ScenarioScale, current_scale

__all__ = ["Scenario", "run"]

#: load-profile shapes a scenario can request.
_LOADS = ("static", "dynamic")

#: execution modes a scenario can request.
_MODES = ("exact", "meso")


@dataclass(frozen=True)
class Scenario:
    """One fully specified simulated run.

    ``rate=None`` means "derive from a capacity probe" exactly like the
    paper's experiments: static loads offer 1.25 × the probed capacity,
    dynamic loads give each client capacity/12 (≈ 83 % of capacity from
    the ten steady clients).  For ``load="static"`` an explicit ``rate``
    is the total offered requests/second; for ``load="dynamic"`` it is
    the per-client rate of the spike profile (§VI-A).
    """

    protocol: str
    payload: int = 8
    load: str = "static"
    rate: Optional[float] = None
    attack: Optional[str] = None
    f: int = 1
    seed: int = 0
    exec_cost: float = 20e-6
    scale: Optional[ScenarioScale] = None
    link: Optional[LinkProfile] = None
    #: geo-distributed layout (see :mod:`repro.net.topology`); ``None``
    #: keeps the flat Gigabit LAN of the paper's testbed.  Capacity
    #: probes (``rate=None``) always measure the flat LAN — WAN
    #: scenarios should pass an explicit ``rate``.
    topology: Optional[Topology] = None
    #: client population; None picks the load shape's default (12 for
    #: static, the spike population for dynamic).
    n_clients: Optional[int] = None
    #: measurement-window overrides; None uses the scale's values
    #: (dynamic loads always measure the whole run, as in §VI-A).
    duration: Optional[float] = None
    warmup: Optional[float] = None
    #: attach a ``pbft.log-size`` gauge watch and report the peak
    #: per-instance protocol-log size in ``RunResult.peak_log_size``
    #: (the soak harness's bounded-memory assertion).  Tracing stays
    #: off — and the result byte-identical — when False.
    track_log_sizes: bool = False
    #: execution mode: "exact" (the default — every event simulated,
    #: seeded runs byte-identical) or "meso" (opt-in mesoscale
    #: fast-forward of fault-free steady-state windows; an approximation
    #: with its own determinism, see docs/simulator.md).  A "meso"
    #: scenario that is ineligible — attack armed, tracing attached,
    #: non-fast-forwardable protocol — silently runs exact and records
    #: the reason in ``RunResult.meso_fallback``.
    mode: str = "exact"

    def __post_init__(self):
        if self.load not in _LOADS:
            raise ValueError(
                "unknown load %r (expected one of %s)" % (self.load, _LOADS)
            )
        if self.mode not in _MODES:
            raise ValueError(
                "unknown mode %r (expected one of %s)" % (self.mode, _MODES)
            )

    def with_(self, **changes) -> "Scenario":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def run(self):
        """Execute this scenario; see :func:`run`."""
        return run(self)


def _resolved_rate(scenario: Scenario, scale: ScenarioScale) -> float:
    from .runner import probe_capacity

    if scenario.rate is not None:
        return scenario.rate
    capacity = probe_capacity(
        scenario.protocol, scenario.payload, scale, scenario.f,
        scenario.exec_cost, scenario.seed,
    )
    if scenario.load == "static":
        return 1.25 * capacity
    return capacity / 12.0  # 10 clients ≈ 83 % of capacity


def run(scenario: Scenario):
    """Execute one scenario and return its :class:`RunResult`."""
    from .runner import (
        ATTACK_INSTALLERS,
        _attack_for,
        _execute_run,
        make_deployment,
    )

    scale = scenario.scale or current_scale()
    rate = _resolved_rate(scenario, scale)
    if scenario.load == "static":
        n_clients = 12 if scenario.n_clients is None else scenario.n_clients
        duration = scale.duration if scenario.duration is None else scenario.duration
        warmup = scale.warmup if scenario.warmup is None else scenario.warmup
        profile = static_profile(rate, duration)
        offered = rate
    else:
        # §VI-A: "similar workloads have been used for the other request
        # sizes with possibly fewer clients as the peak throughput has
        # been reached with fewer clients" — large payloads spike less
        # violently.
        spike_clients = 50 if scenario.payload <= 512 else 18
        n_clients = spike_clients if scenario.n_clients is None else scenario.n_clients
        duration = scale.duration if scenario.duration is None else scenario.duration
        # "When the load is dynamic, we consider the average throughput
        # observed on the whole experiment" (§VI-A): no warm-up cut.
        warmup = 0.0 if scenario.warmup is None else scenario.warmup
        profile = dynamic_profile(rate, duration, spike_clients=spike_clients)
        offered = profile.mean_rate()

    deployment = make_deployment(
        scenario.protocol, scenario.payload, scale, f=scenario.f,
        seed=scenario.seed, exec_cost=scenario.exec_cost,
        n_clients=n_clients, link=scenario.link, topology=scenario.topology,
    )
    watch = None
    if scenario.track_log_sizes:
        from repro.trace import Tracer
        from repro.trace.events import K_LOG_SIZE
        from repro.trace.gauge import LogSizeWatch

        # Source-filtered to the gauge kind: emissions never schedule
        # simulator events, so the run's dispatch sequence — and with it
        # every seeded result — is unchanged by watching.
        watch = LogSizeWatch()
        deployment.sim.tracer = Tracer(
            sink=watch, kinds=frozenset({K_LOG_SIZE})
        )
    send_kwargs = {}
    faulty_nodes = None
    attack_name = _attack_for(scenario.protocol, scenario.attack)
    if attack_name is not None:
        handle = ATTACK_INSTALLERS[attack_name](deployment)
        send_kwargs = getattr(handle, "client_send_kwargs", {}) or {}
        faulty_nodes = getattr(handle, "faulty_nodes", None)
        if faulty_nodes is None and attack_name in (
            "prime", "aardvark", "spinning"
        ):
            faulty_nodes = [deployment.nodes[0]]
    meso_config = None
    meso_fallback = None
    if scenario.mode == "meso":
        from .meso import MesoConfig, eligibility

        if attack_name is not None:
            meso_fallback = "attack %r armed" % attack_name
        else:
            meso_fallback = eligibility(deployment, profile)
        if meso_fallback is None:
            meso_config = MesoConfig()
    result = _execute_run(
        deployment,
        profile,
        duration=duration,
        warmup=warmup,
        send_kwargs=send_kwargs,
        faulty_nodes=faulty_nodes,
        meso=meso_config,
    )
    result.meso_fallback = meso_fallback
    result.protocol = scenario.protocol
    result.payload = scenario.payload
    result.offered_rate = offered
    if watch is not None:
        from repro.trace.gauge import collect_final

        collect_final(watch, deployment.nodes)
        result.peak_log_size = watch.peak("total")
    return result
