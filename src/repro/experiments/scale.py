"""Experiment scaling.

Every benchmark runs at one of two scales:

* **QUICK** (default) — short simulated windows and a reduced request-size
  sweep, so the whole benchmark suite finishes in minutes;
* **FULL** (``RBFT_FULL=1``) — longer windows and the paper's full sweep,
  for lower-variance numbers.

Both scales exercise identical code paths; only durations, sweep density
and monitoring cadences change.

A third scale, **SMOKE**, is not selectable via the environment: it is
the fixed contract of ``python -m repro.experiments smoke`` (the CI
benchmark gate), kept deliberately tiny so every push pays seconds, not
minutes, and kept *stable* so ``BENCH_smoke.json`` files are comparable
across commits.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

__all__ = ["ScenarioScale", "QUICK", "FULL", "SMOKE", "current_scale"]


@dataclass(frozen=True)
class ScenarioScale:
    """Durations and sweep densities for one benchmark run."""

    name: str
    duration: float  # simulated seconds per attack/throughput run
    warmup: float  # measurement starts after this much simulated time
    probe_duration: float  # capacity-probe run length
    sizes: Tuple[int, ...]  # request payload sizes swept (bytes)
    rate_points: int  # points on each latency/throughput curve
    monitoring_period: float  # RBFT monitoring window
    aardvark_grace: float  # Aardvark grace period (paper: 5 s)
    aardvark_period: float  # Aardvark requirement-raise period


QUICK = ScenarioScale(
    name="quick",
    duration=1.2,
    warmup=0.3,
    probe_duration=0.4,
    sizes=(8, 1024, 4096),
    rate_points=6,
    monitoring_period=0.15,
    aardvark_grace=0.35,
    aardvark_period=0.05,
)

SMOKE = ScenarioScale(
    name="smoke",
    duration=0.6,
    warmup=0.15,
    probe_duration=0.25,
    sizes=(8,),
    rate_points=3,
    monitoring_period=0.12,
    aardvark_grace=0.35,
    aardvark_period=0.05,
)

FULL = ScenarioScale(
    name="full",
    duration=4.0,
    warmup=0.8,
    probe_duration=0.8,
    sizes=(8, 512, 1024, 2048, 3072, 4096),
    rate_points=10,
    monitoring_period=0.25,
    aardvark_grace=0.8,
    aardvark_period=0.08,
)


def current_scale() -> ScenarioScale:
    """FULL when RBFT_FULL is set in the environment, QUICK otherwise."""
    return FULL if os.environ.get("RBFT_FULL") else QUICK
