"""Scale-out benchmark: ``python -m repro.experiments bench scale``.

Where ``bench protocol`` pins the per-message hot path at the paper's
n = 4 testbed, this benchmark measures how the simulator — and each
protocol's quadratic certificate traffic — holds up as the replica
count grows into the hundreds: the regime the topology layer and the
vectorised quorum/vote tracking were built for.

Every registry protocol is run at a fixed ladder of cluster sizes
(n = 3f + 1 for f in the ladder), each point a fixed-seed, fixed-rate
scenario (no capacity probes, so event counts are identical on every
machine and across refactors).  The artifact is a **kreq/s-vs-n curve
per protocol** plus one geo-distributed point (RBFT on the ``wan3``
topology) pinning WAN determinism.  PBFT and Spinning climb to
n = 148 (f = 49) — the "hundreds of replicas" acceptance point — and
so does RBFT: above the pacing threshold its backup instances'
certificate traffic is coalesced into per-window envelopes
(``RBFTConfig.batching_active``), which keeps the (f+1)-instance
ladder inside the CI wall-clock budget.

Every point records the pacing/batching **tier** it ran under
("exact", "paced" or "batched", see ``RBFTConfig.pacing_tier``), and
``--check`` treats tier drift like any other seeded drift — the
identity gates cannot silently start comparing a batched run against
an exact baseline.

``--check`` turns the benchmark into a CI gate with the same two
failure modes as ``bench protocol``: events/sec below the tolerance
floor (a lost optimisation), and drift in any deterministic per-point
number (events, completed requests, throughput, tier) — those are pure
functions of the seed, so any difference from the checked-in baseline
(``benchmarks/scale_baseline.json``) means seeded behaviour changed.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

from .benchutil import host_fingerprint, warn_on_foreign_baseline
from .scale import SMOKE

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "REGRESSION_TOLERANCE",
    "SCALE_POINTS",
    "run_scale_bench",
    "write_scale_bench",
]

DEFAULT_BASELINE_PATH = os.path.join("benchmarks", "scale_baseline.json")

#: CI fails when events/sec drops more than this fraction below baseline.
REGRESSION_TOLERANCE = 0.20

BENCH_SEED = 7
WARMUP = 0.05
N_CLIENTS = 4

#: (protocol, f, offered rps, measured duration) — fixed loads sized so
#: each point saturates without the wall clock exploding; durations
#: shrink as n² message costs grow.  RBFT pays (f+1)× the certificate
#: traffic of its peers up to f = 21; its f = 33 and f = 49 rungs run
#: on the batched tier, where backup-instance certificates coalesce
#: into per-window envelopes.
SCALE_POINTS = (
    ("pbft", 1, 2000.0, 0.30),
    ("pbft", 5, 1000.0, 0.30),
    ("pbft", 21, 500.0, 0.20),
    ("pbft", 49, 400.0, 0.15),
    ("spinning", 1, 2000.0, 0.30),
    ("spinning", 5, 1000.0, 0.30),
    ("spinning", 21, 500.0, 0.20),
    ("spinning", 49, 400.0, 0.15),
    ("aardvark", 1, 2000.0, 0.30),
    ("aardvark", 5, 1000.0, 0.30),
    ("aardvark", 21, 500.0, 0.20),
    ("prime", 1, 2000.0, 0.30),
    ("prime", 5, 1000.0, 0.30),
    ("prime", 21, 500.0, 0.20),
    ("rbft", 1, 2000.0, 0.30),
    ("rbft", 5, 1000.0, 0.30),
    ("rbft", 21, 500.0, 0.15),
    ("rbft", 33, 450.0, 0.15),
    ("rbft", 49, 400.0, 0.15),
)

#: the geo-distributed pin: RBFT spread across three regions.
WAN_POINT = ("rbft", 1, 1000.0, 0.30)
WAN_PACK = "wan3"


def _pacing_tier(protocol: str, f: int) -> str:
    """Which pacing/batching tier this ladder point runs under.

    RBFT-family configs expose ``pacing_tier``; the single-instance
    protocols have no pacing regimes and always run exact.
    """
    from repro.protocols import registry

    config = registry.get(protocol).config_factory(f, SMOKE)
    return getattr(config, "pacing_tier", "exact")


def _scale_point(
    protocol: str, f: int, rate: float, duration: float, topology=None
) -> dict:
    """One fixed-rate run; returns the per-point artifact entry."""
    from repro.clients import Workload

    from .scenario import Scenario, run

    scenario = Scenario(
        protocol=protocol,
        f=f,
        workload=Workload(
            "static", rate=rate, clients=N_CLIENTS, population=False
        ),
        seed=BENCH_SEED,
        scale=SMOKE,
        duration=duration,
        warmup=WARMUP,
        topology=topology,
    )
    start = time.perf_counter()
    result = run(scenario)
    wall = time.perf_counter() - start
    return {
        "f": f,
        "n": 3 * f + 1,
        "offered_rps": rate,
        "throughput_rps": round(result.executed_rate, 1),
        "kreq_per_sec": round(result.executed_rate / 1000.0, 3),
        "completed": result.completed,
        "events": result.events,
        "wall_clock_s": round(wall, 4),
        "tier": _pacing_tier(protocol, f),
    }


def _load_baseline(path: Optional[str]) -> Optional[dict]:
    if not path or not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as fileobj:
            return json.load(fileobj)
    except (OSError, ValueError):
        return None


def run_scale_bench(
    repeat: int = 1, baseline_path: Optional[str] = None
) -> dict:
    """Run every ladder point ``repeat`` times; keep the best wall clock.

    Event counts must be identical across repeats — a varying count
    means the benchmark (or the simulator's determinism) broke.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    from repro.net.topology import named

    curves: dict = {}
    for protocol, f, rate, duration in SCALE_POINTS:
        point = _scale_point(protocol, f, rate, duration)
        for _ in range(repeat - 1):
            again = _scale_point(protocol, f, rate, duration)
            if again["events"] != point["events"]:
                raise RuntimeError(
                    "%s f=%d dispatched %d events, expected %d — scale "
                    "determinism broke"
                    % (protocol, f, again["events"], point["events"])
                )
            if again["wall_clock_s"] < point["wall_clock_s"]:
                point["wall_clock_s"] = again["wall_clock_s"]
        curves.setdefault(protocol, []).append(point)

    protocol, f, rate, duration = WAN_POINT
    wan = _scale_point(protocol, f, rate, duration, topology=named(WAN_PACK))
    wan["protocol"] = protocol
    wan["topology"] = WAN_PACK

    points = [p for curve in curves.values() for p in curve] + [wan]
    total_events = sum(p["events"] for p in points)
    total_wall = sum(p["wall_clock_s"] for p in points)
    eps = total_events / total_wall if total_wall > 0 else 0.0

    record = {
        "schema": "rbft-bench-scale/1",
        "repeat": repeat,
        "seed": BENCH_SEED,
        "host": host_fingerprint(),
        # Headline: combined dispatch rate across the whole ladder.
        "events_per_sec": round(eps, 1),
        "wall_clock_s": round(total_wall, 4),
        "max_n": max(p["n"] for p in points),
        "curves": curves,
        "wan": wan,
    }
    baseline = _load_baseline(baseline_path)
    if baseline and baseline.get("events_per_sec"):
        record["baseline"] = {
            "path": baseline_path,
            "events_per_sec": baseline["events_per_sec"],
            "recorded": baseline.get("recorded", "scale-out refactor"),
        }
        record["speedup"] = round(eps / baseline["events_per_sec"], 3)
    return record


def _baseline_points(baseline: dict):
    """Yield (label, point) for every curve and WAN point in a record."""
    for protocol, curve in sorted(baseline.get("curves", {}).items()):
        for point in curve:
            yield "%s f=%s" % (protocol, point.get("f")), point
    wan = baseline.get("wan")
    if wan:
        yield "wan %s f=%s" % (wan.get("topology"), wan.get("f")), wan


def check_regression(
    record: dict, baseline: Optional[dict] = None
) -> Optional[str]:
    """Return a violation message when the benchmark regressed, else None."""
    summary = record.get("baseline")
    if not summary:
        return None
    floor = (1.0 - REGRESSION_TOLERANCE) * summary["events_per_sec"]
    if record["events_per_sec"] < floor:
        return (
            "scale events/sec %.0f regressed more than %.0f%% below the "
            "baseline %.0f (floor %.0f)"
            % (
                record["events_per_sec"],
                REGRESSION_TOLERANCE * 100,
                summary["events_per_sec"],
                floor,
            )
        )
    baseline = baseline if baseline is not None else _load_baseline(
        summary.get("path")
    )
    if baseline:
        ours = {label: point for label, point in _baseline_points(record)}
        for label, expected in _baseline_points(baseline):
            got = ours.get(label)
            if got is None:
                return "ladder point %s vanished from the benchmark" % label
            for key in ("events", "completed", "throughput_rps", "tier"):
                if key in expected and got.get(key) != expected[key]:
                    return (
                        "%s %s drifted from the baseline (%s != %s) — "
                        "seeded scale behaviour changed"
                        % (label, key, got.get(key), expected[key])
                    )
    return None


def write_scale_bench(
    output: str = "BENCH_scale.json",
    baseline_path: Optional[str] = DEFAULT_BASELINE_PATH,
    repeat: int = 1,
    check: bool = False,
) -> int:
    """Run, write the artifact, print a summary; non-zero on regression."""
    record = run_scale_bench(repeat=repeat, baseline_path=baseline_path)
    if check:
        warn_on_foreign_baseline(record, _load_baseline(baseline_path))
    violation = check_regression(record) if check else None
    record["violations"] = [violation] if violation else []
    with open(output, "w", encoding="utf-8") as fileobj:
        json.dump(record, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    speedup = record.get("speedup")
    peak = max(
        (p for curve in record["curves"].values() for p in curve),
        key=lambda p: p["n"],
    )
    print(
        "bench scale: %.0f events/s | n up to %d (%s %.2f kreq/s) | "
        "wall %.1fs%s -> %s"
        % (
            record["events_per_sec"],
            record["max_n"],
            "pbft",
            peak["kreq_per_sec"],
            record["wall_clock_s"],
            " | %.2fx vs baseline" % speedup if speedup else "",
            output,
        )
    )
    if violation:
        print("BENCH REGRESSION: %s" % violation)
        return 1
    return 0
