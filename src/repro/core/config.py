"""RBFT configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.crypto.costmodel import CryptoCostModel
from repro.protocols.pbft.engine import InstanceConfig

__all__ = ["RBFTConfig"]


@dataclass(frozen=True)
class RBFTConfig:
    """All RBFT tuning knobs (§IV-C gives the monitoring parameters).

    ``delta`` (Δ) is the minimum acceptable ratio between the master
    instance's throughput and the mean backup throughput; ``lambda_max``
    (Λ) is the maximal acceptable per-request latency; ``omega`` (Ω) is
    the maximal acceptable difference between a client's average latency
    on the master and on the backup instances.  The paper sets their
    values from the crypto costs and network conditions; our defaults are
    calibrated the same way for the simulated cluster.
    """

    f: int = 1
    batch_size: int = 64
    batch_delay: float = 1e-3
    checkpoint_interval: int = 128
    watermark_window: int = 1024
    rx_overhead: float = 1.5e-6
    costs: CryptoCostModel = field(default_factory=CryptoCostModel)

    # Monitoring (§IV-C) ---------------------------------------------------
    monitoring_period: float = 0.25
    delta: float = 0.97  # Δ: min master/backup throughput ratio
    # Λ and Ω "depend on the workload and on the experimental settings"
    # (§IV-C): under a saturating open-loop load, queueing latency is
    # unbounded for *every* protocol, so the defaults are loose; the
    # unfair-primary experiment (Fig. 12) sets Λ = 1.5 ms explicitly.
    lambda_max: float = 5.0  # Λ: max acceptable request latency (seconds)
    omega: float = 5.0  # Ω: max master-vs-backup per-client latency gap
    min_monitor_requests: int = 32  # Δ test needs this many backup orders

    #: ablation (§VI-B): order full requests instead of identifiers.
    order_full_requests: bool = False

    #: §IV-A future work, implemented: on an instance change, promote the
    #: instance with the highest monitored throughput to master instead of
    #: keeping instance 0.  The paper notes this "would require a
    #: mechanism to synchronize the state of the different instances when
    #: switching" (Abstract-style); this implementation drains the old
    #: master to its local committed frontier before switching, which
    #: preserves the executed *set* exactly and the order whenever the
    #: instances' streams are batch-aligned — see core/node.py.
    promote_best_backup: bool = False

    # Flooding defence (§V) --------------------------------------------------
    flood_threshold: int = 64  # invalid node messages before closing a NIC
    flood_window: float = 0.1  # seconds over which invalid messages count
    nic_close_duration: float = 2.0  # "for a given time period"

    # Scale pacing and redundant-instance batching ---------------------------
    #: above this f the deployment switches to the paced batch delay and
    #: (unless overridden) coalesces backup-instance certificate traffic.
    #: The default matches the historical hard-coded ``f <= 3`` rule, so
    #: every pinned small-f run stays on the exact path.
    pacing_f_threshold: int = 3
    #: batch delay used above the pacing threshold (was hard-coded 10 ms).
    paced_batch_delay: float = 10e-3
    #: tri-state override for certificate batching across the f+1
    #: ordering instances: None = automatic (active iff
    #: ``f > pacing_f_threshold``), True/False forces it for tests.
    instance_batching: Optional[bool] = None
    #: how long a node may hold backup-instance certificate messages
    #: before flushing them as one envelope.
    instance_batch_window: float = 1e-3
    #: flush an envelope early once it holds this many messages.
    instance_batch_limit: int = 256
    #: round pacing for the backup instances on the batched tier: coarser
    #: rounds aggregate the redundant certificate exchanges into fewer,
    #: fuller batches (the master keeps ``batch_delay``, so client
    #: latency is untouched; backups trail by a few windows but their
    #: throughput — the Δ test input — is unchanged in steady state).
    backup_batch_delay: float = 50e-3

    def __post_init__(self) -> None:
        if self.f < 1:
            raise ValueError("RBFT needs f >= 1 (got f=%d)" % self.f)
        if not 0.0 < self.delta <= 1.0:
            raise ValueError("Δ must be in (0, 1], got %r" % (self.delta,))
        if self.lambda_max <= 0 or self.omega <= 0:
            raise ValueError("Λ and Ω must be positive")
        if self.monitoring_period <= 0:
            raise ValueError("monitoring_period must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.pacing_f_threshold < 1:
            raise ValueError("pacing_f_threshold must be at least 1")
        if self.paced_batch_delay <= 0:
            raise ValueError("paced_batch_delay must be positive")
        if self.instance_batch_window <= 0:
            raise ValueError("instance_batch_window must be positive")
        if self.instance_batch_limit < 2:
            raise ValueError("instance_batch_limit must be at least 2")
        if self.backup_batch_delay <= 0:
            raise ValueError("backup_batch_delay must be positive")
        if self.batching_active and self.promote_best_backup:
            raise ValueError(
                "instance batching summarises backup progress and does not "
                "replay per-instance history, so it cannot be combined with "
                "promote_best_backup"
            )
        # 4 module cores + f+1 replica cores must fit on the machine (§V).
        if 4 + self.f + 1 > self.cores_per_machine:
            raise ValueError(
                "f=%d needs %d cores per machine (4 modules + %d replicas)"
                % (self.f, 4 + self.f + 1, self.f + 1)
            )

    #: cores available per machine (the paper's testbed has 8).
    cores_per_machine: int = 8

    @property
    def n(self) -> int:
        return 3 * self.f + 1

    @property
    def instances(self) -> int:
        """f + 1 protocol instances: necessary and sufficient (§IV-A)."""
        return self.f + 1

    @property
    def master(self) -> int:
        """The master instance's id (backups are 1..f)."""
        return 0

    @property
    def batching_active(self) -> bool:
        """Whether backup-instance certificate traffic is coalesced."""
        if self.instance_batching is not None:
            return self.instance_batching
        return self.f > self.pacing_f_threshold

    @property
    def pacing_tier(self) -> str:
        """Which pacing/batching regime this configuration runs under.

        ``"exact"`` — small-f path, byte-identical to the historical
        simulator; ``"paced"`` — the slower batch delay but per-instance
        messages; ``"batched"`` — certificate envelopes across instances.
        """
        if self.batching_active:
            return "batched"
        if self.f > self.pacing_f_threshold:
            return "paced"
        return "exact"

    def instance_config(self) -> InstanceConfig:
        return InstanceConfig(
            f=self.f,
            batch_size=self.batch_size,
            batch_delay=self.batch_delay,
            checkpoint_interval=self.checkpoint_interval,
            watermark_window=self.watermark_window,
            rx_overhead=self.rx_overhead,
            full_payload=self.order_full_requests,  # identifiers by default
            auto_advance_view=False,
        )

    def backup_instance_config(self) -> InstanceConfig:
        """The backup instances' engine config.

        Identical to the master's except on the batched tier, where
        backup rounds pace at :attr:`backup_batch_delay`.
        """
        config = self.instance_config()
        if self.batching_active:
            config = replace(config, batch_delay=self.backup_batch_delay)
        return config
