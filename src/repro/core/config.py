"""RBFT configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.costmodel import CryptoCostModel
from repro.protocols.pbft.engine import InstanceConfig

__all__ = ["RBFTConfig"]


@dataclass(frozen=True)
class RBFTConfig:
    """All RBFT tuning knobs (§IV-C gives the monitoring parameters).

    ``delta`` (Δ) is the minimum acceptable ratio between the master
    instance's throughput and the mean backup throughput; ``lambda_max``
    (Λ) is the maximal acceptable per-request latency; ``omega`` (Ω) is
    the maximal acceptable difference between a client's average latency
    on the master and on the backup instances.  The paper sets their
    values from the crypto costs and network conditions; our defaults are
    calibrated the same way for the simulated cluster.
    """

    f: int = 1
    batch_size: int = 64
    batch_delay: float = 1e-3
    checkpoint_interval: int = 128
    watermark_window: int = 1024
    rx_overhead: float = 1.5e-6
    costs: CryptoCostModel = field(default_factory=CryptoCostModel)

    # Monitoring (§IV-C) ---------------------------------------------------
    monitoring_period: float = 0.25
    delta: float = 0.97  # Δ: min master/backup throughput ratio
    # Λ and Ω "depend on the workload and on the experimental settings"
    # (§IV-C): under a saturating open-loop load, queueing latency is
    # unbounded for *every* protocol, so the defaults are loose; the
    # unfair-primary experiment (Fig. 12) sets Λ = 1.5 ms explicitly.
    lambda_max: float = 5.0  # Λ: max acceptable request latency (seconds)
    omega: float = 5.0  # Ω: max master-vs-backup per-client latency gap
    min_monitor_requests: int = 32  # Δ test needs this many backup orders

    #: ablation (§VI-B): order full requests instead of identifiers.
    order_full_requests: bool = False

    #: §IV-A future work, implemented: on an instance change, promote the
    #: instance with the highest monitored throughput to master instead of
    #: keeping instance 0.  The paper notes this "would require a
    #: mechanism to synchronize the state of the different instances when
    #: switching" (Abstract-style); this implementation drains the old
    #: master to its local committed frontier before switching, which
    #: preserves the executed *set* exactly and the order whenever the
    #: instances' streams are batch-aligned — see core/node.py.
    promote_best_backup: bool = False

    # Flooding defence (§V) --------------------------------------------------
    flood_threshold: int = 64  # invalid node messages before closing a NIC
    flood_window: float = 0.1  # seconds over which invalid messages count
    nic_close_duration: float = 2.0  # "for a given time period"

    def __post_init__(self) -> None:
        if self.f < 1:
            raise ValueError("RBFT needs f >= 1 (got f=%d)" % self.f)
        if not 0.0 < self.delta <= 1.0:
            raise ValueError("Δ must be in (0, 1], got %r" % (self.delta,))
        if self.lambda_max <= 0 or self.omega <= 0:
            raise ValueError("Λ and Ω must be positive")
        if self.monitoring_period <= 0:
            raise ValueError("monitoring_period must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        # 4 module cores + f+1 replica cores must fit on the machine (§V).
        if 4 + self.f + 1 > self.cores_per_machine:
            raise ValueError(
                "f=%d needs %d cores per machine (4 modules + %d replicas)"
                % (self.f, 4 + self.f + 1, self.f + 1)
            )

    #: cores available per machine (the paper's testbed has 8).
    cores_per_machine: int = 8

    @property
    def n(self) -> int:
        return 3 * self.f + 1

    @property
    def instances(self) -> int:
        """f + 1 protocol instances: necessary and sufficient (§IV-A)."""
        return self.f + 1

    @property
    def master(self) -> int:
        """The master instance's id (backups are 1..f)."""
        return 0

    def instance_config(self) -> InstanceConfig:
        return InstanceConfig(
            f=self.f,
            batch_size=self.batch_size,
            batch_delay=self.batch_delay,
            checkpoint_interval=self.checkpoint_interval,
            watermark_window=self.watermark_window,
            rx_overhead=self.rx_overhead,
            full_payload=self.order_full_requests,  # identifiers by default
            auto_advance_view=False,
        )
