"""The Dispatch & Monitoring module's measurement state (§IV-C).

Each node keeps, per protocol instance, a counter ``nbreqs_i`` of the
requests ordered by the local replica of that instance.  Periodically it
turns the counters into throughputs and compares the master against the
mean of the backups: a ratio below Δ is grounds for an instance change.

It also tracks per-request latency (against Λ) and per-client average
latency across instances (against Ω) so an unfair master primary that
starves individual clients is caught even when its throughput looks
healthy (§VI-C-3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.metrics.recorder import TimeSeries, WindowedCounter
from repro.sim.engine import Simulator

from .config import RBFTConfig

__all__ = ["InstanceMonitor"]


class InstanceMonitor:
    """Per-node throughput and latency monitoring of the f+1 instances."""

    def __init__(
        self,
        sim: Simulator,
        config: RBFTConfig,
        on_trigger: Callable[[str], None],
        name: str = "monitor",
    ):
        self.sim = sim
        self.config = config
        self.on_trigger = on_trigger
        self.name = name
        #: which instance is currently the master (mutable: best-backup
        #: promotion re-points it at instance-change time).
        self.master = config.master
        instances = config.instances
        self.nbreqs: List[WindowedCounter] = [
            WindowedCounter() for _ in range(instances)
        ]
        #: throughput each instance achieved in the last window (Fig. 9/11).
        self.last_rates: List[float] = [0.0] * instances
        self.rate_series: List[TimeSeries] = [
            TimeSeries("instance-%d" % k) for k in range(instances)
        ]
        # per-window, per-instance, per-client latency accumulators
        self._lat_sum: List[Dict[str, float]] = [dict() for _ in range(instances)]
        self._lat_count: List[Dict[str, int]] = [dict() for _ in range(instances)]
        self.triggers: List[Tuple[float, str]] = []
        self._breach_at: Optional[float] = None
        self._delta_breaches = 0  # consecutive windows below Δ
        self._suppress_until = 0.0  # grace after an instance change
        #: per-instance progress summaries, maintained only on the
        #: instance-batched path: instance -> (view, highest ordered seq,
        #: cumulative items).  Constant-size per instance — the compact
        #: replacement for the per-request bookkeeping the batched path
        #: skips; the Δ test keeps using the exact ``nbreqs`` counters.
        self.progress: Dict[int, Tuple[int, int, int]] = {}

    # ------------------------------------------------------------ recording
    def count_ordered(self, instance: int, n: int) -> None:
        self.nbreqs[instance].add(n)

    def note_progress(self, instance: int, view: int, seq: int, items: int) -> None:
        """Fold one ordered batch into the instance's per-view summary."""
        prev = self.progress.get(instance)
        total = items if prev is None else prev[2] + items
        if prev is not None and prev[0] == view and prev[1] > seq:
            seq = prev[1]  # batches may complete out of sequence order
        self.progress[instance] = (view, seq, total)

    def record_latency(self, instance: int, client: str, latency: float) -> None:
        sums = self._lat_sum[instance]
        counts = self._lat_count[instance]
        sums[client] = sums.get(client, 0.0) + latency
        counts[client] = counts.get(client, 0) + 1

    # ---------------------------------------------------------- Λ / Ω checks
    def check_request_latency(self, client: str, latency: float) -> None:
        """Per-request check against Λ for master-ordered requests."""
        if latency > self.config.lambda_max:
            self._trigger("latency-lambda")
            return
        self._check_omega(client)

    def _check_omega(self, client: str) -> None:
        """Compare the client's mean latency on master vs the backups."""
        master = self.master
        count = self._lat_count[master].get(client, 0)
        if count == 0:
            return
        master_avg = self._lat_sum[master][client] / count
        backup_avgs = []
        for k in range(len(self.nbreqs)):
            if k == master:
                continue
            n = self._lat_count[k].get(client, 0)
            if n:
                backup_avgs.append(self._lat_sum[k][client] / n)
        if not backup_avgs:
            return
        backup_mean = sum(backup_avgs) / len(backup_avgs)
        if master_avg - backup_mean > self.config.omega:
            self._trigger("latency-omega")

    # -------------------------------------------------------------- the tick
    def tick(self) -> None:
        """Close the monitoring window: compute rates, run the Δ test."""
        period = self.config.monitoring_period
        for k, counter in enumerate(self.nbreqs):
            rate = counter.take() / period
            self.last_rates[k] = rate
            self.rate_series[k].append(self.sim.now, rate)
        for k in range(len(self.nbreqs)):
            self._lat_sum[k] = {}
            self._lat_count[k] = {}
        master = self.master
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "monitor.tick", self.name,
                rates=list(self.last_rates), master=master,
            )
        backups = [
            rate for k, rate in enumerate(self.last_rates) if k != master
        ]
        if not backups:
            return
        backup_mean = sum(backups) / len(backups)
        if backup_mean * period < self.config.min_monitor_requests:
            return  # too few requests in the window to judge the ratio
        if self.sim.now < self._suppress_until:
            return  # windows straddling an instance change are unreliable
        if self.last_rates[master] < self.config.delta * backup_mean:
            # Batch boundaries make single windows noisy at the percent
            # level; demand two consecutive breaches before accusing.
            self._delta_breaches += 1
            if self._delta_breaches >= 2:
                self._trigger("throughput-delta")
        else:
            self._delta_breaches = 0

    def reset_after_change(self) -> None:
        """An instance change completed: clear breach state and give the
        new configuration one clean window before judging it."""
        self._delta_breaches = 0
        self._breach_at = None
        self._suppress_until = self.sim.now + 2 * self.config.monitoring_period

    def time_shift(self, dt: float) -> None:
        """Shift absolute-time state after a mesoscale clock jump.

        The pending tick event itself moves with the heap; here the
        suppression window and breach recency move so their remaining
        durations are preserved.  ``rate_series`` keeps its recorded
        sample times — it is history, not pending state.
        """
        self._suppress_until += dt
        if self._breach_at is not None:
            self._breach_at += dt

    def _trigger(self, reason: str) -> None:
        self.triggers.append((self.sim.now, reason))
        self._breach_at = self.sim.now
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "monitor.trigger", self.name,
                reason=reason, master=self.master,
            )
        self.on_trigger(reason)

    def observes_breach(self) -> bool:
        """Did this node itself observe a violation recently?

        Used when deciding to join another node's INSTANCE-CHANGE vote
        ("it does so only if it also observes too much difference").
        """
        if self._breach_at is None:
            return False
        return self.sim.now - self._breach_at <= 2 * self.config.monitoring_period
