"""The RBFT node: f+1 protocol instances behind a module pipeline (§IV, §V).

Architecture per Fig. 6 of the paper — each module is pinned to its own
core, and each protocol-instance replica to another:

* **Verification** authenticates client REQUESTs (MAC, then signature;
  invalid signatures blacklist the client);
* **Propagation** disseminates verified requests with PROPAGATE and
  collects f+1 matching PROPAGATEs before releasing a request;
* **Dispatch & Monitoring** hands request *identifiers* to the f+1 local
  replicas, measures per-instance throughput and per-client latency, and
  drives the instance-change protocol;
* **Execution** applies requests ordered by the *master* instance and
  replies to clients;
* one :class:`~repro.protocols.pbft.engine.OrderingInstance` per
  protocol instance, with primaries placed so at most one runs per node.

Flooding defence (§V): messages that fail verification are counted per
sender, and a peer exceeding the threshold has its NIC closed for a
configurable period.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.common.batching import CertificateCoalescer
from repro.common.cluster import Machine
from repro.common.quorum import (
    VectorQuorumTracker,
    quorum_size,
    weak_quorum_size,
)
from repro.common.statemachine import Service
from repro.common.types import Reply, Request
from repro.crypto.blacklist import ClientBlacklist
from repro.crypto.costmodel import MESSAGE_HEADER_SIZE
from repro.crypto.primitives import Mac, MacAuthenticator
from repro.net.message import Message
from repro.protocols.base import ClientRequestMsg, ReplyMsg
from repro.protocols.pbft.engine import OrderingInstance
from repro.protocols.pbft.messages import OrderingMessage

from .config import RBFTConfig
from .messages import FloodMsg, InstanceBatchMsg, InstanceChangeMsg, PropagateMsg
from .monitoring import InstanceMonitor

__all__ = ["RBFTNode", "InstanceTransport", "BatchingInstanceTransport"]


class InstanceTransport:
    """Adapter between an ordering instance and the machine's NICs."""

    __slots__ = ("machine",)

    def __init__(self, machine: Machine):
        self.machine = machine

    def broadcast(self, msg: OrderingMessage) -> None:
        self.machine.broadcast_to_nodes(msg)

    def send(self, replica: str, msg: OrderingMessage) -> None:
        self.machine.send_to_node(replica, msg)


class BatchingInstanceTransport:
    """Backup-instance transport that coalesces certificate broadcasts.

    Above the pacing threshold, each backup instance's broadcasts are
    buffered in the node's shared :class:`CertificateCoalescer` instead
    of hitting the NICs one by one; the coalescer flushes a short window
    of them as one :class:`InstanceBatchMsg` envelope.  The engine has
    already charged its per-message send cost on its own core by the
    time ``broadcast`` runs, so buffering costs nothing extra and the
    master's module cores never see backup traffic.  Point-to-point
    sends (view-change retransmissions) are rare and stay exact.
    """

    __slots__ = ("machine", "coalescer")

    def __init__(self, machine: Machine, coalescer: CertificateCoalescer):
        self.machine = machine
        self.coalescer = coalescer

    def broadcast(self, msg: OrderingMessage) -> None:
        self.coalescer.add(msg)

    def send(self, replica: str, msg: OrderingMessage) -> None:
        self.machine.send_to_node(replica, msg)


class RBFTNode:
    """One physical machine of an RBFT deployment."""

    def __init__(self, machine: Machine, config: RBFTConfig, service: Service):
        self.machine = machine
        self.config = config
        self.costs = config.costs
        self.service = service
        self.name = machine.name
        self.index = machine.index
        self.sim = machine.cluster.sim
        sim = self.sim

        # Module cores (Fig. 6) -------------------------------------------
        self.verification_core = machine.cores.allocate("verification")
        self.propagation_core = machine.cores.allocate("propagation")
        self.dispatch_core = machine.cores.allocate("dispatch")
        self.execution_core = machine.cores.allocate("execution")

        # f+1 protocol instances ------------------------------------------
        # Above the pacing threshold the backup instances' certificate
        # broadcasts are coalesced into per-window envelopes; the master
        # instance always keeps the exact per-message transport.
        self._batching = config.batching_active
        self._cert_coalescer: Optional[CertificateCoalescer] = (
            CertificateCoalescer(
                sim,
                config.instance_batch_limit,
                config.instance_batch_window,
                self._flush_cert_batch,
            )
            if self._batching
            else None
        )
        self.engines: List[OrderingInstance] = []
        instance_config = config.instance_config()
        backup_config = config.backup_instance_config()
        senders = machine.cluster.senders
        for k in range(config.instances):
            core = machine.cores.allocate("replica-%d" % k)
            if self._cert_coalescer is not None and k != config.master:
                transport = BatchingInstanceTransport(
                    machine, self._cert_coalescer
                )
            else:
                transport = InstanceTransport(machine)
            engine = OrderingInstance(
                sim,
                core,
                transport=transport,
                config=instance_config if k == config.master else backup_config,
                costs=self.costs,
                replica=self.name,
                instance=k,
                on_ordered=self._make_ordered_callback(k),
                guard=self._propagation_guard,
                primary_offset=k,
                senders=senders,
            )
            engine.on_invalid = self._note_invalid
            self.engines.append(engine)

        # Propagation state ------------------------------------------------
        self.blacklist = ClientBlacklist()
        self._propagated: set = set()
        self._sig_inflight: set = set()  # dedup of queued signature checks
        self._propagate_votes = VectorQuorumTracker(
            weak_quorum_size(config.f), senders
        )
        self.request_store: Dict[Tuple[str, int], Request] = {}
        self.ready_ids: set = set()
        self._given_at: Dict[Tuple[str, int], float] = {}
        self._ordered_by: Dict[Tuple[str, int], int] = {}

        # Execution state ----------------------------------------------------
        self.executed_ids: set = set()
        self.reply_cache: Dict[str, Tuple[int, Reply]] = {}
        self.executed_count = 0
        self.invalid_requests = 0

        # Monitoring & instance change (§IV-C, §IV-D) -----------------------
        self.monitor = InstanceMonitor(
            sim, config, self._on_monitor_trigger, name=self.name
        )
        self.master_instance = config.master
        self.cpi = 0
        self._voted_choice: Dict[int, int] = {}  # cpi -> preferred master
        self._ic_votes = VectorQuorumTracker(quorum_size(config.f), senders)
        self.instance_changes = 0
        # Best-backup promotion (§IV-A future work) keeps each instance's
        # delivery history so the new master's backlog can be replayed.
        self._instance_history: Optional[List[List[Tuple]]] = (
            [[] for _ in range(config.instances)]
            if config.promote_best_backup
            else None
        )

        # Flooding defence (§V) ----------------------------------------------
        self._invalid_times: Dict[str, Deque[float]] = {}
        self.nics_closed = 0

        #: attack hook — a faulty node that "does not participate in the
        #: PROPAGATE phase" (worst-attack-2) never emits PROPAGATEs.
        self.propagate_silent = False

        # Hoisted out of the per-PROPAGATE routing path: the header MAC
        # cost is payload-independent, so it is a constant per node.
        self._propagate_rx_cost = (
            self.costs.mac_verify(32) + self.config.rx_overhead
        )
        # Remaining hot-path state: the cost model is pure, so per-size
        # results memoise; the valid-for-everyone authenticator is
        # immutable, so one interned instance signs every outbound
        # message; routing is pre-bound per message class.
        self._auth = MacAuthenticator.for_signer(self.name)
        self._auth_rx_costs: Dict[int, float] = {}
        self._sig_verify_costs: Dict[int, float] = {}
        self._propagate_tx_costs: Dict[int, float] = {}
        self._exec_reply_cost = self.costs.mac_gen(MESSAGE_HEADER_SIZE)
        self._routes: Dict[type, Callable[[Message], None]] = {
            ClientRequestMsg: self._route_request,
            PropagateMsg: self._route_propagate,
            InstanceChangeMsg: self._route_instance_change,
            InstanceBatchMsg: self._route_instance_batch,
            FloodMsg: self._route_flood,
        }

        machine.handler = self.on_network_message
        sim.call_after(config.monitoring_period, self._monitor_tick)

    # ----------------------------------------------------------------- wiring
    def _make_ordered_callback(self, instance: int):
        if self._batching:

            def callback(seq: int, items: Tuple) -> None:
                self._on_instance_ordered_batched(instance, seq, items)

        else:

            def callback(seq: int, items: Tuple) -> None:
                self._on_instance_ordered(instance, seq, items)

        return callback

    @property
    def master_engine(self) -> OrderingInstance:
        return self.engines[self.master_instance]

    @property
    def is_master_primary(self) -> bool:
        return self.master_engine.is_primary

    # ----------------------------------------------------------------- routing
    def on_network_message(self, msg: Message) -> None:
        routes = self._routes
        handler = routes.get(msg.__class__)
        if handler is None:
            # First sight of this exact class: resolve it (isinstance
            # handles subclasses and the many OrderingMessage leaves) and
            # cache the binding for every later message of the class.
            if isinstance(msg, OrderingMessage):
                handler = self._route_ordering
            elif isinstance(msg, ClientRequestMsg):
                handler = self._route_request
            elif isinstance(msg, PropagateMsg):
                handler = self._route_propagate
            elif isinstance(msg, InstanceChangeMsg):
                handler = self._route_instance_change
            elif isinstance(msg, FloodMsg):
                handler = self._route_flood
            else:
                handler = self._route_ignore
            routes[msg.__class__] = handler
        handler(msg)

    def _route_request(self, msg: Message) -> None:
        self._receive_request(msg.request)

    def _route_propagate(self, msg: Message) -> None:
        # The MAC covers the request digest, so the Propagation module
        # only checks the small header here.  For a first-sight request
        # the full payload is hashed exactly once — on the Verification
        # core, inside the signature check (the same hash serves both).
        self.propagation_core.submit(self._propagate_rx_cost, self._on_propagate, msg)

    def _route_ordering(self, msg: Message) -> None:
        if 0 <= msg.instance < len(self.engines):
            self.engines[msg.instance].receive(msg)

    def _route_instance_batch(self, msg: Message) -> None:
        # One envelope, one outer authenticator, ONE core task: the
        # aggregated receive cost (summed per-instance run costs, memoised
        # on the immutable envelope — every receiver of a deployment
        # shares one config) is charged on the first enveloped instance's
        # core, so the module cores and the master's replica core never
        # see backup traffic.
        if not msg.authenticator.valid_for(self.name):
            self._note_invalid(msg.sender)
            return
        engines = self.engines
        runs = msg.runs()
        first = runs[0][0]
        if not 0 <= first < len(engines):
            return
        cost = msg._rx_cost
        if cost is None:
            cost = sum(
                engines[instance].batch_rx_cost(run)
                for instance, run in runs
                if 0 <= instance < len(engines)
            )
            msg._rx_cost = cost
        engines[first].core.submit(cost, self._dispatch_envelope, runs)

    def _dispatch_envelope(self, runs) -> None:
        engines = self.engines
        for instance, run in runs:
            if 0 <= instance < len(engines):
                engines[instance].dispatch_batch(run)

    def _flush_cert_batch(self, batch: List[OrderingMessage]) -> None:
        """Coalescer flush: one window of backup certificates, one send."""
        if len(batch) == 1:
            # A lone message needs no envelope — ship it exactly as the
            # unbatched path would.
            self.machine.broadcast_to_nodes(batch[0])
        else:
            self.machine.broadcast_to_nodes(
                InstanceBatchMsg(self.name, batch, self._auth)
            )

    def _route_instance_change(self, msg: Message) -> None:
        cost = self._auth_rx_cost(msg.wire_size())
        self.dispatch_core.submit(cost, self._on_instance_change, msg)

    def _route_flood(self, msg: Message) -> None:
        # Junk traffic: pay the MAC check, then count the sender.
        cost = self._auth_rx_cost(msg.wire_size())
        self.propagation_core.submit(cost, self._note_invalid, msg.sender)

    def _route_ignore(self, msg: Message) -> None:
        pass

    def _auth_rx_cost(self, nbytes: int) -> float:
        cost = self._auth_rx_costs.get(nbytes)
        if cost is None:
            cost = (
                self.costs.authenticator_verify(nbytes) + self.config.rx_overhead
            )
            self._auth_rx_costs[nbytes] = cost
        return cost

    def _sig_verify_cost(self, nbytes: int) -> float:
        cost = self._sig_verify_costs.get(nbytes)
        if cost is None:
            cost = self._sig_verify_costs[nbytes] = self.costs.sig_verify(nbytes)
        return cost

    # -------------------------------------------------- Verification module
    def _receive_request(self, request: Request) -> None:
        if self.blacklist.banned(request.client):
            return
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "node.stage", self.name,
                stage="verification.mac", client=request.client,
            )
        cost = self._auth_rx_cost(request.wire_size())
        self.verification_core.submit(cost, self._after_request_mac, request)

    def _after_request_mac(self, request: Request) -> None:
        if not request.authenticator.valid_for(self.name):
            self.invalid_requests += 1
            return
        if request.request_id in self.executed_ids:
            self._resend_reply(request)
            return
        if request.request_id in self._propagated:
            return  # already verified via a PROPAGATE
        if request.request_id in self._sig_inflight:
            return  # a signature check for this request is already queued
        self._sig_inflight.add(request.request_id)
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "node.stage", self.name,
                stage="verification.sig", client=request.client,
            )
        cost = self._sig_verify_cost(request.wire_size())
        self.verification_core.submit(cost, self._after_request_signature, request)

    def _after_request_signature(self, request: Request) -> None:
        self._sig_inflight.discard(request.request_id)
        if not request.signature.valid:
            self.blacklist.ban(request.client)
            self.invalid_requests += 1
            return
        self._start_propagation(request)

    # --------------------------------------------------- Propagation module
    def _start_propagation(self, request: Request) -> None:
        request_id = request.request_id
        if request_id in self._propagated:
            return
        self._propagated.add(request_id)
        self.request_store.setdefault(request_id, request)
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "node.stage", self.name,
                stage="propagation", client=request.client,
            )
        if self.propagate_silent:
            self._register_propagate(request_id, self.name)
        else:
            # TCP point-to-point PROPAGATEs: one MAC pass per recipient.
            msg = PropagateMsg(self.name, request, self._auth)
            size = msg.wire_size()
            cost = self._propagate_tx_costs.get(size)
            if cost is None:
                cost = (self.config.n - 1) * self.costs.mac_gen(size)
                self._propagate_tx_costs[size] = cost
            self.propagation_core.submit(cost, self._emit_propagate, msg)
        # The quorum may already be complete if f+1 PROPAGATEs beat the
        # signature check; the body is stored now, so dispatch can proceed.
        if self._propagate_votes.complete(request_id):
            self._maybe_dispatch(request_id)

    def _emit_propagate(self, msg: PropagateMsg) -> None:
        self.machine.broadcast_to_nodes(msg)
        self._register_propagate(msg.request.request_id, self.name)

    def _on_propagate(self, msg: PropagateMsg) -> None:
        if not msg.authenticator.valid_for(self.name):
            self._note_invalid(msg.sender)
            return
        request = msg.request
        request_id = request.request_id
        self._register_propagate(request_id, msg.sender)
        if request_id in self._propagated or request_id in self.executed_ids:
            return
        # First sight of this request: the Verification module checks the
        # client signature before this node echoes the PROPAGATE (§IV-B
        # step 2); the in-flight set dedups against the direct client copy.
        if request_id in self._sig_inflight:
            return
        self._sig_inflight.add(request_id)
        cost = self._sig_verify_cost(request.wire_size())
        self.verification_core.submit(cost, self._after_propagate_signature, msg)

    def _after_propagate_signature(self, msg: PropagateMsg) -> None:
        request = msg.request
        self._sig_inflight.discard(request.request_id)
        if not request.signature.valid:
            return
        self._start_propagation(request)

    def _register_propagate(self, request_id, sender: str) -> None:
        # Executed implies the quorum completed and was garbage-collected
        # (or is about to be); a straggling PROPAGATE must not seed a
        # fresh quorum that could re-dispatch the request.
        if request_id in self.executed_ids:
            return
        if self._propagate_votes.add(request_id, sender):
            self._maybe_dispatch(request_id)

    def _maybe_dispatch(self, request_id) -> None:
        """Dispatch once f+1 PROPAGATEs *and* the request body are in."""
        if request_id in self.ready_ids:
            return
        if request_id in self.request_store:
            self.dispatch_core.submit(
                self.config.rx_overhead, self._dispatch_ready, request_id
            )

    # ------------------------------------------- Dispatch & Monitoring module
    def _dispatch_ready(self, request_id) -> None:
        """f+1 PROPAGATEs collected: give the request to the replicas."""
        if request_id in self.ready_ids:
            return
        request = self.request_store.get(request_id)
        if request is None:
            return
        self.ready_ids.add(request_id)
        self._given_at[request_id] = self.sim.now
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "node.stage", self.name,
                stage="dispatch", client=request.client,
            )
        if self.config.order_full_requests:
            item = request  # ablation: instances carry whole requests
        else:
            item = request.identifier()
        for engine in self.engines:
            engine.submit(item)
            engine.recheck_guards()

    def _propagation_guard(self, items: Tuple) -> bool:
        """A replica pre-prepares only requests backed by f+1 PROPAGATEs.

        Executed requests passed the guard once already (dispatch implied
        a complete PROPAGATE quorum), so they still qualify after their
        ``ready_ids`` entry is garbage-collected.
        """
        ready = self.ready_ids
        executed = self.executed_ids
        return all(
            item.request_id in ready or item.request_id in executed
            for item in items
        )

    def _on_instance_ordered(self, instance: int, seq: int, items: Tuple) -> None:
        self.monitor.count_ordered(instance, len(items))
        if self._instance_history is not None:
            self._instance_history[instance].append(items)
        now = self.sim.now
        master = instance == self.master_instance
        for item in items:
            request_id = item.request_id
            given = self._given_at.get(request_id)
            if given is not None:
                latency = now - given
                self.monitor.record_latency(instance, item.client, latency)
                if master:
                    self.monitor.check_request_latency(item.client, latency)
            seen = self._ordered_by.get(request_id, 0) + 1
            if seen >= len(self.engines):
                # Every instance has ordered this request, so none of the
                # propagation-stage memos can be consulted usefully again:
                # re-entry is blocked by ``executed_ids`` (retained as the
                # durable service state) at every path that matters.
                self._ordered_by.pop(request_id, None)
                self._given_at.pop(request_id, None)
                self._propagated.discard(request_id)
                self.ready_ids.discard(request_id)
                self._propagate_votes.discard(request_id)
            else:
                self._ordered_by[request_id] = seen
        if master:
            self._execute_items(items)

    def _on_instance_ordered_batched(self, instance: int, seq: int, items: Tuple) -> None:
        """Ordered-batch bookkeeping above the pacing threshold.

        The master instance stays exact: per-request latency feeds the
        Λ/Ω checks and execution proceeds as usual.  Backup instances are
        summarised — the monitor's exact ``nbreqs`` counters (the Δ test
        input) still tick per batch, but the per-request latency samples
        and the all-instances-ordered memo GC are replaced by a
        constant-size per-view progress summary.  Propagation memos are
        garbage-collected at master execution instead: the propagation
        guard accepts executed ids, so a backup ordering after the master
        still passes its pre-prepare guard.
        """
        monitor = self.monitor
        monitor.count_ordered(instance, len(items))
        monitor.note_progress(
            instance, self.engines[instance].view, seq, len(items)
        )
        if instance != self.master_instance:
            return
        now = self.sim.now
        given_at = self._given_at
        for item in items:
            request_id = item.request_id
            given = given_at.pop(request_id, None)
            if given is not None:
                latency = now - given
                monitor.record_latency(instance, item.client, latency)
                monitor.check_request_latency(item.client, latency)
            self._propagated.discard(request_id)
            self.ready_ids.discard(request_id)
            self._propagate_votes.discard(request_id)
        self._execute_items(items)

    def _monitor_tick(self) -> None:
        self.sim.call_after(self.config.monitoring_period, self._monitor_tick)
        self.monitor.tick()
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "pbft.log-size", self.name,
                **self.log_sizes(),
            )

    # ------------------------------------------------------ Execution module
    def _execute_items(self, items: Tuple) -> None:
        for item in items:
            request_id = item.request_id
            if request_id in self.executed_ids:
                continue
            request = self.request_store.get(request_id)
            if request is None:
                continue  # unreachable: f+1 PROPAGATEs imply we hold it
            self.executed_ids.add(request_id)
            cost = self.service.exec_cost(request) + self._exec_reply_cost
            self.execution_core.submit(cost, self._execute_one, request)

    def _execute_one(self, request: Request) -> None:
        result, result_size = self.service.apply(request)
        self.executed_count += 1
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "node.stage", self.name,
                stage="execution", client=request.client,
                rid=request.rid,
            )
        reply = Reply(self.name, request.client, request.rid, result, result_size)
        self.reply_cache[request.client] = (request.rid, reply)
        self._send_reply(reply)
        self.request_store.pop(request.request_id, None)

    def _send_reply(self, reply: Reply) -> None:
        channel = self.machine.channel_to_client(reply.client)
        if channel is not None:
            channel.send(ReplyMsg(reply, Mac(self.name)))

    def _resend_reply(self, request: Request) -> None:
        cached = self.reply_cache.get(request.client)
        if cached is not None and cached[0] == request.rid:
            self._send_reply(cached[1])

    # ------------------------------------------------ Instance change (§IV-D)
    def _on_monitor_trigger(self, reason: str) -> None:
        self.vote_instance_change(reason)

    def _preferred_master(self) -> int:
        """Best-backup promotion: pick the fastest instance we measured."""
        if not self.config.promote_best_backup:
            return self.master_instance
        rates = self.monitor.last_rates
        # Stability tie-break: keep the current master unless a backup is
        # strictly faster.
        best = max(
            range(len(rates)),
            key=lambda k: (rates[k], k == self.master_instance, -k),
        )
        return best if rates[best] > 0 else self.master_instance

    def vote_instance_change(self, reason: str = "", choice: Optional[int] = None) -> None:
        """Send INSTANCE-CHANGE for the current cpi.

        One vote per round, except that a node adopts another choice of
        new master once f+1 nodes (hence a correct one) back it — this is
        how promotion votes converge when measurements differ slightly.
        """
        if choice is None:
            choice = self._preferred_master()
        if self._voted_choice.get(self.cpi) == choice:
            return
        if self.cpi in self._voted_choice and choice != self._voted_choice[self.cpi]:
            # Re-vote only as an adoption of a better-supported choice.
            if self._ic_votes.count((self.cpi, choice)) <= self.config.f:
                return
        self._voted_choice[self.cpi] = choice
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "node.ic-vote", self.name,
                reason=reason, cpi=self.cpi, choice=choice,
            )
        msg = InstanceChangeMsg(
            self.name, self.cpi, self._auth, preferred_master=choice
        )
        cost = self.costs.authenticator_gen(msg.wire_size(), self.config.n - 1)
        self.dispatch_core.submit(cost, self.machine.broadcast_to_nodes, msg)
        if self._ic_votes.add((self.cpi, choice), self.name):
            self._perform_instance_change(self.cpi, choice)

    def _on_instance_change(self, msg: InstanceChangeMsg) -> None:
        if not msg.authenticator.valid_for(self.name):
            self._note_invalid(msg.sender)
            return
        if msg.cpi < self.cpi:
            return  # stale vote for a previous round (§IV-D)
        key = (msg.cpi, msg.preferred_master)
        completed = self._ic_votes.add(key, msg.sender)
        if completed:
            self._perform_instance_change(msg.cpi, msg.preferred_master)
            return
        # Join the vote only if this node also observes a violation, or
        # f+1 others (hence at least one correct node) already voted.
        support = self._ic_votes.count(key)
        if msg.cpi not in self._voted_choice and (
            self.monitor.observes_breach() or support > self.config.f
        ):
            choice = msg.preferred_master if support > self.config.f else None
            # "join-breach": this node's own monitor also saw a violation;
            # "join-support": it trusts the f+1 (≥1 correct) votes instead.
            reason = "join-breach" if self.monitor.observes_breach() else "join-support"
            self.vote_instance_change(reason, choice=choice)
        elif support > self.config.f and self._voted_choice.get(msg.cpi) != msg.preferred_master:
            self.vote_instance_change("adopt", choice=msg.preferred_master)

    def _perform_instance_change(self, cpi: int, new_master: int) -> None:
        """2f+1 matching INSTANCE-CHANGEs: rotate every primary at once.

        In promotion mode the agreed ``new_master`` instance takes over
        execution; its delivery backlog is replayed so no request ordered
        by the new master but not by the old one is lost.
        """
        if cpi < self.cpi:
            return
        self.cpi = cpi + 1
        self.instance_changes += 1
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "node.instance-change", self.name,
                cpi=cpi, master=new_master,
            )
        if (
            self.config.promote_best_backup
            and new_master != self.master_instance
            and 0 <= new_master < len(self.engines)
        ):
            self.master_instance = new_master
            self.monitor.master = new_master
            if self._instance_history is not None:
                for items in self._instance_history[new_master]:
                    self._execute_items(items)
        # Votes and choices for completed rounds are dead state: every
        # read path rejects ``cpi < self.cpi`` first.
        self._ic_votes.prune(lambda key: key[0] < self.cpi)
        for stale in [c for c in self._voted_choice if c < self.cpi]:
            del self._voted_choice[stale]
        if self._instance_history is not None:
            # Replaying a fully executed batch is a no-op, so only batches
            # with at least one unexecuted request need to be retained for
            # future promotions.
            executed = self.executed_ids
            self._instance_history = [
                [
                    batch
                    for batch in history
                    if any(item.request_id not in executed for item in batch)
                ]
                for history in self._instance_history
            ]
        self.monitor.reset_after_change()
        for engine in self.engines:
            engine.start_view_change(engine.view + 1)

    # ------------------------------------------------- flooding defence (§V)
    def _note_invalid(self, sender: str) -> None:
        if not sender.startswith("node"):
            return  # client floods arrive on the shared client NIC
        nic = self.machine.peer_nics.get(sender)
        if nic is None:
            return
        window = self._invalid_times.setdefault(sender, deque())
        now = self.sim.now
        window.append(now)
        horizon = now - self.config.flood_window
        while window and window[0] < horizon:
            window.popleft()
        if len(window) >= self.config.flood_threshold:
            nic.close(self.config.nic_close_duration)
            self.nics_closed += 1
            window.clear()

    # --------------------------------------------------------------- mesoscale
    def time_shift(self, dt: float) -> None:
        """Shift absolute-time state after a mesoscale clock jump.

        The presence of this method marks the node class as
        fast-forwardable (see :mod:`repro.experiments.meso`): every
        timestamp the node stores moves with the clock so durations
        computed against ``sim.now`` — dispatch-to-order latency,
        flooding windows, monitor suppression — measure simulated time
        only.  The ordering engines keep no absolute-time state of
        their own (their pending timers live in the heap, which the
        simulator shifts).
        """
        if self._given_at:
            self._given_at = {rid: t + dt for rid, t in self._given_at.items()}
        for window in self._invalid_times.values():
            for i in range(len(window)):
                window[i] += dt
        self.monitor.time_shift(dt)

    # -------------------------------------------------------------- inspection
    def backlog(self) -> int:
        return self.master_engine.backlog()

    def log_sizes(self) -> Dict[str, int]:
        """Per-request memo sizes plus the largest engine protocol log.

        ``total`` is the worst per-instance protocol-log size across the
        f+1 local engines (the quantity the checkpoint garbage collector
        bounds); the remaining fields size the node's own propagation and
        instance-change state.  ``executed_ids`` and ``request_store``
        are reported for visibility but are deliberately not collected:
        the former is the durable replay-dedup state, the latter empties
        itself at execution.
        """
        history = 0
        if self._instance_history is not None:
            history = sum(len(h) for h in self._instance_history)
        sizes = {
            "total": max(e.log_sizes()["total"] for e in self.engines),
            "propagated": len(self._propagated),
            "ready_ids": len(self.ready_ids),
            "propagate_votes": len(self._propagate_votes),
            "ordered_by": len(self._ordered_by),
            "given_at": len(self._given_at),
            "request_store": len(self.request_store),
            "ic_votes": len(self._ic_votes),
            "instance_history": history,
            "executed_ids": len(self.executed_ids),
        }
        if self._cert_coalescer is not None:
            # Only on the batched path: the key must not appear in exact
            # runs, whose traced log-size emissions are pinned by the
            # replay digests.
            sizes["cert_coalescer"] = self._cert_coalescer.pending
        return sizes

    def __repr__(self) -> str:
        return "RBFTNode(%s, cpi=%d, executed=%d)" % (
            self.name,
            self.cpi,
            self.executed_count,
        )
