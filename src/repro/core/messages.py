"""RBFT-specific wire messages (§IV-B, §IV-D)."""

from __future__ import annotations

from typing import Sequence

from repro.common.types import Request
from repro.crypto.costmodel import MAC_SIZE, MESSAGE_HEADER_SIZE
from repro.crypto.primitives import MacAuthenticator
from repro.net.message import Message

__all__ = ["PropagateMsg", "InstanceChangeMsg", "FloodMsg", "InstanceBatchMsg"]


class PropagateMsg(Message):
    """Step 2: a node forwards a verified client request to all nodes.

    Carries the full request (body and client signature), so f+1
    PROPAGATE messages guarantee every correct node can obtain it.
    """

    __slots__ = ("request", "authenticator")

    def __init__(self, sender: str, request: Request, authenticator: MacAuthenticator):
        super().__init__(sender)
        self.request = request
        self.authenticator = authenticator

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + self.request.wire_size() + 4 * MAC_SIZE


class InstanceChangeMsg(Message):
    """§IV-D: a node's vote to replace every primary at once.

    ``preferred_master`` is used only in best-backup-promotion mode
    (§IV-A future work): the 2f+1 matching votes must then also agree on
    which instance becomes the new master.
    """

    __slots__ = ("cpi", "preferred_master", "authenticator")

    def __init__(
        self,
        sender: str,
        cpi: int,
        authenticator: MacAuthenticator,
        preferred_master: int = 0,
    ):
        super().__init__(sender)
        self.cpi = cpi
        self.preferred_master = preferred_master
        self.authenticator = authenticator

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 12 + 4 * MAC_SIZE


class InstanceBatchMsg(Message):
    """A certificate envelope across the f+1 ordering instances.

    Above the pacing threshold, the per-instance PRE-PREPARE / PREPARE /
    COMMIT streams between one (sender, receiver) pair carry no
    independent information — the instances order the same propagated
    requests under independent primaries — so a node coalesces a short
    window of them into one simulated message under one authenticator
    (the aggregation argument of Berger et al.; see
    docs/simulator.md "Redundant-instance batching").  The inner
    messages keep their own authenticators so per-instance dispatch
    still validates exactly as on the unbatched path; the *wire* cost
    models a single outer MAC vector plus the inner payloads without
    their per-message MAC vectors.
    """

    __slots__ = ("messages", "authenticator", "_wire_size", "_runs", "_rx_cost")

    def __init__(
        self,
        sender: str,
        messages: Sequence[Message],
        authenticator: MacAuthenticator,
    ):
        super().__init__(sender)
        self.messages = tuple(messages)
        self.authenticator = authenticator
        # One header + one outer MAC vector; each inner message sheds its
        # own MAC vector (its authenticator is checked, but not re-sent).
        self._wire_size = (
            MESSAGE_HEADER_SIZE
            + 4 * MAC_SIZE
            + sum(
                max(m.wire_size() - 4 * MAC_SIZE, 0) for m in self.messages
            )
        )
        self._runs = None
        self._rx_cost = None

    def wire_size(self) -> int:
        return self._wire_size

    def runs(self):
        """Per-instance runs of the payload, grouped once per envelope.

        A broadcast delivers the same (immutable) envelope to every
        peer, so the grouping — and the receive-cost memo the node
        layer stores in ``_rx_cost``, identical for every receiver of a
        deployment — is computed once and shared by all n-1 receivers.
        """
        runs = self._runs
        if runs is None:
            from repro.common.batching import group_by_instance

            runs = self._runs = group_by_instance(self.messages)
        return runs


class FloodMsg(Message):
    """An invalid maximal-size message used by flooding attackers (§VI-C).

    The receiver pays the bandwidth and a MAC verification before it can
    discard it — unless it has already closed the sender's NIC (§V).
    """

    __slots__ = ("size", "authenticator")

    def __init__(self, sender: str, size: int):
        super().__init__(sender)
        self.size = size
        self.authenticator = MacAuthenticator.corrupt(sender)

    def wire_size(self) -> int:
        return self.size
