"""RBFT-specific wire messages (§IV-B, §IV-D)."""

from __future__ import annotations

from repro.common.types import Request
from repro.crypto.costmodel import MAC_SIZE, MESSAGE_HEADER_SIZE
from repro.crypto.primitives import MacAuthenticator
from repro.net.message import Message

__all__ = ["PropagateMsg", "InstanceChangeMsg", "FloodMsg"]


class PropagateMsg(Message):
    """Step 2: a node forwards a verified client request to all nodes.

    Carries the full request (body and client signature), so f+1
    PROPAGATE messages guarantee every correct node can obtain it.
    """

    __slots__ = ("request", "authenticator")

    def __init__(self, sender: str, request: Request, authenticator: MacAuthenticator):
        super().__init__(sender)
        self.request = request
        self.authenticator = authenticator

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + self.request.wire_size() + 4 * MAC_SIZE


class InstanceChangeMsg(Message):
    """§IV-D: a node's vote to replace every primary at once.

    ``preferred_master`` is used only in best-backup-promotion mode
    (§IV-A future work): the 2f+1 matching votes must then also agree on
    which instance becomes the new master.
    """

    __slots__ = ("cpi", "preferred_master", "authenticator")

    def __init__(
        self,
        sender: str,
        cpi: int,
        authenticator: MacAuthenticator,
        preferred_master: int = 0,
    ):
        super().__init__(sender)
        self.cpi = cpi
        self.preferred_master = preferred_master
        self.authenticator = authenticator

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 12 + 4 * MAC_SIZE


class FloodMsg(Message):
    """An invalid maximal-size message used by flooding attackers (§VI-C).

    The receiver pays the bandwidth and a MAC verification before it can
    discard it — unless it has already closed the sender's NIC (§V).
    """

    __slots__ = ("size", "authenticator")

    def __init__(self, sender: str, size: int):
        super().__init__(sender)
        self.size = size
        self.authenticator = MacAuthenticator.corrupt(sender)

    def wire_size(self) -> int:
        return self.size
