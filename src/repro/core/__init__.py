"""RBFT: the paper's primary contribution (§IV, §V)."""

from .config import RBFTConfig
from .messages import FloodMsg, InstanceChangeMsg, PropagateMsg
from .monitoring import InstanceMonitor
from .node import InstanceTransport, RBFTNode

__all__ = [
    "RBFTConfig",
    "RBFTNode",
    "InstanceTransport",
    "InstanceMonitor",
    "FloodMsg",
    "InstanceChangeMsg",
    "PropagateMsg",
]
