"""Open-loop clients and workload generation."""

from .closedloop import ClosedLoopClient
from .openloop import OpenLoopClient
from .workloads import LoadGenerator, RateProfile, dynamic_profile, static_profile

__all__ = [
    "ClosedLoopClient",
    "OpenLoopClient",
    "LoadGenerator",
    "RateProfile",
    "dynamic_profile",
    "static_profile",
]
