"""Open-loop clients, populations and workload generation."""

from .closedloop import ClosedLoopClient
from .openloop import OpenLoopClient
from .population import ClientPopulation
from .registry import (
    POPULATION_THRESHOLD,
    Workload,
    WorkloadSpec,
    build_profile,
)
from .registry import get as get_workload
from .registry import names as workload_names
from .workloads import (
    LoadGenerator,
    RateProfile,
    churn_profile,
    diurnal_profile,
    dynamic_profile,
    flash_crowd_profile,
    heavy_mix_profile,
    static_profile,
)

__all__ = [
    "ClosedLoopClient",
    "OpenLoopClient",
    "ClientPopulation",
    "LoadGenerator",
    "RateProfile",
    "Workload",
    "WorkloadSpec",
    "POPULATION_THRESHOLD",
    "build_profile",
    "get_workload",
    "workload_names",
    "dynamic_profile",
    "static_profile",
    "diurnal_profile",
    "flash_crowd_profile",
    "churn_profile",
    "heavy_mix_profile",
]
