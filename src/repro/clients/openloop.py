"""Open-loop clients.

RBFT explicitly targets open-loop systems (§II): clients send requests
on their own schedule without waiting for replies.  A request completes
when f+1 valid matching REPLY messages from distinct nodes arrive
(§IV-B step 6).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.common.cluster import Cluster
from repro.common.quorum import VectorQuorumTracker, weak_quorum_size
from repro.common.types import Request
from repro.crypto.primitives import MacAuthenticator, Signature
from repro.metrics.recorder import LatencyRecorder
from repro.net.message import Message
from repro.protocols.base import ClientRequestMsg, ReplyMsg

__all__ = ["OpenLoopClient"]


class OpenLoopClient:
    """One client identity attached to the cluster."""

    def __init__(
        self,
        cluster: Cluster,
        name: str,
        payload_size: int = 8,
        broadcast: bool = True,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.name = name
        self.payload_size = payload_size
        self.broadcast = broadcast
        self.port = cluster.add_client(name)
        self.port.handler = self._on_message

        self._next_rid = 0
        self._sent_at: Dict[int, float] = {}
        self._reply_votes = VectorQuorumTracker(
            weak_quorum_size(cluster.f), cluster.senders
        )
        self.latencies = LatencyRecorder()
        self.sent = 0
        self.completed = 0

    # ---------------------------------------------------------------- send
    def send_request(
        self,
        exec_cost: Optional[float] = None,
        payload_size: Optional[int] = None,
        signature_valid: bool = True,
        mac_invalid_for: Optional[Iterable[str]] = None,
        targets: Optional[Iterable[str]] = None,
    ) -> Request:
        """Issue one request.

        The fault knobs model the colluding-client behaviours of §VI-C:
        ``signature_valid=False`` sends unfaithful requests that cost the
        nodes a signature verification and get the client blacklisted;
        ``mac_invalid_for`` corrupts the authenticator entry of selected
        nodes; ``targets`` restricts which nodes receive the request at
        all; ``exec_cost`` issues the heavy requests of the Prime attack.
        """
        self._next_rid += 1
        rid = self._next_rid
        request = Request(
            client=self.name,
            rid=rid,
            payload_size=payload_size if payload_size is not None else self.payload_size,
            signature=(
                Signature.for_signer(self.name)
                if signature_valid
                else Signature(self.name, valid=False)
            ),
            authenticator=(
                MacAuthenticator(self.name, invalid_for=frozenset(mac_invalid_for))
                if mac_invalid_for
                else MacAuthenticator.for_signer(self.name)
            ),
            exec_cost=exec_cost,
            sent_at=self.sim.now,
        )
        self._sent_at[rid] = self.sim.now
        self.sent += 1
        msg = ClientRequestMsg(request)
        if targets is None and self.broadcast:
            self.port.broadcast(msg)
        else:
            for dst in targets if targets is not None else []:
                self.port.send_to_node(dst, msg)
        return request

    # -------------------------------------------------------------- replies
    def _on_message(self, msg: Message) -> None:
        if not isinstance(msg, ReplyMsg):
            return
        reply = msg.reply
        if reply.client != self.name or not msg.mac.valid:
            return
        sent = self._sent_at.get(reply.rid)
        if sent is None:
            return
        if self._reply_votes.add((reply.rid, reply.result), msg.sender):
            self.completed += 1
            self.latencies.record(self.sim.now - sent)
            del self._sent_at[reply.rid]
            # Late replies for this rid short-circuit on ``_sent_at``
            # above, so the vote state is unreachable — drop it rather
            # than let it grow with every request ever completed.
            self._reply_votes.discard((reply.rid, reply.result))

    # ------------------------------------------------------------- mesoscale
    def time_shift(self, dt: float) -> None:
        """Shift absolute-time state after a mesoscale clock jump.

        In-flight requests move their send timestamps with the clock so
        completion latency (``now - sent``) measures simulated time
        only, not the deleted steady-state window.
        """
        if self._sent_at:
            self._sent_at = {rid: t + dt for rid, t in self._sent_at.items()}

    # ----------------------------------------------------------- inspection
    @property
    def outstanding(self) -> int:
        return len(self._sent_at)

    def __repr__(self) -> str:
        return "OpenLoopClient(%s, sent=%d, completed=%d)" % (
            self.name,
            self.sent,
            self.completed,
        )
