"""The workload registry: named traffic models behind a stable API.

Mirrors the protocol registry (``repro.protocols.registry``): the
experiment layer asks for workloads **by name** and receives a
:class:`WorkloadSpec` that knows how to build the rate profile, pick a
default client count and derive an offered rate from a capacity probe.
``Scenario(workload=...)`` resolves through here; nothing outside this
package constructs profile objects directly (``tools/lint_builders.py``
enforces it).

Two values make up the surface:

* :class:`Workload` — a frozen value object replacing the scattered
  ``load``/``rate``/``n_clients`` trio.  ``Workload("diurnal")`` is a
  million-client day-in-the-life run; ``Workload("static", rate=2000.0,
  clients=4)`` is the classic saturating load.
* :class:`WorkloadSpec` — one registered pack: profile factory +
  defaults.  :func:`register` adds new packs; :func:`names` lists them.

Populations are opt-in per workload: ``population=None`` (the default)
explodes small client counts into real simulator objects — keeping
every pre-existing seeded run byte-identical — and aggregates only when
the declared count reaches :data:`POPULATION_THRESHOLD`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .workloads import (
    RateProfile,
    churn_profile,
    diurnal_profile,
    dynamic_profile,
    flash_crowd_profile,
    heavy_mix_profile,
    static_profile,
)

__all__ = [
    "POPULATION_THRESHOLD",
    "Workload",
    "WorkloadSpec",
    "register",
    "get",
    "names",
    "build_profile",
]

#: declared client counts at or above this aggregate into a
#: :class:`~repro.clients.population.ClientPopulation` unless the
#: workload pins ``population`` explicitly.  Below it, clients explode
#: into real objects — the regime every pre-population seeded run
#: (n_clients ≤ 50) lives in, so their behaviour is untouched.
POPULATION_THRESHOLD = 256

#: legacy shape aliases accepted by :class:`Workload`.
_ALIASES = {"dynamic": "spike"}


@dataclass(frozen=True)
class Workload:
    """What load to offer: a named shape plus its knobs.

    ``shape`` names a registered pack; ``rate`` is the aggregate offered
    rate in requests/second (``None`` derives it from a capacity probe);
    ``clients`` is the declared population size (``None`` uses the
    pack's default); ``population`` forces (``True``) or forbids
    (``False``) population aggregation, with ``None`` deciding by
    :data:`POPULATION_THRESHOLD`; ``sampling`` picks how a population
    assigns identities (``"paced"`` round-robin — byte-comparable to
    exploded clients — or ``"uniform"`` random draws).
    """

    shape: str = "static"
    rate: Optional[float] = None
    clients: Optional[int] = None
    population: Optional[bool] = None
    sampling: str = "paced"

    def __post_init__(self):
        shape = _ALIASES.get(self.shape, self.shape)
        if shape != self.shape:
            object.__setattr__(self, "shape", shape)
        get(shape)  # raises on unknown shapes
        if self.sampling not in ("paced", "uniform"):
            raise ValueError(
                "unknown sampling %r (expected 'paced' or 'uniform')"
                % (self.sampling,)
            )
        if self.clients is not None and self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive")


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload pack."""

    name: str
    description: str
    #: payload size -> default declared client count.
    default_clients: Callable[[int], int]
    #: (rate, duration, payload, clients) -> the rate profile.
    profile_factory: Callable[[float, float, int, int], RateProfile]
    #: probed single-run capacity -> offered rate when ``rate`` is None.
    probe_rate: Callable[[float], float]
    #: True when the workload's shape spans the whole run (spikes,
    #: sinusoids): warmup defaults to 0 and the reported offered rate is
    #: the profile's time average rather than the instantaneous rate.
    whole_run: bool = False


_REGISTRY: Dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    """Add a workload pack; later registrations override earlier ones."""
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> WorkloadSpec:
    """Look up a pack by name (legacy aliases accepted)."""
    _populate()
    try:
        return _REGISTRY[_ALIASES.get(name, name)]
    except KeyError:
        raise ValueError(
            "unknown workload %r (expected one of %s)"
            % (name, ", ".join(sorted(_REGISTRY)))
        ) from None


def names() -> List[str]:
    """Canonical pack names, sorted."""
    _populate()
    return sorted(_REGISTRY)


def build_profile(
    name: str,
    rate: float,
    duration: float,
    payload: int = 8,
    clients: Optional[int] = None,
) -> RateProfile:
    """Build the named pack's profile (the one constructor entry point)."""
    spec = get(name)
    if clients is None:
        clients = spec.default_clients(payload)
    return spec.profile_factory(rate, duration, payload, clients)


def _spike_clients(payload: int) -> int:
    # §VI-A sizing: large payloads saturate with fewer clients.  The
    # spike head count derives from the payload even when the declared
    # client count is overridden — pre-registry seeded runs depend on it.
    return 50 if payload <= 512 else 18


def _populate() -> None:
    if _REGISTRY:
        return
    register(WorkloadSpec(
        name="static",
        description="saturating constant load (§VI-A static workload)",
        default_clients=lambda payload: 12,
        # The profile's own active-client window stays at its classic
        # value of 10 regardless of the declared count: seeded static
        # runs round-robin over min(10, clients) identities.
        profile_factory=lambda rate, duration, payload, clients:
            static_profile(rate, duration),
        probe_rate=lambda capacity: 1.25 * capacity,
        whole_run=False,
    ))
    register(WorkloadSpec(
        name="spike",
        description="1→10→50→1 client spike (§VI-A dynamic workload)",
        default_clients=_spike_clients,
        profile_factory=lambda rate, duration, payload, clients:
            dynamic_profile(rate, duration, spike_clients=_spike_clients(payload)),
        probe_rate=lambda capacity: capacity / 12.0,
        whole_run=True,
    ))
    register(WorkloadSpec(
        name="diurnal",
        description="day-in-the-life sinusoid over a million-user population",
        default_clients=lambda payload: 1_000_000,
        profile_factory=lambda rate, duration, payload, clients:
            diurnal_profile(rate, duration, clients=clients),
        probe_rate=lambda capacity: 0.9 * capacity,
        whole_run=True,
    ))
    register(WorkloadSpec(
        name="flash-crowd",
        description="baseline load with a 5x surge window (generalised spike)",
        default_clients=lambda payload: 1_000_000,
        profile_factory=lambda rate, duration, payload, clients:
            flash_crowd_profile(rate, duration, clients=clients),
        # The surge multiplies the baseline 5x over 15% of the run;
        # probe low enough that the surge itself stays near capacity.
        probe_rate=lambda capacity: capacity / 6.0,
        whole_run=True,
    ))
    register(WorkloadSpec(
        name="churn",
        description="constant load with the active identity window rolling "
                    "through the population",
        default_clients=lambda payload: 1_000_000,
        profile_factory=lambda rate, duration, payload, clients:
            churn_profile(rate, duration, clients=clients),
        probe_rate=lambda capacity: 0.8 * capacity,
        whole_run=False,
    ))
    register(WorkloadSpec(
        name="heavy-mix",
        description="constant load with periodic 1-4 KiB heavy requests",
        default_clients=lambda payload: 10_000,
        profile_factory=lambda rate, duration, payload, clients:
            heavy_mix_profile(rate, duration, clients=clients),
        probe_rate=lambda capacity: 0.5 * capacity,
        whole_run=False,
    ))
