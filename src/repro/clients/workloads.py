"""Workload generation: static and dynamic loads (§VI-A).

The paper uses two workloads:

* **static** — the system is saturated; clients send at a constant rate;
* **dynamic** — "the experiment starts with a single client.  We then
  progressively increase the number of clients up to 10.  Then we
  simulate a load spike, with 50 clients.  At last, the number of
  clients progressively decreases, until there is only one client".

We reproduce the dynamic shape as a piecewise client-count profile
multiplied by a per-client request rate.  A single generator process
produces the aggregate arrival stream, tagging arrivals with client
identities round-robin over the active clients (so per-client fairness
monitoring still sees individual clients).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.sim.engine import Simulator

from .openloop import OpenLoopClient

__all__ = [
    "RateProfile",
    "static_profile",
    "dynamic_profile",
    "LoadGenerator",
]


@dataclass(frozen=True)
class RateProfile:
    """A time-varying offered load."""

    rate_fn: Callable[[float], float]  # time -> aggregate requests/second
    active_fn: Callable[[float], int]  # time -> number of active clients
    duration: float
    #: times (relative to profile start) where the rate/client count may
    #: change.  ``()`` declares the profile piecewise-constant with no
    #: interior changes (static load); ``None`` — the default for
    #: hand-built profiles — means "unknown", which disables mesoscale
    #: fast-forward (the controller cannot bound a steady-state window
    #: without knowing where the load next shifts).
    boundaries: Optional[tuple] = None

    def rate(self, t: float) -> float:
        return max(0.0, self.rate_fn(t))

    def active(self, t: float) -> int:
        return max(1, self.active_fn(t))

    def mean_rate(self, samples: int = 4096) -> float:
        """Time-averaged offered rate over the profile's duration.

        Computed numerically (midpoint rule) so it is exact for the
        piecewise-constant profiles used here up to phase-boundary
        rounding; for a static profile it equals the constant rate.
        """
        if self.duration <= 0 or samples <= 0:
            return 0.0
        step = self.duration / samples
        total = 0.0
        for i in range(samples):
            total += self.rate((i + 0.5) * step)
        return total / samples


def static_profile(rate: float, duration: float, clients: int = 10) -> RateProfile:
    """A saturating constant load."""
    return RateProfile(lambda t: rate, lambda t: clients, duration, boundaries=())


def dynamic_profile(
    per_client_rate: float,
    duration: float,
    ramp_clients: int = 10,
    spike_clients: int = 50,
) -> RateProfile:
    """The paper's spike workload, scaled to ``duration``.

    Phases (fractions of the experiment): ramp 1→10 clients (30 %),
    spike at 50 clients (20 %), ramp 10→1 clients (30 %), with plateaus
    around the spike (20 % combined).
    """

    def clients_at(t: float) -> int:
        x = t / duration
        if x < 0.30:  # ramp up 1 -> ramp_clients
            return 1 + int((ramp_clients - 1) * (x / 0.30))
        if x < 0.40:  # plateau before the spike
            return ramp_clients
        if x < 0.60:  # load spike
            return spike_clients
        if x < 0.70:  # plateau after the spike
            return ramp_clients
        if x <= 1.0:  # ramp down ramp_clients -> 1
            return max(1, ramp_clients - int((ramp_clients - 1) * ((x - 0.70) / 0.30)))
        return 1

    return RateProfile(
        lambda t: clients_at(t) * per_client_rate,
        clients_at,
        duration,
        # The ramps change the client count once per head count step;
        # conservatively mark every step time so fast-forward never
        # jumps across a rate change.
        boundaries=tuple(sorted(
            {duration * x for x in (0.30, 0.40, 0.60, 0.70)}
            | {duration * (0.30 * (i / max(1, ramp_clients - 1)))
               for i in range(1, ramp_clients)}
            | {duration * (0.70 + 0.30 * (i / max(1, ramp_clients - 1)))
               for i in range(1, ramp_clients)}
        )),
    )


class LoadGenerator:
    """Drives a pool of open-loop clients according to a profile."""

    def __init__(
        self,
        sim: Simulator,
        clients: Sequence[OpenLoopClient],
        profile: RateProfile,
        rng,
        poisson: bool = True,
        send_kwargs: Optional[dict] = None,
    ):
        if not clients:
            raise ValueError("need at least one client")
        self.sim = sim
        self.clients = list(clients)
        self.profile = profile
        self.rng = rng
        self.poisson = poisson
        self.send_kwargs = send_kwargs or {}
        self._round_robin = 0
        self.generated = 0
        self._process = None

    def start(self):
        self._process = self.sim.process(self._run(), name="load-generator")
        return self._process

    def _run(self):
        start = self.sim.now
        end = start + self.profile.duration
        while self.sim.now < end:
            t = self.sim.now - start
            rate = self.profile.rate(t)
            if rate <= 0:
                yield self.sim.timeout(1e-3)
                continue
            if self.poisson:
                gap = self.rng.expovariate(rate)
            else:
                gap = 1.0 / rate
            if self.sim.now + gap >= end:
                break
            yield self.sim.timeout(gap)
            self._fire(self.sim.now - start)

    def _fire(self, t: float) -> None:
        active = min(self.profile.active(t), len(self.clients))
        client = self.clients[self._round_robin % active]
        self._round_robin += 1
        client.send_request(**self.send_kwargs)
        self.generated += 1

    # ----------------------------------------------------------- aggregates
    def total_completed(self) -> int:
        return sum(client.completed for client in self.clients)

    def total_sent(self) -> int:
        return sum(client.sent for client in self.clients)

    def mean_latency(self) -> float:
        """Exact mean over every completed request (streaming totals)."""
        total = 0.0
        count = 0
        for client in self.clients:
            total += client.latencies.total
            count += client.latencies.count
        return total / count if count else 0.0

    def latency_percentile(self, p: float) -> float:
        """Percentile over each client's retained sample window."""
        samples: List[float] = []
        for client in self.clients:
            samples.extend(client.latencies.samples)
        if not samples:
            return 0.0
        ordered = sorted(samples)
        rank = (len(ordered) - 1) * p
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac
