"""Workload generation: §VI-A loads plus day-in-the-life traffic models.

The paper uses two workloads:

* **static** — the system is saturated; clients send at a constant rate;
* **dynamic** — "the experiment starts with a single client.  We then
  progressively increase the number of clients up to 10.  Then we
  simulate a load spike, with 50 clients.  At last, the number of
  clients progressively decreases, until there is only one client".

We reproduce the dynamic shape as a piecewise client-count profile
multiplied by a per-client request rate.  A single generator process
produces the aggregate arrival stream, tagging arrivals with client
identities round-robin over the active clients (so per-client fairness
monitoring still sees individual clients).

Beyond the paper, this module ships production-shaped profiles for the
workload registry (:mod:`repro.clients.registry`): a quantized diurnal
sinusoid, a flash crowd, rolling client churn and a heavy-request
payload mix.  All are piecewise-constant with populated ``boundaries``
so the mesoscale fast-forward mode can still bound its steady-state
windows.

Construct profiles through :func:`repro.clients.registry.build_profile`
— the constructors here are the registry's implementation detail
(enforced by ``tools/lint_builders.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.sim.engine import Simulator

from .openloop import OpenLoopClient
from .population import ClientPopulation

__all__ = [
    "RateProfile",
    "static_profile",
    "dynamic_profile",
    "diurnal_profile",
    "flash_crowd_profile",
    "churn_profile",
    "heavy_mix_profile",
    "LoadGenerator",
]


@dataclass(frozen=True)
class RateProfile:
    """A time-varying offered load."""

    rate_fn: Callable[[float], float]  # time -> aggregate requests/second
    active_fn: Callable[[float], int]  # time -> number of active clients
    duration: float
    #: times (relative to profile start) where the rate/client count may
    #: change.  ``()`` declares the profile piecewise-constant with no
    #: interior changes (static load); ``None`` — the default for
    #: hand-built profiles — means "unknown", which disables mesoscale
    #: fast-forward (the controller cannot bound a steady-state window
    #: without knowing where the load next shifts).
    boundaries: Optional[tuple] = None
    #: rolling-churn support: maps time to the index of the first client
    #: in the currently-active identity window.  ``None`` (the default)
    #: keeps the classic fixed round-robin assignment.
    window_fn: Optional[Callable[[float], int]] = None
    #: per-request payload mix: a cyclic tuple of ``(payload_size,
    #: exec_cost)`` overrides applied round-robin to generated requests;
    #: ``None`` entries inside a pair fall through to the client/default
    #: values.  ``None`` (the default) sends the plain request mix.
    mix: Optional[Tuple[Tuple[Optional[int], Optional[float]], ...]] = None

    def rate(self, t: float) -> float:
        return max(0.0, self.rate_fn(t))

    def active(self, t: float) -> int:
        return max(1, self.active_fn(t))

    def mean_rate(self, samples: int = 4096) -> float:
        """Time-averaged offered rate over the profile's duration.

        Computed numerically (midpoint rule) so it is exact for the
        piecewise-constant profiles used here up to phase-boundary
        rounding; for a static profile it equals the constant rate.
        """
        if self.duration <= 0 or samples <= 0:
            return 0.0
        step = self.duration / samples
        total = 0.0
        for i in range(samples):
            total += self.rate((i + 0.5) * step)
        return total / samples


def static_profile(rate: float, duration: float, clients: int = 10) -> RateProfile:
    """A saturating constant load."""
    return RateProfile(lambda t: rate, lambda t: clients, duration, boundaries=())


def dynamic_profile(
    per_client_rate: float,
    duration: float,
    ramp_clients: int = 10,
    spike_clients: int = 50,
) -> RateProfile:
    """The paper's spike workload, scaled to ``duration``.

    Phases (fractions of the experiment): ramp 1→10 clients (30 %),
    spike at 50 clients (20 %), ramp 10→1 clients (30 %), with plateaus
    around the spike (20 % combined).
    """

    def clients_at(t: float) -> int:
        x = t / duration
        if x < 0.30:  # ramp up 1 -> ramp_clients
            return 1 + int((ramp_clients - 1) * (x / 0.30))
        if x < 0.40:  # plateau before the spike
            return ramp_clients
        if x < 0.60:  # load spike
            return spike_clients
        if x < 0.70:  # plateau after the spike
            return ramp_clients
        if x <= 1.0:  # ramp down ramp_clients -> 1
            return max(1, ramp_clients - int((ramp_clients - 1) * ((x - 0.70) / 0.30)))
        return 1

    return RateProfile(
        lambda t: clients_at(t) * per_client_rate,
        clients_at,
        duration,
        # The ramps change the client count once per head count step;
        # conservatively mark every step time so fast-forward never
        # jumps across a rate change.
        boundaries=tuple(sorted(
            {duration * x for x in (0.30, 0.40, 0.60, 0.70)}
            | {duration * (0.30 * (i / max(1, ramp_clients - 1)))
               for i in range(1, ramp_clients)}
            | {duration * (0.70 + 0.30 * (i / max(1, ramp_clients - 1)))
               for i in range(1, ramp_clients)}
        )),
    )


def diurnal_profile(
    peak_rate: float,
    duration: float,
    clients: int = 10,
    steps: int = 24,
    floor: float = 0.1,
) -> RateProfile:
    """A day-in-the-life sinusoid quantized to ``steps`` constant levels.

    The run maps onto one simulated "day": load starts near the
    ``floor`` fraction of ``peak_rate`` (night), rises through a midday
    peak and falls back.  Quantizing to piecewise-constant hourly levels
    keeps the profile mesoscale-friendly: every level change is a
    declared boundary.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    step = duration / steps
    levels = tuple(
        peak_rate * (
            floor
            + (1.0 - floor) * 0.5 * (1.0 - math.cos(2.0 * math.pi * (i + 0.5) / steps))
        )
        for i in range(steps)
    )

    def rate_at(t: float) -> float:
        return levels[min(steps - 1, max(0, int(t / step)))]

    return RateProfile(
        rate_at,
        lambda t: clients,
        duration,
        boundaries=tuple(step * i for i in range(1, steps)),
    )


def flash_crowd_profile(
    base_rate: float,
    duration: float,
    clients: int = 10,
    surge: float = 5.0,
    start: float = 0.45,
    end: float = 0.60,
) -> RateProfile:
    """A flash crowd: baseline load with a ``surge``× burst window.

    Outside the burst only a tenth of the declared population is
    active; the burst window activates everyone at ``surge`` times the
    baseline rate — the §VI-A spike generalised to arbitrary
    population sizes.
    """
    if not 0.0 <= start < end <= 1.0:
        raise ValueError("surge window must satisfy 0 <= start < end <= 1")
    lo = start * duration
    hi = end * duration

    def rate_at(t: float) -> float:
        return base_rate * surge if lo <= t < hi else base_rate

    def active_at(t: float) -> int:
        return clients if lo <= t < hi else max(1, clients // 10)

    return RateProfile(rate_at, active_at, duration, boundaries=(lo, hi))


def churn_profile(
    rate: float,
    duration: float,
    clients: int = 10,
    window_fraction: float = 0.1,
) -> RateProfile:
    """Rolling client churn: a sliding window of active identities.

    The offered rate is constant, but the set of identities issuing
    requests rolls through the whole declared population over the run —
    ``window_fraction`` of the population is active at any instant, and
    the window's start index advances linearly with time.  Exercises
    blacklist/fairness state growth under identity turnover.
    """
    if not 0.0 < window_fraction <= 1.0:
        raise ValueError("window_fraction must be in (0, 1]")
    window = max(1, int(clients * window_fraction))
    return RateProfile(
        lambda t: rate,
        lambda t: window,
        duration,
        boundaries=(),
        window_fn=lambda t: int((t / duration) * clients) if duration > 0 else 0,
    )


def heavy_mix_profile(
    rate: float,
    duration: float,
    clients: int = 10,
    heavy_cost: float = 200e-6,
) -> RateProfile:
    """A payload mix with periodic heavy requests (Prime-attack shaped).

    Seven of every eight requests are plain; the sixth carries a 1 KiB
    payload and the eighth a 4 KiB payload with an inflated execution
    cost — the "heavy requests" lever of §VI-C issued as legitimate
    traffic, stressing batching and fairness under mixed request sizes.
    """
    return RateProfile(
        lambda t: rate,
        lambda t: clients,
        duration,
        boundaries=(),
        mix=(
            (None, None), (None, None), (None, None), (None, None),
            (None, None), (1024, None), (None, None), (4096, heavy_cost),
        ),
    )


class LoadGenerator:
    """Drives a pool of open-loop clients according to a profile.

    ``clients`` may be a sequence of :class:`OpenLoopClient` (each
    request goes to one concrete client object) or a single
    :class:`ClientPopulation` (requests carry sampled virtual
    identities).  Either way, one generator process produces the
    aggregate arrival stream.
    """

    def __init__(
        self,
        sim: Simulator,
        clients: Union[Sequence[OpenLoopClient], ClientPopulation],
        profile: RateProfile,
        rng,
        poisson: bool = True,
        send_kwargs: Optional[dict] = None,
    ):
        if isinstance(clients, ClientPopulation):
            self.population: Optional[ClientPopulation] = clients
            # The population quacks like one client for the aggregate
            # accessors below (sent/completed/latencies), so a
            # population run is a one-element pool.
            self.clients = [clients]
        else:
            if not clients:
                raise ValueError("need at least one client")
            self.population = None
            self.clients = list(clients)
        self.sim = sim
        self.profile = profile
        self.rng = rng
        self.poisson = poisson
        self.send_kwargs = send_kwargs or {}
        self._round_robin = 0
        self.generated = 0
        self._process = None

    def start(self):
        self._process = self.sim.process(self._run(), name="load-generator")
        return self._process

    def _run(self):
        start = self.sim.now
        end = start + self.profile.duration
        while self.sim.now < end:
            t = self.sim.now - start
            rate = self.profile.rate(t)
            if rate <= 0:
                yield self.sim.timeout(1e-3)
                continue
            if self.poisson:
                gap = self.rng.expovariate(rate)
            else:
                gap = 1.0 / rate
            if self.sim.now + gap >= end:
                break
            yield self.sim.timeout(gap)
            self._fire(self.sim.now - start)

    def _fire(self, t: float) -> None:
        profile = self.profile
        kwargs = self.send_kwargs
        if profile.mix is not None:
            payload_size, exec_cost = profile.mix[self.generated % len(profile.mix)]
            if payload_size is not None or exec_cost is not None:
                kwargs = dict(kwargs)
                if payload_size is not None:
                    kwargs["payload_size"] = payload_size
                if exec_cost is not None:
                    kwargs["exec_cost"] = exec_cost
        population = self.population
        if population is not None:
            if population.sampling == "uniform":
                population.send_request(None, **kwargs)
            else:
                active = min(profile.active(t), population.size)
                index = self._round_robin % active
                if profile.window_fn is not None:
                    index = (profile.window_fn(t) + index) % population.size
                self._round_robin += 1
                population.send_request(index, **kwargs)
        else:
            active = min(profile.active(t), len(self.clients))
            index = self._round_robin % active
            if profile.window_fn is not None:
                index = (profile.window_fn(t) + index) % len(self.clients)
            self._round_robin += 1
            self.clients[index].send_request(**kwargs)
        self.generated += 1

    # ----------------------------------------------------------- aggregates
    def total_completed(self) -> int:
        return sum(client.completed for client in self.clients)

    def total_sent(self) -> int:
        return sum(client.sent for client in self.clients)

    def mean_latency(self) -> float:
        """Exact mean over every completed request (streaming totals)."""
        total = 0.0
        count = 0
        for client in self.clients:
            total += client.latencies.total
            count += client.latencies.count
        return total / count if count else 0.0

    def latency_percentile(self, p: float) -> float:
        """Percentile over each client's retained sample window."""
        samples: List[float] = []
        for client in self.clients:
            samples.extend(client.latencies.samples)
        if not samples:
            return 0.0
        ordered = sorted(samples)
        rank = (len(ordered) - 1) * p
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac
