"""Closed-loop clients — the regime RBFT explicitly does *not* target.

§II: "We address in this paper the problem of robust BFT state machine
replication in open-loop systems", and §I explains why: "in a closed
loop system, the rate of incoming requests would be conditioned by the
rate of the master instance.  Said differently, backup instances would
never be faster than the master instance."

This module implements that regime so the claim can be *demonstrated*:
under a closed-loop load, a delaying master primary throttles the
arrival process itself, the backup instances starve equally, the Δ ratio
stays at 1, and the throughput monitoring is blind (see
``tests/core/test_closed_loop.py`` and the ablation benchmark).
"""

from __future__ import annotations

from typing import Optional

from repro.common.cluster import Cluster
from repro.net.message import Message
from repro.protocols.base import ReplyMsg

from .openloop import OpenLoopClient

__all__ = ["ClosedLoopClient"]


class ClosedLoopClient(OpenLoopClient):
    """Sends the next request only after the previous one completed.

    ``think_time`` is the classic closed-loop pause between receiving a
    reply and issuing the next request ([17] in the paper).
    """

    def __init__(
        self,
        cluster: Cluster,
        name: str,
        payload_size: int = 8,
        think_time: float = 0.0,
        send_kwargs: Optional[dict] = None,
    ):
        super().__init__(cluster, name, payload_size=payload_size)
        self.think_time = think_time
        self.send_kwargs = send_kwargs or {}
        self._running = False

    def start(self) -> None:
        """Begin the request loop (stops with :meth:`stop`)."""
        self._running = True
        self._issue()

    def stop(self) -> None:
        self._running = False

    def _issue(self) -> None:
        if self._running:
            self.send_request(**self.send_kwargs)

    def _on_message(self, msg: Message) -> None:
        completed_before = self.completed
        super()._on_message(msg)
        if not self._running or self.completed == completed_before:
            return
        if isinstance(msg, ReplyMsg):
            if self.think_time > 0:
                self.sim.call_after(self.think_time, self._issue)
            else:
                self._issue()
