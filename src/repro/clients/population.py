"""Client populations: millions of users behind one event source.

Every :class:`~repro.clients.openloop.OpenLoopClient` is a simulator
object with its own port and 2n channels, which caps realistic client
counts at a few thousand.  A :class:`ClientPopulation` models a whole
*population* as a single superposed arrival process instead: one
cluster port carries the aggregate stream, and each request samples a
client *identity* on demand from the declared population size.  A
scenario can therefore declare 10^6 users at production request rates
while the simulator holds exactly one object.

Identities are virtual: request ``client`` ids take the form
``"<population>#<index>"`` with ``index < size``.  Everything the
protocol side does per client — signature blacklisting, per-client
fairness monitoring, reply caching — keys on that id and therefore
operates per sampled identity, exactly as it would with exploded
clients.  Reply routing resolves the owner prefix back to the
population's port (see ``Machine.channel_to_client``).

Determinism contract:

* request ids are globally unique across identities (a single counter),
  so reply-quorum tracking keyed ``(rid, result)`` needs no per-identity
  state;
* ``sampling="paced"`` assigns identities round-robin over the
  profile's active window — byte-identical identity sequence to a
  :class:`LoadGenerator` over ``size`` exploded clients;
* ``sampling="uniform"`` draws identities from a dedicated named RNG
  stream (``cluster.rng.stream("population")``), so enabling it never
  perturbs the arrival process or any other seeded stream.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.common.cluster import Cluster
from repro.common.quorum import VectorQuorumTracker, weak_quorum_size
from repro.common.types import Request
from repro.crypto.primitives import MacAuthenticator, Signature
from repro.metrics.recorder import LatencyRecorder
from repro.net.message import Message
from repro.protocols.base import ClientRequestMsg, ReplyMsg

__all__ = ["ClientPopulation"]


class ClientPopulation:
    """A declared population of clients sharing one cluster port.

    Quacks like a single :class:`OpenLoopClient` for everything the
    harness aggregates over — ``sent``/``completed``/``latencies``/
    ``outstanding``/``time_shift`` — so :class:`LoadGenerator` and the
    mesoscale controller treat a population run as a one-client pool.
    """

    def __init__(
        self,
        cluster: Cluster,
        size: int,
        payload_size: int = 8,
        name: str = "pop0",
        sampling: str = "paced",
        broadcast: bool = True,
    ):
        if size < 1:
            raise ValueError("population size must be >= 1")
        if sampling not in ("paced", "uniform"):
            raise ValueError(
                "unknown sampling %r (expected 'paced' or 'uniform')" % (sampling,)
            )
        self.cluster = cluster
        self.sim = cluster.sim
        self.name = name
        self.size = size
        self.payload_size = payload_size
        self.sampling = sampling
        self.broadcast = broadcast
        self.port = cluster.add_client(name)
        self.port.handler = self._on_message
        #: dedicated identity-sampling stream; drawing from it never
        #: advances the "load"/"network" streams of existing runs.
        self._rng = cluster.rng.stream("population")

        self._next_rid = 0
        self._sent_at: Dict[int, float] = {}
        self._reply_votes = VectorQuorumTracker(
            weak_quorum_size(cluster.f), cluster.senders
        )
        self.latencies = LatencyRecorder()
        self.sent = 0
        self.completed = 0
        #: distinct identity indices that have issued at least one
        #: request — observability for fairness/blacklist assertions.
        self.identities_seen: Set[int] = set()

    # ---------------------------------------------------------------- send
    def send_request(
        self,
        index: Optional[int] = None,
        exec_cost: Optional[float] = None,
        payload_size: Optional[int] = None,
        signature_valid: bool = True,
        mac_invalid_for: Optional[Iterable[str]] = None,
        targets: Optional[Iterable[str]] = None,
    ) -> Request:
        """Issue one request as identity ``index`` (sampled when None).

        The fault knobs mirror :meth:`OpenLoopClient.send_request`; they
        apply to whichever identity the request is issued as, so nodes
        blacklist (and fairness-monitor) exactly that sampled id.
        """
        if index is None:
            index = self._rng.randrange(self.size)
        elif not 0 <= index < self.size:
            raise ValueError(
                "identity index %d outside population of %d" % (index, self.size)
            )
        identity = "%s#%d" % (self.name, index)
        self._next_rid += 1
        rid = self._next_rid
        request = Request(
            client=identity,
            rid=rid,
            payload_size=payload_size if payload_size is not None else self.payload_size,
            signature=(
                Signature.for_signer(identity)
                if signature_valid
                else Signature(identity, valid=False)
            ),
            authenticator=(
                MacAuthenticator(identity, invalid_for=frozenset(mac_invalid_for))
                if mac_invalid_for
                else MacAuthenticator.for_signer(identity)
            ),
            exec_cost=exec_cost,
            sent_at=self.sim.now,
        )
        self._sent_at[rid] = self.sim.now
        self.sent += 1
        self.identities_seen.add(index)
        msg = ClientRequestMsg(request)
        if targets is None and self.broadcast:
            self.port.broadcast(msg)
        else:
            for dst in targets if targets is not None else []:
                self.port.send_to_node(dst, msg)
        return request

    # -------------------------------------------------------------- replies
    def _on_message(self, msg: Message) -> None:
        if not isinstance(msg, ReplyMsg):
            return
        reply = msg.reply
        if not msg.mac.valid or reply.client.partition("#")[0] != self.name:
            return
        sent = self._sent_at.get(reply.rid)
        if sent is None:
            return
        if self._reply_votes.add((reply.rid, reply.result), msg.sender):
            self.completed += 1
            self.latencies.record(self.sim.now - sent)
            del self._sent_at[reply.rid]
            # Late replies short-circuit on ``_sent_at`` above; drop the
            # vote state so it stays bounded over long runs.
            self._reply_votes.discard((reply.rid, reply.result))

    # ------------------------------------------------------------- mesoscale
    def time_shift(self, dt: float) -> None:
        """Shift in-flight send timestamps after a mesoscale clock jump."""
        if self._sent_at:
            self._sent_at = {rid: t + dt for rid, t in self._sent_at.items()}

    # ----------------------------------------------------------- inspection
    @property
    def outstanding(self) -> int:
        return len(self._sent_at)

    def __repr__(self) -> str:
        return "ClientPopulation(%s, size=%d, sent=%d, completed=%d)" % (
            self.name,
            self.size,
            self.sent,
            self.completed,
        )
