"""Cryptographic cost model.

BFT papers in this lineage (PBFT, Zyzzyva, Aardvark, RBFT §V) all observe
that the bottleneck of the protocols is cryptography, not the network.
We therefore model every cryptographic operation as CPU time charged to
the core of the actor performing it:

* a **MAC** costs a base plus a per-byte term (HMAC over the message);
* a **MAC authenticator** (one MAC per node, §II) costs one digest over
  the payload plus one small MAC per recipient — this is how real
  implementations compute authenticators, and it is why ordering request
  *identifiers* instead of full requests pays off (§VI-B);
* a **signature** is an order of magnitude more expensive than a MAC
  (§VI-B): sign/verify over the payload digest;
* a **digest** costs a base plus a per-byte term.

The default constants are calibrated so that a fault-free f=1 RBFT
deployment with 8-byte requests peaks in the tens of kreq/s, matching the
order of magnitude of the paper's testbed (two quad-core Xeons per node).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CryptoCostModel",
    "DEFAULT_COST_MODEL",
    "MAC_SIZE",
    "SIGNATURE_SIZE",
    "DIGEST_SIZE",
    "MESSAGE_HEADER_SIZE",
]

#: Wire sizes in bytes, used when computing message sizes.
MAC_SIZE = 16
SIGNATURE_SIZE = 64
DIGEST_SIZE = 32
MESSAGE_HEADER_SIZE = 48

_US = 1e-6  # one microsecond, in seconds


@dataclass(frozen=True)
class CryptoCostModel:
    """CPU cost (seconds) of each cryptographic operation.

    All ``*_base`` fields are per-operation constants; ``hash_per_byte``
    is the throughput term of the underlying hash, applied to whichever
    payload an operation must scan.
    """

    mac_base: float = 1.0 * _US
    sig_gen_base: float = 100.0 * _US
    sig_verify_base: float = 25.0 * _US
    digest_base: float = 0.3 * _US
    hash_per_byte: float = 10e-9

    # Every method is a pure function of (model, sizes), so hot call
    # sites memoise results per size (see OrderingInstance and RBFTNode)
    # instead of re-deriving them per message.  The methods themselves
    # stay plain arithmetic: a shared cache here would hash the whole
    # model per lookup, which costs more than the computation.

    # ------------------------------------------------------------------ MACs
    def mac_gen(self, nbytes: int) -> float:
        """Generate one MAC over ``nbytes`` of payload."""
        return self.mac_base + self.hash_per_byte * nbytes

    def mac_verify(self, nbytes: int) -> float:
        """Verify one MAC; same cost structure as generation."""
        return self.mac_base + self.hash_per_byte * nbytes

    # -------------------------------------------------------- authenticators
    def authenticator_gen(self, nbytes: int, recipients: int) -> float:
        """Generate a MAC authenticator for ``recipients`` nodes.

        One digest over the payload, then one MAC over the digest per
        recipient.
        """
        return self.digest(nbytes) + recipients * self.mac_gen(DIGEST_SIZE)

    def authenticator_verify(self, nbytes: int) -> float:
        """Verify our entry of a MAC authenticator."""
        return self.digest(nbytes) + self.mac_verify(DIGEST_SIZE)

    # ------------------------------------------------------------ signatures
    def sig_gen(self, nbytes: int) -> float:
        """Sign ``nbytes`` (digest then sign the digest)."""
        return self.sig_gen_base + self.digest(nbytes)

    def sig_verify(self, nbytes: int) -> float:
        """Verify a signature over ``nbytes``."""
        return self.sig_verify_base + self.digest(nbytes)

    # --------------------------------------------------------------- digests
    def digest(self, nbytes: int) -> float:
        """Hash ``nbytes`` into a fixed-size digest."""
        return self.digest_base + self.hash_per_byte * nbytes

    def scaled(self, factor: float) -> "CryptoCostModel":
        """A uniformly slower/faster model (keeps every ratio intact)."""
        return CryptoCostModel(
            mac_base=self.mac_base * factor,
            sig_gen_base=self.sig_gen_base * factor,
            sig_verify_base=self.sig_verify_base * factor,
            digest_base=self.digest_base * factor,
            hash_per_byte=self.hash_per_byte * factor,
        )


DEFAULT_COST_MODEL = CryptoCostModel()
