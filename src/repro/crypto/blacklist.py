"""Blacklists for misbehaving principals.

Two flavours appear in the papers reproduced here:

* **client blacklists** (RBFT §IV-B step 1, Aardvark): a client that
  submits a request with an invalid signature is blacklisted and its
  further requests are dropped after the (cheap) MAC check;
* **bounded replica blacklists** (Spinning §III-C): faulty primaries are
  blacklisted so they are skipped by the rotation, but at most ``f``
  replicas may be blacklisted at a time — the oldest entry is evicted to
  preserve liveness.

Client ids may be **virtual population identities** of the form
``"<port>#<index>"`` (see :mod:`repro.clients.population`): a million
declared users share one port, and each sampled identity is banned
individually — exactly as if it were a real client.  The owner helpers
below aggregate such bans per owning port for diagnostics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional

__all__ = ["principal_owner", "ClientBlacklist", "BoundedBlacklist"]


def principal_owner(client_id: Hashable) -> Hashable:
    """The port that owns a principal: ``"pop0#42"`` -> ``"pop0"``.

    Non-virtual ids (no ``"#"``, or non-string ids) own themselves.
    """
    if isinstance(client_id, str):
        return client_id.partition("#")[0]
    return client_id


class ClientBlacklist:
    """An unbounded set of banned client ids."""

    def __init__(self) -> None:
        self._banned = set()

    def ban(self, client_id: Hashable) -> None:
        self._banned.add(client_id)

    def banned(self, client_id: Hashable) -> bool:
        return client_id in self._banned

    def banned_for_owner(self, owner: Hashable) -> int:
        """Banned principals owned by ``owner`` (itself, or its virtual
        identities): a population-level misbehaviour gauge."""
        return sum(
            1 for client_id in self._banned
            if principal_owner(client_id) == owner
        )

    def by_owner(self) -> Dict[Hashable, int]:
        """Banned-principal counts grouped by owning port."""
        counts: Dict[Hashable, int] = {}
        for client_id in self._banned:
            owner = principal_owner(client_id)
            counts[owner] = counts.get(owner, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._banned)


class BoundedBlacklist:
    """A FIFO blacklist holding at most ``capacity`` entries.

    Spinning sets ``capacity = f``: "If f replicas are already
    blacklisted, then the oldest one is removed from the blacklist, to
    ensure the liveness of the system."
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()

    def ban(self, replica_id: Hashable) -> Optional[Hashable]:
        """Blacklist ``replica_id``; return the evicted entry, if any."""
        if self.capacity == 0:
            return replica_id  # degenerate f=0 system: nothing sticks
        evicted = None
        if replica_id in self._entries:
            self._entries.move_to_end(replica_id)
        else:
            if len(self._entries) >= self.capacity:
                evicted, _ = self._entries.popitem(last=False)
            self._entries[replica_id] = None
        return evicted

    def banned(self, replica_id: Hashable) -> bool:
        return replica_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)
