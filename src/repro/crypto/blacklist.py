"""Blacklists for misbehaving principals.

Two flavours appear in the papers reproduced here:

* **client blacklists** (RBFT §IV-B step 1, Aardvark): a client that
  submits a request with an invalid signature is blacklisted and its
  further requests are dropped after the (cheap) MAC check;
* **bounded replica blacklists** (Spinning §III-C): faulty primaries are
  blacklisted so they are skipped by the rotation, but at most ``f``
  replicas may be blacklisted at a time — the oldest entry is evicted to
  preserve liveness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

__all__ = ["ClientBlacklist", "BoundedBlacklist"]


class ClientBlacklist:
    """An unbounded set of banned client ids."""

    def __init__(self) -> None:
        self._banned = set()

    def ban(self, client_id: Hashable) -> None:
        self._banned.add(client_id)

    def banned(self, client_id: Hashable) -> bool:
        return client_id in self._banned

    def __len__(self) -> int:
        return len(self._banned)


class BoundedBlacklist:
    """A FIFO blacklist holding at most ``capacity`` entries.

    Spinning sets ``capacity = f``: "If f replicas are already
    blacklisted, then the oldest one is removed from the blacklist, to
    ensure the liveness of the system."
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()

    def ban(self, replica_id: Hashable) -> Optional[Hashable]:
        """Blacklist ``replica_id``; return the evicted entry, if any."""
        if self.capacity == 0:
            return replica_id  # degenerate f=0 system: nothing sticks
        evicted = None
        if replica_id in self._entries:
            self._entries.move_to_end(replica_id)
        else:
            if len(self._entries) >= self.capacity:
                evicted, _ = self._entries.popitem(last=False)
            self._entries[replica_id] = None
        return evicted

    def banned(self, replica_id: Hashable) -> bool:
        return replica_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)
