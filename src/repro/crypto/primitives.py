"""Virtual cryptographic objects.

Payloads in the simulator carry *sizes*, not bytes, so authentication
tags are structural: each tag records who produced it and whether it is
valid.  Verification in protocol code is then two separate things —

* a **CPU charge** (from :class:`~repro.crypto.costmodel.CryptoCostModel`)
  paid whether or not the tag is valid, which is what flooding attacks
  with invalid messages exploit (§VI-C), and
* a **boolean check** of the tag, which faulty senders can make fail for
  selected verifiers (worst-attack-1 sends requests that *one* node
  cannot verify).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Optional

__all__ = ["Digest", "Mac", "MacAuthenticator", "Signature"]


@dataclass(frozen=True)
class Digest:
    """A collision-resistant digest, modelled structurally.

    Two digests are equal iff they were computed over the same token; the
    Byzantine model forbids forging collisions (§II), so structural
    equality is faithful.
    """

    token: Hashable

    def __repr__(self) -> str:
        return "Digest(%r)" % (self.token,)


@dataclass(frozen=True)
class Mac:
    """A MAC from ``signer`` for a single recipient."""

    signer: str
    valid: bool = True


@dataclass(frozen=True)
class MacAuthenticator:
    """An array of per-node MACs (one per recipient, §II).

    ``invalid_for`` lists verifiers whose entry is corrupt.  A Byzantine
    sender can corrupt any subset — e.g. make the entry valid for every
    node except the one hosting the master primary (worst-attack-1).
    ``None`` means valid for everyone (the common case, allocation-free).
    """

    signer: str
    invalid_for: Optional[FrozenSet[str]] = None

    def valid_for(self, verifier: str) -> bool:
        if self.invalid_for is None:
            return True
        return "*" not in self.invalid_for and verifier not in self.invalid_for

    @staticmethod
    def corrupt(signer: str) -> "MacAuthenticator":
        """An authenticator that verifies for nobody (flooding payloads)."""
        return MacAuthenticator(signer=signer, invalid_for=frozenset({"*"}))

    @staticmethod
    def for_signer(signer: str) -> "MacAuthenticator":
        """The interned valid-for-everyone authenticator of ``signer``.

        Authenticators are immutable and compare structurally, so the
        common case — one valid tag per outgoing message — can share a
        single instance per sender instead of allocating per message.
        """
        auth = _VALID_AUTHENTICATORS.get(signer)
        if auth is None:
            auth = _VALID_AUTHENTICATORS[signer] = MacAuthenticator(signer)
        return auth

    def valid_for_any(self) -> bool:
        return self.invalid_for is None or "*" not in self.invalid_for


#: interned valid-for-everyone authenticators, keyed by signer name.
_VALID_AUTHENTICATORS: Dict[str, MacAuthenticator] = {}


@dataclass(frozen=True)
class Signature:
    """A public-key signature by ``signer``.

    Unlike MACs, a valid signature convinces *every* verifier — that is
    the non-repudiation property RBFT needs for forwarded requests
    (§IV-B, step 1).
    """

    signer: str
    valid: bool = True

    @staticmethod
    def for_signer(signer: str) -> "Signature":
        """The interned valid signature of ``signer`` (cf.
        :meth:`MacAuthenticator.for_signer`)."""
        sig = _VALID_SIGNATURES.get(signer)
        if sig is None:
            sig = _VALID_SIGNATURES[signer] = Signature(signer)
        return sig


#: interned valid signatures, keyed by signer name.
_VALID_SIGNATURES: Dict[str, Signature] = {}
