"""Virtual cryptography: cost model, tags, blacklists."""

from .blacklist import BoundedBlacklist, ClientBlacklist, principal_owner
from .costmodel import (
    DEFAULT_COST_MODEL,
    DIGEST_SIZE,
    MAC_SIZE,
    MESSAGE_HEADER_SIZE,
    SIGNATURE_SIZE,
    CryptoCostModel,
)
from .primitives import Digest, Mac, MacAuthenticator, Signature

__all__ = [
    "BoundedBlacklist",
    "ClientBlacklist",
    "CryptoCostModel",
    "DEFAULT_COST_MODEL",
    "DIGEST_SIZE",
    "MAC_SIZE",
    "MESSAGE_HEADER_SIZE",
    "SIGNATURE_SIZE",
    "Digest",
    "Mac",
    "MacAuthenticator",
    "Signature",
    "principal_owner",
]
