"""Network interface controllers.

Aardvark and RBFT both use *separate NICs*: one NIC for client traffic
and one NIC per other node (§V, Fig. 6).  This isolates client floods
from replica-to-replica traffic, and lets a node *close* the NIC of a
flooding peer "for a given time period" without penalising anyone else.

A NIC is modelled as two analytic FIFO servers, one per direction, each
with a configurable bandwidth.  Transmitting (or receiving) a message
occupies the corresponding direction for ``size / bandwidth`` seconds.
"""

from __future__ import annotations

from repro.sim.engine import Simulator

__all__ = ["NIC"]


class NIC:
    """One interface: tx/rx bandwidth queues plus a close switch."""

    __slots__ = (
        "sim",
        "name",
        "bandwidth",
        "tx_free_at",
        "rx_free_at",
        "bytes_tx",
        "bytes_rx",
        "msgs_tx",
        "msgs_rx",
        "closed_until",
        "dropped_while_closed",
    )

    def __init__(self, sim: Simulator, name: str, bandwidth_bytes_per_s: float):
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bandwidth = bandwidth_bytes_per_s
        self.tx_free_at = 0.0
        self.rx_free_at = 0.0
        self.bytes_tx = 0
        self.bytes_rx = 0
        self.msgs_tx = 0
        self.msgs_rx = 0
        self.closed_until = 0.0
        self.dropped_while_closed = 0

    # -------------------------------------------------------------- transmit
    def reserve_tx(self, size: int) -> float:
        """Queue ``size`` bytes for transmission; return completion time."""
        sim = self.sim
        now = sim.now
        start = now if now > self.tx_free_at else self.tx_free_at
        done = start + size / self.bandwidth
        self.tx_free_at = done
        self.bytes_tx += size
        self.msgs_tx += 1
        tracer = sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(now, "nic.tx", self.name, size=size, done=done)
        return done

    def reserve_rx(self, size: int, arrival: float) -> float:
        """Queue ``size`` arriving bytes; return time fully received."""
        start = arrival if arrival > self.rx_free_at else self.rx_free_at
        done = start + size / self.bandwidth
        self.rx_free_at = done
        self.bytes_rx += size
        self.msgs_rx += 1
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(arrival, "nic.rx", self.name, size=size, done=done)
        return done

    def time_shift(self, dt: float) -> None:
        """Shift absolute-time state after a mesoscale clock jump.

        The free horizons move with the shifted delivery events in the
        heap; ``closed_until`` moves so a flooder-isolation window keeps
        its remaining duration.  Byte/message counters are cumulative
        and untouched.
        """
        self.tx_free_at += dt
        self.rx_free_at += dt
        self.closed_until += dt

    # ----------------------------------------------------------------- close
    def close(self, duration: float) -> None:
        """Disable this NIC for ``duration`` seconds (flooder isolation).

        While closed, arriving traffic is dropped in hardware: it costs
        the owner neither bandwidth accounting nor CPU, which is exactly
        the point of closing the NIC (§V).
        """
        reopen = self.sim.now + duration
        if reopen > self.closed_until:
            self.closed_until = reopen

    @property
    def closed(self) -> bool:
        return self.sim.now < self.closed_until

    def note_dropped(self) -> None:
        self.dropped_while_closed += 1
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(self.sim.now, "nic.drop", self.name)

    def __repr__(self) -> str:
        return "NIC(%s, tx=%dB, rx=%dB%s)" % (
            self.name,
            self.bytes_tx,
            self.bytes_rx,
            ", CLOSED" if self.closed else "",
        )
