"""Simulated network: messages, NICs, channels, geo topologies."""

from .message import Message
from .network import GIGABIT_BPS, Channel, LinkProfile, Network
from .nic import NIC
from .topology import Region, Topology, flat, named, wan3, wan5

__all__ = [
    "Message",
    "NIC",
    "Channel",
    "LinkProfile",
    "Network",
    "GIGABIT_BPS",
    "Region",
    "Topology",
    "flat",
    "named",
    "wan3",
    "wan5",
]
