"""Simulated network: messages, NICs, channels."""

from .message import Message
from .network import GIGABIT_BPS, Channel, LinkProfile, Network
from .nic import NIC

__all__ = ["Message", "NIC", "Channel", "LinkProfile", "Network", "GIGABIT_BPS"]
