"""Geo-distributed topologies: regions, latency matrices, placement.

The paper's testbed is a single Gigabit LAN; Berger et al. (PAPERS.md)
show that the interesting scale axis — hundreds of replicas spread over
continents — is exactly where simulation beats real clusters.  This
module describes such deployments declaratively:

* a :class:`Region` names one datacenter: its intra-region link profile
  and the NIC bandwidth its machines get;
* a :class:`Topology` combines regions with an inter-region one-way
  latency matrix (seconds) and an optional inter-region bandwidth
  matrix (bytes/second, the bottleneck WAN pipe between two regions);
* placement is **round-robin by index** unless an explicit
  ``placement`` tuple pins node ``i`` to a region: node ``i`` lands in
  region ``i % len(regions)``, and clients are placed the same way by
  attachment order.  Round-robin keeps every region's replica count
  within one of each other, so no single region holds a quorum — the
  "cross-region f placement" a geo-replicated BFT deployment wants.

Both dataclasses are frozen, hashable and picklable, so a
:class:`Topology` rides inside a ``Scenario`` unchanged (cache key,
process fan-out).  A topology whose matrix is all-zero and whose region
profiles equal the cluster's flat link (see :func:`flat`) wires channels
with arithmetic identical to no topology at all — the layer is a strict
generalisation, pinned by the WAN≡LAN equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from .network import GIGABIT_BPS, LAN, LinkProfile

__all__ = [
    "Region",
    "Topology",
    "flat",
    "wan3",
    "wan5",
    "named",
    "TOPOLOGY_PACKS",
]


@dataclass(frozen=True)
class Region:
    """One named datacenter of a geo-distributed deployment."""

    name: str
    #: intra-region link profile (machines inside one region see this).
    link: LinkProfile = LAN
    #: NIC bandwidth of every machine placed in this region, bytes/s.
    nic_bandwidth: float = GIGABIT_BPS


@dataclass(frozen=True)
class Topology:
    """Regions plus the inter-region latency/bandwidth matrices."""

    regions: Tuple[Region, ...]
    #: one-way inter-region propagation latency, seconds;
    #: ``latency[i][j]`` is *added* to ``base.latency`` for traffic from
    #: region ``i`` to region ``j``.  Square, diagonal ignored.
    latency: Tuple[Tuple[float, ...], ...]
    #: optional inter-region bottleneck bandwidth, bytes/s; empty means
    #: unconstrained (``LinkProfile.bandwidth`` stays 0).  Square when
    #: present, diagonal ignored.
    bandwidth: Tuple[Tuple[float, ...], ...] = ()
    #: cross-region base profile: jitter/TCP overhead/UDP loss of the
    #: WAN path; its ``latency`` is the floor the matrix adds to.
    base: LinkProfile = LAN
    #: optional explicit node placement: ``placement[i]`` is the region
    #: index of node ``i``.  Empty means round-robin by node index.
    placement: Tuple[int, ...] = ()

    def __post_init__(self):
        count = len(self.regions)
        if count < 1:
            raise ValueError("a topology needs at least one region")
        if len(self.latency) != count or any(
            len(row) != count for row in self.latency
        ):
            raise ValueError(
                "latency matrix must be %dx%d to match the regions" % (count, count)
            )
        if self.bandwidth and (
            len(self.bandwidth) != count
            or any(len(row) != count for row in self.bandwidth)
        ):
            raise ValueError(
                "bandwidth matrix must be %dx%d when present" % (count, count)
            )
        if any(index < 0 or index >= count for index in self.placement):
            raise ValueError("placement indices must name a region")

    # ------------------------------------------------------------ placement
    def node_region_index(self, index: int) -> int:
        """Region index of node ``index`` (explicit pin or round-robin)."""
        if self.placement:
            if index < len(self.placement):
                return self.placement[index]
            # Nodes beyond the pinned prefix fall back to round-robin.
        return index % len(self.regions)

    def client_region_index(self, index: int) -> int:
        """Region index of the ``index``-th attached client."""
        return index % len(self.regions)

    # ------------------------------------------------------------- profiles
    def link_for(self, src_region: int, dst_region: int) -> LinkProfile:
        """The link profile for traffic between two region indices.

        Intra-region traffic sees the region's own profile; cross-region
        traffic sees ``base`` with the matrix latency added and the
        bottleneck bandwidth (when constrained) attached.
        """
        if src_region == dst_region:
            return self.regions[src_region].link
        extra = self.latency[src_region][dst_region]
        bandwidth = (
            self.bandwidth[src_region][dst_region] if self.bandwidth else 0.0
        )
        return replace(
            self.base,
            latency=self.base.latency + extra,
            bandwidth=bandwidth,
        )

    def pair_profiles(self) -> Tuple[Tuple[LinkProfile, ...], ...]:
        """The full region-pair profile matrix (computed once per wiring)."""
        count = len(self.regions)
        return tuple(
            tuple(self.link_for(i, j) for j in range(count))
            for i in range(count)
        )


def flat(
    regions: int = 1,
    link: LinkProfile = LAN,
    nic_bandwidth: float = GIGABIT_BPS,
) -> Topology:
    """A degenerate topology equivalent to a flat LAN.

    ``regions`` regions all carry ``link`` intra-region, the latency
    matrix is all-zero, bandwidth is unconstrained and the cross-region
    base profile is ``link`` itself — so every channel, regardless of
    placement, is wired with exactly the profile a topology-free cluster
    would use.  Seeded runs are byte-identical to the flat scenario
    (the WAN≡LAN equivalence property, pinned by tests).
    """
    zero = tuple(tuple(0.0 for _ in range(regions)) for _ in range(regions))
    return Topology(
        regions=tuple(
            Region("region%d" % i, link=link, nic_bandwidth=nic_bandwidth)
            for i in range(regions)
        ),
        latency=zero,
        base=link,
    )


#: WAN jitter: a few hundred microseconds of queueing variance on the
#: long-haul path (vs 10 µs inside the LAN).
_WAN_BASE = LinkProfile(jitter=300e-6)

#: cross-region bottleneck: 100 Mbit/s per region pair, in bytes/s.
_WAN_PIPE = 12_500_000.0


def _symmetric(count: int, pairs: Dict[Tuple[int, int], float]):
    matrix = [[0.0] * count for _ in range(count)]
    for (i, j), value in pairs.items():
        matrix[i][j] = matrix[j][i] = value
    return tuple(tuple(row) for row in matrix)


def _pipes(count: int) -> Tuple[Tuple[float, ...], ...]:
    return tuple(
        tuple(0.0 if i == j else _WAN_PIPE for j in range(count))
        for i in range(count)
    )


def wan3() -> Topology:
    """Three-region geo deployment: us-east, eu-west, ap-south.

    One-way latencies approximate public inter-region RTT/2 figures.
    Round-robin placement spreads 3f+1 replicas so each region holds at
    most f+1 of them.
    """
    return Topology(
        regions=(
            Region("us-east"),
            Region("eu-west"),
            Region("ap-south"),
        ),
        latency=_symmetric(3, {
            (0, 1): 0.040,
            (0, 2): 0.090,
            (1, 2): 0.070,
        }),
        bandwidth=_pipes(3),
        base=_WAN_BASE,
    )


def wan5() -> Topology:
    """Five-region geo deployment spanning four continents."""
    return Topology(
        regions=(
            Region("us-east"),
            Region("us-west"),
            Region("eu-west"),
            Region("ap-south"),
            Region("sa-east"),
        ),
        latency=_symmetric(5, {
            (0, 1): 0.030,
            (0, 2): 0.040,
            (0, 3): 0.090,
            (0, 4): 0.060,
            (1, 2): 0.070,
            (1, 3): 0.065,
            (1, 4): 0.085,
            (2, 3): 0.070,
            (2, 4): 0.095,
            (3, 4): 0.160,
        }),
        bandwidth=_pipes(5),
        base=_WAN_BASE,
    )


#: the named WAN scenario packs (resolvable from episode artifacts and
#: the CLI without shipping the full matrices around).
TOPOLOGY_PACKS = ("wan3", "wan5")


def named(name: str) -> Topology:
    """Resolve a topology pack by name; raises ``ValueError`` if unknown."""
    if name == "wan3":
        return wan3()
    if name == "wan5":
        return wan5()
    raise ValueError(
        "unknown topology pack %r (expected one of %s)" % (name, TOPOLOGY_PACKS)
    )
