"""Point-to-point channels and the network fabric.

The testbed in the paper is a Gigabit switched LAN.  We model each
(sender NIC, receiver NIC) pair as a :class:`Channel` with

* transmission time on the sender NIC (``size / bandwidth``),
* a propagation latency with optional jitter,
* reception time on the receiver NIC,
* either **TCP** semantics — lossless and FIFO per channel, with a small
  per-message overhead for acknowledgements/flow control (this overhead
  is what makes the UDP variant of RBFT ~20 % faster in latency, §VI-B)
  — or **UDP** semantics — possible loss and reordering, no overhead.

Flooding protection: if the receiving NIC is closed (RBFT closes the NIC
of a flooding node, §V), traffic arriving while it is closed is dropped
in hardware at no cost to the receiver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from heapq import heappush
from typing import Callable, Iterable, Optional

from repro.sim.engine import Simulator

from .message import Message
from .nic import NIC

__all__ = ["LinkProfile", "Channel", "Network", "GIGABIT_BPS"]

#: 1 Gbit/s expressed in bytes per second.
GIGABIT_BPS = 125_000_000.0


@dataclass(frozen=True)
class LinkProfile:
    """Propagation characteristics of a link."""

    latency: float = 60e-6  # one-way LAN latency, seconds
    jitter: float = 10e-6  # uniform [0, jitter) added per message
    tcp_overhead: float = 45e-6  # extra per-message latency under TCP
    udp_loss: float = 0.0  # drop probability under UDP
    udp_duplicate: float = 0.0  # duplicate-delivery probability under UDP
    #: bottleneck link bandwidth in bytes/s; 0 (the default) means the
    #: link itself is unconstrained and only the NICs pace traffic.  A
    #: WAN topology sets this on cross-region profiles: each message
    #: pays ``size / bandwidth`` of serialisation on the shared pipe.
    bandwidth: float = 0.0


LAN = LinkProfile()


class Channel:
    """A unidirectional (sender NIC → receiver NIC) message pipe."""

    __slots__ = (
        "network",
        "src",
        "dst",
        "src_nic",
        "dst_nic",
        "profile",
        "tcp",
        "handler",
        "intercept",
        "_last_delivery",
        "delivered",
        "dropped",
        "duplicated",
        "_sim",
        "_rng",
        "_latency",
        "_jitter",
        "_tcp_overhead",
        "_udp_loss",
        "_udp_duplicate",
        "_bandwidth",
    )

    def __init__(
        self,
        network: "Network",
        src: str,
        dst: str,
        src_nic: NIC,
        dst_nic: NIC,
        handler: Callable[[Message], None],
        profile: LinkProfile = LAN,
        tcp: bool = True,
    ):
        self.network = network
        self.src = src
        self.dst = dst
        self.src_nic = src_nic
        self.dst_nic = dst_nic
        self.profile = profile
        self.tcp = tcp
        self.handler = handler
        #: optional fault-injection hook (see ``repro.verify.interceptor``):
        #: when set, ``send`` hands the message to it instead of the wire;
        #: the hook decides to drop, delay, duplicate or pass it through
        #: via ``send_direct``.  ``None`` (the default) costs one slot
        #: load per send.
        self.intercept = None
        self._last_delivery = 0.0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        # Cached one level up from ``network`` — both are fixed for the
        # network's lifetime and this is the hottest path in the model.
        self._sim = network.sim
        self._rng = network.rng
        # The profile is frozen, so its scalars are hoisted into slots:
        # ``_deliver_from`` reads them per message.
        self._latency = profile.latency
        self._jitter = profile.jitter
        self._tcp_overhead = profile.tcp_overhead
        self._udp_loss = profile.udp_loss
        self._udp_duplicate = profile.udp_duplicate
        self._bandwidth = profile.bandwidth

    def send(self, msg: Message) -> None:
        """Transmit ``msg``; the receiver's handler fires on delivery."""
        hook = self.intercept
        if hook is not None:
            hook(self, msg)
            return
        size = msg.wire_size()
        self._deliver_from(msg, self.src_nic.reserve_tx(size), size)

    def send_direct(self, msg: Message) -> None:
        """Transmit bypassing the intercept hook (the hook's exit path)."""
        size = msg.wire_size()
        self._deliver_from(msg, self.src_nic.reserve_tx(size), size)

    def _deliver_from(self, msg: Message, tx_done: float, size: int) -> None:
        """Propagate a message whose transmission completes at ``tx_done``."""
        sim = self._sim
        arrival = tx_done + self._latency
        link_bw = self._bandwidth
        if link_bw:
            # Serialisation over the bottleneck WAN pipe; 0 (the LAN
            # default) skips the branch, keeping seeded runs identical.
            arrival += size / link_bw
        rng = self._rng
        jitter = self._jitter
        if jitter > 0:
            arrival += rng.random() * jitter
        tracer = sim.tracer
        tracing = tracer is not None and tracer.enabled
        tcp = self.tcp
        copies = 1
        if tcp:
            arrival += self._tcp_overhead
        else:
            if self._udp_loss > 0 and rng.random() < self._udp_loss:
                self.dropped += 1
                if tracing:
                    tracer.emit(
                        sim.now, "chan.drop", self.src,
                        dst=self.dst, size=size, reason="udp-loss",
                    )
                return
            # Drawn only when the knob is set, so existing seeded runs
            # replay byte-identically with the default profile.
            if self._udp_duplicate > 0 and rng.random() < self._udp_duplicate:
                copies = 2
                self.duplicated += 1
        dst_nic = self.dst_nic
        if arrival < dst_nic.closed_until:
            # The receiver closed this NIC: hardware drop, zero cost.
            dst_nic.note_dropped()
            self.dropped += 1
            if tracing:
                tracer.emit(
                    sim.now, "chan.drop", self.src,
                    dst=self.dst, size=size, reason="nic-closed",
                )
            return
        # ``copies`` is 2 when the switch duplicated a UDP datagram (no
        # exactly-once guarantee); each copy pays its own reception.
        for _ in range(copies):
            if tracing:
                deliver_at = dst_nic.reserve_rx(size, arrival)
            else:
                # reserve_rx inlined (sans trace emit): same arithmetic,
                # same accounting, one call frame less on the hot path.
                rx_free = dst_nic.rx_free_at
                start = arrival if arrival > rx_free else rx_free
                deliver_at = start + size / dst_nic.bandwidth
                dst_nic.rx_free_at = deliver_at
                dst_nic.bytes_rx += size
                dst_nic.msgs_rx += 1
            if tcp and deliver_at < self._last_delivery:
                deliver_at = self._last_delivery  # FIFO guarantee
            self._last_delivery = deliver_at
            self.delivered += 1
            if tracing:
                tracer.emit(
                    sim.now, "chan.deliver", self.src,
                    dst=self.dst, size=size, at=deliver_at,
                )
            # Deliveries are never cancelled: anonymous fast path, inlined.
            sim._seq = seq = sim._seq + 1
            heappush(sim._heap, (deliver_at, seq, self.handler, (msg,)))

    def time_shift(self, dt: float) -> None:
        """Shift the FIFO clamp after a mesoscale clock jump."""
        self._last_delivery += dt

    def _deliver_untraced(self, msg: Message, tx_done: float, size: int) -> None:
        """``_deliver_from`` specialised for the untraced case.

        :meth:`Network.broadcast`/:meth:`Network.multicast` hoist the
        tracer check once per fan-out and route every channel of an
        untraced batch here: same arithmetic, same RNG draw order, same
        NIC accounting as ``_deliver_from``, with the per-message tracer
        lookups and emit branches removed.
        """
        sim = self._sim
        arrival = tx_done + self._latency
        link_bw = self._bandwidth
        if link_bw:
            arrival += size / link_bw
        rng = self._rng
        jitter = self._jitter
        if jitter > 0:
            arrival += rng.random() * jitter
        tcp = self.tcp
        copies = 1
        if tcp:
            arrival += self._tcp_overhead
        else:
            if self._udp_loss > 0 and rng.random() < self._udp_loss:
                self.dropped += 1
                return
            if self._udp_duplicate > 0 and rng.random() < self._udp_duplicate:
                copies = 2
                self.duplicated += 1
        dst_nic = self.dst_nic
        if arrival < dst_nic.closed_until:
            # note_dropped inlined (its trace emit is dead here).
            dst_nic.dropped_while_closed += 1
            self.dropped += 1
            return
        bandwidth = dst_nic.bandwidth
        for _ in range(copies):
            rx_free = dst_nic.rx_free_at
            start = arrival if arrival > rx_free else rx_free
            deliver_at = start + size / bandwidth
            dst_nic.rx_free_at = deliver_at
            dst_nic.bytes_rx += size
            dst_nic.msgs_rx += 1
            if tcp and deliver_at < self._last_delivery:
                deliver_at = self._last_delivery  # FIFO guarantee
            self._last_delivery = deliver_at
            self.delivered += 1
            sim._seq = seq = sim._seq + 1
            heappush(sim._heap, (deliver_at, seq, self.handler, (msg,)))

    def __repr__(self) -> str:
        return "Channel(%s->%s, %s)" % (self.src, self.dst, "tcp" if self.tcp else "udp")


class Network:
    """Factory and bookkeeping for channels.

    A single RNG stream drives jitter and loss across all channels so
    experiments replay deterministically from one seed.
    """

    def __init__(self, sim: Simulator, rng: Optional[random.Random] = None):
        self.sim = sim
        self.rng = rng or random.Random(0)
        self.channels = []

    def connect(
        self,
        src: str,
        dst: str,
        src_nic: NIC,
        dst_nic: NIC,
        handler: Callable[[Message], None],
        profile: LinkProfile = LAN,
        tcp: bool = True,
    ) -> Channel:
        channel = Channel(self, src, dst, src_nic, dst_nic, handler, profile, tcp)
        self.channels.append(channel)
        return channel

    @staticmethod
    def multicast(channels: Iterable[Channel], msg: Message) -> None:
        """Send ``msg`` on several channels sharing one sender NIC.

        Under UDP multicast (Spinning, §VI-B) the sender transmits the
        packet once; receivers each pay their own reception.  We charge
        the sender NIC once and fan the single transmission out.
        """
        channels = list(channels)
        if not channels:
            return
        size = msg.wire_size()
        tx_done = channels[0].src_nic.reserve_tx(size)
        sim = channels[0]._sim
        tracer = sim.tracer
        if tracer is not None and tracer.enabled:
            for channel in channels:
                channel._deliver_from(msg, tx_done, size)
        else:
            for channel in channels:
                channel._deliver_untraced(msg, tx_done, size)

    @staticmethod
    def broadcast(channels: Iterable[Channel], msg: Message) -> None:
        """Send ``msg`` on several channels with independent sender NICs.

        The unicast fan-out (TCP, or separate per-peer NICs): every
        channel pays its own transmission, but the wire size — a pure
        function of the message — is computed once for the whole batch.
        Channels carrying a fault-injection intercept hand the message
        to their hook, exactly as ``send`` would.  The tracer check is
        hoisted once per fan-out: the untraced batch inlines the
        ``reserve_tx`` arithmetic per channel (same accounting, same RNG
        draw order) and delivers through ``_deliver_untraced``.
        """
        size = None
        tracing = sim = None
        for channel in channels:
            hook = channel.intercept
            if hook is not None:
                hook(channel, msg)
                continue
            if size is None:
                size = msg.wire_size()
                sim = channel._sim
                tracer = sim.tracer
                tracing = tracer is not None and tracer.enabled
            if tracing:
                channel._deliver_from(msg, channel.src_nic.reserve_tx(size), size)
            else:
                # reserve_tx inlined (sans trace emit): one call frame
                # less per channel of the fan-out.
                nic = channel.src_nic
                now = sim.now
                free = nic.tx_free_at
                start = now if now > free else free
                tx_done = start + size / nic.bandwidth
                nic.tx_free_at = tx_done
                nic.bytes_tx += size
                nic.msgs_tx += 1
                channel._deliver_untraced(msg, tx_done, size)
