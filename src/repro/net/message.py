"""Base class for wire messages.

Messages are plain Python objects with a structural payload; what the
network cares about is :meth:`Message.wire_size`, and what receivers care
about is the authentication tag.  Concrete protocols subclass this with
their own fields.
"""

from __future__ import annotations

from repro.crypto.costmodel import MESSAGE_HEADER_SIZE

__all__ = ["Message"]


class Message:
    """A unit of network transfer.

    Subclasses set :attr:`body_size` (bytes of payload beyond the common
    header) or override :meth:`wire_size`.  ``sender`` is the principal
    (node or client id) that emitted the message.
    """

    __slots__ = ("sender",)

    #: payload bytes beyond the common header; subclasses override.
    body_size: int = 0

    def __init__(self, sender: str):
        self.sender = sender

    def wire_size(self) -> int:
        """Total bytes on the wire."""
        return MESSAGE_HEADER_SIZE + self.body_size

    @property
    def kind(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return "%s(from=%s)" % (self.kind, self.sender)
