"""Measurement instruments: throughput meters, latency recorders, series."""

from .recorder import (
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
    WindowedCounter,
    summarize,
)

__all__ = [
    "LatencyRecorder",
    "ThroughputMeter",
    "TimeSeries",
    "WindowedCounter",
    "summarize",
]
