"""Throughput and latency recorders.

These are the measurement instruments of both the *experiments* (client
side: achieved throughput, request latency) and the *protocol itself*
(RBFT's monitoring module keeps one windowed counter per protocol
instance — the ``nbreqs_i`` of §IV-C — and per-client latency averages).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.sim.engine import Simulator

__all__ = [
    "WindowedCounter",
    "ThroughputMeter",
    "LatencyRecorder",
    "TimeSeries",
    "summarize",
]


class WindowedCounter:
    """A counter read-and-reset once per monitoring period (§IV-C)."""

    __slots__ = ("count", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0

    def add(self, n: int = 1) -> None:
        self.count += n
        self.total += n

    def take(self) -> int:
        """Return the current window's count and reset it."""
        count, self.count = self.count, 0
        return count


class ThroughputMeter:
    """Counts events and reports rates over arbitrary intervals."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.count = 0
        self._marks: List[Tuple[float, int]] = [(sim.now, 0)]

    def add(self, n: int = 1) -> None:
        self.count += n

    def mark(self) -> None:
        """Record a checkpoint for interval queries."""
        self._marks.append((self.sim.now, self.count))

    def rate_since(self, t0: float) -> float:
        """Average events/second from virtual time ``t0`` to now."""
        elapsed = self.sim.now - t0
        if elapsed <= 0:
            return 0.0
        count0 = 0
        for time, count in self._marks:
            if time <= t0:
                count0 = count
            else:
                break
        return (self.count - count0) / elapsed

    def total_rate(self) -> float:
        start = self._marks[0][0]
        return self.rate_since(start)


class LatencyRecorder:
    """Streaming mean plus a bounded sample window for percentiles.

    The mean is exact over *every* recorded sample (a running
    count/total, accumulated in arrival order exactly as ``sum()`` over
    the full list would); percentiles are computed over the most recent
    ``window`` samples, so memory stays constant however long the run.
    Any run that completes fewer than ``window`` requests per client —
    all the short-horizon seeds — sees byte-identical percentiles too.
    """

    DEFAULT_WINDOW = 65536

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self.samples: Deque[float] = deque(maxlen=window)
        self.count = 0
        self.total = 0.0

    def record(self, latency: float) -> None:
        self.samples.append(latency)
        self.count += 1
        self.total += latency

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (len(ordered) - 1) * p
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def median(self) -> float:
        return self.percentile(0.5)

    def __len__(self) -> int:
        """Samples ever recorded (not just the retained window)."""
        return self.count


class TimeSeries:
    """(time, value) pairs, e.g. per-request latency traces (Fig. 12).

    ``maxlen`` optionally bounds retention to the most recent points
    (long-horizon gauges); figure series keep the default — unbounded —
    because the plots need the full history.
    """

    def __init__(self, name: str = "", maxlen: Optional[int] = None):
        self.name = name
        self.points: Deque[Tuple[float, float]] = deque(maxlen=maxlen)

    def append(self, time: float, value: float) -> None:
        self.points.append((time, value))

    def times(self) -> List[float]:
        return [t for t, _ in self.points]

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Mean/min/max/stdev of a sample set (empty-safe)."""
    if not samples:
        return {"mean": 0.0, "min": 0.0, "max": 0.0, "stdev": 0.0, "n": 0}
    n = len(samples)
    mean = sum(samples) / n
    var = sum((x - mean) ** 2 for x in samples) / n
    return {
        "mean": mean,
        "min": min(samples),
        "max": max(samples),
        "stdev": math.sqrt(var),
        "n": n,
    }
