"""Request batching.

Primaries batch requests into one ordering round (PBFT and all its
descendants do).  A batch closes when it reaches ``max_size`` requests
or when ``max_delay`` elapses since its first request — whichever comes
first.  The Spinning protocol additionally rotates the primary after
every batch, so its effective batch cadence drives the attack arithmetic
of §III-C.
"""

from __future__ import annotations

from typing import Callable, Generic, List, Optional, TypeVar

from repro.sim.engine import Handle, Simulator

__all__ = ["Batcher", "CertificateCoalescer", "group_by_instance"]

T = TypeVar("T")


class Batcher(Generic[T]):
    """Accumulates items and flushes them as batches.

    ``on_flush`` receives the list of items.  ``pause``/``resume`` let a
    protocol hold batches during view changes; a malicious primary delays
    simply by not being asked to flush (the attack code wraps
    ``on_flush``).
    """

    def __init__(
        self,
        sim: Simulator,
        max_size: int,
        max_delay: float,
        on_flush: Callable[[List[T]], None],
    ):
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.sim = sim
        self.max_size = max_size
        self.max_delay = max_delay
        self.on_flush = on_flush
        self._pending: List[T] = []
        self._timer: Optional[Handle] = None
        self._paused = False
        self.flushed_batches = 0
        self.flushed_items = 0

    def add(self, item: T) -> None:
        self._pending.append(item)
        if self._paused:
            return
        if len(self._pending) >= self.max_size:
            self.flush()
        elif self._timer is None or not self._timer.active:
            self._timer = self.sim.call_after(self.max_delay, self._timer_fired)

    def _timer_fired(self) -> None:
        if not self._paused and self._pending:
            self.flush()

    def flush(self) -> None:
        """Emit everything pending as one batch (no-op when empty)."""
        if not self._pending:
            return
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        self.flushed_batches += 1
        self.flushed_items += len(batch)
        self.on_flush(batch)

    def pause(self) -> None:
        """Stop flushing (view change in progress); items keep queueing."""
        self._paused = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def resume(self) -> None:
        """Allow flushing again and drain any backlog.

        The flush callback may re-pause the batcher (a rotating primary
        emits one batch per leadership turn); the drain loop honours that.
        """
        self._paused = False
        while not self._paused and len(self._pending) >= self.max_size:
            batch = self._pending[: self.max_size]
            del self._pending[: self.max_size]
            self.flushed_batches += 1
            self.flushed_items += len(batch)
            self.on_flush(batch)
        if self._pending and not self._paused:
            self._timer = self.sim.call_after(self.max_delay, self._timer_fired)

    @property
    def pending(self) -> int:
        return len(self._pending)


class CertificateCoalescer(Batcher):
    """A :class:`Batcher` over outbound certificate messages.

    One instance per node coalesces the backup ordering instances'
    broadcast traffic (see ``core.node.BatchingInstanceTransport``):
    every buffered item is an already-built protocol message, and the
    flush callback wraps a multi-message window into one
    ``InstanceBatchMsg`` envelope.  The machinery is exactly the request
    batcher's — size- or delay-triggered flushes on the simulator clock —
    the subclass exists so node state dumps and tests can tell the two
    apart and so the flush timer never competes with a paused request
    batcher during view changes (certificate flushes never pause).
    """


def group_by_instance(messages):
    """Split an envelope's payload into per-instance runs, in order.

    Returns ``[(instance, [msg, ...]), ...]`` preserving the original
    arrival order within each instance — the receiver feeds each run to
    that instance's engine as one aggregated task.
    """
    runs = {}
    for msg in messages:
        runs.setdefault(msg.instance, []).append(msg)
    return sorted(runs.items())
