"""Request and reply types shared by every protocol.

A client request (§IV-B step 1) carries the operation, a request id, the
client id, a **signature** (for non-repudiation when nodes forward it)
and a **MAC authenticator** (cheap first-line check).  Replicas order
either the full request or just its *identifier* — client id, request id
and digest — which is RBFT's optimisation (§IV-B step 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Tuple

from repro.crypto.costmodel import (
    DIGEST_SIZE,
    MAC_SIZE,
    MESSAGE_HEADER_SIZE,
    SIGNATURE_SIZE,
)
from repro.crypto.primitives import Digest, MacAuthenticator, Signature

__all__ = ["RequestId", "Request", "RequestIdentifier", "Reply"]

#: (client id, per-client sequence number) — globally unique.
RequestId = Tuple[str, int]


@dataclass(frozen=True)
class Request:
    """A client request as it travels on the wire."""

    client: str
    rid: int
    payload_size: int  # bytes of operation payload (8 B – 4 kB in §VI)
    signature: Signature
    authenticator: MacAuthenticator
    exec_cost: Optional[float] = None  # overrides the service's default
    sent_at: float = 0.0  # client-side send timestamp (virtual time)

    # cached: the id is read on every hop of every module's pipeline, and
    # a plain property would allocate a fresh tuple per read (the cache
    # bypasses the frozen __setattr__ by writing to __dict__ directly).
    @cached_property
    def request_id(self) -> RequestId:
        return (self.client, self.rid)

    def digest(self) -> Digest:
        # Memoised like ``request_id``: the same Request object travels
        # the whole simulated network, so every node and every protocol
        # instance shares one digest (and identifier) construction.
        digest = self.__dict__.get("_digest")
        if digest is None:
            digest = Digest(("req", self.client, self.rid))
            self.__dict__["_digest"] = digest
        return digest

    def identifier(self) -> "RequestIdentifier":
        identifier = self.__dict__.get("_identifier")
        if identifier is None:
            identifier = RequestIdentifier(self.client, self.rid, self.digest())
            self.__dict__["_identifier"] = identifier
        return identifier

    def wire_size(self) -> int:
        """Bytes on the wire: header + payload + signature + MAC array."""
        size = self.__dict__.get("_wire_size")
        if size is None:
            size = (
                MESSAGE_HEADER_SIZE
                + self.payload_size
                + SIGNATURE_SIZE
                + 4 * MAC_SIZE  # authenticator sized for the f=1 common case
            )
            self.__dict__["_wire_size"] = size
        return size


@dataclass(frozen=True)
class RequestIdentifier:
    """What RBFT instances actually order: (client, rid, digest)."""

    client: str
    rid: int
    digest: Digest

    @cached_property
    def request_id(self) -> RequestId:
        return (self.client, self.rid)

    #: wire footprint of one identifier inside an ordering message.
    WIRE_SIZE = 16 + DIGEST_SIZE


@dataclass(frozen=True)
class Reply:
    """The result of executing a request, sent node → client (step 6)."""

    node: str
    client: str
    rid: int
    result: object
    result_size: int = 8

    @cached_property
    def request_id(self) -> RequestId:
        return (self.client, self.rid)
