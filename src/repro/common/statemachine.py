"""Replicated services (the application on top of the BFT protocols).

The paper evaluates a null service whose requests take on the order of
0.1 ms to execute (1 ms for the "heavy" requests of the Prime attack,
§III-A).  We provide that null service plus a small key-value store so
examples can replicate something observable.
"""

from __future__ import annotations

from typing import Tuple

from .types import Request

__all__ = ["Service", "NullService", "KeyValueService"]


class Service:
    """Interface of a deterministic replicated service."""

    #: default CPU seconds to execute one request (overridable per request).
    default_exec_cost: float = 20e-6

    def exec_cost(self, request: Request) -> float:
        """CPU time executing ``request`` costs (heavy requests cost more)."""
        if request.exec_cost is not None:
            return request.exec_cost
        return self.default_exec_cost

    def apply(self, request: Request) -> Tuple[object, int]:
        """Execute the operation; return (result, result wire size)."""
        raise NotImplementedError


class NullService(Service):
    """Executes nothing; replies with a constant-size acknowledgement."""

    def __init__(self, exec_cost: float = 20e-6, result_size: int = 8):
        self.default_exec_cost = exec_cost
        self.result_size = result_size
        self.executed = 0

    def apply(self, request: Request) -> Tuple[object, int]:
        self.executed += 1
        return ("ok", self.result_size)


class KeyValueService(Service):
    """A deterministic key-value store.

    Operations are encoded in the request's structural payload via the
    ``op`` attribute convention: clients put ``("get", key)`` or
    ``("put", key, value)`` tuples in :attr:`Request.exec_cost`-free
    metadata.  Since requests are virtual, the example applications pass
    operations through :meth:`submit_op` instead.
    """

    def __init__(self, exec_cost: float = 20e-6):
        self.default_exec_cost = exec_cost
        self.store = {}
        self.executed = 0
        self._ops = {}

    def register_op(self, request_id, op) -> None:
        """Associate a concrete operation with a request id."""
        self._ops[request_id] = op

    def apply(self, request: Request) -> Tuple[object, int]:
        self.executed += 1
        op = self._ops.pop(request.request_id, None)
        if op is None:
            return ("ok", 8)
        action = op[0]
        if action == "put":
            _, key, value = op
            self.store[key] = value
            return ("stored", 8)
        if action == "get":
            _, key = op
            value = self.store.get(key)
            return (value, 8 if value is None else len(str(value)))
        if action == "delete":
            _, key = op
            existed = self.store.pop(key, None) is not None
            return (existed, 8)
        raise ValueError("unknown operation %r" % (action,))
