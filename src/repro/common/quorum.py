"""Quorum collection.

Every phase of every protocol here is "collect k matching messages from
distinct senders, then act once":  2f PREPAREs, 2f+1 COMMITs, f+1
PROPAGATEs, 2f+1 INSTANCE-CHANGEs, f+1 matching replies at the client.
:class:`QuorumTracker` implements exactly that pattern, keyed by an
arbitrary hashable (sequence number, digest, whatever the phase matches
on), counting each sender once, and reporting the threshold crossing
exactly once.

Representation: votes are stored as **bitmasks**.  Each distinct sender
name is lazily assigned one bit (senders are replicas and clients, a
small closed population), and each key holds a single int that ORs the
bits of its voters.  A vote is then one dict lookup, one OR and one
``int.bit_count()`` — no per-key set allocation, no per-sender hashing
into a set — which is measurably cheaper in saturated runs where every
message touches a tracker.  The observable API (dedup per sender,
exactly-once threshold crossing, counts, pruning) is unchanged.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set

__all__ = [
    "QuorumTracker",
    "SenderUniverse",
    "VectorQuorumTracker",
    "quorum_size",
    "weak_quorum_size",
]


def quorum_size(f: int) -> int:
    """2f + 1: a majority of correct nodes among 3f + 1."""
    return 2 * f + 1


def weak_quorum_size(f: int) -> int:
    """f + 1: at least one correct node."""
    return f + 1


class QuorumTracker:
    """Counts distinct senders per key; fires once per key at threshold."""

    def __init__(self, threshold: int):
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        #: lazily assigned sender -> bit (1 << insertion index).
        self._bits: Dict[str, int] = {}
        #: key -> OR of its voters' bits.
        self._masks: Dict[Hashable, int] = {}
        self._complete: Set[Hashable] = set()

    def add(self, key: Hashable, sender: str) -> bool:
        """Record a vote.  Return True iff this vote *completes* the quorum.

        Duplicate votes from the same sender are ignored; votes arriving
        after completion return False (the action already fired).
        """
        if key in self._complete:
            return False
        bits = self._bits
        bit = bits.get(sender)
        if bit is None:
            bits[sender] = bit = 1 << len(bits)
        masks = self._masks
        mask = masks.get(key)
        if mask is None:
            masks[key] = bit
            if self.threshold <= 1:
                self._complete.add(key)
                return True
            return False
        merged = mask | bit
        if merged == mask:
            return False  # duplicate vote
        masks[key] = merged
        if merged.bit_count() >= self.threshold:
            self._complete.add(key)
            return True
        return False

    def count(self, key: Hashable) -> int:
        if key in self._complete:
            return self.threshold
        return self._masks.get(key, 0).bit_count()

    def complete(self, key: Hashable) -> bool:
        return key in self._complete

    def discard(self, key: Hashable) -> None:
        """Forget a key entirely (e.g. after checkpoint garbage collection)."""
        self._masks.pop(key, None)
        self._complete.discard(key)

    def prune(self, predicate) -> int:
        """Discard every key for which ``predicate(key)`` is true.

        The checkpoint garbage collector uses this to drop all vote state
        below the advancing low watermark in one pass; returns how many
        keys were forgotten.
        """
        stale = set(key for key in self._masks if predicate(key))
        stale.update(key for key in self._complete if predicate(key))
        for key in stale:
            self._masks.pop(key, None)
            self._complete.discard(key)
        return len(stale)

    def __len__(self) -> int:
        # Completed keys usually still hold their vote mask, so take the
        # union rather than the sum.
        return len(self._masks.keys() | self._complete)


class SenderUniverse:
    """Sender → bit interning shared by every tracker of a deployment.

    :class:`QuorumTracker` interns senders per tracker, which is fine at
    f = 1 (each tracker holds a handful of names) but wasteful at
    n = 100–300: every node runs several trackers per instance, and
    each would rebuild its own n-entry sender dict.  One universe per
    cluster assigns each distinct sender name a bit exactly once; all
    :class:`VectorQuorumTracker`\\ s share it.  Bit *positions* never
    affect results — quorum semantics only read ``bit_count()`` — so
    swapping per-tracker interning for a shared universe leaves every
    seeded run byte-identical.
    """

    __slots__ = ("_bits",)

    def __init__(self):
        self._bits: Dict[str, int] = {}

    def bit(self, sender: str) -> int:
        """The (stable) bit for ``sender``, assigned on first sight."""
        bits = self._bits
        bit = bits.get(sender)
        if bit is None:
            bits[sender] = bit = 1 << len(bits)
        return bit

    def __len__(self) -> int:
        return len(self._bits)


class VectorQuorumTracker:
    """Array-structured :class:`QuorumTracker` for large deployments.

    Same observable API and semantics as :class:`QuorumTracker` (the
    reference implementation, cross-checked by property tests), with two
    structural changes for n in the hundreds:

    * sender bits come from a shared :class:`SenderUniverse` instead of
      a per-tracker dict — O(total senders) interning per deployment
      instead of O(trackers × senders);
    * each key stores **one** int: an in-progress key holds the OR of
      its voters' bits, a completed key holds the bitwise complement
      (negative) of its final mask — no separate completion set, half
      the per-key bookkeeping on the hot path.
    """

    __slots__ = ("threshold", "_senders", "_masks")

    def __init__(self, threshold: int, senders: SenderUniverse):
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        self._senders = senders
        #: key -> voters' OR (in progress) or ~OR (completed, negative).
        self._masks: Dict[Hashable, int] = {}

    def add(self, key: Hashable, sender: str) -> bool:
        """Record a vote; True iff this vote completes the quorum."""
        masks = self._masks
        mask = masks.get(key)
        if mask is not None and mask < 0:
            return False  # already complete: the action fired
        senders = self._senders._bits
        bit = senders.get(sender)
        if bit is None:
            senders[sender] = bit = 1 << len(senders)
        if mask is None:
            if self.threshold <= 1:
                masks[key] = ~bit
                return True
            masks[key] = bit
            return False
        merged = mask | bit
        if merged == mask:
            return False  # duplicate vote
        if merged.bit_count() >= self.threshold:
            masks[key] = ~merged
            return True
        masks[key] = merged
        return False

    def count(self, key: Hashable) -> int:
        mask = self._masks.get(key)
        if mask is None:
            return 0
        if mask < 0:
            return self.threshold
        return mask.bit_count()

    def complete(self, key: Hashable) -> bool:
        return self._masks.get(key, 0) < 0

    def discard(self, key: Hashable) -> None:
        """Forget a key entirely (e.g. after checkpoint garbage collection)."""
        self._masks.pop(key, None)

    def prune(self, predicate) -> int:
        """Discard every key for which ``predicate(key)`` is true."""
        masks = self._masks
        stale = [key for key in masks if predicate(key)]
        for key in stale:
            del masks[key]
        return len(stale)

    def __len__(self) -> int:
        return len(self._masks)
