"""Quorum collection.

Every phase of every protocol here is "collect k matching messages from
distinct senders, then act once":  2f PREPAREs, 2f+1 COMMITs, f+1
PROPAGATEs, 2f+1 INSTANCE-CHANGEs, f+1 matching replies at the client.
:class:`QuorumTracker` implements exactly that pattern, keyed by an
arbitrary hashable (sequence number, digest, whatever the phase matches
on), counting each sender once, and reporting the threshold crossing
exactly once.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set

__all__ = ["QuorumTracker", "quorum_size", "weak_quorum_size"]


def quorum_size(f: int) -> int:
    """2f + 1: a majority of correct nodes among 3f + 1."""
    return 2 * f + 1


def weak_quorum_size(f: int) -> int:
    """f + 1: at least one correct node."""
    return f + 1


class QuorumTracker:
    """Counts distinct senders per key; fires once per key at threshold."""

    def __init__(self, threshold: int):
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        self._senders: Dict[Hashable, Set[str]] = {}
        self._complete: Set[Hashable] = set()

    def add(self, key: Hashable, sender: str) -> bool:
        """Record a vote.  Return True iff this vote *completes* the quorum.

        Duplicate votes from the same sender are ignored; votes arriving
        after completion return False (the action already fired).
        """
        if key in self._complete:
            return False
        senders = self._senders.get(key)
        if senders is None:
            # First vote: avoid setdefault, which allocates a set even
            # when the key already exists (the common case under load).
            self._senders[key] = {sender}
            if self.threshold <= 1:
                self._complete.add(key)
                return True
            return False
        if sender in senders:
            return False
        senders.add(sender)
        if len(senders) >= self.threshold:
            self._complete.add(key)
            return True
        return False

    def count(self, key: Hashable) -> int:
        if key in self._complete:
            return self.threshold
        return len(self._senders.get(key, ()))

    def complete(self, key: Hashable) -> bool:
        return key in self._complete

    def discard(self, key: Hashable) -> None:
        """Forget a key entirely (e.g. after checkpoint garbage collection)."""
        self._senders.pop(key, None)
        self._complete.discard(key)

    def prune(self, predicate) -> int:
        """Discard every key for which ``predicate(key)`` is true.

        The checkpoint garbage collector uses this to drop all vote state
        below the advancing low watermark in one pass; returns how many
        keys were forgotten.
        """
        stale = set(key for key in self._senders if predicate(key))
        stale.update(key for key in self._complete if predicate(key))
        for key in stale:
            self._senders.pop(key, None)
            self._complete.discard(key)
        return len(stale)

    def __len__(self) -> int:
        # Completed keys usually still hold their sender set, so take the
        # union rather than the sum.
        return len(self._senders.keys() | self._complete)
