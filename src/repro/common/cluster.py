"""Physical cluster wiring: machines, NICs, channels, client ports.

This mirrors the paper's testbed (§V, §VI-A): ``n = 3f + 1`` machines,
each with eight cores and — when ``separate_nics`` is on, as in Aardvark
and RBFT — one NIC per other node plus one NIC for all client traffic.
Protocols attach an actor to each machine by setting its handler; load
generators attach :class:`ClientPort` objects.

Every protocol harness in :mod:`repro.protocols` and :mod:`repro.core`
builds on this module, so the fault-free and under-attack runs of all
four protocols share identical hardware assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.net.message import Message
from repro.net.network import GIGABIT_BPS, LAN, Channel, LinkProfile, Network
from repro.net.nic import NIC
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.resources import CoreSet
from repro.sim.rng import RngTree

from .quorum import SenderUniverse

__all__ = ["ClusterConfig", "Machine", "ClientPort", "Cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Hardware and transport parameters of a deployment."""

    f: int = 1
    cores_per_node: int = 8
    nic_bandwidth: float = GIGABIT_BPS
    link: LinkProfile = LAN
    tcp: bool = True
    separate_nics: bool = True
    seed: int = 0
    #: optional geo-distributed layout (see :mod:`repro.net.topology`):
    #: regions place machines/clients round-robin by index and channels
    #: take the region-pair profile instead of ``link``.  ``None`` (the
    #: default) wires the flat LAN exactly as before.
    topology: Optional[Topology] = None

    @property
    def n(self) -> int:
        """Number of nodes: 3f + 1, the lower bound (§II)."""
        return 3 * self.f + 1

    def with_(self, **changes) -> "ClusterConfig":
        return replace(self, **changes)


class Machine:
    """One physical node: cores plus its NICs.

    The protocol stack running on the machine registers a single
    ``handler``; the cluster routes every delivered message through it.
    """

    def __init__(self, cluster: "Cluster", index: int):
        config = cluster.config
        self.cluster = cluster
        self.index = index
        self.name = "node%d" % index
        sim = cluster.sim
        self.cores = CoreSet(sim, config.cores_per_node, self.name)
        # Region placement (None on a flat LAN): the region supplies the
        # machine's NIC bandwidth and names its location.
        topology = config.topology
        if topology is None:
            self.region_index: Optional[int] = None
            self.region: Optional[str] = None
            self._nic_bandwidth = config.nic_bandwidth
        else:
            self.region_index = topology.node_region_index(index)
            region = topology.regions[self.region_index]
            self.region = region.name
            self._nic_bandwidth = region.nic_bandwidth
        self.client_nic = NIC(sim, self.name + "/nic-clients", self._nic_bandwidth)
        self.peer_nics: Dict[str, NIC] = {}
        self._shared_nic: Optional[NIC] = None
        if not config.separate_nics:
            self._shared_nic = NIC(
                sim, self.name + "/nic-shared", self._nic_bandwidth
            )
            self.client_nic = self._shared_nic
        self._handler: Optional[Callable[[Message], None]] = None
        self._inbound: List[Channel] = []
        self.dropped_unrouted = 0
        self.channels_to_nodes: Dict[str, Channel] = {}
        self.channels_to_clients: Dict[str, Channel] = {}
        # The node topology is fixed once the cluster is wired, so the
        # broadcast fan-out list is materialised once on first use.
        self._broadcast_channels: Optional[List[Channel]] = None
        self._udp_multicast = self._shared_nic is not None and not config.tcp

    def nic_for_peer(self, peer: str) -> NIC:
        if self._shared_nic is not None:
            return self._shared_nic
        nic = self.peer_nics.get(peer)
        if nic is None:
            nic = NIC(
                self.cluster.sim,
                "%s/nic-%s" % (self.name, peer),
                self._nic_bandwidth,
            )
            self.peer_nics[peer] = nic
        return nic

    # ------------------------------------------------------------- messaging
    @property
    def handler(self) -> Optional[Callable[[Message], None]]:
        return self._handler

    @handler.setter
    def handler(self, fn: Optional[Callable[[Message], None]]) -> None:
        # Inbound channels deliver straight into the handler, skipping
        # the ``deliver`` indirection on every message; channels fall
        # back to ``deliver`` (which counts unrouted drops) while no
        # handler is attached.
        self._handler = fn
        target = self.deliver if fn is None else fn
        for channel in self._inbound:
            channel.handler = target

    def _register_inbound(self, channel: Channel) -> None:
        self._inbound.append(channel)
        if self._handler is not None:
            channel.handler = self._handler

    def deliver(self, msg: Message) -> None:
        if self._handler is None:
            self.dropped_unrouted += 1
        else:
            self._handler(msg)

    def send_to_node(self, dst: str, msg: Message) -> None:
        self.channels_to_nodes[dst].send(msg)

    def broadcast_to_nodes(self, msg: Message) -> None:
        """Send ``msg`` to every *other* node.

        With a shared NIC under UDP this is a true multicast (one
        transmission); with separate per-peer NICs the copies go out in
        parallel on independent links (one batched fan-out: the wire
        size is computed once for all of them).
        """
        channels = self._broadcast_channels
        if channels is None:
            channels = self._broadcast_channels = list(
                self.channels_to_nodes.values()
            )
        if self._udp_multicast:
            Network.multicast(channels, msg)
        else:
            Network.broadcast(channels, msg)

    def channel_to_client(self, client: str) -> Optional[Channel]:
        """Resolve the downlink for ``client``, aliasing population ids.

        Population identities ("pop0#42") share their owner port's
        channel.  The owner is resolved directly — *not* memoised per
        identity: a diurnal population samples up to a million distinct
        identities, and caching one dict entry per reply recipient once
        grew ``channels_to_clients`` without bound (the dict must stay
        O(#ports); the regression test pins this).  ``rewire`` replaces
        the channels, so no alias can outlive a topology change either.
        """
        channel = self.channels_to_clients.get(client)
        if channel is None and "#" in client:
            channel = self.channels_to_clients.get(client.partition("#")[0])
        return channel

    def send_to_client(self, client: str, msg: Message) -> None:
        channel = self.channel_to_client(client)
        if channel is None:
            raise KeyError(client)
        channel.send(msg)

    def __repr__(self) -> str:
        return "Machine(%s)" % self.name


class ClientPort:
    """A client's attachment point: one NIC plus channels to every node."""

    def __init__(
        self,
        cluster: "Cluster",
        name: str,
        region_index: Optional[int] = None,
    ):
        self.cluster = cluster
        self.name = name
        topology = cluster.config.topology
        if topology is None or region_index is None:
            self.region_index: Optional[int] = None
            self.region: Optional[str] = None
            nic_bandwidth = cluster.config.nic_bandwidth
        else:
            self.region_index = region_index
            region = topology.regions[region_index]
            self.region = region.name
            nic_bandwidth = region.nic_bandwidth
        self.nic = NIC(cluster.sim, name + "/nic", nic_bandwidth)
        self._handler: Optional[Callable[[Message], None]] = None
        self._inbound: List[Channel] = []
        self.channels_to_nodes: Dict[str, Channel] = {}
        self.dropped_unrouted = 0
        self._broadcast_channels: Optional[List[Channel]] = None

    @property
    def handler(self) -> Optional[Callable[[Message], None]]:
        return self._handler

    @handler.setter
    def handler(self, fn: Optional[Callable[[Message], None]]) -> None:
        self._handler = fn
        target = self.deliver if fn is None else fn
        for channel in self._inbound:
            channel.handler = target

    def _register_inbound(self, channel: Channel) -> None:
        self._inbound.append(channel)
        if self._handler is not None:
            channel.handler = self._handler

    def deliver(self, msg: Message) -> None:
        if self._handler is None:
            self.dropped_unrouted += 1
        else:
            self._handler(msg)

    def send_to_node(self, dst: str, msg: Message) -> None:
        self.channels_to_nodes[dst].send(msg)

    def broadcast(self, msg: Message) -> None:
        """Send to every node (single multicast transmission under UDP)."""
        channels = self._broadcast_channels
        if channels is None:
            channels = self._broadcast_channels = list(
                self.channels_to_nodes.values()
            )
        if not self.cluster.config.tcp:
            Network.multicast(channels, msg)
        else:
            Network.broadcast(channels, msg)


class Cluster:
    """n machines plus any number of client ports, fully wired."""

    def __init__(self, sim: Simulator, config: ClusterConfig = ClusterConfig()):
        self.sim = sim
        self.config = config
        self.rng = RngTree(config.seed)
        self.network = Network(sim, self.rng.stream("network"))
        #: one sender → bit interning shared by every vote tracker of
        #: this deployment (see :class:`repro.common.quorum.SenderUniverse`).
        self.senders = SenderUniverse()
        self._pair_profiles = (
            None if config.topology is None else config.topology.pair_profiles()
        )
        self.machines: List[Machine] = [Machine(self, i) for i in range(config.n)]
        self.clients: Dict[str, ClientPort] = {}
        self._wire_nodes()

    def _link_between(self, src_region, dst_region) -> LinkProfile:
        """The profile for a channel between two placed endpoints."""
        if self._pair_profiles is None or src_region is None or dst_region is None:
            return self.config.link
        return self._pair_profiles[src_region][dst_region]

    def _wire_nodes(self) -> None:
        """Create the n × (n-1) node-to-node channels."""
        for src in self.machines:
            for dst in self.machines:
                if src is dst:
                    continue
                channel = self.network.connect(
                    src.name,
                    dst.name,
                    src.nic_for_peer(dst.name),
                    dst.nic_for_peer(src.name),
                    dst.deliver,
                    profile=self._link_between(src.region_index, dst.region_index),
                    tcp=self.config.tcp,
                )
                src.channels_to_nodes[dst.name] = channel
                dst._register_inbound(channel)

    # ------------------------------------------------------------- mesoscale
    def time_shift(self, dt: float) -> None:
        """Shift every piece of hardware after a mesoscale clock jump.

        Cores, NICs and channels all keep absolute-time horizons
        (``busy_until``, ``tx_free_at``/``rx_free_at``/``closed_until``,
        the per-channel FIFO clamp); a uniform shift keeps them
        consistent with the heap the simulator just moved.  NICs are
        deduplicated by identity — with a shared NIC the same object
        appears behind several attachment points.
        """
        nics: Dict[int, NIC] = {}
        for machine in self.machines:
            machine.cores.time_shift(dt)
            nics[id(machine.client_nic)] = machine.client_nic
            for nic in machine.peer_nics.values():
                nics[id(nic)] = nic
            if machine._shared_nic is not None:
                nics[id(machine._shared_nic)] = machine._shared_nic
        for port in self.clients.values():
            nics[id(port.nic)] = port.nic
        for nic in nics.values():
            nic.time_shift(dt)
        for channel in self.network.channels:
            channel.time_shift(dt)

    # --------------------------------------------------------------- helpers
    @property
    def f(self) -> int:
        return self.config.f

    @property
    def n(self) -> int:
        return self.config.n

    def machine(self, name: str) -> Machine:
        return self.machines[int(name.replace("node", ""))]

    def node_names(self) -> List[str]:
        return [machine.name for machine in self.machines]

    def add_client(self, name: str) -> ClientPort:
        if name in self.clients:
            raise ValueError("client %r already attached" % name)
        if "#" in name:
            # "#" separates a population name from its identity index
            # ("pop0#42"); a literal port under such a name would
            # shadow the alias resolution in ``channel_to_client``.
            raise ValueError("client name %r may not contain '#'" % name)
        region_index = None
        if self.config.topology is not None:
            region_index = self.config.topology.client_region_index(
                len(self.clients)
            )
        port = ClientPort(self, name, region_index=region_index)
        self._wire_client(port)
        self.clients[name] = port
        return port

    def _wire_client(self, port: ClientPort) -> None:
        """Create the 2 × n channels between one client port and the nodes."""
        name = port.name
        for machine in self.machines:
            up = self.network.connect(
                name,
                machine.name,
                port.nic,
                machine.client_nic,
                machine.deliver,
                profile=self._link_between(port.region_index, machine.region_index),
                tcp=self.config.tcp,
            )
            port.channels_to_nodes[machine.name] = up
            machine._register_inbound(up)
            down = self.network.connect(
                machine.name,
                name,
                machine.client_nic,
                port.nic,
                port.deliver,
                profile=self._link_between(machine.region_index, port.region_index),
                tcp=self.config.tcp,
            )
            machine.channels_to_clients[name] = down
            port._register_inbound(down)

    # ------------------------------------------------------------- rewiring
    def rewire(self, topology: Optional[Topology]) -> None:
        """Re-bind every channel to a new topology's link profiles.

        Channel profile scalars are hoisted into slots at construction,
        so rebinding means **new** Channel objects for every node pair
        and client attachment.  Everything that cached the old objects
        must be invalidated here — the lazily materialised broadcast
        fan-out lists (``_broadcast_channels``), the per-destination
        channel dicts and the ``_inbound`` registration lists — or a
        later ``broadcast_to_nodes`` would keep sending on the stale,
        disconnected channels of the previous wiring (the bug this
        method's regression test pins).

        NIC objects survive (their queues carry history); only their
        bandwidth is updated when the new region says so.  ``rewire``
        draws no randomness, so it never perturbs the RNG stream.
        """
        self.config = self.config.with_(topology=topology)
        self._pair_profiles = (
            None if topology is None else topology.pair_profiles()
        )
        for machine in self.machines:
            if topology is None:
                machine.region_index = None
                machine.region = None
                machine._nic_bandwidth = self.config.nic_bandwidth
            else:
                machine.region_index = topology.node_region_index(machine.index)
                region = topology.regions[machine.region_index]
                machine.region = region.name
                machine._nic_bandwidth = region.nic_bandwidth
            machine.client_nic.bandwidth = machine._nic_bandwidth
            for nic in machine.peer_nics.values():
                nic.bandwidth = machine._nic_bandwidth
            if machine._shared_nic is not None:
                machine._shared_nic.bandwidth = machine._nic_bandwidth
            # Cache invalidation: drop every reference to the old
            # Channel objects before re-wiring.
            machine.channels_to_nodes.clear()
            machine.channels_to_clients.clear()
            machine._inbound.clear()
            machine._broadcast_channels = None
        for index, port in enumerate(self.clients.values()):
            if topology is None:
                port.region_index = None
                port.region = None
                port.nic.bandwidth = self.config.nic_bandwidth
            else:
                port.region_index = topology.client_region_index(index)
                region = topology.regions[port.region_index]
                port.region = region.name
                port.nic.bandwidth = region.nic_bandwidth
            port.channels_to_nodes.clear()
            port._inbound.clear()
            port._broadcast_channels = None
        self.network.channels.clear()
        self._wire_nodes()
        for port in self.clients.values():
            self._wire_client(port)
