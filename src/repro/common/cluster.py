"""Physical cluster wiring: machines, NICs, channels, client ports.

This mirrors the paper's testbed (§V, §VI-A): ``n = 3f + 1`` machines,
each with eight cores and — when ``separate_nics`` is on, as in Aardvark
and RBFT — one NIC per other node plus one NIC for all client traffic.
Protocols attach an actor to each machine by setting its handler; load
generators attach :class:`ClientPort` objects.

Every protocol harness in :mod:`repro.protocols` and :mod:`repro.core`
builds on this module, so the fault-free and under-attack runs of all
four protocols share identical hardware assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.net.message import Message
from repro.net.network import GIGABIT_BPS, LAN, Channel, LinkProfile, Network
from repro.net.nic import NIC
from repro.sim.engine import Simulator
from repro.sim.resources import CoreSet
from repro.sim.rng import RngTree

__all__ = ["ClusterConfig", "Machine", "ClientPort", "Cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Hardware and transport parameters of a deployment."""

    f: int = 1
    cores_per_node: int = 8
    nic_bandwidth: float = GIGABIT_BPS
    link: LinkProfile = LAN
    tcp: bool = True
    separate_nics: bool = True
    seed: int = 0

    @property
    def n(self) -> int:
        """Number of nodes: 3f + 1, the lower bound (§II)."""
        return 3 * self.f + 1

    def with_(self, **changes) -> "ClusterConfig":
        return replace(self, **changes)


class Machine:
    """One physical node: cores plus its NICs.

    The protocol stack running on the machine registers a single
    ``handler``; the cluster routes every delivered message through it.
    """

    def __init__(self, cluster: "Cluster", index: int):
        config = cluster.config
        self.cluster = cluster
        self.index = index
        self.name = "node%d" % index
        sim = cluster.sim
        self.cores = CoreSet(sim, config.cores_per_node, self.name)
        self.client_nic = NIC(sim, self.name + "/nic-clients", config.nic_bandwidth)
        self.peer_nics: Dict[str, NIC] = {}
        self._shared_nic: Optional[NIC] = None
        if not config.separate_nics:
            self._shared_nic = NIC(
                sim, self.name + "/nic-shared", config.nic_bandwidth
            )
            self.client_nic = self._shared_nic
        self._handler: Optional[Callable[[Message], None]] = None
        self._inbound: List[Channel] = []
        self.dropped_unrouted = 0
        self.channels_to_nodes: Dict[str, Channel] = {}
        self.channels_to_clients: Dict[str, Channel] = {}
        # The node topology is fixed once the cluster is wired, so the
        # broadcast fan-out list is materialised once on first use.
        self._broadcast_channels: Optional[List[Channel]] = None
        self._udp_multicast = self._shared_nic is not None and not config.tcp

    def nic_for_peer(self, peer: str) -> NIC:
        if self._shared_nic is not None:
            return self._shared_nic
        nic = self.peer_nics.get(peer)
        if nic is None:
            nic = NIC(
                self.cluster.sim,
                "%s/nic-%s" % (self.name, peer),
                self.cluster.config.nic_bandwidth,
            )
            self.peer_nics[peer] = nic
        return nic

    # ------------------------------------------------------------- messaging
    @property
    def handler(self) -> Optional[Callable[[Message], None]]:
        return self._handler

    @handler.setter
    def handler(self, fn: Optional[Callable[[Message], None]]) -> None:
        # Inbound channels deliver straight into the handler, skipping
        # the ``deliver`` indirection on every message; channels fall
        # back to ``deliver`` (which counts unrouted drops) while no
        # handler is attached.
        self._handler = fn
        target = self.deliver if fn is None else fn
        for channel in self._inbound:
            channel.handler = target

    def _register_inbound(self, channel: Channel) -> None:
        self._inbound.append(channel)
        if self._handler is not None:
            channel.handler = self._handler

    def deliver(self, msg: Message) -> None:
        if self._handler is None:
            self.dropped_unrouted += 1
        else:
            self._handler(msg)

    def send_to_node(self, dst: str, msg: Message) -> None:
        self.channels_to_nodes[dst].send(msg)

    def broadcast_to_nodes(self, msg: Message) -> None:
        """Send ``msg`` to every *other* node.

        With a shared NIC under UDP this is a true multicast (one
        transmission); with separate per-peer NICs the copies go out in
        parallel on independent links (one batched fan-out: the wire
        size is computed once for all of them).
        """
        channels = self._broadcast_channels
        if channels is None:
            channels = self._broadcast_channels = list(
                self.channels_to_nodes.values()
            )
        if self._udp_multicast:
            Network.multicast(channels, msg)
        else:
            Network.broadcast(channels, msg)

    def send_to_client(self, client: str, msg: Message) -> None:
        self.channels_to_clients[client].send(msg)

    def __repr__(self) -> str:
        return "Machine(%s)" % self.name


class ClientPort:
    """A client's attachment point: one NIC plus channels to every node."""

    def __init__(self, cluster: "Cluster", name: str):
        self.cluster = cluster
        self.name = name
        self.nic = NIC(cluster.sim, name + "/nic", cluster.config.nic_bandwidth)
        self._handler: Optional[Callable[[Message], None]] = None
        self._inbound: List[Channel] = []
        self.channels_to_nodes: Dict[str, Channel] = {}
        self.dropped_unrouted = 0
        self._broadcast_channels: Optional[List[Channel]] = None

    @property
    def handler(self) -> Optional[Callable[[Message], None]]:
        return self._handler

    @handler.setter
    def handler(self, fn: Optional[Callable[[Message], None]]) -> None:
        self._handler = fn
        target = self.deliver if fn is None else fn
        for channel in self._inbound:
            channel.handler = target

    def _register_inbound(self, channel: Channel) -> None:
        self._inbound.append(channel)
        if self._handler is not None:
            channel.handler = self._handler

    def deliver(self, msg: Message) -> None:
        if self._handler is None:
            self.dropped_unrouted += 1
        else:
            self._handler(msg)

    def send_to_node(self, dst: str, msg: Message) -> None:
        self.channels_to_nodes[dst].send(msg)

    def broadcast(self, msg: Message) -> None:
        """Send to every node (single multicast transmission under UDP)."""
        channels = self._broadcast_channels
        if channels is None:
            channels = self._broadcast_channels = list(
                self.channels_to_nodes.values()
            )
        if not self.cluster.config.tcp:
            Network.multicast(channels, msg)
        else:
            Network.broadcast(channels, msg)


class Cluster:
    """n machines plus any number of client ports, fully wired."""

    def __init__(self, sim: Simulator, config: ClusterConfig = ClusterConfig()):
        self.sim = sim
        self.config = config
        self.rng = RngTree(config.seed)
        self.network = Network(sim, self.rng.stream("network"))
        self.machines: List[Machine] = [Machine(self, i) for i in range(config.n)]
        self.clients: Dict[str, ClientPort] = {}
        for src in self.machines:
            for dst in self.machines:
                if src is dst:
                    continue
                channel = self.network.connect(
                    src.name,
                    dst.name,
                    src.nic_for_peer(dst.name),
                    dst.nic_for_peer(src.name),
                    dst.deliver,
                    profile=config.link,
                    tcp=config.tcp,
                )
                src.channels_to_nodes[dst.name] = channel
                dst._register_inbound(channel)

    # ------------------------------------------------------------- mesoscale
    def time_shift(self, dt: float) -> None:
        """Shift every piece of hardware after a mesoscale clock jump.

        Cores, NICs and channels all keep absolute-time horizons
        (``busy_until``, ``tx_free_at``/``rx_free_at``/``closed_until``,
        the per-channel FIFO clamp); a uniform shift keeps them
        consistent with the heap the simulator just moved.  NICs are
        deduplicated by identity — with a shared NIC the same object
        appears behind several attachment points.
        """
        nics: Dict[int, NIC] = {}
        for machine in self.machines:
            machine.cores.time_shift(dt)
            nics[id(machine.client_nic)] = machine.client_nic
            for nic in machine.peer_nics.values():
                nics[id(nic)] = nic
            if machine._shared_nic is not None:
                nics[id(machine._shared_nic)] = machine._shared_nic
        for port in self.clients.values():
            nics[id(port.nic)] = port.nic
        for nic in nics.values():
            nic.time_shift(dt)
        for channel in self.network.channels:
            channel.time_shift(dt)

    # --------------------------------------------------------------- helpers
    @property
    def f(self) -> int:
        return self.config.f

    @property
    def n(self) -> int:
        return self.config.n

    def machine(self, name: str) -> Machine:
        return self.machines[int(name.replace("node", ""))]

    def node_names(self) -> List[str]:
        return [machine.name for machine in self.machines]

    def add_client(self, name: str) -> ClientPort:
        if name in self.clients:
            raise ValueError("client %r already attached" % name)
        port = ClientPort(self, name)
        for machine in self.machines:
            up = self.network.connect(
                name,
                machine.name,
                port.nic,
                machine.client_nic,
                machine.deliver,
                profile=self.config.link,
                tcp=self.config.tcp,
            )
            port.channels_to_nodes[machine.name] = up
            machine._register_inbound(up)
            down = self.network.connect(
                machine.name,
                name,
                machine.client_nic,
                port.nic,
                port.deliver,
                profile=self.config.link,
                tcp=self.config.tcp,
            )
            machine.channels_to_clients[name] = down
            port._register_inbound(down)
        self.clients[name] = port
        return port
