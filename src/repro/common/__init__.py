"""Protocol substrate: types, quorums, batching, services, cluster wiring."""

from .batching import Batcher
from .cluster import ClientPort, Cluster, ClusterConfig, Machine
from .quorum import (
    QuorumTracker,
    SenderUniverse,
    VectorQuorumTracker,
    quorum_size,
    weak_quorum_size,
)
from .statemachine import KeyValueService, NullService, Service
from .types import Reply, Request, RequestId, RequestIdentifier

__all__ = [
    "Batcher",
    "ClientPort",
    "Cluster",
    "ClusterConfig",
    "Machine",
    "QuorumTracker",
    "SenderUniverse",
    "VectorQuorumTracker",
    "quorum_size",
    "weak_quorum_size",
    "KeyValueService",
    "NullService",
    "Service",
    "Reply",
    "Request",
    "RequestId",
    "RequestIdentifier",
]
