"""Learned adversary: seeded search over the fault space.

The PR-3 explorer samples fault plans blindly; this module *optimises*
them.  It treats :func:`repro.verify.episode.run_episode` as an
environment: the **action space** is the declarative fault vocabulary
(delay/drop/duplicate/flood/crash/partition parameters plus the
``ic-trigger`` instance-change timing), the **reward** is degradation of
throughput/latency versus a fault-free baseline of the same episode,
and the :class:`~repro.verify.invariants.InvariantSuite` digest is the
safety oracle — any violating plan is a finding in its own right and is
shrunk with the explorer's ddmin loop.

Two search strategies share one ask/tell interface:

* :class:`BanditStrategy` — a UCB1 multi-armed bandit over the
  vocabulary *dimensions*; each arm owns a parameter space and the
  bandit learns which dimensions (and pairs of dimensions) hurt the
  protocol most;
* :class:`EvolutionStrategy` — a mutation/crossover evolutionary loop
  over fault-plan *genomes* (the plans themselves), with tournament
  selection and elitism.

Determinism is the contract everything else rests on: all randomness
derives from the master seed, candidate batches fan out over
:func:`repro.experiments.parallel.execute_tasks` and come back in ask
order, and strategy updates happen only between batches — so the same
seed and budget produce byte-identical leaderboard and episode
artifacts at any ``--jobs`` value, and a run can be resumed (re-run)
from its seed months later with identical results.

Every champion is ddmin-shrunk to a 1-minimal plan (removing any single
fault loses the damage) before it enters the leaderboard; the episode
artifacts replay via ``python -m repro.experiments check --replay``.
"""

from __future__ import annotations

import json
import math
import os
import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .episode import EpisodeResult, EpisodeSpec, run_episode
from .explorer import _EpisodeTask, shrink, shrink_by, write_episode
from .vocabulary import FaultSpec

__all__ = [
    "ActionContext",
    "Dimension",
    "DIMENSIONS",
    "SearchStrategy",
    "BanditStrategy",
    "EvolutionStrategy",
    "STRATEGIES",
    "resolve_strategies",
    "compute_reward",
    "LeaderboardEntry",
    "SearchReport",
    "run_search",
    "LEADERBOARD_NAME",
    "SCRIPTED_PLANS",
]

#: leaderboard artifact filename inside the output directory.
LEADERBOARD_NAME = "LEADERBOARD.json"

#: a shrink step keeps a fault removal when the candidate retains at
#: least this fraction of the champion's reward.
SHRINK_KEEP = 0.95

#: weight of the latency term in the reward (throughput degradation
#: dominates; latency breaks ties between equally throttling plans).
LATENCY_WEIGHT = 0.05

#: cap on plan size — larger plans shrink back to ≤ 3 anyway and the
#: cap keeps crossover from concatenating entire populations.
MAX_PLAN_FAULTS = 3

#: the paper's scripted §VI-C adversaries at their default parameters —
#: the reference bar every search run is measured against.
SCRIPTED_PLANS: Tuple[Tuple[str, Tuple[FaultSpec, ...]], ...] = (
    ("rbft-worst1", (FaultSpec("rbft-worst1", {"flood_rate": 500.0}),)),
    ("rbft-worst2", (FaultSpec("rbft-worst2", {"flood_rate": 500.0}),)),
)


# ------------------------------------------------------------ action space
@dataclass(frozen=True)
class ActionContext:
    """What a dimension needs to know about the episode it attacks."""

    duration: float
    n_nodes: int


def _shuffle(rng: random.Random, values: List) -> None:
    # Fisher-Yates with explicit draws, stable across Python versions.
    for i in range(len(values) - 1, 0, -1):
        j = rng.randrange(i + 1)
        values[i], values[j] = values[j], values[i]


def _window(rng: random.Random, ctx: ActionContext) -> Tuple[float, float]:
    start = round(rng.uniform(0.0, 0.6 * ctx.duration), 3)
    return start, round(start + rng.uniform(0.2, 0.9) * ctx.duration, 3)


def _jitter(rng: random.Random, value: float, lo: float, hi: float,
            spread: float = 0.3) -> float:
    """Multiplicative local move, clamped to the dimension's range."""
    factor = 1.0 + rng.uniform(-spread, spread)
    return min(hi, max(lo, value * factor))


class Dimension:
    """One arm of the action space: a fault kind plus parameter ranges.

    ``sample`` draws a fresh :class:`FaultSpec`; ``mutate`` makes a local
    move around an existing one (falling back to a fresh sample for
    parameters it does not understand).  Both round every continuous
    parameter so specs serialize to stable JSON.
    """

    def __init__(self, name: str, kind: str,
                 sampler: Callable[[random.Random, ActionContext], Dict[str, Any]],
                 mutator: Optional[Callable[
                     [random.Random, Dict[str, Any], ActionContext],
                     Dict[str, Any]]] = None):
        self.name = name
        self.kind = kind
        self._sampler = sampler
        self._mutator = mutator

    def sample(self, rng: random.Random, ctx: ActionContext) -> FaultSpec:
        return FaultSpec(self.kind, self._sampler(rng, ctx))

    def mutate(self, rng: random.Random, spec: FaultSpec,
               ctx: ActionContext) -> FaultSpec:
        if self._mutator is None:
            return self.sample(rng, ctx)
        return FaultSpec(self.kind, self._mutator(rng, dict(spec.params), ctx))


def _backup_node(rng: random.Random, ctx: ActionContext) -> int:
    # Nodes 0..f host the primaries; Byzantine vocabulary faults pick a
    # non-master-primary host so the fault model's bookkeeping matches
    # the scripted attacks (node 0 misbehaviour is worst2's job).
    return rng.randrange(1, ctx.n_nodes)


def _sample_silence(rng, ctx):
    return {"node": _backup_node(rng, ctx)}


def _sample_flood(rng, ctx):
    return {"node": _backup_node(rng, ctx),
            "rate": round(rng.uniform(500.0, 6000.0), 1)}


def _mutate_flood(rng, params, ctx):
    params["rate"] = round(_jitter(rng, params.get("rate", 2000.0),
                                   500.0, 6000.0), 1)
    return params


def _sample_throttle(rng, ctx):
    return {"rate": round(rng.uniform(100.0, 1000.0), 1)}


def _mutate_throttle(rng, params, ctx):
    params["rate"] = round(_jitter(rng, params.get("rate", 400.0),
                                   100.0, 1000.0), 1)
    return params


def _sample_mute(rng, ctx):
    return {"node": _backup_node(rng, ctx)}


def _sample_junk(rng, ctx):
    return {"count": rng.randrange(1, 33)}


def _mutate_junk(rng, params, ctx):
    count = params.get("count", 8) + rng.choice([-4, -1, 1, 4])
    params["count"] = max(1, min(32, count))
    return params


def _sample_worst1(rng, ctx):
    return {"flood_rate": round(rng.uniform(100.0, 1500.0), 1)}


def _mutate_worst1(rng, params, ctx):
    params["flood_rate"] = round(_jitter(rng, params.get("flood_rate", 500.0),
                                         100.0, 1500.0), 1)
    return params


def _sample_worst2(rng, ctx):
    return {"flood_rate": round(rng.uniform(100.0, 1500.0), 1),
            "junk_rate": round(rng.uniform(500.0, 4000.0), 1)}


def _mutate_worst2(rng, params, ctx):
    key = rng.choice(["flood_rate", "junk_rate"])
    lo, hi = (100.0, 1500.0) if key == "flood_rate" else (500.0, 4000.0)
    params[key] = round(_jitter(rng, params.get(key, lo), lo, hi), 1)
    return params


def _sample_ic_timing(rng, ctx):
    return {"node": _backup_node(rng, ctx),
            "at": round(rng.uniform(0.05, 0.9 * ctx.duration), 3),
            "choice": rng.randrange(0, 2)}


def _mutate_ic_timing(rng, params, ctx):
    params["at"] = round(_jitter(rng, params.get("at", 0.2),
                                 0.02, 0.95 * ctx.duration), 3)
    return params


def _sample_crash(rng, ctx):
    at, until = _window(rng, ctx)
    return {"node": rng.randrange(ctx.n_nodes), "at": at, "until": until}


def _sample_partition(rng, ctx):
    nodes = list(range(ctx.n_nodes))
    _shuffle(rng, nodes)
    cut = rng.choice([1, 2])
    at, until = _window(rng, ctx)
    return {"groups": [sorted(nodes[:cut]), sorted(nodes[cut:])],
            "at": at, "until": until}


def _sample_delay(rng, ctx):
    at, until = _window(rng, ctx)
    return {"extra": round(rng.uniform(5e-4, 1e-2), 4),
            "p": round(rng.uniform(0.3, 1.0), 3), "at": at, "until": until}


def _mutate_delay(rng, params, ctx):
    params["extra"] = round(_jitter(rng, params.get("extra", 2e-3),
                                    5e-4, 1e-2), 4)
    return params


def _sample_drop(rng, ctx):
    at, until = _window(rng, ctx)
    return {"p": round(rng.uniform(0.01, 0.3), 3), "at": at, "until": until}


def _mutate_drop(rng, params, ctx):
    params["p"] = round(_jitter(rng, params.get("p", 0.05), 0.01, 0.3), 3)
    return params


def _sample_duplicate(rng, ctx):
    return {"p": round(rng.uniform(0.05, 0.5), 3)}


def _mutate_duplicate(rng, params, ctx):
    params["p"] = round(_jitter(rng, params.get("p", 0.2), 0.05, 0.5), 3)
    return params


#: the arms of the search, in fixed order (determinism).
DIMENSIONS: Dict[str, Dimension] = {
    dim.name: dim for dim in (
        Dimension("silence", "silent-replicas", _sample_silence),
        Dimension("flood", "flooding-node", _sample_flood, _mutate_flood),
        Dimension("throttle", "throttled-master", _sample_throttle,
                  _mutate_throttle),
        Dimension("mute", "mute-propagation", _sample_mute),
        Dimension("junk", "junk-clients", _sample_junk, _mutate_junk),
        Dimension("worst1", "rbft-worst1", _sample_worst1, _mutate_worst1),
        Dimension("worst2", "rbft-worst2", _sample_worst2, _mutate_worst2),
        Dimension("ic-timing", "ic-trigger", _sample_ic_timing,
                  _mutate_ic_timing),
        Dimension("crash", "crash", _sample_crash),
        Dimension("partition", "partition", _sample_partition),
        Dimension("delay", "delay", _sample_delay, _mutate_delay),
        Dimension("drop", "drop", _sample_drop, _mutate_drop),
        Dimension("duplicate", "duplicate", _sample_duplicate,
                  _mutate_duplicate),
    )
}

_KIND_TO_DIMENSION: Dict[str, Dimension] = {
    dim.kind: dim for dim in DIMENSIONS.values()
}


def plan_key(plan: Sequence[FaultSpec]) -> str:
    """Canonical identity of a plan (cache/dedupe key)."""
    return json.dumps([spec.to_dict() for spec in plan], sort_keys=True)


# -------------------------------------------------------------- strategies
class SearchStrategy:
    """ask/tell interface both search loops implement.

    ``ask(n)`` proposes ``n`` candidate plans; ``tell(plans, rewards)``
    reports the (ask-order) rewards of the batch.  Strategies see only
    plans and scalar rewards — the driver owns execution, caching and
    safety bookkeeping.
    """

    name = "strategy"

    def __init__(self, seed: int, ctx: ActionContext):
        self.rng = random.Random(seed)
        self.ctx = ctx

    def ask(self, n: int) -> List[Tuple[FaultSpec, ...]]:
        raise NotImplementedError

    def tell(self, plans: List[Tuple[FaultSpec, ...]],
             rewards: List[float]) -> None:
        raise NotImplementedError


class BanditStrategy(SearchStrategy):
    """UCB1 over vocabulary dimensions.

    Each arm is one dimension; a candidate is the chosen arm's sampled
    fault, optionally paired with a second (uniformly drawn) arm so the
    bandit can discover interactions.  Rewards credit every contributing
    arm.  Within a batch, provisional counts spread slots over arms so a
    parallel batch explores like a sequential run would.
    """

    name = "bandit"
    EXPLORATION = 0.7
    PAIR_P = 0.4

    def __init__(self, seed: int, ctx: ActionContext):
        super().__init__(seed, ctx)
        self.arms = list(DIMENSIONS)
        self.counts = {arm: 0 for arm in self.arms}
        self.sums = {arm: 0.0 for arm in self.arms}
        self._pending: Dict[str, List[str]] = {}

    def _pick_arm(self, counts: Dict[str, int]) -> str:
        total = sum(counts.values())
        for arm in self.arms:  # fixed order: untried arms first
            if counts[arm] == 0:
                return arm
        log_total = math.log(total)

        def ucb(arm: str) -> float:
            mean = self.sums[arm] / self.counts[arm] if self.counts[arm] else 0.0
            return mean + self.EXPLORATION * math.sqrt(log_total / counts[arm])

        best = self.arms[0]
        best_score = ucb(best)
        for arm in self.arms[1:]:
            score = ucb(arm)
            if score > best_score:
                best, best_score = arm, score
        return best

    def ask(self, n: int) -> List[Tuple[FaultSpec, ...]]:
        plans: List[Tuple[FaultSpec, ...]] = []
        provisional = dict(self.counts)
        for _ in range(n):
            arm = self._pick_arm(provisional)
            provisional[arm] += 1
            used = [arm]
            faults = [DIMENSIONS[arm].sample(self.rng, self.ctx)]
            if self.rng.random() < self.PAIR_P:
                partner = self.arms[self.rng.randrange(len(self.arms))]
                if partner != arm:
                    provisional[partner] += 1
                    used.append(partner)
                    faults.append(DIMENSIONS[partner].sample(self.rng, self.ctx))
            plan = tuple(faults)
            self._pending[plan_key(plan)] = used
            plans.append(plan)
        return plans

    def tell(self, plans: List[Tuple[FaultSpec, ...]],
             rewards: List[float]) -> None:
        for plan, reward in zip(plans, rewards):
            for arm in self._pending.pop(plan_key(plan), ()):
                self.counts[arm] += 1
                self.sums[arm] += reward


class EvolutionStrategy(SearchStrategy):
    """Mutation/crossover over fault-plan genomes.

    The genome *is* the plan — a tuple of ``FaultSpec``s.  Generation 0
    samples random 1–3 fault plans; afterwards children come from
    tournament-selected parents via crossover (merge two plans' faults)
    or mutation (tweak one fault's parameters through its dimension, add
    a fault, or drop one).  A bounded elite pool provides selection
    pressure; batch-level dedupe keeps the budget spent on new genomes.
    """

    name = "evolve"
    POOL_LIMIT = 64
    TOURNAMENT = 3
    CROSSOVER_P = 0.35

    def __init__(self, seed: int, ctx: ActionContext):
        super().__init__(seed, ctx)
        self.pool: List[Tuple[float, str, Tuple[FaultSpec, ...]]] = []
        self._seen: set = set()

    # ----------------------------------------------------------- genomes
    def _sample_plan(self) -> Tuple[FaultSpec, ...]:
        draw = self.rng.random()
        count = 1 if draw < 0.5 else (2 if draw < 0.85 else 3)
        names = list(DIMENSIONS)
        _shuffle(self.rng, names)
        return tuple(
            DIMENSIONS[name].sample(self.rng, self.ctx)
            for name in names[:count]
        )

    def _mutate_plan(self, plan: Tuple[FaultSpec, ...]) -> Tuple[FaultSpec, ...]:
        faults = list(plan)
        ops = ["tweak"]
        if len(faults) < MAX_PLAN_FAULTS:
            ops.append("add")
        if len(faults) > 1:
            ops.append("remove")
        op = self.rng.choice(ops)
        if op == "tweak" and faults:
            index = self.rng.randrange(len(faults))
            dim = _KIND_TO_DIMENSION.get(faults[index].kind)
            if dim is not None:
                faults[index] = dim.mutate(self.rng, faults[index], self.ctx)
        elif op == "add":
            present = {spec.kind for spec in faults}
            candidates = [name for name, dim in DIMENSIONS.items()
                          if dim.kind not in present]
            if candidates:
                name = candidates[self.rng.randrange(len(candidates))]
                faults.append(DIMENSIONS[name].sample(self.rng, self.ctx))
        elif op == "remove":
            faults.pop(self.rng.randrange(len(faults)))
        return tuple(faults)

    def _crossover(self, a: Tuple[FaultSpec, ...],
                   b: Tuple[FaultSpec, ...]) -> Tuple[FaultSpec, ...]:
        merged: List[FaultSpec] = []
        kinds: set = set()
        pool = list(a) + list(b)
        order = list(range(len(pool)))
        _shuffle(self.rng, order)
        for index in order:
            spec = pool[index]
            if spec.kind not in kinds:
                kinds.add(spec.kind)
                merged.append(spec)
            if len(merged) >= MAX_PLAN_FAULTS:
                break
        return tuple(merged)

    def _select(self) -> Tuple[FaultSpec, ...]:
        best: Optional[Tuple[float, str, Tuple[FaultSpec, ...]]] = None
        for _ in range(self.TOURNAMENT):
            pick = self.pool[self.rng.randrange(len(self.pool))]
            if best is None or pick[0] > best[0]:
                best = pick
        return best[2]

    # ---------------------------------------------------------- ask/tell
    def ask(self, n: int) -> List[Tuple[FaultSpec, ...]]:
        plans: List[Tuple[FaultSpec, ...]] = []
        batch_keys: set = set()
        attempts = 0
        while len(plans) < n and attempts <= 16 * n + 64:
            attempts += 1
            if not self.pool or attempts > 4 * n + 8:
                plan = self._sample_plan()
            elif self.rng.random() < self.CROSSOVER_P and len(self.pool) > 1:
                plan = self._crossover(self._select(), self._select())
            else:
                plan = self._mutate_plan(self._select())
            key = plan_key(plan)
            if key in batch_keys or (key in self._seen
                                     and attempts <= 4 * n + 8):
                continue
            batch_keys.add(key)
            plans.append(plan)
        return plans

    def tell(self, plans: List[Tuple[FaultSpec, ...]],
             rewards: List[float]) -> None:
        for plan, reward in zip(plans, rewards):
            key = plan_key(plan)
            if key in self._seen:
                continue
            self._seen.add(key)
            self.pool.append((reward, key, plan))
        # Highest reward first; the key is a deterministic tie-break.
        self.pool.sort(key=lambda item: (-item[0], item[1]))
        del self.pool[self.POOL_LIMIT:]


STRATEGIES: Dict[str, type] = {
    BanditStrategy.name: BanditStrategy,
    EvolutionStrategy.name: EvolutionStrategy,
}


def resolve_strategies(name: str) -> Tuple[str, ...]:
    """``"bandit"`` / ``"evolve"`` / ``"both"`` → strategy name tuple."""
    if name in ("both", "all"):
        return tuple(STRATEGIES)
    if name in STRATEGIES:
        return (name,)
    raise ValueError(
        "unknown search strategy %r (known: %s, both)"
        % (name, ", ".join(STRATEGIES))
    )


# ------------------------------------------------------------------ reward
def compute_reward(baseline: EpisodeResult,
                   result: EpisodeResult) -> Dict[str, float]:
    """Reward = throughput degradation, latency-tilted.

    ``degradation`` is the fraction of the fault-free baseline's
    completed requests the attack destroyed; ``latency_ratio`` is the
    attacked mean latency over the baseline's.  The scalar ``reward``
    is degradation plus a small bounded latency term, so plans that
    throttle equally rank by how much they hurt latency.
    """
    if baseline.completed > 0:
        degradation = 1.0 - result.completed / baseline.completed
    else:
        degradation = 0.0
    if baseline.mean_latency > 0 and result.completed > 0:
        latency_ratio = result.mean_latency / baseline.mean_latency
    else:
        latency_ratio = 1.0
    reward = max(0.0, degradation) + LATENCY_WEIGHT * min(
        max(latency_ratio - 1.0, 0.0), 1.0
    )
    return {
        "reward": reward,
        "degradation": degradation,
        "latency_ratio": latency_ratio,
    }


# ------------------------------------------------------------------ driver
@dataclass
class LeaderboardEntry:
    """One ranked attack: the shrunk plan and how much it hurts."""

    plan: Tuple[FaultSpec, ...]
    result: EpisodeResult
    reward: float
    degradation: float
    latency_ratio: float
    strategy: str
    artifact: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "plan": [spec.to_dict() for spec in self.plan],
            "digest": self.result.digest,
            "reward": round(self.reward, 6),
            "throughput_degradation": round(self.degradation, 6),
            "latency_ratio": round(self.latency_ratio, 6),
            "completed": self.result.completed,
            "violations": sorted(self.result.violated()),
            "strategy": self.strategy,
        }
        if self.artifact is not None:
            record["artifact"] = self.artifact
        return record


@dataclass
class SearchReport:
    """Everything one :func:`run_search` produced."""

    protocol: str
    master_seed: int
    budget: int
    strategies: Tuple[str, ...]
    baseline: EpisodeResult
    entries: List[LeaderboardEntry] = field(default_factory=list)
    scripted: Dict[str, LeaderboardEntry] = field(default_factory=dict)
    counterexamples: List[Tuple[EpisodeSpec, EpisodeResult]] = field(
        default_factory=list
    )
    evaluations: int = 0
    artifacts: List[str] = field(default_factory=list)
    leaderboard: Dict[str, Any] = field(default_factory=dict)

    @property
    def best(self) -> Optional[LeaderboardEntry]:
        return self.entries[0] if self.entries else None

    @property
    def scripted_bar(self) -> float:
        """The strongest scripted adversary's reward — the bar to beat."""
        if not self.scripted:
            return 0.0
        return max(entry.reward for entry in self.scripted.values())

    @property
    def beats_scripted(self) -> bool:
        best = self.best
        return best is not None and best.reward >= self.scripted_bar

    @property
    def ok(self) -> bool:
        """No invariant violation anywhere — searched or scripted."""
        return not self.counterexamples and all(
            entry.result.ok for entry in self.scripted.values()
        )


def _derive_seed(master_seed: int, salt: str) -> int:
    rng = random.Random(
        (master_seed * 0x9E3779B1 + sum(salt.encode()) * 0x85EBCA77 + 1)
        & 0x7FFFFFFF
    )
    return rng.randrange(1 << 31)


def run_search(
    master_seed: int = 0,
    budget: int = 48,
    strategy: str = "both",
    protocol: str = "rbft",
    jobs: Optional[int] = None,
    out_dir: Optional[str] = None,
    batch: int = 8,
    top_n: int = 5,
    shrink_champions: bool = True,
    **spec_overrides,
) -> SearchReport:
    """Search the fault space for the plans that hurt ``protocol`` most.

    ``budget`` counts attacked-episode proposals across all selected
    strategies (split evenly); the fault-free baseline, the scripted
    §VI-C references and the shrink re-runs come on top.  The whole run
    is a pure function of ``(master_seed, budget, strategy, protocol,
    spec_overrides)`` — ``jobs`` only changes wall-clock time.
    """
    from repro.experiments.parallel import execute_tasks

    strategy_names = resolve_strategies(strategy)
    base_spec = EpisodeSpec(
        seed=_derive_seed(master_seed, "episode"),
        plan=(),
        protocol=protocol,
        **spec_overrides,
    )
    ctx = ActionContext(
        duration=base_spec.duration, n_nodes=3 * base_spec.f + 1
    )
    baseline = run_episode(base_spec)
    report = SearchReport(
        protocol=protocol, master_seed=master_seed, budget=budget,
        strategies=strategy_names, baseline=baseline,
    )

    cache: Dict[str, Tuple[EpisodeResult, Dict[str, float]]] = {}
    discovered: Dict[str, str] = {}  # plan key -> discovering strategy

    def evaluate(plans: List[Tuple[FaultSpec, ...]],
                 origin: str) -> List[Dict[str, float]]:
        fresh: List[Tuple[str, Tuple[FaultSpec, ...]]] = []
        seen_in_batch: set = set()
        for plan in plans:
            key = plan_key(plan)
            if key in cache or key in seen_in_batch:
                continue
            seen_in_batch.add(key)
            fresh.append((key, plan))
        if fresh:
            tasks = [
                _EpisodeTask(replace(base_spec, plan=plan))
                for _, plan in fresh
            ]
            results = execute_tasks(tasks, jobs=jobs)
            for (key, plan), result in zip(fresh, results):
                cache[key] = (result, compute_reward(baseline, result))
                discovered.setdefault(key, origin)
                report.evaluations += 1
        return [cache[plan_key(plan)][1] for plan in plans]

    # ---------------------------------------------------- scripted bar
    scripted_rewards = [
        (name, plan, metrics)
        for (name, plan), metrics in zip(
            SCRIPTED_PLANS,
            evaluate([plan for _, plan in SCRIPTED_PLANS], "scripted"),
        )
    ]
    for name, plan, metrics in scripted_rewards:
        result = cache[plan_key(plan)][0]
        report.scripted[name] = LeaderboardEntry(
            plan=plan, result=result, strategy="scripted", **metrics
        )

    # -------------------------------------------------------- the search
    per_strategy = max(1, budget // len(strategy_names))
    for name in strategy_names:
        strat = STRATEGIES[name](
            seed=_derive_seed(master_seed, "strategy:" + name), ctx=ctx
        )
        evaluated = 0
        while evaluated < per_strategy:
            n = min(batch, per_strategy - evaluated)
            plans = strat.ask(n)
            metrics = evaluate(plans, name)
            strat.tell(plans, [m["reward"] for m in metrics])
            evaluated += n

    # --------------------------------------- violations are findings too
    for key, (result, metrics) in sorted(cache.items()):
        if discovered.get(key) == "scripted" or result.ok:
            continue
        if len(result.spec.plan) > 1:
            minimal_spec, minimal = shrink(result.spec, result.violated())
        else:
            minimal_spec, minimal = result.spec, result
        report.counterexamples.append((minimal_spec, minimal))

    # ----------------------------------------------- champions, shrunk
    ranked = sorted(
        (
            (metrics["reward"], key, result, metrics)
            for key, (result, metrics) in cache.items()
            if discovered.get(key) != "scripted"
        ),
        key=lambda item: (-item[0], item[1]),
    )
    champions: Dict[str, LeaderboardEntry] = {}
    for reward_value, key, result, metrics in ranked:
        if len(champions) >= top_n or reward_value <= 0.0:
            break
        spec, final_result, final_metrics = result.spec, result, metrics
        if shrink_champions and len(result.spec.plan) > 1:
            floor = SHRINK_KEEP * reward_value
            spec, final_result = shrink_by(
                result.spec,
                lambda candidate: (
                    compute_reward(baseline, candidate)["reward"] >= floor
                ),
            )
            final_metrics = compute_reward(baseline, final_result)
        shrunk_key = plan_key(spec.plan)
        previous = champions.get(shrunk_key)
        if previous is not None and previous.reward >= final_metrics["reward"]:
            continue
        champions[shrunk_key] = LeaderboardEntry(
            plan=spec.plan, result=final_result,
            strategy=discovered.get(key, "?"), **final_metrics
        )
    report.entries = sorted(
        champions.values(),
        key=lambda entry: (-entry.reward, plan_key(entry.plan)),
    )

    # ---------------------------------------------------------- artifacts
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)

        def _write(result: EpisodeResult, name: str) -> str:
            path = os.path.join(out_dir, name)
            report.artifacts.append(write_episode(result, path))
            return name

        baseline_name = _write(baseline, "search-baseline.json")
        for rank, entry in enumerate(report.entries, start=1):
            entry.artifact = _write(entry.result, "search-episode-%02d.json" % rank)
        for name, entry in report.scripted.items():
            entry.artifact = _write(entry.result, "scripted-%s.json" % name)
        for index, (_, minimal) in enumerate(report.counterexamples):
            _write(minimal, "search-counterexample-%04d.json" % index)
        report.leaderboard = build_leaderboard(report, baseline_name)
        path = os.path.join(out_dir, LEADERBOARD_NAME)
        with open(path, "w", encoding="utf-8") as fileobj:
            json.dump(report.leaderboard, fileobj, indent=2, sort_keys=True)
            fileobj.write("\n")
        report.artifacts.append(path)
    else:
        report.leaderboard = build_leaderboard(report, None)
    return report


def build_leaderboard(report: SearchReport,
                      baseline_artifact: Optional[str]) -> Dict[str, Any]:
    """The leaderboard artifact: worst discovered attacks, per protocol.

    Deterministic content only — no timestamps, hostnames or wall-clock
    numbers — so the same seed and budget write byte-identical files.
    """
    baseline_record: Dict[str, Any] = {
        "digest": report.baseline.digest,
        "completed": report.baseline.completed,
        "throughput": round(report.baseline.throughput, 6),
        "mean_latency": round(report.baseline.mean_latency, 9),
    }
    if baseline_artifact is not None:
        baseline_record["artifact"] = baseline_artifact
    return {
        "format": 1,
        "protocol": report.protocol,
        "master_seed": report.master_seed,
        "budget": report.budget,
        "strategies": list(report.strategies),
        "episode": report.baseline.spec.to_dict(),
        "evaluations": report.evaluations,
        "baseline": baseline_record,
        "scripted": {
            name: entry.to_dict()
            for name, entry in sorted(report.scripted.items())
        },
        "entries": [
            dict(entry.to_dict(), rank=rank + 1)
            for rank, entry in enumerate(report.entries)
        ],
    }
