"""Online safety invariants over a live RBFT deployment.

The checkers here encode the properties that must survive *anything*
inside the fault model (≤ f Byzantine nodes, arbitrary network faults):

* **ordered-batch agreement** — no two correct replicas of the same
  protocol instance deliver different batches at the same sequence
  number;
* **commit-certificate validity** — no two correct replicas commit
  different digests at the same ``(instance, view, seq)``;
* **execution consistency** — no correct node executes a request twice,
  all correct nodes execute in the same relative order, and (absent
  state transfer) none of them skips a master-ordered request;
* **monitoring consistency** — a node votes INSTANCE-CHANGE on its own
  initiative only while its :class:`InstanceMonitor` observes a breach.

The :class:`InvariantSuite` is a **trace sink**: it plugs into the
zero-cost tracing layer (``sim.tracer``) with a kind filter, so the
checkers see exactly the protocol-level events they subscribe to while
the run itself is not perturbed — checkers only read live state, never
mutate it.  Every observed event also feeds a running SHA-256, the
**invariant digest**, which is the replay fingerprint: two runs that
made identical protocol-visible steps have identical digests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.trace.events import (
    K_IC_VOTE,
    K_PHASE,
    K_STAGE,
    K_STATE_TRANSFER,
    TraceEvent,
)
from repro.trace.tracer import Tracer

__all__ = [
    "Violation",
    "Checker",
    "OrderedBatchAgreement",
    "CommitCertificate",
    "ExecutionConsistency",
    "MonitoringConsistency",
    "InvariantSuite",
    "default_checkers",
]

#: stop accumulating after this many violations — a genuinely broken
#: engine violates on every batch and would otherwise flood memory.
MAX_VIOLATIONS = 256


@dataclass
class Violation:
    """One invariant breach, tied to the trace event that exposed it."""

    invariant: str
    message: str
    t: float
    event: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "invariant": self.invariant,
            "message": self.message,
            "t": self.t,
        }
        if self.event is not None:
            record["event"] = self.event
        return record


def _split_engine_name(name: str) -> Tuple[str, int]:
    """``"node2/i1"`` → ``("node2", 1)``."""
    node, _, instance = name.partition("/i")
    return node, int(instance)


class Checker:
    """Base class: subscribe to trace kinds, observe, report."""

    name = "checker"
    kinds: FrozenSet[str] = frozenset()

    def bind(self, suite: "InvariantSuite") -> None:
        self.suite = suite

    def on_event(self, event: TraceEvent) -> None:  # pragma: no cover
        pass

    def finalize(self) -> None:
        pass

    def report(self, message: str, event: Optional[TraceEvent] = None,
               invariant: Optional[str] = None) -> None:
        self.suite.record(invariant or self.name, message, event)


class OrderedBatchAgreement(Checker):
    """Correct replicas of one instance deliver the same batch per seq."""

    name = "order-agreement"
    kinds = frozenset({K_PHASE})

    def __init__(self) -> None:
        self._seen: Dict[Tuple[int, int], Tuple[Tuple, str]] = {}

    def on_event(self, event: TraceEvent) -> None:
        if event.data.get("phase") != "ordered":
            return
        rids = event.data.get("rids")
        if rids is None:
            return  # an emitter without batch identity: nothing to compare
        node, instance = _split_engine_name(event.name)
        if not self.suite.is_correct(node):
            return
        key = (instance, event.data["seq"])
        batch = tuple(rids)
        prev = self._seen.get(key)
        if prev is None:
            self._seen[key] = (batch, node)
        elif prev[0] != batch:
            self.report(
                "instance %d seq %d: %s delivered %r but %s delivered %r"
                % (instance, key[1], prev[1], prev[0], node, batch),
                event,
            )


class CommitCertificate(Checker):
    """No two committed digests at the same ``(instance, view, seq)``."""

    name = "commit-certificate"
    kinds = frozenset({K_PHASE})

    def __init__(self) -> None:
        self._seen: Dict[Tuple[int, int, int], Tuple[str, str]] = {}

    def on_event(self, event: TraceEvent) -> None:
        if event.data.get("phase") != "committed":
            return
        digest = event.data.get("digest")
        if digest is None:
            return
        node, instance = _split_engine_name(event.name)
        if not self.suite.is_correct(node):
            return
        key = (instance, event.data["view"], event.data["seq"])
        prev = self._seen.get(key)
        if prev is None:
            self._seen[key] = (digest, node)
        elif prev[0] != digest:
            self.report(
                "instance %d (view %d, seq %d): %s committed %s but %s "
                "committed %s"
                % (instance, key[1], key[2], prev[1], prev[0], node, digest),
                event,
            )


class ExecutionConsistency(Checker):
    """No duplicate/skipped execution; agreement on the executed order.

    Online, per execution event: a node must never execute the same
    request twice, and all correct nodes must execute in the same
    *relative* order (gaps are legal — state transfer past a stable
    checkpoint skips batches wholesale — but reordering never is).  The
    relative-order check assigns each request a canonical position the
    first time any correct node executes it; a node whose executions are
    not monotone in canonical position disagrees with some peer about
    the order.

    At finalize, against live node state: ``executed_count`` must not
    exceed the executed-id set (a duplicate ``service.apply``), and —
    when the episode expects completion and no state transfer happened —
    the executed sets must be equal across correct nodes and cover
    everything the master instance delivered.
    """

    name = "execution"
    kinds = frozenset({K_STAGE, K_PHASE, K_STATE_TRANSFER})

    def __init__(self) -> None:
        self._canon: Dict[Tuple, int] = {}  # request_id -> canonical position
        self._executed: Dict[str, set] = {}  # node -> executed request_ids
        self._last_pos: Dict[str, int] = {}  # node -> last canonical position
        self._master_ordered: Dict[str, set] = {}  # node -> master-delivered
        self.state_transfers = 0

    def on_event(self, event: TraceEvent) -> None:
        if event.kind == K_STATE_TRANSFER:
            self.state_transfers += 1
            return
        if event.kind == K_PHASE:
            if event.data.get("phase") != "ordered":
                return
            rids = event.data.get("rids")
            if rids is None:
                return
            node, instance = _split_engine_name(event.name)
            # Track what the *master* instance delivered to the execution
            # module (instance 0 unless best-backup promotion moved it —
            # the suite skips the coverage check in that case).
            if instance == 0 and self.suite.is_correct(node):
                self._master_ordered.setdefault(node, set()).update(
                    tuple(rid) if isinstance(rid, list) else rid for rid in rids
                )
            return
        if event.data.get("stage") != "execution":
            return
        rid = event.data.get("rid")
        if rid is None:
            return
        node = event.name
        if not self.suite.is_correct(node):
            return
        request_id = (event.data["client"], rid)
        executed = self._executed.setdefault(node, set())
        if request_id in executed:
            self.report(
                "%s executed %r twice" % (node, (request_id,)),
                event, invariant="exec-duplicate",
            )
            return
        executed.add(request_id)
        pos = self._canon.setdefault(request_id, len(self._canon))
        last = self._last_pos.get(node, -1)
        if pos < last:
            self.report(
                "%s executed %r out of order relative to a peer "
                "(canonical position %d after %d)"
                % (node, (request_id,), pos, last),
                event, invariant="exec-order",
            )
        else:
            self._last_pos[node] = pos

    def finalize(self) -> None:
        suite = self.suite
        nodes = [n for n in suite.deployment.nodes if suite.is_correct(n.name)]
        for node in nodes:
            if node.executed_count > len(node.executed_ids):
                self.report(
                    "%s applied %d executions over %d distinct requests"
                    % (node.name, node.executed_count, len(node.executed_ids)),
                    invariant="exec-duplicate",
                )
        if self.state_transfers or not suite.expect_complete:
            return
        promotion = any(n.master_instance != 0 for n in suite.deployment.nodes)
        baseline = nodes[0].executed_ids if nodes else set()
        for node in nodes[1:]:
            if node.executed_ids != baseline:
                diff = node.executed_ids.symmetric_difference(baseline)
                self.report(
                    "%s and %s disagree on the executed set (%d requests "
                    "differ, e.g. %r)"
                    % (node.name, nodes[0].name, len(diff),
                       sorted(diff)[:3]),
                    invariant="exec-agreement",
                )
        if promotion:
            return
        for node in nodes:
            skipped = self._master_ordered.get(node.name, set()) - node.executed_ids
            if skipped:
                self.report(
                    "%s skipped %d master-ordered requests (e.g. %r)"
                    % (node.name, len(skipped), sorted(skipped)[:3]),
                    invariant="exec-skip",
                )


class MonitoringConsistency(Checker):
    """Self-initiated INSTANCE-CHANGE votes require an observed breach.

    A vote is self-initiated unless the node is merely following an
    established f+1 quorum ("join-support") or adopting its choice of
    master ("adopt") — those are the liveness rules of §IV-D and carry
    another correct node's observation.  Everything else (Δ/Λ/Ω monitor
    triggers, "join-breach") asserts a local observation, checked here
    against the live monitor at the instant the vote is emitted.
    """

    name = "monitor-consistency"
    kinds = frozenset({K_IC_VOTE})

    QUORUM_REASONS = frozenset({"join-support", "adopt"})

    def on_event(self, event: TraceEvent) -> None:
        if event.data.get("reason") in self.QUORUM_REASONS:
            return
        node = event.name
        if not self.suite.is_correct(node):
            return
        monitor = self.suite.nodes[node].monitor
        if not monitor.observes_breach():
            self.report(
                "%s voted INSTANCE-CHANGE (%r) without an observed "
                "monitoring breach"
                % (node, event.data.get("reason")),
                event,
            )


def default_checkers() -> List[Checker]:
    return [
        OrderedBatchAgreement(),
        CommitCertificate(),
        ExecutionConsistency(),
        MonitoringConsistency(),
    ]


@dataclass
class _SuiteState:
    violations: List[Violation] = field(default_factory=list)
    dropped_violations: int = 0


class InvariantSuite:
    """A tracing sink that runs the online checkers over a deployment.

    Usage::

        suite = InvariantSuite().attach(deployment, faulty={"node3"})
        deployment.sim.run(until=2.0)
        violations = suite.finalize()
        print(suite.digest())
    """

    def __init__(self, checkers: Optional[List[Checker]] = None,
                 expect_complete: bool = True):
        self.checkers = checkers if checkers is not None else default_checkers()
        self.expect_complete = expect_complete
        self.deployment = None
        self.nodes: Dict[str, Any] = {}
        self.faulty: FrozenSet[str] = frozenset()
        self.events_seen = 0
        self._state = _SuiteState()
        self._hash = hashlib.sha256()
        self._finalized = False
        self._by_kind: Dict[str, List[Checker]] = {}
        for checker in self.checkers:
            checker.bind(self)
            for kind in checker.kinds:
                self._by_kind.setdefault(kind, []).append(checker)

    # ----------------------------------------------------------- wiring
    def attach(self, deployment, faulty: Iterable[str] = (),
               expect_complete: Optional[bool] = None) -> "InvariantSuite":
        """Install this suite as the deployment's tracer sink."""
        self.deployment = deployment
        self.faulty = frozenset(faulty)
        self.nodes = {node.name: node for node in deployment.nodes}
        if expect_complete is not None:
            self.expect_complete = expect_complete
        deployment.sim.tracer = Tracer(
            sink=self, kinds=frozenset(self._by_kind)
        )
        return self

    def is_correct(self, node_name: str) -> bool:
        return node_name not in self.faulty

    # ------------------------------------------------------------- sink
    def append(self, event: TraceEvent) -> None:
        """Sink protocol: called by the tracer for every subscribed event."""
        self.events_seen += 1
        self._hash.update(
            ("%r|%s|%s|%r" % (event.t, event.kind, event.name,
                              sorted(event.data.items()))).encode()
        )
        for checker in self._by_kind.get(event.kind, ()):
            checker.on_event(event)

    # ---------------------------------------------------------- results
    @property
    def violations(self) -> List[Violation]:
        return self._state.violations

    def record(self, invariant: str, message: str,
               event: Optional[TraceEvent] = None) -> None:
        if len(self._state.violations) >= MAX_VIOLATIONS:
            self._state.dropped_violations += 1
            return
        t = event.t if event is not None else (
            self.deployment.sim.now if self.deployment is not None else 0.0
        )
        self._state.violations.append(Violation(
            invariant, message, t,
            event.to_dict() if event is not None else None,
        ))

    def finalize(self, summary: Optional[Dict[str, Any]] = None) -> List[Violation]:
        """Run end-of-episode checks; fold ``summary`` into the digest."""
        if not self._finalized:
            self._finalized = True
            for checker in self.checkers:
                checker.finalize()
            if summary:
                self._hash.update(repr(sorted(summary.items())).encode())
        return self._state.violations

    def digest(self) -> str:
        """The invariant digest: a fingerprint of every observed event."""
        return self._hash.hexdigest()

    def __repr__(self) -> str:
        return "InvariantSuite(events=%d, violations=%d)" % (
            self.events_seen, len(self._state.violations)
        )
