"""One explorer episode: a seeded deployment, a fault plan, a verdict.

An :class:`EpisodeSpec` is fully self-contained — seed, load, protocol
knobs and the fault plan — so the episode is a pure function of it:
running the same spec twice (in this process, a worker process, or a
replay months later) produces byte-identical simulator schedules and
therefore an identical **invariant digest**.  That is what makes the
JSON artifact a faithful counterexample: ``check --replay`` re-runs the
spec and compares digests instead of trusting the recorded verdict.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.clients import LoadGenerator, build_profile
from repro.core import RBFTConfig
from repro.protocols import registry as protocol_registry

from .invariants import InvariantSuite
from .vocabulary import FaultSpec, install_plan

__all__ = ["EpisodeSpec", "EpisodeResult", "run_episode"]

#: Byzantine faults within the model may cost a few percent of
#: completions (§VI-C: ≤3 %); below this floor something is wrong.
COMPLETION_FLOOR = 0.95

#: The registry variants an episode can target.  The invariant suite and
#: the fault vocabulary read RBFT node state (per-instance engines, the
#: instance monitor, master promotion), so episodes are restricted to
#: the RBFT family; all three share :func:`build_rbft` and
#: :class:`RBFTConfig`, differing only in transport/ordering knobs.
RBFT_FAMILY = ("rbft", "rbft-udp", "rbft-full-order")


@dataclass(frozen=True)
class EpisodeSpec:
    """Everything that determines one episode."""

    seed: int
    plan: Tuple[FaultSpec, ...] = ()
    duration: float = 1.0  # load window, simulated seconds
    drain: float = 1.0  # settle time after the load stops
    rate: float = 1500.0  # aggregate offered load, requests/second
    n_clients: int = 6
    f: int = 1
    batch_size: int = 8
    batch_delay: float = 1e-3
    monitoring_period: float = 0.1
    min_monitor_requests: int = 10
    flood_threshold: int = 32
    protocol: str = "rbft"  # a registry name from RBFT_FAMILY
    #: geo-distributed layout: a named topology pack from
    #: :data:`repro.net.topology.TOPOLOGY_PACKS` ("wan3", "wan5"), or
    #: "" for the flat LAN.  A pack *name* rather than a Topology value
    #: keeps the spec JSON-serialisable and replay artifacts readable.
    topology: str = ""
    #: traffic shape: a workload-registry pack name.  The classic
    #: constant-rate profile is the default; non-static packs let the
    #: adversary search under diurnal / flash-crowd / churn traffic.
    workload: str = "static"

    def to_dict(self) -> Dict[str, Any]:
        record = asdict(self)
        record["plan"] = [spec.to_dict() for spec in self.plan]
        # Artifact compatibility: episodes recorded before the protocol
        # field existed carry no "protocol" key, and regenerating them
        # must stay byte-identical — omit the default.
        if record["protocol"] == "rbft":
            del record["protocol"]
        if not record["topology"]:  # same rule for pre-WAN artifacts
            del record["topology"]
        if record["workload"] == "static":  # and pre-workload artifacts
            del record["workload"]
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "EpisodeSpec":
        record = dict(record)
        record["plan"] = tuple(
            FaultSpec.from_dict(spec) for spec in record.get("plan", ())
        )
        return cls(**record)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EpisodeSpec":
        return cls.from_dict(json.loads(text))

    def without_fault(self, index: int) -> "EpisodeSpec":
        """A copy with one fault removed (the shrinker's move)."""
        plan = self.plan[:index] + self.plan[index + 1:]
        return replace(self, plan=plan)


@dataclass
class EpisodeResult:
    """The verdict of one episode run."""

    spec: EpisodeSpec
    digest: str
    violations: List[Dict[str, Any]] = field(default_factory=list)
    sent: int = 0
    completed: int = 0
    executed: Dict[str, int] = field(default_factory=dict)
    instance_changes: Dict[str, int] = field(default_factory=dict)
    events_seen: int = 0
    #: mean end-to-end latency over completed requests, seconds.  Kept
    #: out of :meth:`to_dict` (and so out of the replay artifacts): it is
    #: derived measurement for the adversary's reward, not part of the
    #: episode's identity.
    mean_latency: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def throughput(self) -> float:
        """Completed requests per simulated second of the load window."""
        return self.completed / self.spec.duration if self.spec.duration else 0.0

    def violated(self) -> frozenset:
        return frozenset(v["invariant"] for v in self.violations)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "digest": self.digest,
            "violations": self.violations,
            "summary": {
                "sent": self.sent,
                "completed": self.completed,
                "executed": self.executed,
                "instance_changes": self.instance_changes,
                "events_seen": self.events_seen,
            },
        }


def run_episode(
    spec: EpisodeSpec,
    mutate: Optional[Callable] = None,
) -> EpisodeResult:
    """Run one episode and check every invariant.

    ``mutate`` is a hook for mutation testing: it receives the freshly
    built deployment *before* faults install, so a test can deliberately
    break the engine (say, lower the commit quorum) and confirm the
    invariant layer catches the consequences.  It is not part of the
    spec and never serialized — replay artifacts always describe the
    stock engine.
    """
    if spec.protocol not in RBFT_FAMILY:
        raise ValueError(
            "episode protocol %r is not in the RBFT family %r"
            % (spec.protocol, RBFT_FAMILY)
        )
    config = RBFTConfig(
        f=spec.f,
        batch_size=spec.batch_size,
        batch_delay=spec.batch_delay,
        monitoring_period=spec.monitoring_period,
        min_monitor_requests=spec.min_monitor_requests,
        flood_threshold=spec.flood_threshold,
        order_full_requests=(spec.protocol == "rbft-full-order"),
    )
    variant = protocol_registry.get(spec.protocol)
    build_kwargs = dict(variant.build_kwargs)
    if spec.topology:
        from repro.net.topology import named

        build_kwargs["topology"] = named(spec.topology)
    deployment = variant.builder(
        config, n_clients=spec.n_clients, seed=spec.seed,
        **build_kwargs
    )
    if mutate is not None:
        mutate(deployment)
    handle = install_plan(deployment, spec.plan)
    suite = InvariantSuite().attach(
        deployment, faulty=handle.faulty,
        expect_complete=handle.expect_complete,
    )
    generator = LoadGenerator(
        deployment.sim,
        deployment.clients[1:],  # client0 is the designated misbehaver
        build_profile(
            spec.workload, spec.rate, spec.duration,
            clients=spec.n_clients - 1,
        ),
        deployment.rng.stream("load"),
        send_kwargs=handle.client_send_kwargs or None,
    )
    generator.start()
    deployment.sim.run(until=spec.duration + spec.drain)

    sent = generator.total_sent()
    completed = generator.total_completed()
    if handle.expect_complete and sent and completed < COMPLETION_FLOOR * sent:
        suite.record(
            "completion",
            "only %d of %d requests completed (< %d%% floor) although the "
            "plan contains no network faults"
            % (completed, sent, int(COMPLETION_FLOOR * 100)),
        )
    correct = [n for n in deployment.nodes if suite.is_correct(n.name)]
    summary = {
        "sent": sent,
        "completed": completed,
        "executed": tuple((n.name, n.executed_count) for n in correct),
        "instance_changes": tuple(
            (n.name, n.instance_changes) for n in correct
        ),
    }
    violations = suite.finalize(summary)
    return EpisodeResult(
        spec=spec,
        digest=suite.digest(),
        violations=[v.to_dict() for v in violations],
        sent=sent,
        completed=completed,
        executed={n.name: n.executed_count for n in correct},
        instance_changes={n.name: n.instance_changes for n in correct},
        events_seen=suite.events_seen,
        mean_latency=generator.mean_latency(),
    )
