"""Deterministic fault-space exploration and online safety invariants.

Three layers:

* :mod:`repro.verify.invariants` — an :class:`InvariantSuite` that
  attaches to a live deployment as a trace sink and continuously checks
  ordering/execution agreement, commit-certificate validity and
  monitoring consistency, with a running SHA-256 **invariant digest**
  for byte-identical replay comparison;
* :mod:`repro.verify.vocabulary` / :mod:`repro.verify.interceptor` — a
  declarative, JSON-serializable fault vocabulary (the paper's attacks
  plus crash/partition/delay/drop/duplicate via a channel-wrapping
  interceptor);
* :mod:`repro.verify.episode` / :mod:`repro.verify.explorer` — seeded
  episodes as pure functions of an :class:`EpisodeSpec`, batch
  exploration from a master seed with process fan-out, greedy plan
  shrinking to a minimal counterexample, and JSON replay artifacts
  (``python -m repro.experiments check --replay <file>``);
* :mod:`repro.verify.search` — the learned adversary: seeded
  bandit/evolutionary search over the fault vocabulary, rewarded by
  throughput/latency degradation versus a fault-free baseline, emitting
  a per-protocol worst-attack leaderboard (``explore --search``).

See ``docs/testing.md`` for the workflow.
"""

from .episode import EpisodeResult, EpisodeSpec, run_episode
from .explorer import (
    ExplorationReport,
    check_replay,
    explore,
    load_episode,
    make_spec,
    sample_plan,
    shrink,
    shrink_by,
    write_episode,
)
from .search import (
    BanditStrategy,
    DIMENSIONS,
    EvolutionStrategy,
    LeaderboardEntry,
    SearchReport,
    SearchStrategy,
    STRATEGIES,
    compute_reward,
    resolve_strategies,
    run_search,
)
from .interceptor import NetworkInterceptor, Rule
from .invariants import (
    Checker,
    CommitCertificate,
    ExecutionConsistency,
    InvariantSuite,
    MonitoringConsistency,
    OrderedBatchAgreement,
    Violation,
    default_checkers,
)
from .vocabulary import FAULT_KINDS, FaultSpec, PlanHandle, fault, install_plan

__all__ = [
    "EpisodeResult",
    "EpisodeSpec",
    "run_episode",
    "ExplorationReport",
    "check_replay",
    "explore",
    "load_episode",
    "make_spec",
    "sample_plan",
    "shrink",
    "shrink_by",
    "write_episode",
    "BanditStrategy",
    "DIMENSIONS",
    "EvolutionStrategy",
    "LeaderboardEntry",
    "SearchReport",
    "SearchStrategy",
    "STRATEGIES",
    "compute_reward",
    "resolve_strategies",
    "run_search",
    "NetworkInterceptor",
    "Rule",
    "Checker",
    "CommitCertificate",
    "ExecutionConsistency",
    "InvariantSuite",
    "MonitoringConsistency",
    "OrderedBatchAgreement",
    "Violation",
    "default_checkers",
    "FAULT_KINDS",
    "FaultSpec",
    "PlanHandle",
    "fault",
    "install_plan",
]
