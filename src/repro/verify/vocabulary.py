"""The declarative fault vocabulary the explorer composes episodes from.

A fault plan is a sequence of :class:`FaultSpec` values — pure data,
JSON-serializable, picklable — and :func:`install_plan` wires each spec
into a live deployment.  The vocabulary covers:

* the five chaos faults the old hand-written suite used
  (``silent-replicas``, ``flooding-node``, ``throttled-master``,
  ``mute-propagation``, ``junk-clients``);
* the paper's two worst-case RBFT adversaries (``rbft-worst1``,
  ``rbft-worst2``, §VI-C) via :mod:`repro.faults.attacks`;
* instance-change timing (``ic-trigger``): a Byzantine node casts an
  unprovoked INSTANCE-CHANGE vote at a chosen instant — the adversarial
  search's handle on *when* monitoring-induced churn lands;
* network faults through the interceptor: ``crash`` (isolate a node for
  a window, then let it recover), ``partition``, ``delay``, ``drop``
  and ``duplicate``.

Installation classifies the touched nodes as *faulty* (excluded from the
cross-replica safety comparisons) and decides whether client requests
are still **expected to complete**: Byzantine behaviour within the fault
model must not cost more than a few percent of completions (that is the
paper's claim), but a crashed primary or a partition legitimately stalls
requests for the duration of the window, so completion is only asserted
for plans without network faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Set, Tuple

from repro.faults import BatchPacer, Flooder
from repro.faults.attacks import (
    install_rbft_worst_attack_1,
    install_rbft_worst_attack_2,
)

from .interceptor import NetworkInterceptor

__all__ = ["FaultSpec", "fault", "PlanHandle", "install_plan", "FAULT_KINDS"]


@dataclass(frozen=True)
class FaultSpec:
    """One named fault plus its parameters — pure, serializable data."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "FaultSpec":
        return cls(record["kind"], dict(record.get("params") or {}))


def fault(kind: str, **params) -> FaultSpec:
    if kind not in FAULT_KINDS:
        raise ValueError("unknown fault kind %r (known: %s)"
                         % (kind, ", ".join(sorted(FAULT_KINDS))))
    return FaultSpec(kind, params)


@dataclass
class PlanHandle:
    """Everything a plan installation produced or decided."""

    interceptor: NetworkInterceptor
    faulty: Set[str] = field(default_factory=set)
    client_send_kwargs: Dict[str, Any] = field(default_factory=dict)
    expect_complete: bool = True
    flooders: List[Flooder] = field(default_factory=list)
    pacers: List[BatchPacer] = field(default_factory=list)


# ------------------------------------------------------------- installers
def _node_name(index: int) -> str:
    return "node%d" % index


def _install_silent_replicas(dep, params, handle: PlanHandle) -> None:
    node = dep.nodes[params.get("node", 3)]
    for engine in node.engines:
        engine.silent = True
    handle.faulty.add(node.name)


def _install_flooding_node(dep, params, handle: PlanHandle) -> None:
    node = dep.nodes[params.get("node", 3)]
    victims = [other.name for other in dep.nodes if other is not node]
    flooder = Flooder(node.machine, victims, rate=params.get("rate", 3000.0))
    flooder.start()
    handle.flooders.append(flooder)
    handle.faulty.add(node.name)


def _install_throttled_master(dep, params, handle: PlanHandle) -> None:
    rate = params.get("rate", 400.0)
    node = dep.nodes[0]  # hosts the master primary in view 0
    pacer = BatchPacer(dep.sim, lambda: rate)
    node.engines[0].preprepare_delay_fn = (
        lambda msg: pacer.delay_for(len(msg.items))
    )
    handle.pacers.append(pacer)
    handle.faulty.add(node.name)


def _install_mute_propagation(dep, params, handle: PlanHandle) -> None:
    node = dep.nodes[params.get("node", 3)]
    node.propagate_silent = True
    handle.faulty.add(node.name)


def _install_junk_clients(dep, params, handle: PlanHandle) -> None:
    # client0 misbehaves; episode load always runs on clients[1:].
    for _ in range(params.get("count", 3)):
        dep.clients[0].send_request(signature_valid=False)


def _install_rbft_worst1(dep, params, handle: PlanHandle) -> None:
    attack = install_rbft_worst_attack_1(
        dep, flood_rate=params.get("flood_rate", 500.0)
    )
    handle.faulty.update(node.name for node in attack.faulty_nodes)
    handle.client_send_kwargs.update(attack.client_send_kwargs)
    handle.flooders.extend(attack.flooders)


def _install_rbft_worst2(dep, params, handle: PlanHandle) -> None:
    attack = install_rbft_worst_attack_2(
        dep,
        flood_rate=params.get("flood_rate", 500.0),
        junk_rate=params.get("junk_rate", 2000.0),
    )
    handle.faulty.update(node.name for node in attack.faulty_nodes)
    handle.client_send_kwargs.update(attack.client_send_kwargs)
    handle.flooders.extend(attack.flooders)


def _install_ic_trigger(dep, params, handle: PlanHandle) -> None:
    """Instance-change timing as an adversary action: at ``at`` seconds
    one Byzantine node casts an unprovoked INSTANCE-CHANGE vote for
    ``choice`` (default: its own preference).  Alone it is harmless —
    correct nodes only join when they observe a breach or see an f+1
    quorum — but timed against a throttled/flooded master it decides
    *when* the churn the monitors were about to cause actually lands."""
    node = dep.nodes[params.get("node", 3)]
    choice = params.get("choice")

    def cast_vote() -> None:
        node.vote_instance_change("malicious", choice=choice)

    dep.sim.call_after(params.get("at", 0.2), cast_vote)
    handle.faulty.add(node.name)


def _install_crash(dep, params, handle: PlanHandle) -> None:
    """Crash-as-isolation: the node neither sends nor receives for the
    window, then recovers with its state intact (a warm reboot)."""
    name = _node_name(params.get("node", 3))
    handle.interceptor.isolate(
        name, start=params.get("at", 0.2), until=params.get("until", 1.0)
    )


def _install_partition(dep, params, handle: PlanHandle) -> None:
    groups = params.get("groups") or [[0, 1], [2, 3]]
    handle.interceptor.partition(
        [[_node_name(i) for i in group] for group in groups],
        start=params.get("at", 0.2), until=params.get("until", 1.0),
    )


def _install_delay(dep, params, handle: PlanHandle) -> None:
    handle.interceptor.delay(
        params.get("extra", 2e-3),
        src=_maybe_node(params.get("src")),
        dst=_maybe_node(params.get("dst")),
        p=params.get("p", 1.0),
        start=params.get("at", 0.0),
        until=params.get("until", float("inf")),
    )


def _install_drop(dep, params, handle: PlanHandle) -> None:
    handle.interceptor.drop(
        src=_maybe_node(params.get("src")),
        dst=_maybe_node(params.get("dst")),
        p=params.get("p", 0.05),
        start=params.get("at", 0.0),
        until=params.get("until", float("inf")),
    )


def _install_duplicate(dep, params, handle: PlanHandle) -> None:
    handle.interceptor.duplicate(
        src=_maybe_node(params.get("src")),
        dst=_maybe_node(params.get("dst")),
        p=params.get("p", 0.2),
        start=params.get("at", 0.0),
        until=params.get("until", float("inf")),
    )


def _maybe_node(index):
    return None if index is None else _node_name(index)


FAULT_KINDS: Dict[str, Callable] = {
    "silent-replicas": _install_silent_replicas,
    "flooding-node": _install_flooding_node,
    "throttled-master": _install_throttled_master,
    "mute-propagation": _install_mute_propagation,
    "junk-clients": _install_junk_clients,
    "rbft-worst1": _install_rbft_worst1,
    "rbft-worst2": _install_rbft_worst2,
    "ic-trigger": _install_ic_trigger,
    "crash": _install_crash,
    "partition": _install_partition,
    "delay": _install_delay,
    "drop": _install_drop,
    "duplicate": _install_duplicate,
}

#: plans containing these kinds stall requests legitimately (a crashed
#: primary, a cut link), so end-to-end completion is not asserted.
_NO_COMPLETION_KINDS = frozenset({"crash", "partition", "delay", "drop"})


def install_plan(deployment, plan: Tuple[FaultSpec, ...]) -> PlanHandle:
    """Wire every fault of ``plan`` into ``deployment``."""
    handle = PlanHandle(interceptor=NetworkInterceptor(deployment))
    for spec in plan:
        installer = FAULT_KINDS.get(spec.kind)
        if installer is None:
            raise ValueError("unknown fault kind %r" % spec.kind)
        installer(deployment, spec.params, handle)
    # Completion is only a claim *within* the fault model: no network
    # faults, and at most f Byzantine nodes.  Sampled plans may corrupt
    # more (e.g. both worst attacks at once) — safety must still hold
    # for the non-equivocating vocabulary, liveness need not.
    handle.expect_complete = (
        len(handle.faulty) <= deployment.cluster.f
        and not any(spec.kind in _NO_COMPLETION_KINDS for spec in plan)
    )
    return handle
