"""Seeded fault-space exploration with minimal-counterexample shrinking.

:func:`explore` derives one deterministic episode per index from a
master seed: a sampled fault plan (one or two faults with sampled
parameters) against a sampled deployment seed.  Episodes fan out across
worker processes via :func:`repro.experiments.parallel.execute_tasks`;
results come back in index order, so a parallel exploration reports
exactly what a serial one would.

When an episode violates an invariant, the **shrinker** greedily
removes one fault at a time, re-running the episode after each removal
and keeping any removal that still reproduces a violation from the
original set — ddmin's 1-minimal endpoint for plans of this size.  The
shrunk episode is written as a JSON counterexample artifact that
``python -m repro.experiments check --replay`` re-runs byte-identically.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .episode import EpisodeResult, EpisodeSpec, run_episode
from .vocabulary import FaultSpec

__all__ = [
    "sample_plan",
    "make_spec",
    "explore",
    "shrink",
    "shrink_by",
    "ExplorationReport",
    "write_episode",
    "load_episode",
    "check_replay",
]


# ------------------------------------------------------------- sampling
def _sample_window(rng: random.Random, duration: float) -> Tuple[float, float]:
    start = round(rng.uniform(0.1, 0.5 * duration), 3)
    return start, round(start + rng.uniform(0.3, 0.8 * duration), 3)


def _sample_fault(rng: random.Random, duration: float) -> FaultSpec:
    kind = rng.choice(_SAMPLABLE)
    if kind == "silent-replicas":
        return FaultSpec(kind, {"node": 3})
    if kind == "flooding-node":
        return FaultSpec(kind, {"node": 3, "rate": rng.choice([2000.0, 3000.0])})
    if kind == "throttled-master":
        return FaultSpec(kind, {"rate": rng.choice([300.0, 400.0, 600.0])})
    if kind == "mute-propagation":
        return FaultSpec(kind, {"node": 3})
    if kind == "junk-clients":
        return FaultSpec(kind, {"count": rng.choice([3, 8])})
    if kind == "rbft-worst1":
        return FaultSpec(kind, {"flood_rate": 500.0})
    if kind == "rbft-worst2":
        return FaultSpec(kind, {"flood_rate": 500.0})
    if kind == "crash":
        at, until = _sample_window(rng, duration)
        return FaultSpec(kind, {"node": rng.randrange(4), "at": at, "until": until})
    if kind == "partition":
        nodes = [0, 1, 2, 3]
        _shuffle(rng, nodes)
        cut = rng.choice([1, 2])
        at, until = _sample_window(rng, duration)
        return FaultSpec(kind, {
            "groups": [sorted(nodes[:cut]), sorted(nodes[cut:])],
            "at": at, "until": until,
        })
    if kind == "delay":
        at, until = _sample_window(rng, duration)
        return FaultSpec(kind, {
            "extra": rng.choice([1e-3, 2e-3, 5e-3]),
            "p": rng.choice([0.5, 1.0]),
            "at": at, "until": until,
        })
    if kind == "drop":
        at, until = _sample_window(rng, duration)
        return FaultSpec(kind, {
            "p": rng.choice([0.02, 0.05, 0.1]), "at": at, "until": until,
        })
    if kind == "duplicate":
        return FaultSpec(kind, {"p": rng.choice([0.1, 0.3])})
    raise AssertionError(kind)


# The legacy sampler's menu is frozen: adding a kind would shift every
# rng.choice draw and silently re-derive the 20 pinned CI episodes.
# New vocabulary entries (``ic-trigger``) are reachable through
# ``fault()`` and the adversarial search's action space instead.
_SAMPLABLE = [
    "silent-replicas", "flooding-node", "throttled-master",
    "mute-propagation", "junk-clients", "rbft-worst1", "rbft-worst2",
    "crash", "partition", "delay", "drop", "duplicate",
]


def _shuffle(rng: random.Random, values: List) -> None:
    # Fisher-Yates with explicit draws: stable across Python versions
    # (random.shuffle's draw pattern is an implementation detail).
    for i in range(len(values) - 1, 0, -1):
        j = rng.randrange(i + 1)
        values[i], values[j] = values[j], values[i]


def sample_plan(rng: random.Random, duration: float = 1.0,
                max_faults: int = 2) -> Tuple[FaultSpec, ...]:
    """One or more sampled faults; duplicate kinds collapse to one."""
    count = 1 + (rng.random() < 0.4 if max_faults > 1 else 0)
    plan: List[FaultSpec] = []
    for _ in range(count):
        spec = _sample_fault(rng, duration)
        if all(existing.kind != spec.kind for existing in plan):
            plan.append(spec)
    return tuple(plan)


def make_spec(master_seed: int, index: int, **overrides) -> EpisodeSpec:
    """Derive episode ``index`` of the exploration deterministically."""
    rng = random.Random((master_seed * 0x9E3779B1 + index * 0x85EBCA77 + 1) & 0x7FFFFFFF)
    duration = overrides.get("duration", 1.0)
    plan = sample_plan(rng, duration=duration)
    return EpisodeSpec(
        seed=rng.randrange(1 << 31),
        plan=plan,
        **overrides,
    )


# ------------------------------------------------------------ execution
class _EpisodeTask:
    """Picklable nullary callable for the process fan-out."""

    def __init__(self, spec: EpisodeSpec, mutate: Optional[Callable] = None):
        self.spec = spec
        self.mutate = mutate

    def __call__(self) -> EpisodeResult:
        return run_episode(self.spec, mutate=self.mutate)


@dataclass
class ExplorationReport:
    """What :func:`explore` found."""

    master_seed: int
    results: List[EpisodeResult] = field(default_factory=list)
    counterexamples: List[Tuple[EpisodeSpec, EpisodeResult]] = field(
        default_factory=list
    )
    artifacts: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[EpisodeResult]:
        return [result for result in self.results if not result.ok]

    @property
    def ok(self) -> bool:
        return not self.failures


def shrink_by(
    spec: EpisodeSpec,
    reproduces: Callable[[EpisodeResult], bool],
    mutate: Optional[Callable] = None,
    max_runs: int = 64,
) -> Tuple[EpisodeSpec, EpisodeResult]:
    """Greedily remove faults while ``reproduces(result)`` still holds.

    The generic ddmin loop under both shrinkers: :func:`shrink` keeps a
    target invariant violation alive, the adversarial search keeps a
    reward floor.  Returns the 1-minimal spec (no single further removal
    reproduces) and its result.
    """
    current = spec
    result = run_episode(current, mutate=mutate)
    runs = 1
    progress = True
    while progress and runs < max_runs:
        progress = False
        for index in range(len(current.plan)):
            candidate = current.without_fault(index)
            candidate_result = run_episode(candidate, mutate=mutate)
            runs += 1
            if reproduces(candidate_result):
                current, result = candidate, candidate_result
                progress = True
                break
            if runs >= max_runs:
                break
    return current, result


def shrink(
    spec: EpisodeSpec,
    target: frozenset,
    mutate: Optional[Callable] = None,
    max_runs: int = 64,
) -> Tuple[EpisodeSpec, EpisodeResult]:
    """Greedily remove faults while a target violation still reproduces.

    ``target`` is the invariant-name set of the original failure; any
    overlap counts as "still reproduces", so the shrinker never trades
    the original bug for an unrelated one.
    """
    return shrink_by(
        spec,
        lambda result: bool(result.violated() & target),
        mutate=mutate,
        max_runs=max_runs,
    )


def write_episode(result: EpisodeResult, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fileobj:
        json.dump(result.to_dict(), fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
    return path


def load_episode(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fileobj:
        return json.load(fileobj)


def check_replay(path: str) -> Dict[str, Any]:
    """Re-run a recorded episode; compare digests and verdicts."""
    record = load_episode(path)
    spec = EpisodeSpec.from_dict(record["spec"])
    result = run_episode(spec)
    recorded_digest = record.get("digest")
    recorded_violations = frozenset(
        v["invariant"] for v in record.get("violations", ())
    )
    return {
        "path": path,
        "match": result.digest == recorded_digest,
        "digest": result.digest,
        "recorded_digest": recorded_digest,
        "violations": sorted(result.violated()),
        "recorded_violations": sorted(recorded_violations),
        "result": result,
    }


def explore(
    master_seed: int,
    episodes: int = 20,
    jobs: Optional[int] = None,
    out_dir: Optional[str] = None,
    mutate: Optional[Callable] = None,
    shrink_failures: bool = True,
    **spec_overrides,
) -> ExplorationReport:
    """Run ``episodes`` derived episodes; shrink and record any failure."""
    specs = [
        make_spec(master_seed, index, **spec_overrides)
        for index in range(episodes)
    ]
    from repro.experiments.parallel import execute_tasks

    results = execute_tasks(
        [_EpisodeTask(spec, mutate) for spec in specs], jobs=jobs
    )
    report = ExplorationReport(master_seed=master_seed, results=list(results))
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        for index, result in enumerate(results):
            path = os.path.join(out_dir, "episode-%04d.json" % index)
            report.artifacts.append(write_episode(result, path))
    for index, result in enumerate(results):
        if result.ok:
            continue
        if shrink_failures and len(result.spec.plan) > 1:
            minimal_spec, minimal = shrink(
                result.spec, result.violated(), mutate=mutate
            )
        else:
            minimal_spec, minimal = result.spec, result
        report.counterexamples.append((minimal_spec, minimal))
        if out_dir:
            path = os.path.join(out_dir, "counterexample-%04d.json" % index)
            report.artifacts.append(write_episode(minimal, path))
    return report
