"""Network fault injection by wrapping live channels.

Every :class:`~repro.net.network.Channel` carries an ``intercept`` hook
on its send path.  The :class:`NetworkInterceptor` installs itself on
all channels of a deployment and evaluates a small ordered rule list per
message: drop it, delay it, deliver it twice, or pass it through
untouched (``send_direct``).  Rules match on source/destination name
sets and a time window, which is enough to express crashes (isolate a
node), partitions (drop across the cut), and probabilistic link faults
(loss, duplication, extra latency).

Determinism: probabilistic rules draw from one dedicated ``Random``
stream, and rules are evaluated in insertion order — a replay with the
same seed and the same plan sees identical draws.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional

__all__ = ["Rule", "NetworkInterceptor"]

_FOREVER = float("inf")


@dataclass(frozen=True)
class Rule:
    """One fault-injection rule.

    ``action`` is ``"drop"``, ``"delay"`` or ``"duplicate"``; ``src`` /
    ``dst`` are name sets (``None`` matches anything); the rule is live
    in ``[start, until)``; ``p`` is the per-message match probability;
    ``extra`` the added latency for ``"delay"``.
    """

    action: str
    src: Optional[FrozenSet[str]] = None
    dst: Optional[FrozenSet[str]] = None
    start: float = 0.0
    until: float = _FOREVER
    p: float = 1.0
    extra: float = 0.0

    def matches_endpoints(self, src: str, dst: str) -> bool:
        if self.src is not None and src not in self.src:
            return False
        if self.dst is not None and dst not in self.dst:
            return False
        return True


class NetworkInterceptor:
    """Rule-driven drop/delay/duplicate injection on every channel."""

    def __init__(self, deployment, rng: Optional[random.Random] = None):
        self.sim = deployment.sim
        self.channels = list(deployment.cluster.network.channels)
        self.rng = rng if rng is not None else deployment.rng.stream("interceptor")
        self.rules: List[Rule] = []
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0
        self._installed = False

    # ----------------------------------------------------------- install
    def install(self) -> "NetworkInterceptor":
        if not self._installed:
            self._installed = True
            for channel in self.channels:
                channel.intercept = self._hook
        return self

    def uninstall(self) -> None:
        if self._installed:
            self._installed = False
            for channel in self.channels:
                channel.intercept = None

    # ------------------------------------------------------------- rules
    def add_rule(self, rule: Rule) -> Rule:
        self.rules.append(rule)
        self.install()
        return self

    def drop(self, src=None, dst=None, p: float = 1.0,
             start: float = 0.0, until: float = _FOREVER) -> "NetworkInterceptor":
        self.rules.append(Rule(
            "drop", _names(src), _names(dst), start, until, p
        ))
        return self.install()

    def delay(self, extra: float, src=None, dst=None, p: float = 1.0,
              start: float = 0.0, until: float = _FOREVER) -> "NetworkInterceptor":
        self.rules.append(Rule(
            "delay", _names(src), _names(dst), start, until, p, extra
        ))
        return self.install()

    def duplicate(self, src=None, dst=None, p: float = 1.0,
                  start: float = 0.0, until: float = _FOREVER) -> "NetworkInterceptor":
        self.rules.append(Rule(
            "duplicate", _names(src), _names(dst), start, until, p
        ))
        return self.install()

    def isolate(self, node: str, start: float = 0.0,
                until: float = _FOREVER) -> "NetworkInterceptor":
        """Crash-as-isolation: nothing in, nothing out, for the window."""
        names = frozenset([node])
        self.rules.append(Rule("drop", names, None, start, until))
        self.rules.append(Rule("drop", None, names, start, until))
        return self.install()

    def partition(self, groups, start: float = 0.0,
                  until: float = _FOREVER) -> "NetworkInterceptor":
        """Drop everything crossing between the listed name groups."""
        groups = [frozenset(group) for group in groups]
        for i, left in enumerate(groups):
            for right in groups[i + 1:]:
                self.rules.append(Rule("drop", left, right, start, until))
                self.rules.append(Rule("drop", right, left, start, until))
        return self.install()

    # -------------------------------------------------------------- hook
    def _hook(self, channel, msg) -> None:
        now = self.sim.now
        extra = 0.0
        copies = 1
        for rule in self.rules:
            if not (rule.start <= now < rule.until):
                continue
            if not rule.matches_endpoints(channel.src, channel.dst):
                continue
            if rule.p < 1.0 and self.rng.random() >= rule.p:
                continue
            if rule.action == "drop":
                self.dropped += 1
                channel.dropped += 1
                return
            if rule.action == "delay":
                extra += rule.extra
            elif rule.action == "duplicate":
                copies += 1
        if extra > 0.0:
            self.delayed += copies
            for _ in range(copies):
                self.sim.call_after(extra, channel.send_direct, msg)
        else:
            for _ in range(copies):
                channel.send_direct(msg)
        if copies > 1:
            self.duplicated += copies - 1


def _names(spec) -> Optional[FrozenSet[str]]:
    if spec is None:
        return None
    if isinstance(spec, str):
        return frozenset([spec])
    return frozenset(spec)
