"""Protocol registry: resolve protocol variants by name.

Every experiment entry point used to carry its own copy of the
protocol dispatch — an if-chain over ``build_rbft`` / ``build_aardvark``
/ ``build_spinning`` / ``build_prime`` / ``build_pbft`` plus the
per-variant config tweaks.  This module is the single source of truth
instead: each :class:`ProtocolSpec` bundles the variant's

* **config factory** — ``(f, scale) -> protocol config``, applying the
  variant-specific knobs (``rbft-full-order`` orders full requests,
  ``aardvark-no-vc`` disables the grace-period view change, ...);
* **node factory** — the node class the builder instantiates on each
  machine;
* **builder** — the deployment builder in
  :mod:`repro.experiments.deployments` that wires the cluster, resolved
  lazily so this module never imports the experiment layer at import
  time (the experiment layer imports *us*).

``get(name)`` raises ``ValueError`` for unknown names; ``names()``
returns the registered variants in registration order (the public
``PROTOCOL_VARIANTS`` tuple).  ``register()`` lets external code add a
variant — the only supported way to extend the protocol dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Mapping, Tuple

__all__ = ["ProtocolSpec", "register", "get", "names"]


@dataclass(frozen=True)
class ProtocolSpec:
    """Everything needed to stand up one protocol variant by name."""

    name: str
    #: ``(f, scale) -> config`` — scale supplies monitoring/grace periods.
    config_factory: Callable
    #: node class; the builder instantiates one per machine.
    node_factory: Callable
    #: attribute name of the builder in ``repro.experiments.deployments``.
    builder_name: str
    #: static builder keyword overrides (e.g. ``{"tcp": False}``).
    build_kwargs: Mapping = field(default_factory=dict)

    @property
    def builder(self) -> Callable:
        """The deployment builder (lazy: avoids a circular import)."""
        from repro.experiments import deployments

        return getattr(deployments, self.builder_name)

    def build(
        self,
        f: int,
        scale,
        *,
        payload: int = 8,
        n_clients: int = 10,
        service_factory: Callable = None,
        seed: int = 0,
        link=None,
        topology=None,
        clients_factory: Callable = None,
    ):
        """Make the variant's config and stand up its deployment."""
        config = self.config_factory(f, scale)
        kwargs = dict(self.build_kwargs)
        if service_factory is not None:
            kwargs["service_factory"] = service_factory
        if link is not None:
            kwargs["link"] = link
        if topology is not None:
            kwargs["topology"] = topology
        if clients_factory is not None:
            kwargs["clients_factory"] = clients_factory
        return self.builder(
            config, n_clients=n_clients, payload=payload, seed=seed, **kwargs
        )


_REGISTRY: Dict[str, ProtocolSpec] = {}


def register(spec: ProtocolSpec) -> ProtocolSpec:
    """Add (or replace) a variant; returns the spec for chaining."""
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ProtocolSpec:
    """Look up a variant by name; raises ``ValueError`` when unknown."""
    _populate()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError("unknown protocol variant %r" % name) from None


def names() -> Tuple[str, ...]:
    """The registered variant names, in registration order."""
    _populate()
    return tuple(_REGISTRY)


def _populate() -> None:
    """Register the built-in variants on first use.

    Deferred so importing :mod:`repro.protocols` stays cheap and free of
    import cycles (the node classes live in packages that themselves
    import :mod:`repro.protocols`).
    """
    if _REGISTRY:
        return
    from repro.core import RBFTConfig, RBFTNode
    from repro.protocols.aardvark import AardvarkConfig, AardvarkNode
    from repro.protocols.base import BftNode, NodeConfig
    from repro.protocols.pbft.engine import InstanceConfig
    from repro.protocols.prime import PrimeConfig, PrimeNode
    from repro.protocols.spinning import SpinningConfig, SpinningNode

    def rbft_config(full_order):
        def factory(f, scale):
            config = RBFTConfig(
                f=f,
                monitoring_period=scale.monitoring_period,
                order_full_requests=full_order,
                # RBFT pins 4 module cores plus one core per ordering
                # instance (f+1); beyond f = 3 the paper's 8-core box
                # cannot hold them, so large-n machines scale their core
                # count with f.  max() keeps f ≤ 3 at exactly 8 cores —
                # seeded small-n runs stay byte-identical.
                cores_per_machine=max(8, 4 + f + 1),
            )
            # Each ordering round costs Θ(n²) certificate messages *per
            # instance*; at n in the hundreds, millisecond-paced rounds
            # would drown the deployment in PREPARE/COMMIT traffic for
            # near-empty batches.  Above the configurable pacing
            # threshold (default f > 3) rounds slow to the paced delay so
            # batches amortise the quadratic fan-out — and certificate
            # batching across instances activates automatically
            # (``RBFTConfig.batching_active``).  The f ≤ 3 testbed keeps
            # the paper's 1 ms and the exact path.
            if f > config.pacing_f_threshold:
                config = replace(config, batch_delay=config.paced_batch_delay)
            return config

        return factory

    def aardvark_config(view_change):
        def factory(f, scale):
            return AardvarkConfig(
                instance=InstanceConfig(f=f),
                grace_period=(scale.aardvark_grace if view_change else 1e9),
                requirement_period=scale.aardvark_period,
                heartbeat_timeout=0.2,
            )

        return factory

    def spinning_config(f, scale):
        return SpinningConfig(
            instance=InstanceConfig(f=f, auto_advance_view=True, multicast_auth=True)
        )

    def prime_config(f, scale):
        return PrimeConfig(f=f)

    def pbft_config(f, scale):
        return NodeConfig(instance=InstanceConfig(f=f))

    for name, config_factory, node_factory, builder_name, kwargs in (
        ("rbft", rbft_config(False), RBFTNode, "build_rbft", {}),
        ("rbft-udp", rbft_config(False), RBFTNode, "build_rbft", {"tcp": False}),
        ("rbft-full-order", rbft_config(True), RBFTNode, "build_rbft", {}),
        ("aardvark", aardvark_config(True), AardvarkNode, "build_aardvark", {}),
        ("aardvark-no-vc", aardvark_config(False), AardvarkNode, "build_aardvark", {}),
        ("spinning", spinning_config, SpinningNode, "build_spinning", {}),
        ("prime", prime_config, PrimeNode, "build_prime", {}),
        ("pbft", pbft_config, BftNode, "build_pbft", {}),
    ):
        register(
            ProtocolSpec(
                name=name,
                config_factory=config_factory,
                node_factory=node_factory,
                builder_name=builder_name,
                build_kwargs=kwargs,
            )
        )
