"""Aardvark: PBFT hardened with regular primary changes (§III-B).

Mechanisms reproduced from Clement et al. (NSDI 2009) as described in
the RBFT paper:

* hybrid request authentication — MAC first, then signature; invalid
  signatures blacklist the client;
* **regular view changes** — "a primary replica is required to achieve
  at the beginning of a view a throughput at least equal to 90 % of the
  maximum throughput achieved by the primary replicas of the last N
  views.  After an initial grace period of 5 seconds where the required
  throughput is stable, the non-primary replicas periodically raise this
  required throughput by a factor of 0.01, until the primary replica
  fails to provide it";
* **heartbeat timer** — a view change is voted if the primary stops
  sending ordering messages while requests are pending;
* separate NICs (inherited from the cluster wiring).

The vulnerability the paper demonstrates (Fig. 2) follows directly from
this design: the required throughput is a function of *observed history*,
so under a dynamic load a malicious primary rides the low expectations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.common.cluster import Machine
from repro.common.statemachine import Service
from repro.crypto.costmodel import CryptoCostModel

from ..base import BftNode, NodeConfig
from ..pbft.engine import InstanceConfig

__all__ = ["AardvarkConfig", "AardvarkNode"]


@dataclass(frozen=True)
class AardvarkConfig:
    """Aardvark-specific knobs on top of the shared node config."""

    instance: InstanceConfig = field(default_factory=InstanceConfig)
    costs: CryptoCostModel = field(default_factory=CryptoCostModel)
    grace_period: float = 5.0  # paper: 5 seconds
    requirement_period: float = 0.1  # how often the bar is raised / checked
    requirement_factor: float = 0.90  # paper: 90 % of the historical max
    requirement_raise: float = 0.01  # paper: +1 % per period
    heartbeat_timeout: float = 0.25  # no ordering while backlogged => VC
    history_views: Optional[int] = None  # default: N = 3f + 1

    def node_config(self) -> NodeConfig:
        return NodeConfig(
            instance=self.instance,
            verify_request_signature=True,
            mac_only_requests=False,
            costs=self.costs,
        )


class AardvarkNode(BftNode):
    """One Aardvark replica with its throughput monitor."""

    def __init__(self, machine: Machine, config: AardvarkConfig, service: Service):
        super().__init__(machine, config.node_config(), service)
        self.aconfig = config
        history_len = config.history_views or self.config.n
        self.history: Deque[float] = deque(maxlen=history_len)

        self._view_started = self.sim.now
        self._ordered_total = 0
        self._ordered_at_view_start = 0
        self._ordered_at_last_period = 0
        # With no history yet (the very first view), the reference latches
        # onto the first observed per-period rate and stays fixed — the
        # requirement must not chase the live load, or a rising load would
        # raise its own bar (and the §III-B attack would be impossible).
        self._bootstrap_reference = 0.0
        self._raises = 0
        self._grace_until = self.sim.now + config.grace_period
        self._last_progress = self.sim.now
        self.view_change_votes_cast = 0
        self.sim.call_after(config.requirement_period, self._periodic_check)

    # ------------------------------------------------------------- counters
    def _on_ordered(self, seq, items) -> None:
        self._ordered_total += len(items)
        self._last_progress = self.sim.now
        super()._on_ordered(seq, items)

    def _on_view_entered(self, view: int) -> None:
        """Close the books on the finished view and reset expectations."""
        duration = self.sim.now - self._view_started
        if duration > 0:
            achieved = (self._ordered_total - self._ordered_at_view_start) / duration
            self.history.append(achieved)
        self._view_started = self.sim.now
        self._ordered_at_view_start = self._ordered_total
        self._ordered_at_last_period = self._ordered_total
        self._bootstrap_reference = 0.0
        self._raises = 0
        self._grace_until = self.sim.now + self.aconfig.grace_period
        self._last_progress = self.sim.now

    # ----------------------------------------------------------- requirement
    def required_throughput(self) -> float:
        """The bar the current primary must clear (§III-B).

        90 % of the best primary throughput over the last N views, raised
        1 % per period once the grace expires.  Only the very first view
        (empty history) is bootstrapped from the live per-period peak.
        The reliance on *history* is the weakness Fig. 2 exploits: a load
        spike meets expectations formed during the preceding lull.
        """
        if self.history:
            reference = max(self.history)
        else:
            reference = self._bootstrap_reference
        return (
            self.aconfig.requirement_factor
            * reference
            * (1.0 + self.aconfig.requirement_raise) ** self._raises
        )

    def _periodic_check(self) -> None:
        self.sim.call_after(self.aconfig.requirement_period, self._periodic_check)
        period = self.aconfig.requirement_period
        rate = (self._ordered_total - self._ordered_at_last_period) / period
        self._ordered_at_last_period = self._ordered_total
        if not self.history and self._bootstrap_reference == 0.0 and rate > 0:
            self._bootstrap_reference = rate  # latch once, never chase

        backlogged = self.engine.backlog() > 0
        if self.sim.now >= self._grace_until:
            required = self.required_throughput()
            self._raises += 1
            # Compare the throughput achieved since the view started (a
            # smooth average) — per-period samples are quantised by batch
            # boundaries and would evict honest-but-bursty primaries.
            if (
                not self.is_primary
                and backlogged
                and self.throughput_this_view < required
                and self.engine.active
            ):
                self._vote_view_change()
                return
        # Heartbeat: pending requests but no ordering progress at all.
        if (
            backlogged
            and self.engine.active
            and self.sim.now - self._last_progress > self.aconfig.heartbeat_timeout
            and not self.is_primary
        ):
            self._vote_view_change()

    def _vote_view_change(self) -> None:
        self.view_change_votes_cast += 1
        self.engine.start_view_change()

    # ------------------------------------------------------------ inspection
    @property
    def throughput_this_view(self) -> float:
        duration = self.sim.now - self._view_started
        if duration <= 0:
            return 0.0
        return (self._ordered_total - self._ordered_at_view_start) / duration
