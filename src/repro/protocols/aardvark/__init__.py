"""Aardvark: PBFT with regular, monitored primary changes."""

from .node import AardvarkConfig, AardvarkNode

__all__ = ["AardvarkConfig", "AardvarkNode"]
