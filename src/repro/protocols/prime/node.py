"""Prime: pre-ordering plus periodic, monitored ordering (§III-A).

Pipeline reproduced from Amir et al. (DSN 2008) as the RBFT paper
describes it:

1. clients send signed requests to the replicas;
2. replicas exchange them: the designated *originator* of a client
   bundles its requests into a signed PO-REQUEST; the others acknowledge
   with signed PO-ACKs; a bundle is **pre-ordered** once 2f acks join it;
3. the primary periodically (whether or not there is traffic) sends a
   signed ordering message carrying a cumulative coverage vector;
4. replicas run an echo/ready agreement on each ordering message and
   execute newly covered bundles in deterministic order;
5. replicas monitor the network (ping/pong RTT) and the time needed to
   execute a batch, and compute the maximal acceptable delay between
   ordering messages as ``rtt + batch_exec + K_lat``; a primary slower
   than that is suspected and replaced.

The vulnerability (Fig. 1): the acceptable delay is derived from
*measurements an attacker can inflate* — a colluding client submits
heavy (1 ms) requests, the measured batch execution time grows, and the
malicious primary can stretch its ordering period to just below the
suspicion threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.batching import Batcher
from repro.common.cluster import Machine
from repro.common.quorum import VectorQuorumTracker
from repro.common.statemachine import Service
from repro.common.types import Reply, Request
from repro.crypto.blacklist import ClientBlacklist
from repro.crypto.costmodel import MESSAGE_HEADER_SIZE, CryptoCostModel
from repro.crypto.primitives import Digest, Mac, Signature
from repro.net.message import Message
from repro.protocols.base import ClientRequestMsg, ReplyMsg

from .messages import (
    PoAck,
    PoRequest,
    PrimeEcho,
    PrimeMessage,
    PrimeOrder,
    PrimePing,
    PrimePong,
    PrimeReady,
    PrimeSuspect,
)

__all__ = ["PrimeConfig", "PrimeNode"]


@dataclass(frozen=True)
class PrimeConfig:
    """Prime tuning knobs."""

    f: int = 1
    costs: CryptoCostModel = field(default_factory=CryptoCostModel)
    po_batch_size: int = 3  # requests per PO-REQUEST bundle
    po_batch_delay: float = 1e-3
    ordering_period: float = 10e-3  # the primary's periodic send interval
    window: int = 144  # max new requests covered per ordering message
    k_lat: float = 15e-3  # the developer-set variability constant
    ping_period: float = 100e-3
    suspect_check_period: float = 5e-3
    po_fallback_timeout: float = 0.5  # re-originate orphaned requests
    rx_overhead: float = 1.5e-6

    @property
    def n(self) -> int:
        return 3 * self.f + 1


class PrimeNode:
    """One Prime replica (four pinned cores, mirroring its thread pools)."""

    def __init__(self, machine: Machine, config: PrimeConfig, service: Service):
        self.machine = machine
        self.config = config
        self.costs = config.costs
        self.service = service
        self.name = machine.name
        self.index = machine.index
        self.sim = machine.cluster.sim
        sim = self.sim

        self.verification_core = machine.cores.allocate("verification")
        self.preorder_core = machine.cores.allocate("preorder")
        self.ordering_core = machine.cores.allocate("ordering")
        self.execution_core = machine.cores.allocate("execution")

        self.blacklist = ClientBlacklist()
        self.view = 0
        self.seq = 0
        self._bundle_counter = 0
        self.bundles: Dict[Tuple[str, int], Tuple] = {}
        senders = machine.cluster.senders
        self._ack_votes = VectorQuorumTracker(2 * config.f, senders)
        self.aru: Dict[str, int] = {"node%d" % i: 0 for i in range(config.n)}
        self.covered: Dict[str, int] = dict(self.aru)
        self._echo_votes = VectorQuorumTracker(2 * config.f, senders)
        self._ready_votes = VectorQuorumTracker(2 * config.f + 1, senders)
        self._order_log: Dict[int, PrimeOrder] = {}
        self._echoed: set = set()
        self._readied: set = set()
        self._next_order_exec = 1
        self._ordered_vectors: Dict[int, Dict[str, int]] = {}
        self._held_orders: List[PrimeOrder] = []
        self.executed_ids: set = set()
        self.executed_count = 0
        self.invalid_requests = 0
        self._orphan_watch: Dict = {}  # request_id -> (request, seen_at)

        # Monitoring state (§III-A) ---------------------------------------
        self.rtt_estimate = 0.5e-3
        self.batch_exec_estimate = 0.0
        self._pings_in_flight: Dict[int, float] = {}
        self._ping_nonce = 0
        self._last_order_seen = sim.now
        self._suspect_votes = VectorQuorumTracker(2 * config.f + 1, senders)
        self.suspicions_voted = 0
        self.view_changes = 0

        #: attack hook — a malicious primary overrides its sending period.
        self.ordering_period_fn: Optional[Callable[[], float]] = None
        #: a silent faulty replica neither acks nor echoes.
        self.silent = False

        self._po_batcher: Batcher = Batcher(
            sim, config.po_batch_size, config.po_batch_delay, self._flush_bundle
        )
        machine.handler = self.on_network_message
        self._schedule_order_tick()
        sim.call_after(config.ping_period, self._ping_tick)
        sim.call_after(config.suspect_check_period, self._suspect_tick)

    # --------------------------------------------------------------- routing
    def on_network_message(self, msg: Message) -> None:
        if isinstance(msg, ClientRequestMsg):
            self._receive_request(msg.request)
        elif isinstance(msg, PrimeMessage):
            self._receive_signed(msg)

    def _receive_signed(self, msg: PrimeMessage) -> None:
        core = self._core_for(msg)
        cost = self.costs.sig_verify(msg.wire_size()) + self.config.rx_overhead
        core.submit(cost, self._dispatch_signed, msg)

    def _core_for(self, msg: PrimeMessage):
        if isinstance(msg, (PoRequest, PoAck)):
            return self.preorder_core
        return self.ordering_core

    def _dispatch_signed(self, msg: PrimeMessage) -> None:
        if not msg.signature.valid:
            return
        if isinstance(msg, PoRequest):
            self._on_po_request(msg)
        elif isinstance(msg, PoAck):
            self._on_po_ack(msg)
        elif isinstance(msg, PrimeOrder):
            self._on_order(msg)
        elif isinstance(msg, PrimeEcho):
            self._on_echo(msg)
        elif isinstance(msg, PrimeReady):
            self._on_ready(msg)
        elif isinstance(msg, PrimePing):
            self._on_ping(msg)
        elif isinstance(msg, PrimePong):
            self._on_pong(msg)
        elif isinstance(msg, PrimeSuspect):
            self._on_suspect(msg)

    # ------------------------------------------------------ client requests
    def originator_of(self, client: str) -> str:
        # crc32 rather than hash(): stable across interpreter runs.
        import zlib

        return "node%d" % (zlib.crc32(client.encode()) % self.config.n)

    def _receive_request(self, request: Request) -> None:
        if self.blacklist.banned(request.client):
            return
        cost = self.costs.sig_verify(request.wire_size()) + self.config.rx_overhead
        self.verification_core.submit(cost, self._after_request_verified, request)

    def _after_request_verified(self, request: Request) -> None:
        if not request.signature.valid:
            self.blacklist.ban(request.client)
            self.invalid_requests += 1
            return
        if request.request_id in self.executed_ids:
            return
        if self.originator_of(request.client) == self.name and not self.silent:
            self._po_batcher.add(request)
        else:
            # Remember it: if its originator never disseminates it (a
            # faulty replica), any replica may re-originate it.
            self._orphan_watch[request.request_id] = (request, self.sim.now)

    # ---------------------------------------------------------- pre-ordering
    def _flush_bundle(self, requests: List[Request]) -> None:
        self._bundle_counter += 1
        bundle_id = self._bundle_counter
        msg = PoRequest(self.name, bundle_id, tuple(requests), Signature(self.name))
        self.bundles[(self.name, bundle_id)] = msg.requests
        cost = self.costs.sig_gen(msg.wire_size())
        self.preorder_core.submit(cost, self._emit_po_request, msg)

    def _emit_po_request(self, msg: PoRequest) -> None:
        self.machine.broadcast_to_nodes(msg)

    def _on_po_request(self, msg: PoRequest) -> None:
        key = (msg.sender, msg.bundle_id)
        # Bundles at or below the covered frontier were executed and
        # garbage-collected; a late duplicate must not re-enter the store.
        if msg.bundle_id <= self.covered.get(msg.sender, 0):
            return
        if key in self.bundles:
            return
        self.bundles[key] = msg.requests
        for request in msg.requests:
            # Bundled by someone: no longer an orphan candidate.
            self._orphan_watch.pop(request.request_id, None)
        if not self.silent:
            ack = PoAck(self.name, msg.sender, msg.bundle_id, Signature(self.name))
            cost = self.costs.sig_gen(ack.wire_size())
            self.preorder_core.submit(cost, self.machine.broadcast_to_nodes, ack)
            self._register_ack(key, self.name)
        self._advance_aru(msg.sender)
        self._recheck_held_orders()

    def _on_po_ack(self, msg: PoAck) -> None:
        self._register_ack((msg.originator, msg.bundle_id), msg.sender)

    def _register_ack(self, key: Tuple[str, int], sender: str) -> None:
        if self._ack_votes.add(key, sender):
            self._advance_aru(key[0])

    def _advance_aru(self, originator: str) -> None:
        """Move the contiguous pre-ordered frontier for ``originator``."""
        frontier = self.aru[originator]
        while True:
            key = (originator, frontier + 1)
            if key in self.bundles and self._ack_votes.complete(key):
                frontier += 1
            else:
                break
        if frontier != self.aru[originator]:
            self.aru[originator] = frontier
            self._recheck_held_orders()

    def preordered_backlog(self) -> int:
        """Bundles pre-ordered locally but not yet covered by the order."""
        return sum(
            max(0, self.aru[node] - self.covered[node]) for node in self.aru
        )

    # ----------------------------------------------------- periodic ordering
    @property
    def is_primary(self) -> bool:
        return self.view % self.config.n == self.index

    def primary_name(self, view: Optional[int] = None) -> str:
        view = self.view if view is None else view
        return "node%d" % (view % self.config.n)

    def _schedule_order_tick(self) -> None:
        period = (
            self.ordering_period_fn()
            if self.ordering_period_fn is not None
            else self.config.ordering_period
        )
        self.sim.call_after(period, self._order_tick)

    def _order_tick(self) -> None:
        self._schedule_order_tick()
        if not self.is_primary or self.silent:
            return
        vector = self._capped_vector()
        self.seq += 1
        msg = PrimeOrder(self.name, self.view, self.seq, vector, Signature(self.name))
        cost = self.costs.sig_gen(msg.wire_size())
        self.ordering_core.submit(cost, self._emit_order, msg)

    def _emit_order(self, msg: PrimeOrder) -> None:
        self.machine.broadcast_to_nodes(msg)
        self._on_order(msg)  # the primary processes its own ordering message

    def _capped_vector(self) -> Dict[str, int]:
        """Snapshot of the primary's ARU, limited to ``window`` new requests."""
        vector = dict(self.covered)
        budget = self.config.window
        progress = True
        while budget > 0 and progress:
            progress = False
            for node in sorted(self.aru):
                if budget <= 0:
                    break
                nxt = vector[node] + 1
                if nxt <= self.aru[node]:
                    requests = self.bundles.get((node, nxt), ())
                    vector[node] = nxt
                    budget -= max(1, len(requests))
                    progress = True
        return vector

    # --------------------------------------------------------- echo / ready
    def _order_digest(self, msg: PrimeOrder) -> Digest:
        return Digest(
            ("prime-order", msg.view, msg.seq, tuple(sorted(msg.vector.items())))
        )

    def _on_order(self, msg: PrimeOrder) -> None:
        if msg.view != self.view or msg.sender != self.primary_name(msg.view):
            return
        self._last_order_seen = self.sim.now
        if msg.seq < self._next_order_exec or msg.seq in self._order_log:
            return
        self._order_log[msg.seq] = msg
        self._try_echo(msg)

    def _covers(self, vector: Dict[str, int]) -> bool:
        return all(self.aru.get(node, 0) >= upto for node, upto in vector.items())

    def _try_echo(self, msg: PrimeOrder) -> None:
        if not self._covers(msg.vector):
            self._held_orders.append(msg)
            return
        digest = self._order_digest(msg)
        key = (msg.view, msg.seq, digest)
        if self.silent or key in self._echoed:
            return
        self._echoed.add(key)
        if msg.sender != self.name:
            echo = PrimeEcho(self.name, msg.view, msg.seq, digest, Signature(self.name))
            cost = self.costs.sig_gen(echo.wire_size())
            self.ordering_core.submit(cost, self.machine.broadcast_to_nodes, echo)
            if self._echo_votes.add(key, self.name):
                self._send_ready(msg.view, msg.seq, digest)
        elif self._echo_votes.complete(key):
            self._send_ready(msg.view, msg.seq, digest)

    def _recheck_held_orders(self) -> None:
        if not self._held_orders:
            return
        held, self._held_orders = self._held_orders, []
        for msg in held:
            if msg.view == self.view:
                self._try_echo(msg)
        self._try_execute()

    def _on_echo(self, msg: PrimeEcho) -> None:
        if msg.view != self.view:
            return
        key = (msg.view, msg.seq, msg.digest)
        if self._echo_votes.add(key, msg.sender):
            self._send_ready(msg.view, msg.seq, msg.digest)
        elif self._echo_votes.complete(key) and key in self._echoed:
            pass  # ready already triggered via our own echo path

    def _send_ready(self, view: int, seq: int, digest: Digest) -> None:
        key = (view, seq, digest)
        if self.silent or key in self._readied:
            return
        order = self._order_log.get(seq)
        if order is None or self._order_digest(order) != digest:
            return
        self._readied.add(key)
        ready = PrimeReady(self.name, view, seq, digest, Signature(self.name))
        cost = self.costs.sig_gen(ready.wire_size())
        self.ordering_core.submit(cost, self.machine.broadcast_to_nodes, ready)
        if self._ready_votes.add(key, self.name):
            self._mark_ordered(seq)

    def _on_ready(self, msg: PrimeReady) -> None:
        if msg.view != self.view:
            return
        key = (msg.view, msg.seq, msg.digest)
        if self._ready_votes.add(key, msg.sender):
            self._mark_ordered(msg.seq)
        order = self._order_log.get(msg.seq)
        if (
            order is not None
            and self._ready_votes.complete(key)
            and msg.seq not in self._ordered_vectors
            and self._order_digest(order) == key[2]
        ):
            self._mark_ordered(msg.seq)

    def _mark_ordered(self, seq: int) -> None:
        order = self._order_log.get(seq)
        if order is None or seq in self._ordered_vectors:
            return
        self._ordered_vectors[seq] = order.vector
        self._try_execute()

    # -------------------------------------------------------------- execute
    def _try_execute(self) -> None:
        progressed = False
        while True:
            vector = self._ordered_vectors.get(self._next_order_exec)
            if vector is None or not self._covers(vector):
                break
            self._next_order_exec += 1
            self._execute_coverage(vector)
            progressed = True
        if progressed:
            self._collect_garbage()

    def _collect_garbage(self) -> None:
        """Drop ordering and pre-ordering state behind the executed frontiers.

        Ordering messages below ``_next_order_exec`` were executed (their
        coverage is folded into ``covered``), and bundles at or below the
        per-originator ``covered`` frontier can never be read again: the
        coverage vectors, the ARU advance, and the capped-vector budget
        all start strictly above it.  Late votes for pruned keys re-seed
        a quorum at worst; completion then finds no ``_order_log`` entry
        and sends nothing.
        """
        frontier = self._next_order_exec
        for seq in [s for s in self._order_log if s < frontier]:
            del self._order_log[seq]
        for seq in [s for s in self._ordered_vectors if s < frontier]:
            del self._ordered_vectors[seq]
        self._echo_votes.prune(lambda key: key[1] < frontier)
        self._ready_votes.prune(lambda key: key[1] < frontier)
        self._echoed = {key for key in self._echoed if key[1] >= frontier}
        self._readied = {key for key in self._readied if key[1] >= frontier}
        covered = self.covered
        self.bundles = {
            key: requests
            for key, requests in self.bundles.items()
            if key[1] > covered.get(key[0], 0)
        }
        self._ack_votes.prune(lambda key: key[1] <= covered.get(key[0], 0))

    def _execute_coverage(self, vector: Dict[str, int]) -> None:
        batch_cost = 0.0
        for node in sorted(vector):
            upto = vector[node]
            while self.covered[node] < upto:
                self.covered[node] += 1
                requests = self.bundles.get((node, self.covered[node]), ())
                for request in requests:
                    if request.request_id in self.executed_ids:
                        continue
                    self.executed_ids.add(request.request_id)
                    cost = self.service.exec_cost(request) + self.costs.mac_gen(
                        MESSAGE_HEADER_SIZE
                    )
                    batch_cost += cost
                    self.execution_core.submit(cost, self._execute_one, request)
        if batch_cost > 0:
            # EWMA of batch execution time — the measurement the Prime
            # attack inflates with heavy requests.
            alpha = 0.2
            self.batch_exec_estimate = (
                (1 - alpha) * self.batch_exec_estimate + alpha * batch_cost
            )

    def _execute_one(self, request: Request) -> None:
        result, result_size = self.service.apply(request)
        self.executed_count += 1
        reply = Reply(self.name, request.client, request.rid, result, result_size)
        channel = self.machine.channel_to_client(request.client)
        if channel is not None:
            channel.send(ReplyMsg(reply, Mac(self.name)))

    # ------------------------------------------------------------ monitoring
    def acceptable_order_delay(self) -> float:
        """Max delay before suspecting the primary (§III-A).

        "This delay is computed as a function of three parameters: the
        round-trip time between replicas, the time needed to execute a
        batch of requests, and a constant that accounts for the
        variability of the network latency."
        """
        return self.rtt_estimate + self.batch_exec_estimate + self.config.k_lat

    def _ping_tick(self) -> None:
        self.sim.call_after(self.config.ping_period, self._ping_tick)
        if self.silent:
            return
        self._ping_nonce += 1
        nonce = self._ping_nonce
        self._pings_in_flight[nonce] = self.sim.now
        ping = PrimePing(self.name, nonce, Signature(self.name))
        cost = self.costs.sig_gen(ping.wire_size())
        self.ordering_core.submit(cost, self.machine.broadcast_to_nodes, ping)

    def _on_ping(self, msg: PrimePing) -> None:
        if self.silent:
            return
        pong = PrimePong(self.name, msg.nonce, Signature(self.name))
        cost = self.costs.sig_gen(pong.wire_size())
        self.ordering_core.submit(
            cost, self.machine.send_to_node, msg.sender, pong
        )

    def _on_pong(self, msg: PrimePong) -> None:
        sent = self._pings_in_flight.pop(msg.nonce, None)
        if sent is None:
            return
        sample = self.sim.now - sent
        alpha = 0.2
        self.rtt_estimate = (1 - alpha) * self.rtt_estimate + alpha * sample

    def _suspect_tick(self) -> None:
        self.sim.call_after(self.config.suspect_check_period, self._suspect_tick)
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "pbft.log-size", self.name,
                **self.log_sizes(),
            )
        if self.silent:
            return
        self._rescue_orphans()
        if self.is_primary:
            return
        starving = self.preordered_backlog() > 0
        overdue = self.sim.now - self._last_order_seen > self.acceptable_order_delay()
        if starving and overdue:
            self._vote_suspect()

    def _rescue_orphans(self) -> None:
        """Re-originate requests whose designated originator went quiet."""
        if not self._orphan_watch:
            return
        now = self.sim.now
        timeout = self.config.po_fallback_timeout
        rescued = []
        for request_id, (request, seen_at) in self._orphan_watch.items():
            if request_id in self.executed_ids:
                rescued.append(request_id)
            elif now - seen_at > timeout:
                rescued.append(request_id)
                self._po_batcher.add(request)
        for request_id in rescued:
            del self._orphan_watch[request_id]

    def _vote_suspect(self) -> None:
        self.suspicions_voted += 1
        msg = PrimeSuspect(self.name, self.view, Signature(self.name))
        cost = self.costs.sig_gen(msg.wire_size())
        self.ordering_core.submit(cost, self.machine.broadcast_to_nodes, msg)
        if self._suspect_votes.add(self.view, self.name):
            self._install_view(self.view + 1)

    def _on_suspect(self, msg: PrimeSuspect) -> None:
        if msg.view != self.view:
            return
        if self._suspect_votes.add(msg.view, msg.sender):
            self._install_view(msg.view + 1)

    def _install_view(self, new_view: int) -> None:
        if new_view <= self.view:
            return
        self.view = new_view
        self.view_changes += 1
        self._last_order_seen = self.sim.now
        # Ordering state restarts in the new view; coverage is cumulative
        # so nothing ordered is lost and nothing pending is dropped.
        self._order_log.clear()
        self._held_orders = []
        self._ordered_vectors.clear()
        self.seq = 0
        self._next_order_exec = 1
        # Echo/ready/suspect votes for superseded views are dead state:
        # every handler rejects messages whose view is not the current one.
        self._echo_votes.prune(lambda key: key[0] < new_view)
        self._ready_votes.prune(lambda key: key[0] < new_view)
        self._echoed = {key for key in self._echoed if key[0] >= new_view}
        self._readied = {key for key in self._readied if key[0] >= new_view}
        self._suspect_votes.prune(lambda view: view < new_view)

    def log_sizes(self) -> Dict[str, int]:
        """Sizes of the pre-ordering and ordering stores (``total`` = sum).

        ``executed_ids`` (the replay-dedup set) and the monitoring
        estimators are excluded from ``total``: the former is durable
        service state, the latter are O(1).
        """
        total = (
            len(self.bundles)
            + len(self._ack_votes)
            + len(self._order_log)
            + len(self._ordered_vectors)
            + len(self._echo_votes)
            + len(self._ready_votes)
            + len(self._echoed)
            + len(self._readied)
            + len(self._held_orders)
            + len(self._orphan_watch)
        )
        return {
            "total": total,
            "bundles": len(self.bundles),
            "ack_votes": len(self._ack_votes),
            "order_log": len(self._order_log),
            "ordered_vectors": len(self._ordered_vectors),
            "echo_votes": len(self._echo_votes),
            "ready_votes": len(self._ready_votes),
            "held_orders": len(self._held_orders),
            "orphan_watch": len(self._orphan_watch),
            "executed_ids": len(self.executed_ids),
        }

    def __repr__(self) -> str:
        return "PrimeNode(%s, view=%d, executed=%d)" % (
            self.name,
            self.view,
            self.executed_count,
        )
