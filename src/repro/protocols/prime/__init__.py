"""Prime: pre-ordering plus periodic monitored ordering."""

from .messages import (
    PoAck,
    PoRequest,
    PrimeEcho,
    PrimeMessage,
    PrimeOrder,
    PrimePing,
    PrimePong,
    PrimeReady,
    PrimeSuspect,
)
from .node import PrimeConfig, PrimeNode

__all__ = [
    "PrimeConfig",
    "PrimeNode",
    "PoAck",
    "PoRequest",
    "PrimeEcho",
    "PrimeMessage",
    "PrimeOrder",
    "PrimePing",
    "PrimePong",
    "PrimeReady",
    "PrimeSuspect",
]
