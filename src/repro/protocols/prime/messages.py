"""Prime wire messages.

Prime (Amir et al., DSN 2008) relies on **signatures everywhere** — the
property the RBFT paper blames for its low throughput and high latency
(§VI-B).  Every message below therefore carries a signature and its
verification is charged at signature cost.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.crypto.costmodel import DIGEST_SIZE, MESSAGE_HEADER_SIZE, SIGNATURE_SIZE
from repro.crypto.primitives import Signature
from repro.net.message import Message

__all__ = [
    "PrimeMessage",
    "PoRequest",
    "PoAck",
    "PrimeOrder",
    "PrimeEcho",
    "PrimeReady",
    "PrimePing",
    "PrimePong",
    "PrimeSuspect",
]


class PrimeMessage(Message):
    """Base: a signed Prime protocol message."""

    __slots__ = ("signature",)

    def __init__(self, sender: str, signature: Signature):
        super().__init__(sender)
        self.signature = signature


class PoRequest(PrimeMessage):
    """Pre-ordering: a replica disseminates a bundle of client requests."""

    __slots__ = ("bundle_id", "requests")

    def __init__(self, sender, bundle_id: int, requests: Tuple, signature):
        super().__init__(sender, signature)
        self.bundle_id = bundle_id
        self.requests = requests

    def wire_size(self) -> int:
        return (
            MESSAGE_HEADER_SIZE
            + sum(r.wire_size() for r in self.requests)
            + SIGNATURE_SIZE
        )


class PoAck(PrimeMessage):
    """Acknowledgement that a bundle was received and verified."""

    __slots__ = ("originator", "bundle_id")

    def __init__(self, sender, originator: str, bundle_id: int, signature):
        super().__init__(sender, signature)
        self.originator = originator
        self.bundle_id = bundle_id

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + DIGEST_SIZE + SIGNATURE_SIZE


class PrimeOrder(PrimeMessage):
    """The primary's periodic ordering message.

    Carries a cumulative coverage vector: for each originator, the
    highest bundle id included in the global order so far.
    """

    __slots__ = ("view", "seq", "vector")

    def __init__(self, sender, view: int, seq: int, vector: Dict[str, int], signature):
        super().__init__(sender, signature)
        self.view = view
        self.seq = seq
        self.vector = vector

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 12 * max(1, len(self.vector)) + SIGNATURE_SIZE


class PrimeEcho(PrimeMessage):
    """Second phase: replicas echo the ordering message they accepted."""

    __slots__ = ("view", "seq", "digest")

    def __init__(self, sender, view, seq, digest, signature):
        super().__init__(sender, signature)
        self.view = view
        self.seq = seq
        self.digest = digest

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + DIGEST_SIZE + SIGNATURE_SIZE


class PrimeReady(PrimeMessage):
    """Third phase: commit votes for an ordering message."""

    __slots__ = ("view", "seq", "digest")

    def __init__(self, sender, view, seq, digest, signature):
        super().__init__(sender, signature)
        self.view = view
        self.seq = seq
        self.digest = digest

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + DIGEST_SIZE + SIGNATURE_SIZE


class PrimePing(PrimeMessage):
    """RTT measurement probe (the network-monitoring part of §III-A)."""

    __slots__ = ("nonce",)

    def __init__(self, sender, nonce: int, signature):
        super().__init__(sender, signature)
        self.nonce = nonce

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 8 + SIGNATURE_SIZE


class PrimePong(PrimeMessage):
    """RTT measurement response."""

    __slots__ = ("nonce",)

    def __init__(self, sender, nonce: int, signature):
        super().__init__(sender, signature)
        self.nonce = nonce

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 8 + SIGNATURE_SIZE


class PrimeSuspect(PrimeMessage):
    """A replica's vote that the primary of ``view`` is too slow."""

    __slots__ = ("view",)

    def __init__(self, sender, view: int, signature):
        super().__init__(sender, signature)
        self.view = view

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + 8 + SIGNATURE_SIZE
