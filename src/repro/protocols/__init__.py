"""BFT protocol implementations: the PBFT core and the robust baselines."""

from .base import BftNode, ClientRequestMsg, NodeConfig, ReplyMsg
from . import registry

__all__ = ["BftNode", "ClientRequestMsg", "NodeConfig", "ReplyMsg", "registry"]
