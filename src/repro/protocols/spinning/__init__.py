"""Spinning: BFT with a primary rotating after every batch."""

from .node import SpinningConfig, SpinningNode

__all__ = ["SpinningConfig", "SpinningNode"]
