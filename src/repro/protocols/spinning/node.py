"""Spinning: BFT with a rotating primary (§III-C).

Mechanisms reproduced from Veronese et al. (SRDS 2009) as described in
the RBFT paper:

* the primary changes **automatically after every ordered batch** — no
  message exchange needed (the engine's auto-advance mode);
* requests are MAC-authenticated only and sent by clients to all
  replicas over UDP multicast;
* a replica that holds a pending request starts a timer; if ``S_timeout``
  expires before the request is ordered, the current primary is
  **blacklisted** (at most f entries, oldest evicted), a merge operation
  replaces it, and ``S_timeout`` doubles;
* after a successful ordering, ``S_timeout`` resets to its initial value.

The weakness (Fig. 3): every time the malicious replica gets the
primary slot, it can delay its single batch by just under ``S_timeout``
(40 ms in the paper's experiments) without ever being blacklisted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.cluster import Machine
from repro.common.statemachine import Service
from repro.crypto.blacklist import BoundedBlacklist
from repro.crypto.costmodel import CryptoCostModel

from ..base import BftNode, NodeConfig
from ..pbft.engine import InstanceConfig

__all__ = ["SpinningConfig", "SpinningNode"]


@dataclass(frozen=True)
class SpinningConfig:
    """Spinning-specific knobs."""

    instance: InstanceConfig = field(
        default_factory=lambda: InstanceConfig(
            auto_advance_view=True, multicast_auth=True
        )
    )
    costs: CryptoCostModel = field(default_factory=CryptoCostModel)
    s_timeout: float = 40e-3  # the paper's S_timeout value

    def node_config(self) -> NodeConfig:
        if not self.instance.auto_advance_view:
            raise ValueError("Spinning requires auto_advance_view instances")
        return NodeConfig(
            instance=self.instance,
            verify_request_signature=False,
            mac_only_requests=True,
            costs=self.costs,
        )


class SpinningNode(BftNode):
    """One Spinning replica."""

    def __init__(self, machine: Machine, config: SpinningConfig, service: Service):
        super().__init__(machine, config.node_config(), service)
        self.sconfig = config
        self.replica_blacklist = BoundedBlacklist(self.config.f)
        self.current_timeout = config.s_timeout
        self.merges = 0
        self._timer = None
        self.engine.primary_selector = self._primary_for_view

    # ------------------------------------------------------------- rotation
    def _primary_for_view(self, view: int) -> int:
        """Round-robin over replicas, skipping blacklisted ones."""
        n = self.config.n
        for offset in range(n):
            candidate = (view + offset) % n
            if not self.replica_blacklist.banned("node%d" % candidate):
                return candidate
        return view % n  # unreachable: blacklist holds at most f < n entries

    # ---------------------------------------------------------- timer logic
    def on_request_verified(self, request) -> None:
        super().on_request_verified(request)
        if self._timer is None or not self._timer.active:
            self._timer = self.sim.call_after(self.current_timeout, self._expired)

    def _on_ordered(self, seq, items) -> None:
        # Successful ordering: reset S_timeout and re-arm for the backlog.
        self.current_timeout = self.sconfig.s_timeout
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        super()._on_ordered(seq, items)
        if self.engine.backlog() > 0:
            self._timer = self.sim.call_after(self.current_timeout, self._expired)

    def _expired(self) -> None:
        """S_timeout fired: blacklist the primary and merge."""
        if self.engine.backlog() == 0:
            return
        primary = self.engine.primary_name()
        if primary != self.name:
            self.replica_blacklist.ban(primary)
        self.merges += 1
        self.current_timeout *= 2  # doubled until a successful ordering
        self.engine.start_view_change()
        self._timer = self.sim.call_after(self.current_timeout, self._expired)
