"""The three-phase ordering engine (PRE-PREPARE / PREPARE / COMMIT).

This is the consensus core every protocol in the repository runs:

* **Aardvark** runs one engine per node with full-request batches and
  monitoring-driven regular view changes;
* **Spinning** runs one engine per node in *auto-advance* mode, where the
  view (and therefore the primary) rotates after every ordered batch;
* **RBFT** runs f+1 engines per node (one per protocol instance), with
  identifier batches, a PROPAGATE guard, and view changes driven only by
  the instance-change mechanism (§IV-A: "a protocol instance does not
  proceed to a view change by its own").

The engine is an actor: all CPU work (authenticating and verifying
messages) is charged to the single core it is pinned on, so a saturated
instance queues exactly like the paper's per-replica processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.batching import Batcher
from repro.common.quorum import QuorumTracker, SenderUniverse, VectorQuorumTracker
from repro.crypto.costmodel import DIGEST_SIZE, CryptoCostModel
from repro.crypto.primitives import Digest, MacAuthenticator
from repro.sim.engine import Simulator
from repro.sim.resources import Core

from .messages import (
    Checkpoint,
    Commit,
    NewView,
    OrderingMessage,
    PrePrepare,
    Prepare,
    ViewChange,
    batch_payload_size,
)

__all__ = ["InstanceConfig", "OrderingInstance"]


@dataclass(frozen=True)
class InstanceConfig:
    """Tuning knobs of one ordering instance."""

    f: int = 1
    batch_size: int = 64
    batch_delay: float = 1e-3
    checkpoint_interval: int = 128
    watermark_window: int = 1024  # batches admissible above the low watermark
    rx_overhead: float = 1.5e-6  # per-message handling cost (syscalls etc.)
    full_payload: bool = True  # order full requests (False: identifiers)
    auto_advance_view: bool = False  # Spinning: rotate primary per batch
    #: UDP-multicast deployments authenticate the single transmitted
    #: packet with one digest-based authenticator instead of one full
    #: MAC pass per recipient (Spinning, §VI-B).
    multicast_auth: bool = False

    @property
    def n(self) -> int:
        return 3 * self.f + 1

    @property
    def prepare_quorum(self) -> int:
        return 2 * self.f

    @property
    def commit_quorum(self) -> int:
        return 2 * self.f + 1

    @property
    def vc_quorum(self) -> int:
        return 2 * self.f + 1


class _Entry:
    """Per-sequence-number log record."""

    __slots__ = ("view", "seq", "items", "digest", "prepared", "committed")

    def __init__(self, view: int, seq: int, items: Tuple, digest: Digest):
        self.view = view
        self.seq = seq
        self.items = items
        self.digest = digest
        self.prepared = False
        self.committed = False


class OrderingInstance:
    """One replica of one protocol instance."""

    def __init__(
        self,
        sim: Simulator,
        core: Core,
        transport,
        config: InstanceConfig,
        costs: CryptoCostModel,
        replica: str,
        instance: int = 0,
        on_ordered: Optional[Callable[[int, Tuple], None]] = None,
        guard: Optional[Callable[[Tuple], bool]] = None,
        on_view_entered: Optional[Callable[[int], None]] = None,
        primary_offset: Optional[int] = None,
        senders: Optional[SenderUniverse] = None,
    ):
        self.sim = sim
        self.core = core
        self.transport = transport
        self.config = config
        self.costs = costs
        self.replica = replica  # e.g. "node2"
        self.index = int(replica.replace("node", ""))
        self.instance = instance
        self.on_ordered = on_ordered or (lambda seq, items: None)
        self.guard = guard
        self.on_view_entered = on_view_entered or (lambda view: None)
        # RBFT places primaries so at most one runs per node (§IV-A).
        self.primary_offset = instance if primary_offset is None else primary_offset

        self.view = 0
        self.active = True
        self.seq_assigned = 0
        self.low_watermark = 0
        self.next_exec = 1
        self.log: Dict[int, _Entry] = {}
        self.pending: Dict = {}  # request_id -> item, awaiting ordering
        self._ordered_ids: Set = set()
        # Vote tracking: with a shared sender universe (one per cluster)
        # the array-structured tracker interns each sender bit exactly
        # once across every instance of every node — same semantics,
        # byte-identical results, far less per-tracker state at n ≫ 4.
        if senders is not None:
            self._prepare_votes = VectorQuorumTracker(
                config.prepare_quorum, senders
            )
            self._commit_votes = VectorQuorumTracker(
                config.commit_quorum, senders
            )
            self._checkpoint_votes = VectorQuorumTracker(
                config.commit_quorum, senders
            )
        else:
            self._prepare_votes = QuorumTracker(config.prepare_quorum)
            self._commit_votes = QuorumTracker(config.commit_quorum)
            self._checkpoint_votes = QuorumTracker(config.commit_quorum)
        self._vc_votes: Dict[int, Dict[str, ViewChange]] = {}
        self._vc_voted_for = 0
        self.pending_view: Optional[int] = None
        self._waiting_guard: List[PrePrepare] = []
        self._future: List[OrderingMessage] = []  # messages from views ahead
        self.batcher: Batcher = Batcher(
            sim, config.batch_size, config.batch_delay, self._flush_batch
        )

        #: optional override of the view→primary mapping (Spinning skips
        #: blacklisted replicas in its rotation).
        self.primary_selector: Optional[Callable[[int], int]] = None

        # Attack hooks ----------------------------------------------------
        #: extra delay a malicious primary inserts before each PRE-PREPARE;
        #: receives the outgoing message (for rate pacing by batch size).
        self.preprepare_delay_fn: Optional[Callable[[PrePrepare], float]] = None
        #: a silent faulty replica sends nothing at all (worst-attack-1).
        self.silent = False
        #: called with the sender id when a message fails verification
        #: (the node uses this to detect and isolate flooding peers).
        self.on_invalid: Optional[Callable[[str], None]] = None

        # Counters ---------------------------------------------------------
        self.ordered_batches = 0
        self.ordered_items = 0
        self.view_changes = 0

        #: trace identity, e.g. "node2/i1" — one per (replica, instance).
        self._trace_name = "%s/i%d" % (replica, instance)

        # Hot-path constants (cf. RBFTNode._propagate_rx_cost): the cost
        # model is pure and the authenticator immutable, so everything
        # that does not depend on the message is computed once here and
        # per-size results are memoised below.
        self._auth = MacAuthenticator.for_signer(replica)
        self._cert_send_cost = costs.authenticator_gen(DIGEST_SIZE, config.n - 1)
        self._small_rx_cost = (
            costs.authenticator_verify(DIGEST_SIZE) + config.rx_overhead
        )
        self._preprepare_rx_costs: Dict[int, float] = {}
        self._batch_send_costs: Dict[int, float] = {}
        self._primary_cache_view = -1
        self._primary_cache = False
        self._dispatch_handlers = {
            PrePrepare: self._on_preprepare,
            Prepare: self._on_prepare,
            Commit: self._on_commit,
            Checkpoint: self._on_checkpoint,
            ViewChange: self._on_view_change,
            NewView: self._on_new_view,
        }

    # ------------------------------------------------------------ identity
    def primary_index(self, view: Optional[int] = None) -> int:
        view = self.view if view is None else view
        if self.primary_selector is not None:
            return self.primary_selector(view)
        return (view + self.primary_offset) % self.config.n

    def primary_name(self, view: Optional[int] = None) -> str:
        return "node%d" % self.primary_index(view)

    @property
    def is_primary(self) -> bool:
        # ``submit`` asks once per pooled item, so the round-robin case
        # is cached per view.  A custom selector (Spinning consults a
        # mutable blacklist) is never cached.
        if self.primary_selector is not None:
            return self.primary_selector(self.view) == self.index
        view = self.view
        if view != self._primary_cache_view:
            self._primary_cache_view = view
            self._primary_cache = (
                (view + self.primary_offset) % self.config.n == self.index
            )
        return self._primary_cache

    # ------------------------------------------------------------- ingress
    def submit(self, item) -> None:
        """Hand a verified request (or identifier) to this replica.

        Every replica pools the item; the current primary additionally
        feeds its batcher.
        """
        request_id = item.request_id
        if request_id in self._ordered_ids or request_id in self.pending:
            return
        self.pending[request_id] = item
        if self.is_primary and self.active and not self.silent:
            self.batcher.add(item)

    def recheck_guards(self) -> None:
        """Re-test buffered pre-prepares whose guard previously failed."""
        if not self._waiting_guard or self.guard is None:
            return
        waiting, self._waiting_guard = self._waiting_guard, []
        for msg in waiting:
            if self.guard(msg.items):
                self._accept_preprepare(msg)
            else:
                self._waiting_guard.append(msg)

    # ----------------------------------------------------------- batching
    def _flush_batch(self, items: List) -> None:
        if not self.is_primary or not self.active or self.silent:
            for item in items:  # lost leadership while batching: re-pool
                self.pending.setdefault(item.request_id, item)
            return
        seen = set()
        unique = []
        for item in items:
            request_id = item.request_id
            if request_id in self._ordered_ids or request_id in seen:
                continue
            seen.add(request_id)
            unique.append(item)
        items = tuple(unique)
        if not items:
            return
        if self.config.auto_advance_view:
            # Spinning: one batch per leadership turn, then rotate.
            self.batcher.pause()
        self.seq_assigned += 1
        seq = self.seq_assigned
        digest = self._batch_digest(seq, items)
        payload = batch_payload_size(items, self.config.full_payload)
        msg = PrePrepare(
            self.replica,
            self.instance,
            self.view,
            seq,
            items,
            digest,
            payload,
            self._auth,
        )
        # PBFT-lineage implementations MAC the whole ordering message once
        # per recipient (no digest shortcut) — this is what makes ordering
        # full requests expensive and identifier ordering cheap (§VI-B).
        # Multicast deployments hash the single packet once instead.
        cost = self._batch_send_costs.get(payload)
        if cost is None:
            if self.config.multicast_auth:
                cost = self.costs.authenticator_gen(payload, self.config.n - 1)
            else:
                cost = (self.config.n - 1) * self.costs.mac_gen(payload)
            self._batch_send_costs[payload] = cost
        delay = self.preprepare_delay_fn(msg) if self.preprepare_delay_fn else 0.0
        self.core.submit(cost, self._send_preprepare, msg, delay)

    def _send_preprepare(self, msg: PrePrepare, delay: float) -> None:
        if delay > 0:
            self.sim.call_after(delay, self._emit_preprepare, msg)
        else:
            self._emit_preprepare(msg)

    def _emit_preprepare(self, msg: PrePrepare) -> None:
        if msg.view != self.view or not self.active:
            return  # a view change overtook the delayed send
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "pbft.phase", self._trace_name,
                phase="pre-prepare", seq=msg.seq, view=msg.view,
                items=len(msg.items),
            )
        self.transport.broadcast(msg)
        self._record_preprepare(msg)

    def _batch_digest(self, seq: int, items: Tuple) -> Digest:
        return Digest(
            ("batch", self.instance, seq, tuple(item.request_id for item in items))
        )

    # ------------------------------------------------------------- receive
    def receive(self, msg: OrderingMessage) -> None:
        """Entry point from the node's router: charge CPU, then dispatch."""
        cls = msg.__class__
        if cls is PrePrepare:
            payload = msg.payload_size
            cost = self._preprepare_rx_costs.get(payload)
            if cost is None:
                if self.config.multicast_auth:
                    cost = self.costs.authenticator_verify(payload)
                else:
                    cost = self.costs.mac_verify(payload)
                cost = cost + self.config.rx_overhead
                self._preprepare_rx_costs[payload] = cost
        elif cls is ViewChange or cls is NewView:
            cost = self.costs.sig_verify(msg.wire_size()) + self.config.rx_overhead
        else:
            # Prepare / Commit / Checkpoint: fixed-size digest payloads.
            cost = self._small_rx_cost
        self.core.submit(cost, self._dispatch, msg)

    def batch_rx_cost(self, messages: List[OrderingMessage]) -> float:
        """CPU cost of receiving a coalesced certificate run.

        One authenticator pass over the summed payload — the run shares
        a single MAC vector inside its envelope — plus the per-message
        handling overhead.  The node layer sums the per-instance run
        costs of an envelope and charges them as one task.
        """
        payload = sum(
            msg.payload_size if msg.__class__ is PrePrepare else DIGEST_SIZE
            for msg in messages
        )
        return (
            self.costs.authenticator_verify(payload)
            + self.config.rx_overhead * len(messages)
        )

    def dispatch_batch(self, messages: List[OrderingMessage]) -> None:
        """Handle a coalesced run; the caller has charged the CPU cost.

        Per-message protocol semantics are unchanged: each inner message
        still goes through :meth:`_dispatch` with its own authenticator
        check.
        """
        for msg in messages:
            self._dispatch(msg)

    def _dispatch(self, msg: OrderingMessage) -> None:
        if not msg.authenticator.valid_for(self.replica):
            if self.on_invalid is not None:
                self.on_invalid(msg.sender)
            return  # verification failed: the CPU cost is already paid
        handlers = self._dispatch_handlers
        handler = handlers.get(msg.__class__)
        if handler is None:
            # Unknown exact class (e.g. a subclass): resolve through the
            # MRO once and cache the binding.
            for base in type(msg).__mro__[1:]:
                handler = handlers.get(base)
                if handler is not None:
                    handlers[type(msg)] = handler
                    break
        if handler is not None:
            handler(msg)

    # ------------------------------------------------------- future buffer
    def _buffer_future(self, msg) -> None:
        """Hold messages from views we have not reached yet.

        Replicas advance views at slightly different times (notably under
        Spinning's per-batch rotation); without buffering, a lagging
        replica would drop the next view's PRE-PREPARE and deadlock.
        """
        if len(self._future) < 4096:
            self._future.append(msg)

    def _replay_future(self) -> None:
        if not self._future:
            return
        ready = [m for m in self._future if m.view <= self.view]
        if not ready:
            return
        self._future = [m for m in self._future if m.view > self.view]
        for msg in ready:
            self._dispatch(msg)

    # --------------------------------------------------------- pre-prepare
    def _on_preprepare(self, msg: PrePrepare) -> None:
        if msg.view > self.view:
            self._buffer_future(msg)
            return
        if (
            msg.view != self.view
            or not self.active
            or msg.sender != self.primary_name(msg.view)
            or msg.sender == self.replica
        ):
            return
        floor = self.low_watermark
        if self.next_exec - 1 > floor:
            # After a weak-checkpoint state transfer (``_catch_up``) the
            # execution frontier can sit above ``low_watermark + 1``; a
            # pre-prepare for an already-executed sequence number below it
            # must not re-enter the log (it would never drain and would
            # trigger redundant PREPARE/COMMIT traffic).
            floor = self.next_exec - 1
        if not (floor < msg.seq <= self.low_watermark + self.config.watermark_window):
            return
        existing = self.log.get(msg.seq)
        if existing is not None and (existing.committed or existing.view >= msg.view):
            return
        if self.guard is not None and not self.guard(msg.items):
            self._waiting_guard.append(msg)
            return
        self._accept_preprepare(msg)

    def _accept_preprepare(self, msg: PrePrepare) -> None:
        if msg.view != self.view or not self.active:
            return
        entry = _Entry(msg.view, msg.seq, msg.items, msg.digest)
        self.log[msg.seq] = entry
        key = (msg.view, msg.seq, msg.digest)
        if not self.silent:
            prepare = Prepare(
                self.replica,
                self.instance,
                msg.view,
                msg.seq,
                msg.digest,
                self._auth,
            )
            self.core.submit(self._cert_send_cost, self.transport.broadcast, prepare)
            if self._prepare_votes.add(key, self.replica):
                self._mark_prepared(msg.seq, msg.view, msg.digest)
                return
        if self._prepare_votes.complete(key):
            self._mark_prepared(msg.seq, msg.view, msg.digest)

    def _record_preprepare(self, msg: PrePrepare) -> None:
        """The primary's own bookkeeping for the batch it just proposed."""
        self.log[msg.seq] = _Entry(msg.view, msg.seq, msg.items, msg.digest)

    # --------------------------------------------------------------- prepare
    def _on_prepare(self, msg: Prepare) -> None:
        if msg.view > self.view:
            self._buffer_future(msg)
            return
        if msg.view != self.view or not self.active:
            return
        if msg.sender == self.primary_name(msg.view):
            return  # the primary's pre-prepare is its prepare
        key = (msg.view, msg.seq, msg.digest)
        if self._prepare_votes.add(key, msg.sender):
            self._mark_prepared(msg.seq, msg.view, msg.digest)

    def _mark_prepared(self, seq: int, view: int, digest: Digest) -> None:
        entry = self.log.get(seq)
        if entry is None or entry.digest != digest or entry.prepared:
            return
        entry.prepared = True
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "pbft.phase", self._trace_name,
                phase="prepared", seq=seq, view=view,
            )
        key = (view, seq, digest)
        if not self.silent:
            commit = Commit(
                self.replica, self.instance, view, seq, digest, self._auth,
            )
            self.core.submit(self._cert_send_cost, self.transport.broadcast, commit)
            self._commit_votes.add(key, self.replica)
        self._maybe_commit(seq, view, digest)

    # ---------------------------------------------------------------- commit
    def _on_commit(self, msg: Commit) -> None:
        if msg.view > self.view:
            self._buffer_future(msg)
            return
        if msg.view != self.view or not self.active:
            return
        key = (msg.view, msg.seq, msg.digest)
        self._commit_votes.add(key, msg.sender)
        self._maybe_commit(msg.seq, msg.view, msg.digest)

    def _maybe_commit(self, seq: int, view: int, digest: Digest) -> None:
        entry = self.log.get(seq)
        if (
            entry is None
            or entry.committed
            or not entry.prepared
            or entry.digest != digest
        ):
            return
        if not self._commit_votes.complete((view, seq, digest)):
            return
        entry.committed = True
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "pbft.phase", self._trace_name,
                phase="committed", seq=seq, view=view,
                digest=repr(digest.token),
            )
        self._drain_ordered()

    def _drain_ordered(self) -> None:
        """Deliver committed batches in sequence order."""
        while True:
            entry = self.log.get(self.next_exec)
            if entry is None or not entry.committed:
                break
            seq = self.next_exec
            self.next_exec += 1
            self.ordered_batches += 1
            self.ordered_items += len(entry.items)
            tracer = self.sim.tracer
            if tracer is not None and tracer.enabled:
                tracer.emit(
                    self.sim.now, "pbft.phase", self._trace_name,
                    phase="ordered", seq=seq, items=len(entry.items),
                    rids=tuple(item.request_id for item in entry.items),
                )
            for item in entry.items:
                self._ordered_ids.add(item.request_id)
                self.pending.pop(item.request_id, None)
            self.on_ordered(seq, entry.items)
            if self.config.auto_advance_view:
                self._advance_view_after_batch(seq)
            if seq % self.config.checkpoint_interval == 0:
                self._emit_checkpoint(seq)

    # ----------------------------------------------------------- checkpoints
    def _emit_checkpoint(self, seq: int) -> None:
        digest = Digest(("ckpt", self.instance, seq))
        key = (seq, digest)
        if not self.silent:
            msg = Checkpoint(self.replica, self.instance, seq, digest, self._auth)
            self.core.submit(self._cert_send_cost, self.transport.broadcast, msg)
            if self._checkpoint_votes.add(key, self.replica):
                self._stabilize(seq)

    def _on_checkpoint(self, msg: Checkpoint) -> None:
        if msg.seq <= self.low_watermark:
            # Already stable: a completed quorum here would only reach a
            # no-op ``_stabilize``, and the weak-certificate catch-up
            # needs ``seq >= next_exec + checkpoint_interval`` which a
            # sub-watermark sequence can never satisfy.  Dropping the
            # vote keeps stragglers from re-seeding pruned tracker keys.
            return
        key = (msg.seq, msg.digest)
        if self._checkpoint_votes.add(key, msg.sender):
            self._stabilize(msg.seq)
            return
        # Weak certificate: f+1 matching checkpoints contain at least one
        # correct replica, proving the state at ``seq`` is committed.  A
        # replica that has fallen a full interval behind state-transfers
        # up to it rather than waiting for batches that may never re-run
        # (e.g. when a silent faulty replica leaves the checkpoint quorum
        # one vote short of 2f+1 without the laggard's own vote).
        if (
            not self._checkpoint_votes.complete(key)
            and self._checkpoint_votes.count(key) > self.config.f
            and msg.seq >= self.next_exec + self.config.checkpoint_interval
        ):
            self._catch_up(msg.seq)

    def _catch_up(self, seq: int) -> None:
        """State transfer: adopt the service state up to ``seq``."""
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "pbft.state-transfer", self._trace_name,
                src=self.next_exec, dst=seq + 1, via="weak-checkpoint",
            )
        self.next_exec = seq + 1
        self.seq_assigned = max(self.seq_assigned, seq)
        for old_seq in [s for s in self.log if s <= seq]:
            entry = self.log.pop(old_seq)
            self._prepare_votes.discard((entry.view, old_seq, entry.digest))
            self._commit_votes.discard((entry.view, old_seq, entry.digest))
            for item in entry.items:
                self._ordered_ids.discard(item.request_id)
        self._drain_ordered()

    def _stabilize(self, seq: int) -> None:
        if seq <= self.low_watermark:
            return
        self.low_watermark = seq
        if self.next_exec <= seq:
            # State transfer: 2f+1 replicas are past this checkpoint, so
            # fast-forward rather than wait for garbage-collected batches.
            tracer = self.sim.tracer
            if tracer is not None and tracer.enabled:
                tracer.emit(
                    self.sim.now, "pbft.state-transfer", self._trace_name,
                    src=self.next_exec, dst=seq + 1, via="stable-checkpoint",
                )
            self.next_exec = seq + 1
        for old_seq in [s for s in self.log if s <= seq]:
            entry = self.log.pop(old_seq)
            self._prepare_votes.discard((entry.view, old_seq, entry.digest))
            self._commit_votes.discard((entry.view, old_seq, entry.digest))
            for item in entry.items:
                self._ordered_ids.discard(item.request_id)
        self._collect_garbage(seq)

    def _collect_garbage(self, seq: int) -> None:
        """Drop every piece of per-sequence state at or below the stable
        checkpoint ``seq`` (PBFT's log garbage collection, OSDI '99 §4.3).

        The popped log entries above only remove votes matching the
        entry's own (view, digest); orphaned vote keys — conflicting
        digests, superseded views, sequences this replica never logged —
        would otherwise accumulate forever.  View-change votes for views
        at or below the current one are unreadable (every read path
        requires ``new_view > self.view``) and are dropped too.
        """
        self._prepare_votes.prune(lambda key: key[1] <= seq)
        self._commit_votes.prune(lambda key: key[1] <= seq)
        self._checkpoint_votes.prune(lambda key: key[0] <= seq)
        for stale in [v for v in self._vc_votes if v <= self.view]:
            del self._vc_votes[stale]
        if self._waiting_guard:
            self._waiting_guard = [
                msg for msg in self._waiting_guard if msg.seq > seq
            ]
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "pbft.log-size", self._trace_name,
                **self.log_sizes(),
            )

    # ---------------------------------------------------------- view change
    def start_view_change(self, new_view: Optional[int] = None) -> None:
        """Vote to replace the primary.

        For RBFT instances this is invoked only by the node's instance
        change mechanism; for Aardvark it is the regular/monitoring view
        change; for Spinning it implements the merge operation.
        """
        new_view = self.view + 1 if new_view is None else new_view
        if new_view <= self.view or self._vc_voted_for >= new_view or self.silent:
            return
        self._vc_voted_for = new_view
        self.active = False
        self.batcher.pause()
        # Report every prepared certificate above the stable checkpoint —
        # including locally committed ones.  A batch committed anywhere has
        # prepared certificates at 2f+1 nodes, so any view-change quorum
        # contains at least one and the new primary must re-propose it at
        # the same sequence number (PBFT's safety-across-views argument).
        prepared = {
            seq: (entry.digest, entry.items)
            for seq, entry in self.log.items()
            if entry.prepared
        }
        msg = ViewChange(
            self.replica,
            self.instance,
            new_view,
            self.low_watermark,
            prepared,
            self._auth,
        )
        cost = self.costs.sig_gen(msg.wire_size())
        self.core.submit(cost, self.transport.broadcast, msg)
        self._register_vc(msg)

    def _on_view_change(self, msg: ViewChange) -> None:
        if msg.new_view <= self.view:
            return
        self._register_vc(msg)

    def _register_vc(self, msg: ViewChange) -> None:
        votes = self._vc_votes.setdefault(msg.new_view, {})
        votes[msg.sender] = msg
        # Join a view change once f+1 others demand it (PBFT liveness rule).
        if (
            len(votes) > self.config.f
            and self._vc_voted_for < msg.new_view
            and msg.new_view > self.view
        ):
            self.start_view_change(msg.new_view)
            votes = self._vc_votes.setdefault(msg.new_view, votes)
        if len(votes) >= self.config.vc_quorum:
            if self.primary_index(msg.new_view) == self.index:
                self._install_view(msg.new_view, announce=True)

    def _on_new_view(self, msg: NewView) -> None:
        if msg.new_view <= self.view:
            return
        if msg.sender != "node%d" % self.primary_index(msg.new_view):
            return
        self._install_view(msg.new_view, announce=False, repropose=msg.repropose)

    def _install_view(
        self,
        new_view: int,
        announce: bool,
        repropose: Optional[Dict[int, Tuple[Digest, Tuple]]] = None,
    ) -> None:
        if new_view <= self.view:
            return
        if announce:
            # New primary: merge prepared certificates from the quorum.
            repropose = {}
            for vc in self._vc_votes.get(new_view, {}).values():
                for seq, cert in vc.prepared.items():
                    if seq > self.low_watermark:
                        repropose.setdefault(seq, cert)
            msg = NewView(
                self.replica,
                self.instance,
                new_view,
                repropose,
                self._auth,
            )
            cost = self.costs.sig_gen(msg.wire_size())
            self.core.submit(cost, self.transport.broadcast, msg)
        self.view = new_view
        self.view_changes += 1
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                self.sim.now, "pbft.view-change", self._trace_name,
                view=new_view,
            )
        self.pending_view = None
        self.active = True
        self._vc_voted_for = max(self._vc_voted_for, new_view)
        for stale in [v for v in self._vc_votes if v <= new_view]:
            del self._vc_votes[stale]
        self._waiting_guard = []
        # Drop uncommitted batches from superseded views: anything without
        # a prepared certificate in the new-view proof is dead, and its
        # requests are still pooled for re-proposal.  The new primary then
        # reuses those sequence numbers, so execution never stalls on them.
        for seq in [s for s, entry in self.log.items() if not entry.committed]:
            entry = self.log.pop(seq)
            self._prepare_votes.discard((entry.view, seq, entry.digest))
            self._commit_votes.discard((entry.view, seq, entry.digest))
        if repropose:
            self._adopt_reproposals(new_view, repropose, announce)
        if self.is_primary:
            self._become_primary()
        else:
            self.batcher.pause()
        self._replay_future()
        self.on_view_entered(new_view)

    def _adopt_reproposals(
        self, view: int, repropose: Dict[int, Tuple[Digest, Tuple]], as_primary: bool
    ) -> None:
        """Re-run the agreement for prepared-but-uncommitted batches."""
        for seq in sorted(repropose):
            digest, items = repropose[seq]
            if seq <= self.low_watermark or seq < self.next_exec:
                continue
            self.seq_assigned = max(self.seq_assigned, seq)
            existing = self.log.get(seq)
            if existing is not None and existing.committed:
                continue
            msg = PrePrepare(
                "node%d" % self.primary_index(view),
                self.instance,
                view,
                seq,
                items,
                digest,
                batch_payload_size(items, self.config.full_payload),
                self._auth,
            )
            if as_primary:
                self._record_preprepare(msg)
            else:
                self._accept_preprepare(msg)

    def _become_primary(self) -> None:
        # Continue after the last live sequence number; superseded batches
        # were dropped at view installation, so their numbers are reused.
        self.seq_assigned = max(
            self.low_watermark, self.next_exec - 1, *(list(self.log) or [0])
        )
        if self.config.auto_advance_view:
            # One batch per leadership turn: feeding more than a batch is
            # wasted work (and O(backlog) per rotation under saturation).
            budget = self.config.batch_size
            for item in self.pending.values():
                if budget == 0:
                    break
                if item.request_id not in self._ordered_ids:
                    self.batcher.add(item)
                    budget -= 1
            self.batcher.resume()
            return
        self.batcher.resume()
        for item in list(self.pending.values()):
            if item.request_id not in self._ordered_ids:
                self.batcher.add(item)

    def _advance_view_after_batch(self, seq: int) -> None:
        """Spinning: the primary rotates after every ordered batch."""
        new_view = self.view + 1
        self.view = new_view
        self._vc_voted_for = max(self._vc_voted_for, new_view)
        if self._vc_votes:
            # Views roll over every batch here, so merge votes for
            # superseded views would pile up fast; same dead-state rule
            # as ``_install_view``.
            for stale in [v for v in self._vc_votes if v <= new_view]:
                del self._vc_votes[stale]
        if self.is_primary:
            self._become_primary()
        else:
            self.batcher.pause()
        self._replay_future()
        self.on_view_entered(new_view)

    # ------------------------------------------------------------ inspection
    def backlog(self) -> int:
        """Verified-but-unordered requests at this replica."""
        return len(self.pending)

    def log_sizes(self) -> Dict[str, int]:
        """Sizes of every per-sequence structure, plus their sum (``total``).

        ``total`` is the "protocol log" the checkpoint garbage collector
        bounds: everything indexed by sequence number or view.  ``pending``
        (offered-load backlog) and ``ordered_ids`` (bounded by
        ``watermark_window * batch_size`` once GC runs) are reported
        alongside but excluded from ``total`` — they scale with load and
        batch size, not with the horizon.
        """
        total = (
            len(self.log)
            + len(self._prepare_votes)
            + len(self._commit_votes)
            + len(self._checkpoint_votes)
            + len(self._vc_votes)
            + len(self._waiting_guard)
            + len(self._future)
        )
        return {
            "total": total,
            "log": len(self.log),
            "prepare_votes": len(self._prepare_votes),
            "commit_votes": len(self._commit_votes),
            "checkpoint_votes": len(self._checkpoint_votes),
            "vc_votes": len(self._vc_votes),
            "waiting_guard": len(self._waiting_guard),
            "future": len(self._future),
            "pending": len(self.pending),
            "ordered_ids": len(self._ordered_ids),
        }

    def __repr__(self) -> str:
        return "OrderingInstance(%s/i%d, view=%d, next=%d)" % (
            self.replica,
            self.instance,
            self.view,
            self.next_exec,
        )
