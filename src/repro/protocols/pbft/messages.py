"""Wire messages of the three-phase ordering protocol (PBFT lineage).

Sizes follow the virtual-payload convention: every message computes its
own wire footprint so the NIC model charges realistic bandwidth, and the
cost model charges realistic authentication time over the same bytes.

``instance`` tags which protocol instance a message belongs to: 0 for the
single-instance baselines, 0..f for RBFT's f+1 concurrent instances.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.crypto.costmodel import (
    DIGEST_SIZE,
    MAC_SIZE,
    MESSAGE_HEADER_SIZE,
    SIGNATURE_SIZE,
)
from repro.crypto.primitives import Digest, MacAuthenticator
from repro.net.message import Message

__all__ = [
    "OrderingMessage",
    "PrePrepare",
    "Prepare",
    "Commit",
    "Checkpoint",
    "ViewChange",
    "NewView",
    "batch_payload_size",
]


def batch_payload_size(items: Sequence, full: bool) -> int:
    """Bytes a batch occupies inside an ordering message.

    ``full`` batches carry entire requests (PBFT/Aardvark/Spinning);
    identifier batches carry (client, rid, digest) triples only — RBFT's
    optimisation (§IV-B step 2).
    """
    if full:
        return sum(item.wire_size() for item in items)
    from repro.common.types import RequestIdentifier

    return len(items) * RequestIdentifier.WIRE_SIZE


class OrderingMessage(Message):
    """Base for instance-scoped protocol messages."""

    __slots__ = ("instance", "authenticator")

    def __init__(self, sender: str, instance: int, authenticator: MacAuthenticator):
        super().__init__(sender)
        self.instance = instance
        self.authenticator = authenticator


class PrePrepare(OrderingMessage):
    """Step 3: the primary assigns ``seq`` to a batch in ``view``."""

    __slots__ = ("view", "seq", "items", "digest", "payload_size")

    def __init__(
        self,
        sender: str,
        instance: int,
        view: int,
        seq: int,
        items: Tuple,
        digest: Digest,
        payload_size: int,
        authenticator: MacAuthenticator,
    ):
        super().__init__(sender, instance, authenticator)
        self.view = view
        self.seq = seq
        self.items = items
        self.digest = digest
        self.payload_size = payload_size

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + self.payload_size + 4 * MAC_SIZE


class Prepare(OrderingMessage):
    """Step 4: a backup echoes the pre-prepare it accepted."""

    __slots__ = ("view", "seq", "digest")

    def __init__(self, sender, instance, view, seq, digest, authenticator):
        super().__init__(sender, instance, authenticator)
        self.view = view
        self.seq = seq
        self.digest = digest

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + DIGEST_SIZE + 4 * MAC_SIZE


class Commit(OrderingMessage):
    """Step 5: a replica has collected a prepared certificate."""

    __slots__ = ("view", "seq", "digest")

    def __init__(self, sender, instance, view, seq, digest, authenticator):
        super().__init__(sender, instance, authenticator)
        self.view = view
        self.seq = seq
        self.digest = digest

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + DIGEST_SIZE + 4 * MAC_SIZE


class Checkpoint(OrderingMessage):
    """Periodic state digest used to advance the low watermark."""

    __slots__ = ("seq", "digest")

    def __init__(self, sender, instance, seq, digest, authenticator):
        super().__init__(sender, instance, authenticator)
        self.seq = seq
        self.digest = digest

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + DIGEST_SIZE + 4 * MAC_SIZE


class ViewChange(OrderingMessage):
    """A replica's vote to move to ``new_view``.

    Carries the replica's stable checkpoint and its prepared certificates
    above it, so the new primary can re-propose anything that may have
    committed somewhere (PBFT's safety-across-views argument).
    """

    __slots__ = ("new_view", "last_stable", "prepared")

    def __init__(
        self,
        sender: str,
        instance: int,
        new_view: int,
        last_stable: int,
        prepared: Dict[int, Tuple[Digest, Tuple]],
        authenticator: MacAuthenticator,
    ):
        super().__init__(sender, instance, authenticator)
        self.new_view = new_view
        self.last_stable = last_stable
        self.prepared = prepared

    def wire_size(self) -> int:
        # one digest per prepared certificate plus a signature-grade proof
        return (
            MESSAGE_HEADER_SIZE
            + len(self.prepared) * (8 + DIGEST_SIZE)
            + SIGNATURE_SIZE
            + 4 * MAC_SIZE
        )


class NewView(OrderingMessage):
    """The new primary's installation message for ``new_view``."""

    __slots__ = ("new_view", "repropose")

    def __init__(
        self,
        sender: str,
        instance: int,
        new_view: int,
        repropose: Dict[int, Tuple[Digest, Tuple]],
        authenticator: MacAuthenticator,
    ):
        super().__init__(sender, instance, authenticator)
        self.new_view = new_view
        self.repropose = repropose

    def wire_size(self) -> int:
        return (
            MESSAGE_HEADER_SIZE
            + len(self.repropose) * (8 + DIGEST_SIZE)
            + SIGNATURE_SIZE
            + 4 * MAC_SIZE
        )
