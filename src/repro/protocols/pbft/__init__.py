"""The three-phase ordering engine and its wire messages."""

from .engine import InstanceConfig, OrderingInstance
from .messages import (
    Checkpoint,
    Commit,
    NewView,
    OrderingMessage,
    PrePrepare,
    Prepare,
    ViewChange,
    batch_payload_size,
)

__all__ = [
    "InstanceConfig",
    "OrderingInstance",
    "Checkpoint",
    "Commit",
    "NewView",
    "OrderingMessage",
    "PrePrepare",
    "Prepare",
    "ViewChange",
    "batch_payload_size",
]
