"""Shared node machinery for the single-instance baseline protocols.

A :class:`BftNode` is one physical machine running one replica of a
PBFT-family protocol (Aardvark, Spinning, or plain PBFT).  It owns three
pinned cores, mirroring the multi-threaded implementations the paper
compares against:

* a **verification core** authenticating client requests,
* a **protocol core** running the three-phase ordering engine,
* an **execution core** applying ordered requests and emitting replies.

Subclasses configure how client requests are authenticated (MACs only
for Spinning, MAC-then-signature for Aardvark) and add their robustness
mechanisms on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.common.cluster import Machine
from repro.common.statemachine import Service
from repro.common.types import Reply, Request
from repro.crypto.blacklist import ClientBlacklist
from repro.crypto.costmodel import MAC_SIZE, MESSAGE_HEADER_SIZE, CryptoCostModel
from repro.crypto.primitives import Mac
from repro.net.message import Message

from .pbft.engine import InstanceConfig, OrderingInstance
from .pbft.messages import OrderingMessage

__all__ = ["ClientRequestMsg", "ReplyMsg", "NodeConfig", "BftNode"]


class ClientRequestMsg(Message):
    """A REQUEST on the wire (client → node)."""

    __slots__ = ("request",)

    def __init__(self, request: Request):
        super().__init__(request.client)
        self.request = request

    def wire_size(self) -> int:
        return self.request.wire_size()


class ReplyMsg(Message):
    """A REPLY on the wire (node → client), MAC-authenticated (step 6)."""

    __slots__ = ("reply", "mac")

    def __init__(self, reply: Reply, mac: Mac):
        super().__init__(reply.node)
        self.reply = reply
        self.mac = mac

    def wire_size(self) -> int:
        return MESSAGE_HEADER_SIZE + self.reply.result_size + MAC_SIZE


@dataclass(frozen=True)
class NodeConfig:
    """Configuration shared by the baseline protocol nodes."""

    instance: InstanceConfig = field(default_factory=InstanceConfig)
    verify_request_signature: bool = True  # Aardvark hybrid; Spinning: False
    mac_only_requests: bool = False  # Spinning: requests carry MACs only
    costs: CryptoCostModel = field(default_factory=CryptoCostModel)

    @property
    def f(self) -> int:
        return self.instance.f

    @property
    def n(self) -> int:
        return self.instance.n


class BftNode:
    """One machine running one replica (baseline protocols)."""

    def __init__(self, machine: Machine, config: NodeConfig, service: Service):
        self.machine = machine
        self.config = config
        self.costs = config.costs
        self.service = service
        self.name = machine.name
        sim = machine.cluster.sim
        self.sim = sim

        self.verification_core = machine.cores.allocate("verification")
        self.protocol_core = machine.cores.allocate("protocol")
        self.execution_core = machine.cores.allocate("execution")

        self.engine = OrderingInstance(
            sim,
            self.protocol_core,
            transport=self,
            config=config.instance,
            costs=self.costs,
            replica=self.name,
            instance=0,
            on_ordered=self._on_ordered,
            on_view_entered=self._on_view_entered,
            primary_offset=0,
            senders=machine.cluster.senders,
        )
        self.blacklist = ClientBlacklist()
        self.executed_ids = set()
        self.reply_cache: Dict[str, Tuple[int, Reply]] = {}
        self.executed_count = 0
        self.invalid_requests = 0
        machine.handler = self.on_network_message

    # ------------------------------------------------------- engine transport
    def broadcast(self, msg: OrderingMessage) -> None:
        self.machine.broadcast_to_nodes(msg)

    def send(self, replica: str, msg: OrderingMessage) -> None:
        self.machine.send_to_node(replica, msg)

    # ------------------------------------------------------------- routing
    def on_network_message(self, msg: Message) -> None:
        if isinstance(msg, ClientRequestMsg):
            self._receive_request(msg.request)
        elif isinstance(msg, OrderingMessage):
            self.engine.receive(msg)
        else:
            self.on_other_message(msg)

    def on_other_message(self, msg: Message) -> None:
        """Hook for protocol-specific extra messages (default: ignore)."""

    def _on_view_entered(self, view: int) -> None:
        """Hook: a new view was installed (default: no reaction)."""

    # ------------------------------------------------- request verification
    def _receive_request(self, request: Request) -> None:
        """Step 1: MAC check, then (per-protocol) signature check."""
        if self.blacklist.banned(request.client):
            return
        mac_cost = self.costs.authenticator_verify(request.wire_size())
        if self.config.mac_only_requests:
            self.verification_core.submit(mac_cost, self._after_mac_only, request)
            return
        self.verification_core.submit(mac_cost, self._after_mac, request)

    def _after_mac_only(self, request: Request) -> None:
        if not request.authenticator.valid_for(self.name):
            self.invalid_requests += 1
            return
        self.on_request_verified(request)

    def _after_mac(self, request: Request) -> None:
        if not request.authenticator.valid_for(self.name):
            self.invalid_requests += 1
            return
        if request.request_id in self.executed_ids:
            self._resend_reply(request)
            return
        if self.config.verify_request_signature:
            sig_cost = self.costs.sig_verify(request.wire_size())
            self.verification_core.submit(sig_cost, self._after_signature, request)
        else:
            self.on_request_verified(request)

    def _after_signature(self, request: Request) -> None:
        if not request.signature.valid:
            # Invalid signature behind a valid MAC: blacklist the client.
            self.blacklist.ban(request.client)
            self.invalid_requests += 1
            return
        self.on_request_verified(request)

    def on_request_verified(self, request: Request) -> None:
        """A fully authenticated request enters the ordering pipeline."""
        self.engine.submit(request)

    # ------------------------------------------------------------ execution
    def _on_ordered(self, seq: int, items: Tuple) -> None:
        for request in items:
            if request.request_id in self.executed_ids:
                continue
            self.executed_ids.add(request.request_id)
            cost = self.service.exec_cost(request) + self.costs.mac_gen(
                MESSAGE_HEADER_SIZE
            )
            self.execution_core.submit(cost, self._execute_one, request)

    def _execute_one(self, request: Request) -> None:
        result, result_size = self.service.apply(request)
        self.executed_count += 1
        reply = Reply(self.name, request.client, request.rid, result, result_size)
        self.reply_cache[request.client] = (request.rid, reply)
        self._send_reply(reply)
        self.on_executed(request)

    def on_executed(self, request: Request) -> None:
        """Hook: monitoring counters etc."""

    def _send_reply(self, reply: Reply) -> None:
        channel = self.machine.channel_to_client(reply.client)
        if channel is not None:
            channel.send(ReplyMsg(reply, Mac(self.name)))

    def _resend_reply(self, request: Request) -> None:
        cached = self.reply_cache.get(request.client)
        if cached is not None and cached[0] == request.rid:
            self._send_reply(cached[1])

    # ----------------------------------------------------------- inspection
    @property
    def is_primary(self) -> bool:
        return self.engine.is_primary

    def log_sizes(self) -> Dict[str, int]:
        """The engine's protocol-log sizes plus the replay-dedup set."""
        sizes = dict(self.engine.log_sizes())
        sizes["executed_ids"] = len(self.executed_ids)
        return sizes

    def __repr__(self) -> str:
        return "%s(%s, view=%d)" % (type(self).__name__, self.name, self.engine.view)
