"""Fine-grained tests of the RBFT node's module pipeline."""


from repro.core import RBFTConfig
from repro.core.messages import PropagateMsg
from repro.crypto import MacAuthenticator
from repro.experiments.deployments import build_rbft


def small(**overrides):
    defaults = dict(f=1, batch_size=4, batch_delay=5e-4, monitoring_period=0.1)
    defaults.update(overrides)
    return build_rbft(RBFTConfig(**defaults), n_clients=2)


def test_each_module_has_its_own_core():
    dep = small()
    node = dep.nodes[0]
    cores = {
        id(node.verification_core),
        id(node.propagation_core),
        id(node.dispatch_core),
        id(node.execution_core),
    } | {id(engine.core) for engine in node.engines}
    assert len(cores) == 4 + len(node.engines)


def test_request_ready_needs_f_plus_one_propagates():
    dep = small()
    node = dep.nodes[0]
    request = dep.clients[0].send_request(targets=[])  # sent nowhere
    msg = PropagateMsg("node1", request, MacAuthenticator("node1"))
    node.on_network_message(msg)
    dep.sim.run(until=0.05)
    # One PROPAGATE (plus our own echo once verified) reaches f+1 = 2:
    # the request becomes ready, orders, and executes — at which point
    # checkpoint GC drops the ready-set memo and only the durable
    # executed_ids anchor remains.
    assert request.request_id in node.executed_ids
    assert request.request_id not in node.ready_ids  # pruned post-exec


def test_propagate_from_single_faulty_node_is_not_enough_alone():
    """A single PROPAGATE with an invalid MAC is dropped outright."""
    dep = small()
    node = dep.nodes[0]
    request = dep.clients[0].send_request(targets=[])
    msg = PropagateMsg("node1", request, MacAuthenticator.corrupt("node1"))
    node.on_network_message(msg)
    dep.sim.run(until=0.05)
    assert request.request_id not in node.ready_ids
    assert request.request_id not in node._propagated


def test_signature_checked_once_per_request():
    """The client copy and the PROPAGATE copies share one signature check."""
    dep = small()
    node = dep.nodes[1]
    busy_before = node.verification_core.busy_time
    dep.clients[0].send_request()
    dep.sim.run(until=0.3)
    busy = node.verification_core.busy_time - busy_before
    one_sig = node.costs.sig_verify(200)
    # MAC + one signature, far less than two signatures.
    assert busy < 1.6 * one_sig


def test_executed_request_resends_cached_reply():
    dep = small()
    client = dep.clients[0]
    request = client.send_request()
    dep.sim.run(until=0.3)
    assert client.completed == 1
    executed = [node.executed_count for node in dep.nodes]
    # Retransmit: nodes answer from the reply cache without re-execution.
    from repro.protocols.base import ClientRequestMsg

    client.port.broadcast(ClientRequestMsg(request))
    dep.sim.run(until=0.6)
    assert [node.executed_count for node in dep.nodes] == executed


def test_blacklisted_client_cannot_even_reach_propagation():
    dep = small()
    node = dep.nodes[0]
    client = dep.clients[0]
    client.send_request(signature_valid=False)
    dep.sim.run(until=0.3)
    assert node.blacklist.banned(client.name)
    propagated_before = len(node._propagated)
    client.send_request()
    dep.sim.run(until=0.6)
    assert len(node._propagated) == propagated_before


def test_request_store_garbage_collected_after_execution():
    dep = small()
    for _ in range(8):
        dep.clients[0].send_request()
    dep.sim.run(until=0.5)
    for node in dep.nodes:
        assert node.executed_count == 8
        assert len(node.request_store) == 0


def test_latency_measured_from_dispatch_to_ordering():
    dep = small()
    node = dep.nodes[1]
    samples = []
    original = node.monitor.record_latency
    node.monitor.record_latency = lambda k, c, lat: (
        samples.append((k, lat)), original(k, c, lat),
    )
    dep.clients[0].send_request()
    dep.sim.run(until=0.3)
    # One latency sample per instance, all small and positive.
    instances = sorted(k for k, _ in samples)
    assert instances == [0, 1]
    assert all(0 < lat < 50e-3 for _, lat in samples)


def test_instance_change_vote_is_once_per_cpi():
    dep = small()
    node = dep.nodes[0]
    node.vote_instance_change("test")
    node.vote_instance_change("test")  # idempotent at the same cpi
    dep.sim.run(until=0.1)
    # Only one INSTANCE-CHANGE went out (visible via the vote tracker).
    assert node._ic_votes.count((0, 0)) <= 1 or node.cpi >= 1


def test_stale_instance_change_discarded():
    from repro.core.messages import InstanceChangeMsg

    dep = small()
    node = dep.nodes[0]
    node.cpi = 5
    msg = InstanceChangeMsg("node1", 2, MacAuthenticator("node1"))
    node.on_network_message(msg)
    dep.sim.run(until=0.05)
    assert node._ic_votes.count((2, 0)) == 0  # "discarded" (§IV-D)


def test_udp_rbft_with_loss_still_completes():
    """Failure injection: UDP transport with 0.5 % message loss."""
    from repro.net.network import LinkProfile

    config = RBFTConfig(f=1, batch_size=4, batch_delay=5e-4)
    dep = build_rbft(
        config,
        n_clients=2,
        tcp=False,
        link=LinkProfile(udp_loss=0.005),
    )
    for i in range(30):
        dep.sim.call_after(i * 1e-3, dep.clients[i % 2].send_request)
    dep.sim.run(until=1.0)
    # Loss can delay individual quorums but the redundancy rides it out.
    total = sum(client.completed for client in dep.clients)
    assert total >= 28
