"""RBFTConfig validation."""

import pytest

from repro.core import RBFTConfig


def test_defaults_are_valid():
    config = RBFTConfig()
    assert config.n == 4
    assert config.instances == 2
    assert config.master == 0


def test_f_zero_rejected():
    with pytest.raises(ValueError, match="f >= 1"):
        RBFTConfig(f=0)


def test_delta_bounds():
    with pytest.raises(ValueError, match="Δ"):
        RBFTConfig(delta=0.0)
    with pytest.raises(ValueError, match="Δ"):
        RBFTConfig(delta=1.5)
    RBFTConfig(delta=1.0)  # inclusive upper bound is fine


def test_latency_thresholds_must_be_positive():
    with pytest.raises(ValueError):
        RBFTConfig(lambda_max=0.0)
    with pytest.raises(ValueError):
        RBFTConfig(omega=-1.0)


def test_monitoring_period_positive():
    with pytest.raises(ValueError):
        RBFTConfig(monitoring_period=0.0)


def test_batch_size_positive():
    with pytest.raises(ValueError):
        RBFTConfig(batch_size=0)


def test_core_budget_enforced():
    # f=3 needs 4 + 4 = 8 cores: exactly fits the 8-core default.
    RBFTConfig(f=3)
    # f=4 needs 9: rejected on the paper's hardware.
    with pytest.raises(ValueError, match="cores"):
        RBFTConfig(f=4)
    # ...but allowed on a bigger simulated machine.
    RBFTConfig(f=4, cores_per_machine=16)


def test_instance_config_inherits_choices():
    config = RBFTConfig(f=2, batch_size=32, order_full_requests=True)
    instance = config.instance_config()
    assert instance.f == 2
    assert instance.batch_size == 32
    assert instance.full_payload
    assert not instance.auto_advance_view
