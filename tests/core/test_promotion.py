"""Tests for best-backup master promotion (§IV-A future work)."""


from repro.clients import LoadGenerator, static_profile
from repro.core import RBFTConfig
from repro.experiments.deployments import build_rbft
from repro.faults import BatchPacer


def build(promote=True, **overrides):
    defaults = dict(
        f=1,
        batch_size=8,
        batch_delay=1e-3,
        monitoring_period=0.1,
        delta=0.9,
        min_monitor_requests=10,
        promote_best_backup=promote,
    )
    defaults.update(overrides)
    return build_rbft(RBFTConfig(**defaults), n_clients=4)


def throttle_master(dep, rate=300.0):
    pacer = BatchPacer(dep.sim, lambda: rate)
    dep.nodes[0].engines[0].preprepare_delay_fn = lambda msg: pacer.delay_for(
        len(msg.items)
    )


def load(dep, rate=3000.0, duration=1.5):
    generator = LoadGenerator(
        dep.sim, dep.clients, static_profile(rate, duration), dep.rng.stream("load")
    )
    generator.start()
    return generator


def test_promotion_switches_master_to_fastest_backup():
    dep = build(promote=True)
    throttle_master(dep)
    generator = load(dep)
    dep.sim.run(until=1.5)
    # The slow master was replaced by the backup instance (instance 1).
    assert all(node.instance_changes >= 1 for node in dep.nodes)
    assert all(node.master_instance == 1 for node in dep.nodes)
    assert all(node.monitor.master == 1 for node in dep.nodes)
    # Execution keeps flowing after the switch.
    assert generator.total_completed() >= 0.9 * generator.total_sent()


def test_without_promotion_master_stays_instance_zero():
    dep = build(promote=False)
    throttle_master(dep)
    load(dep)
    dep.sim.run(until=1.5)
    assert all(node.instance_changes >= 1 for node in dep.nodes)
    assert all(node.master_instance == 0 for node in dep.nodes)


def test_promotion_preserves_executed_set():
    dep = build(promote=True)
    throttle_master(dep)
    generator = load(dep, rate=2000.0, duration=1.0)
    dep.sim.run(until=2.0)
    sent = generator.total_sent()
    # Nothing is lost or duplicated across the switch.
    for node in dep.nodes:
        assert node.executed_count == len(node.executed_ids)
        assert node.executed_count == sent
    assert generator.total_completed() == sent


def test_promotion_replays_new_masters_backlog():
    """Requests ordered by the backup but not yet by the throttled master
    must execute right after the switch, not be dropped."""
    dep = build(promote=True)
    throttle_master(dep, rate=100.0)  # severe throttle: big backlog gap
    generator = load(dep, rate=2000.0, duration=0.8)
    dep.sim.run(until=2.5)
    assert all(node.master_instance == 1 for node in dep.nodes)
    assert generator.total_completed() == generator.total_sent()


def test_nodes_agree_on_new_master():
    dep = build(promote=True)
    throttle_master(dep)
    load(dep)
    dep.sim.run(until=1.5)
    masters = {node.master_instance for node in dep.nodes}
    assert len(masters) == 1


def test_fault_free_promotion_never_fires():
    dep = build(promote=True)
    generator = load(dep, rate=2000.0, duration=1.0)
    dep.sim.run(until=1.2)
    assert all(node.instance_changes == 0 for node in dep.nodes)
    assert all(node.master_instance == 0 for node in dep.nodes)
    assert generator.total_completed() >= 0.98 * generator.total_sent()
