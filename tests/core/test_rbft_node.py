"""Integration tests of the RBFT node pipeline."""

import pytest

from repro.clients import LoadGenerator, static_profile
from repro.core import RBFTConfig
from repro.experiments.deployments import build_rbft


def small_config(f=1, **overrides):
    defaults = dict(
        f=f,
        batch_size=8,
        batch_delay=1e-3,
        monitoring_period=0.1,
    )
    defaults.update(overrides)
    return RBFTConfig(**defaults)


def drive(dep, count, gap=1e-4, **kwargs):
    for i in range(count):
        client = dep.clients[i % len(dep.clients)]
        dep.sim.call_after(i * gap, lambda c=client: c.send_request(**kwargs))


def test_single_request_executes_and_replies():
    dep = build_rbft(small_config(), n_clients=2)
    dep.clients[0].send_request()
    dep.sim.run(until=0.5)
    assert dep.clients[0].completed == 1
    assert all(node.executed_count == 1 for node in dep.nodes)


def test_all_instances_order_every_request():
    dep = build_rbft(small_config(), n_clients=4)
    drive(dep, 40)
    dep.sim.run(until=1.0)
    for node in dep.nodes:
        for engine in node.engines:
            assert engine.ordered_items == 40


def test_only_master_instance_triggers_execution():
    dep = build_rbft(small_config(), n_clients=2)
    drive(dep, 10)
    dep.sim.run(until=1.0)
    assert all(node.executed_count == 10 for node in dep.nodes)
    # Requests were ordered twice (two instances) but executed once each.
    assert dep.clients[0].completed + dep.clients[1].completed == 10


def test_at_most_one_primary_per_node():
    for f in (1, 2):
        dep = build_rbft(small_config(f=f))
        for node in dep.nodes:
            primaries = [engine.is_primary for engine in node.engines]
            assert sum(primaries) <= 1


def test_f_plus_one_instances_run():
    dep = build_rbft(small_config(f=2))
    assert all(len(node.engines) == 3 for node in dep.nodes)
    assert len(dep.nodes) == 7


def test_identifier_ordering_not_full_requests():
    dep = build_rbft(small_config())
    assert all(
        not engine.config.full_payload
        for node in dep.nodes
        for engine in node.engines
    )


def test_request_needs_f_plus_one_propagates():
    """A request sent only to the master primary's node is still executed
    everywhere (the PROPAGATE phase disseminates it), and ordering waits
    for f+1 PROPAGATEs."""
    dep = build_rbft(small_config(), n_clients=1)
    dep.clients[0].send_request(targets=["node0"])
    dep.sim.run(until=0.5)
    assert all(node.executed_count == 1 for node in dep.nodes)


def test_invalid_signature_blacklists_client_everywhere():
    dep = build_rbft(small_config(), n_clients=1)
    dep.clients[0].send_request(signature_valid=False)
    dep.sim.run(until=0.5)
    assert all(node.blacklist.banned("client0") for node in dep.nodes)
    assert all(node.executed_count == 0 for node in dep.nodes)


def test_monitoring_counts_per_instance_throughput():
    dep = build_rbft(small_config(monitoring_period=0.05), n_clients=4)
    gen = LoadGenerator(
        dep.sim,
        dep.clients,
        static_profile(2000, 0.5),
        dep.rng.stream("load"),
    )
    gen.start()
    dep.sim.run(until=0.5)
    node = dep.nodes[0]
    # Both instances show comparable throughput (Fig. 9 fault-free shape).
    master, backup = node.monitor.last_rates
    assert master > 500
    assert backup > 500
    assert abs(master - backup) / max(master, backup) < 0.25


def test_fault_free_run_has_no_instance_change():
    dep = build_rbft(small_config(monitoring_period=0.05), n_clients=4)
    gen = LoadGenerator(
        dep.sim, dep.clients, static_profile(2000, 0.5), dep.rng.stream("load")
    )
    gen.start()
    dep.sim.run(until=0.6)
    assert all(node.instance_changes == 0 for node in dep.nodes)
    assert gen.total_completed() >= 0.98 * gen.total_sent()


def test_instance_change_rotates_all_primaries():
    dep = build_rbft(small_config(), n_clients=2)
    drive(dep, 5)
    dep.sim.run(until=0.3)
    for node in dep.nodes:
        node.vote_instance_change("test")
    dep.sim.run(until=1.0)
    assert all(node.cpi == 1 for node in dep.nodes)
    for node in dep.nodes:
        assert all(engine.view == 1 for engine in node.engines)
        assert sum(engine.is_primary for engine in node.engines) <= 1
    # The system still works after the rotation.
    drive(dep, 5)
    dep.sim.run(until=2.0)
    assert all(node.executed_count == 10 for node in dep.nodes)


def test_slow_master_primary_detected_by_delta():
    """A master primary ordering well below the backups is evicted."""
    dep = build_rbft(
        small_config(monitoring_period=0.1, delta=0.9, min_monitor_requests=10),
        n_clients=4,
    )
    # node0 hosts the master primary; it paces ordering far below the
    # backups (a constant per-batch delay would only add latency, since
    # batches pipeline).
    from repro.faults import BatchPacer

    pacer = BatchPacer(dep.sim, lambda: 300.0)
    dep.nodes[0].engines[0].preprepare_delay_fn = lambda msg: pacer.delay_for(
        len(msg.items)
    )
    gen = LoadGenerator(
        dep.sim, dep.clients, static_profile(3000, 1.5), dep.rng.stream("load")
    )
    gen.start()
    dep.sim.run(until=1.5)
    assert all(node.instance_changes >= 1 for node in dep.nodes[1:])
    reasons = [r for _, r in dep.nodes[1].monitor.triggers]
    assert "throughput-delta" in reasons


def test_lambda_latency_violation_triggers_instance_change():
    dep = build_rbft(
        small_config(lambda_max=20e-3, monitoring_period=0.1), n_clients=2
    )
    dep.nodes[0].engines[0].preprepare_delay_fn = lambda msg: 100e-3
    dep.clients[0].send_request()
    dep.sim.run(until=1.0)
    assert any(
        reason == "latency-lambda"
        for node in dep.nodes
        for _, reason in node.monitor.triggers
    )
    assert all(node.instance_changes >= 1 for node in dep.nodes)


def test_flooding_node_gets_its_nic_closed():
    from repro.core.messages import FloodMsg

    dep = build_rbft(small_config(flood_threshold=16, flood_window=1.0))
    attacker = dep.cluster.machines[3]
    victim = dep.nodes[0]

    def flood():
        for _ in range(40):
            attacker.send_to_node("node0", FloodMsg("node3", 9000))

    dep.sim.call_after(0.01, flood)
    dep.sim.run(until=1.0)
    assert victim.nics_closed >= 1
    assert victim.machine.peer_nics["node3"].closed


def test_closed_nic_stops_charging_the_victim():
    from repro.core.messages import FloodMsg

    dep = build_rbft(small_config(flood_threshold=8, flood_window=1.0))
    attacker = dep.cluster.machines[3]
    victim = dep.nodes[0]
    for _ in range(20):
        attacker.send_to_node("node0", FloodMsg("node3", 9000))
    dep.sim.run(until=0.5)
    busy_after_close = victim.propagation_core.busy_time
    # Flood again: the NIC is closed, the victim pays nothing.
    for _ in range(200):
        attacker.send_to_node("node0", FloodMsg("node3", 9000))
    dep.sim.run(until=1.0)
    assert victim.propagation_core.busy_time == pytest.approx(busy_after_close)


def test_udp_deployment_works():
    dep = build_rbft(small_config(), n_clients=2, tcp=False)
    drive(dep, 10)
    dep.sim.run(until=0.5)
    assert all(node.executed_count == 10 for node in dep.nodes)


def test_duplicate_request_answered_from_reply_cache():
    dep = build_rbft(small_config(), n_clients=1)
    client = dep.clients[0]
    request = client.send_request()
    dep.sim.run(until=0.3)
    assert client.completed == 1
    from repro.protocols.base import ClientRequestMsg

    client.port.broadcast(ClientRequestMsg(request))
    dep.sim.run(until=0.6)
    assert all(node.executed_count == 1 for node in dep.nodes)


def test_f2_deployment_executes_requests():
    dep = build_rbft(small_config(f=2), n_clients=4)
    drive(dep, 20)
    dep.sim.run(until=1.0)
    assert all(node.executed_count == 20 for node in dep.nodes)


def test_f4_deployment_on_bigger_machines():
    """Beyond the paper's f<=2: 13 nodes, 5 instances, 16-core machines."""
    config = RBFTConfig(
        f=4, cores_per_machine=16, batch_size=8, batch_delay=1e-3,
        monitoring_period=0.1,
    )
    dep = build_rbft(config, n_clients=4)
    assert len(dep.nodes) == 13
    assert all(len(node.engines) == 5 for node in dep.nodes)
    drive(dep, 12)
    dep.sim.run(until=1.0)
    assert all(node.executed_count == 12 for node in dep.nodes)
