"""The Ω fairness check, end to end (§IV-C).

Fig. 12's experiment deliberately disables Ω (the paper "sets a high
value for Ω") and lets Λ make the catch.  Here we do the opposite: Λ is
loose, and the unfair master primary is caught because the victim's
average latency on the *master* instance exceeds its average on the
*backup* instance by more than Ω — the backup orders the same requests
through a different (fair) primary, so it provides the reference.
"""


from repro.core import RBFTConfig
from repro.experiments.deployments import build_rbft
from repro.faults import install_unfair_primary


def run(omega, delay=4e-3, requests=400):
    config = RBFTConfig(
        f=1,
        batch_size=4,
        batch_delay=2e-4,
        monitoring_period=0.2,
        lambda_max=10.0,  # Λ out of the picture
        omega=omega,
    )
    dep = build_rbft(config, n_clients=2, payload=1024)
    install_unfair_primary(dep, "client0", lambda i: delay)
    sim = dep.sim

    def client_loop(client):
        for _ in range(requests):
            client.send_request()
            yield sim.timeout(1.5e-3)

    for client in dep.clients:
        sim.process(client_loop(client))
    sim.run(until=requests * 1.5e-3 + 0.3)
    return dep


def test_omega_catches_per_client_master_backup_gap():
    dep = run(omega=1e-3)
    reasons = {r for node in dep.nodes for _, r in node.monitor.triggers}
    assert "latency-omega" in reasons
    assert all(node.instance_changes >= 1 for node in dep.nodes)


def test_loose_omega_lets_the_unfairness_stand():
    dep = run(omega=1.0)
    reasons = {r for node in dep.nodes for _, r in node.monitor.triggers}
    assert "latency-omega" not in reasons
    assert all(node.instance_changes == 0 for node in dep.nodes)


def test_fair_primary_never_trips_omega():
    config = RBFTConfig(
        f=1, batch_size=4, batch_delay=2e-4, monitoring_period=0.2,
        lambda_max=10.0, omega=1e-3,
    )
    dep = build_rbft(config, n_clients=2, payload=1024)
    sim = dep.sim

    def client_loop(client):
        for _ in range(300):
            client.send_request()
            yield sim.timeout(1.5e-3)

    for client in dep.clients:
        sim.process(client_loop(client))
    sim.run(until=0.8)
    reasons = {r for node in dep.nodes for _, r in node.monitor.triggers}
    assert "latency-omega" not in reasons
