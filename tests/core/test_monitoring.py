"""Unit tests of the InstanceMonitor (§IV-C)."""


from repro.core import RBFTConfig
from repro.core.monitoring import InstanceMonitor
from repro.sim import Simulator


def make_monitor(**overrides):
    sim = Simulator()
    defaults = dict(
        f=1, monitoring_period=1.0, delta=0.9, lambda_max=1.0, omega=0.5,
        min_monitor_requests=10,
    )
    defaults.update(overrides)
    config = RBFTConfig(**defaults)
    triggers = []
    monitor = InstanceMonitor(sim, config, triggers.append)
    return sim, monitor, triggers


def tick_at(sim, monitor, t):
    sim.call_at(t, monitor.tick)
    sim.run(until=t)


def test_balanced_instances_never_trigger():
    sim, monitor, triggers = make_monitor()
    for t in range(1, 5):
        monitor.count_ordered(0, 1000)
        monitor.count_ordered(1, 1000)
        tick_at(sim, monitor, float(t))
    assert triggers == []
    assert monitor.last_rates == [1000.0, 1000.0]


def test_slow_master_triggers_after_two_windows():
    sim, monitor, triggers = make_monitor()
    monitor.count_ordered(0, 100)
    monitor.count_ordered(1, 1000)
    tick_at(sim, monitor, 1.0)
    assert triggers == []  # one breach is tolerated (noise damping)
    monitor.count_ordered(0, 100)
    monitor.count_ordered(1, 1000)
    tick_at(sim, monitor, 2.0)
    assert triggers == ["throughput-delta"]


def test_breach_streak_resets_on_recovery():
    sim, monitor, triggers = make_monitor()
    monitor.count_ordered(0, 100)
    monitor.count_ordered(1, 1000)
    tick_at(sim, monitor, 1.0)
    monitor.count_ordered(0, 1000)  # recovered
    monitor.count_ordered(1, 1000)
    tick_at(sim, monitor, 2.0)
    monitor.count_ordered(0, 100)  # breach again: streak restarted
    monitor.count_ordered(1, 1000)
    tick_at(sim, monitor, 3.0)
    assert triggers == []


def test_idle_windows_skip_ratio_test():
    sim, monitor, triggers = make_monitor(min_monitor_requests=50)
    for t in range(1, 4):
        monitor.count_ordered(0, 0)
        monitor.count_ordered(1, 5)  # 5 requests < 50: too little signal
        tick_at(sim, monitor, float(t))
    assert triggers == []


def test_lambda_violation_triggers_immediately():
    sim, monitor, triggers = make_monitor(lambda_max=0.1)
    monitor.check_request_latency("client0", 0.2)
    assert triggers == ["latency-lambda"]


def test_lambda_ok_no_trigger():
    sim, monitor, triggers = make_monitor(lambda_max=0.1)
    monitor.check_request_latency("client0", 0.05)
    assert triggers == []


def test_omega_compares_master_vs_backups_per_client():
    sim, monitor, triggers = make_monitor(omega=0.1, lambda_max=10.0)
    # Master latency far above the backups' for the same client.
    monitor.record_latency(0, "c0", 0.5)
    monitor.record_latency(1, "c0", 0.1)
    monitor.check_request_latency("c0", 0.5)
    assert triggers == ["latency-omega"]


def test_omega_needs_backup_samples():
    sim, monitor, triggers = make_monitor(omega=0.1, lambda_max=10.0)
    monitor.record_latency(0, "c0", 0.9)
    monitor.check_request_latency("c0", 0.9)
    assert triggers == []  # no backup data: no Ω comparison possible


def test_latency_windows_reset_on_tick():
    sim, monitor, triggers = make_monitor(omega=0.1, lambda_max=10.0)
    monitor.record_latency(0, "c0", 0.9)
    monitor.record_latency(1, "c0", 0.1)
    tick_at(sim, monitor, 1.0)
    # After the window reset, the old skewed samples are gone.
    monitor.record_latency(0, "c0", 0.1)
    monitor.record_latency(1, "c0", 0.1)
    monitor.check_request_latency("c0", 0.1)
    assert triggers == []


def test_observes_breach_expires():
    sim, monitor, triggers = make_monitor(lambda_max=0.1, monitoring_period=1.0)
    monitor.check_request_latency("c0", 0.5)
    assert monitor.observes_breach()
    sim.run(until=5.0)
    assert not monitor.observes_breach()


def test_reset_after_change_clears_breach_state():
    sim, monitor, triggers = make_monitor(lambda_max=0.1)
    monitor.check_request_latency("c0", 0.5)
    assert monitor.observes_breach()
    monitor.reset_after_change()
    assert not monitor.observes_breach()


def test_reset_after_change_restarts_the_delta_streak():
    sim, monitor, triggers = make_monitor()
    monitor.count_ordered(0, 100)
    monitor.count_ordered(1, 1000)
    tick_at(sim, monitor, 1.0)  # first breach window
    monitor.reset_after_change()
    # The grace period swallows the window at 2.0 and the streak was
    # cleared, so the breaches at 3.0 and 4.0 are counted fresh: no
    # accusation until the second of them.
    for t in (2.0, 3.0):
        monitor.count_ordered(0, 100)
        monitor.count_ordered(1, 1000)
        tick_at(sim, monitor, t)
    assert triggers == []
    monitor.count_ordered(0, 100)
    monitor.count_ordered(1, 1000)
    tick_at(sim, monitor, 4.0)
    assert triggers == ["throughput-delta"]


def test_omega_silent_on_no_traffic_window():
    sim, monitor, triggers = make_monitor(omega=0.1, lambda_max=10.0)
    # No latency was recorded for anyone this window: the Ω comparison
    # has no master samples and must stay quiet rather than divide by 0.
    monitor.check_request_latency("c0", 0.05)
    assert triggers == []


def test_omega_ignores_unrelated_clients_spike():
    sim, monitor, triggers = make_monitor(omega=0.1, lambda_max=10.0)
    # c0 is starved by the master; c1 is served evenly.
    monitor.record_latency(0, "c0", 0.5)
    monitor.record_latency(1, "c0", 0.1)
    monitor.record_latency(0, "c1", 0.1)
    monitor.record_latency(1, "c1", 0.1)
    monitor.check_request_latency("c1", 0.1)
    assert triggers == []  # the fair client never accuses
    monitor.check_request_latency("c0", 0.5)
    assert triggers == ["latency-omega"]  # the starved one does


def test_omega_uses_per_client_averages():
    sim, monitor, triggers = make_monitor(omega=0.1, lambda_max=10.0)
    # One spike averaged against many fast master samples stays under Ω.
    for _ in range(9):
        monitor.record_latency(0, "c0", 0.1)
    monitor.record_latency(0, "c0", 0.5)  # avg 0.14
    monitor.record_latency(1, "c0", 0.1)
    monitor.check_request_latency("c0", 0.5)
    assert triggers == []


def test_omega_tracks_promoted_master():
    sim, monitor, triggers = make_monitor(omega=0.1, lambda_max=10.0)
    monitor.master = 1  # best-backup promotion moved the master
    monitor.record_latency(0, "c0", 0.5)  # instance 0 is now a backup
    monitor.record_latency(1, "c0", 0.1)
    monitor.check_request_latency("c0", 0.5)
    assert triggers == []  # the *new* master is the fast one


def test_rate_series_records_every_window():
    sim, monitor, _ = make_monitor()
    for t in range(1, 4):
        monitor.count_ordered(0, 100 * t)
        monitor.count_ordered(1, 100 * t)
        tick_at(sim, monitor, float(t))
    assert [r for _, r in monitor.rate_series[0]] == [100.0, 200.0, 300.0]
