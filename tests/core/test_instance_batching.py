"""Cross-instance certificate batching (the batched pacing tier).

Above the pacing threshold (``f > pacing_f_threshold``), a node's
backup ordering instances stop broadcasting PRE-PREPARE / PREPARE /
COMMIT one message at a time: a shared :class:`CertificateCoalescer`
folds a short window of them into one :class:`InstanceBatchMsg`
envelope under one authenticator, and the receiver dispatches the
whole envelope as a single core task.  The master instance stays
exact.  These tests pin

* the configuration surface (knobs, tiers, validation, the registry's
  Scenario-path defaults),
* the envelope's wire/cost model and per-instance grouping,
* that forced batching at f ≤ 3 reproduces the unbatched outcomes —
  the batched path is an event-count optimisation, not a protocol
  change — and
* the monitor's per-instance progress summaries on the batched path.
"""

import pytest

from repro.common.batching import CertificateCoalescer, group_by_instance
from repro.core import RBFTConfig
from repro.core.messages import InstanceBatchMsg
from repro.core.node import BatchingInstanceTransport, InstanceTransport
from repro.crypto.costmodel import MAC_SIZE, MESSAGE_HEADER_SIZE
from repro.crypto.primitives import MacAuthenticator
from repro.experiments.deployments import build_rbft
from repro.protocols import registry
from repro.protocols.pbft.messages import Commit, Prepare
from repro.sim import Simulator


def small_config(f=1, **overrides):
    defaults = dict(f=f, batch_size=8, batch_delay=1e-3, monitoring_period=0.1)
    defaults.update(overrides)
    return RBFTConfig(**defaults)


def drive(dep, count, gap=1e-4):
    for i in range(count):
        client = dep.clients[i % len(dep.clients)]
        dep.sim.call_after(i * gap, lambda c=client: c.send_request())


# ------------------------------------------------------------------ config
def test_batching_activates_above_the_pacing_threshold():
    assert not RBFTConfig(f=1).batching_active
    assert not RBFTConfig(f=3, cores_per_machine=8).batching_active
    assert RBFTConfig(f=4, cores_per_machine=9).batching_active
    assert RBFTConfig(f=2, pacing_f_threshold=1).batching_active


def test_explicit_override_beats_the_threshold():
    assert RBFTConfig(f=1, instance_batching=True).batching_active
    config = RBFTConfig(f=5, cores_per_machine=10, instance_batching=False)
    assert not config.batching_active
    assert config.pacing_tier == "paced"


def test_pacing_tiers():
    assert RBFTConfig(f=1).pacing_tier == "exact"
    assert RBFTConfig(f=5, cores_per_machine=10).pacing_tier == "batched"
    assert RBFTConfig(f=1, instance_batching=True).pacing_tier == "batched"


def test_knob_validation():
    with pytest.raises(ValueError, match="pacing_f_threshold"):
        RBFTConfig(f=1, pacing_f_threshold=0)
    with pytest.raises(ValueError, match="paced_batch_delay"):
        RBFTConfig(f=1, paced_batch_delay=0.0)
    with pytest.raises(ValueError, match="instance_batch_window"):
        RBFTConfig(f=1, instance_batch_window=-1.0)
    with pytest.raises(ValueError, match="instance_batch_limit"):
        RBFTConfig(f=1, instance_batch_limit=1)
    with pytest.raises(ValueError, match="backup_batch_delay"):
        RBFTConfig(f=1, backup_batch_delay=0.0)


def test_batching_conflicts_with_best_backup_promotion():
    with pytest.raises(ValueError, match="promote_best_backup"):
        RBFTConfig(f=1, instance_batching=True, promote_best_backup=True)
    # The exact path still allows promotion.
    RBFTConfig(f=1, promote_best_backup=True)


def test_registry_applies_the_pacing_knobs_on_the_scenario_path():
    """The Scenario path resolves configs through the registry; the
    pacing threshold and paced delay must come from the config knobs,
    not a hard-coded rule."""
    from repro.experiments.scale import SMOKE

    factory = registry.get("rbft").config_factory
    small = factory(3, SMOKE)
    assert small.batch_delay == pytest.approx(1e-3)
    assert small.pacing_tier == "exact"
    large = factory(5, SMOKE)
    assert large.batch_delay == pytest.approx(large.paced_batch_delay)
    assert large.pacing_tier == "batched"


def test_backup_instance_config_paces_only_on_the_batched_tier():
    exact = small_config(f=1)
    assert exact.backup_instance_config() == exact.instance_config()
    batched = small_config(f=1, instance_batching=True)
    backup = batched.backup_instance_config()
    assert backup.batch_delay == pytest.approx(batched.backup_batch_delay)
    assert batched.instance_config().batch_delay == pytest.approx(1e-3)


# ---------------------------------------------------------------- envelope
def _cert(sender, instance, seq):
    auth = MacAuthenticator.for_signer(sender)
    return Prepare(sender, instance, 0, seq, ("digest", seq), auth)


def test_envelope_wire_size_shares_one_authenticator():
    certs = [_cert("node1", 1, s) for s in (1, 2)] + [_cert("node1", 2, 1)]
    envelope = InstanceBatchMsg(
        "node1", certs, MacAuthenticator.for_signer("node1")
    )
    inner = sum(c.wire_size() - 4 * MAC_SIZE for c in certs)
    assert envelope.wire_size() == MESSAGE_HEADER_SIZE + 4 * MAC_SIZE + inner
    # Cheaper than three full messages on the wire.
    assert envelope.wire_size() < sum(c.wire_size() for c in certs)


def test_envelope_groups_runs_per_instance_once():
    auth = MacAuthenticator.for_signer("node1")
    msgs = [
        _cert("node1", 2, 1),
        _cert("node1", 1, 1),
        Commit("node1", 1, 0, 1, ("digest", 1), auth),
    ]
    envelope = InstanceBatchMsg("node1", msgs, auth)
    runs = envelope.runs()
    assert [instance for instance, _ in runs] == [1, 2]
    assert runs[0][1] == [msgs[1], msgs[2]]  # arrival order kept
    assert envelope.runs() is runs  # memoised for the n-1 receivers
    assert group_by_instance(msgs) == runs


def test_coalescer_flushes_on_window_and_size():
    sim = Simulator()
    flushed = []
    coalescer = CertificateCoalescer(sim, 3, 1e-3, flushed.append)
    coalescer.add("a")
    coalescer.add("b")
    sim.run(until=0.01)
    assert flushed == [["a", "b"]]  # window expired
    for item in ("c", "d", "e"):
        coalescer.add(item)
    assert flushed[-1] == ["c", "d", "e"]  # size-triggered, no timer wait


# ------------------------------------------------- batched deployment runs
def test_batched_transport_wiring_and_master_exactness():
    dep = build_rbft(small_config(f=1, instance_batching=True), n_clients=2)
    node = dep.nodes[0]
    assert isinstance(node.engines[0].transport, InstanceTransport)
    assert isinstance(node.engines[1].transport, BatchingInstanceTransport)
    assert "cert_coalescer" in node.log_sizes()
    exact = build_rbft(small_config(f=1), n_clients=2)
    assert all(
        isinstance(e.transport, InstanceTransport)
        for e in exact.nodes[0].engines
    )
    assert "cert_coalescer" not in exact.nodes[0].log_sizes()


@pytest.mark.parametrize("f", [1, 2, 3])
def test_forced_batching_reproduces_unbatched_outcomes(f):
    """The batched path is a pure event-count optimisation: at any f the
    set of executed requests, the per-client completions and the
    per-instance ordered totals match the exact path (timing shifts —
    coalescing reorders jitter draws — so only robust outcomes can be
    compared)."""
    results = {}
    for forced in (None, True):
        dep = build_rbft(
            small_config(f=f, instance_batching=forced),
            n_clients=4,
            seed=11,
        )
        drive(dep, 40)
        dep.sim.run(until=1.5)
        results[forced] = {
            "executed": [n.executed_count for n in dep.nodes],
            "completed": [c.completed for c in dep.clients],
            "ordered": [
                [e.ordered_items for e in n.engines] for n in dep.nodes
            ],
            "instance_changes": [n.instance_changes for n in dep.nodes],
        }
    assert results[True] == results[None]
    assert results[True]["executed"] == [40] * (3 * f + 1)
    assert results[True]["instance_changes"] == [0] * (3 * f + 1)


def test_batched_run_sends_envelopes_and_summarises_backups():
    dep = build_rbft(small_config(f=1, instance_batching=True), n_clients=4)
    drive(dep, 40)
    dep.sim.run(until=1.5)
    node = dep.nodes[0]
    coalescer = node._cert_coalescer
    assert coalescer.flushed_items > 0
    assert coalescer.flushed_batches < coalescer.flushed_items
    # Backup progress is summarised per instance; the Δ counters saw
    # every ordered batch on both instances.
    assert node.monitor.progress[1][2] == 40
    assert all(e.ordered_items == 40 for e in node.engines)
    # The propagation memos were garbage-collected at master execution.
    sizes = node.log_sizes()
    assert sizes["propagated"] == 0
    assert sizes["ready_ids"] == 0
    assert sizes["propagate_votes"] == 0
    assert sizes["given_at"] == 0


def test_note_progress_accumulates_per_instance():
    from repro.core.monitoring import InstanceMonitor

    monitor = InstanceMonitor(Simulator(), small_config(f=1), lambda r: None)
    monitor.note_progress(1, 0, 3, 8)
    monitor.note_progress(1, 0, 2, 4)  # out-of-order completion
    monitor.note_progress(1, 0, 5, 8)
    assert monitor.progress[1] == (0, 5, 20)
    monitor.note_progress(1, 1, 1, 2)  # new view resets the seq frontier
    assert monitor.progress[1] == (1, 1, 22)
