"""Protocol-level tests of the instance change mechanism (§IV-D)."""


from repro.core import RBFTConfig
from repro.core.messages import InstanceChangeMsg
from repro.crypto import MacAuthenticator
from repro.experiments.deployments import build_rbft


def small(**overrides):
    defaults = dict(f=1, batch_size=4, batch_delay=5e-4, monitoring_period=0.1)
    defaults.update(overrides)
    return build_rbft(RBFTConfig(**defaults), n_clients=2)


def inject(node, sender, cpi, preferred=0):
    node.on_network_message(
        InstanceChangeMsg(sender, cpi, MacAuthenticator(sender), preferred)
    )


def test_two_f_plus_one_matching_votes_perform_the_change():
    dep = small()
    node = dep.nodes[0]
    inject(node, "node1", 0)
    inject(node, "node2", 0)
    dep.sim.run(until=0.1)
    # f+1 = 2 votes triggered the join rule; with our own vote that is
    # 2f+1 and the change completes.
    assert node.cpi == 1
    assert all(engine._vc_voted_for >= 1 for engine in node.engines)


def test_f_votes_are_not_enough_to_join():
    dep = small()
    node = dep.nodes[0]
    inject(node, "node1", 0)  # f = 1 vote: could be the faulty node
    dep.sim.run(until=0.1)
    assert node.cpi == 0
    assert node._voted_choice == {}


def test_own_observation_joins_immediately():
    dep = small()
    node = dep.nodes[0]
    node.monitor._trigger("latency-lambda")  # breach observed locally
    dep.sim.run(until=0.05)
    inject(node, "node1", 0)
    dep.sim.run(until=0.1)
    # breach + one external vote -> our vote + node1 = 2... still below
    # 2f+1, so no change yet; but we did vote.
    assert 0 in node._voted_choice
    inject(node, "node2", 0)
    dep.sim.run(until=0.2)
    assert node.cpi == 1


def test_change_rotates_primaries_consistently():
    dep = small()
    for node in dep.nodes:
        node.vote_instance_change("test")
    dep.sim.run(until=0.5)
    for node in dep.nodes:
        assert node.cpi == 1
        # New primaries: instance k -> node (1 + k) mod n.
        assert node.engines[0].primary_name() == "node1"
        assert node.engines[1].primary_name() == "node2"


def test_at_most_one_primary_per_node_after_changes():
    dep = small()
    for round_ in range(3):
        for node in dep.nodes:
            node.vote_instance_change("round-%d" % round_)
        dep.sim.run(until=0.3 * (round_ + 1))
    for node in dep.nodes:
        assert sum(engine.is_primary for engine in node.engines) <= 1


def test_ordering_continues_across_repeated_changes():
    dep = small()
    for i in range(12):
        dep.sim.call_after(i * 2e-3, dep.clients[i % 2].send_request)
    dep.sim.call_after(0.01, lambda: [n.vote_instance_change("a") for n in dep.nodes])
    dep.sim.call_after(0.30, lambda: [n.vote_instance_change("b") for n in dep.nodes])
    dep.sim.run(until=1.0)
    assert all(node.cpi == 2 for node in dep.nodes)
    assert all(node.executed_count == 12 for node in dep.nodes)
    assert sum(c.completed for c in dep.clients) == 12


def test_votes_for_future_cpi_accumulate():
    dep = small()
    node = dep.nodes[0]
    inject(node, "node1", 3)
    inject(node, "node2", 3)
    inject(node, "node3", 3)
    dep.sim.run(until=0.1)
    # 2f+1 votes for cpi 3 advance us straight past it.
    assert node.cpi == 4


def test_invalid_instance_change_counts_toward_flooding():
    dep = small(flood_threshold=4, flood_window=1.0)
    node = dep.nodes[0]
    for _ in range(6):
        node.on_network_message(
            InstanceChangeMsg("node3", 0, MacAuthenticator.corrupt("node3"))
        )
    dep.sim.run(until=0.1)
    assert node.cpi == 0  # none of them counted as votes
    assert node.machine.peer_nics["node3"].closed
