"""NIC separation (§V): client floods must not touch replica traffic.

Aardvark and RBFT dedicate one NIC to client traffic and one NIC per
other node.  A client-side flood can saturate the client NIC — delaying
other clients — but node-to-node bandwidth, and therefore the ordering
pipeline for already-admitted requests, is untouched.
"""


from repro.core import RBFTConfig
from repro.experiments.deployments import build_rbft


def test_client_flood_does_not_touch_peer_nics():
    dep = build_rbft(RBFTConfig(f=1, batch_size=4, batch_delay=5e-4), n_clients=2)
    node = dep.nodes[0]
    flooder, victim_client = dep.clients

    peer_rx_before = {
        peer: nic.bytes_rx for peer, nic in node.machine.peer_nics.items()
    }
    # The "client" floods node0 with large junk requests.
    for _ in range(200):
        flooder.send_request(
            payload_size=8000, mac_invalid_for=["node0"], targets=["node0"]
        )
    dep.sim.run(until=0.2)
    # The client NIC absorbed it all...
    assert node.machine.client_nic.bytes_rx > 200 * 8000
    # ...while the flood itself put nothing on the replica-facing NICs
    # (PROPAGATE traffic for real requests is the only growth allowed).
    for peer, before in peer_rx_before.items():
        grown = node.machine.peer_nics[peer].bytes_rx - before
        assert grown < 100_000  # no 1.6 MB of junk leaked across


def test_real_traffic_flows_while_client_nic_is_hammered():
    dep = build_rbft(RBFTConfig(f=1, batch_size=4, batch_delay=5e-4), n_clients=2)
    flooder, victim_client = dep.clients

    def flood():
        for _ in range(50):
            flooder.send_request(
                payload_size=8000,
                mac_invalid_for=["node0", "node1", "node2", "node3"],
            )
        dep.sim.call_after(5e-3, flood)

    flood()
    for i in range(10):
        dep.sim.call_after(i * 5e-3, victim_client.send_request)
    dep.sim.run(until=1.0)
    # The victim's requests complete despite the sustained junk stream.
    assert victim_client.completed == 10
