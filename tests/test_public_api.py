"""Snapshot tests for the stable public API surface.

``repro.__all__`` and ``repro.experiments.__all__`` are the package's
compatibility contract (see docs/api.md).  These tests pin the exact
contents: any addition or removal must be deliberate — update the
snapshot here together with docs/api.md in the same change.
"""

import pickle

import repro
import repro.experiments as experiments

#: the stable top-level surface, exactly.
TOP_LEVEL_API = [
    "__version__",
    "Scenario",
    "Workload",
    "run",
    "RunResult",
    "Simulator",
    "Topology",
]

#: the stable experiment surface, exactly.
EXPERIMENTS_API = [
    "Scenario",
    "Workload",
    "run",
    "Deployment",
    "build_aardvark",
    "build_pbft",
    "build_prime",
    "build_rbft",
    "build_spinning",
    "PROTOCOL_VARIANTS",
    "RunResult",
    "attack_sweep",
    "latency_throughput_curve",
    "make_deployment",
    "monitoring_view",
    "probe_capacity",
    "relative_throughput",
    "run_dynamic",
    "run_static",
    "table1",
    "unfair_primary_run",
    "FULL",
    "QUICK",
    "SMOKE",
    "ScenarioScale",
    "current_scale",
    "profile_report",
    "profile_run",
    "run_smoke",
    "check_bounds",
    "write_smoke",
    "run_soak",
    "check_soak",
    "write_soak",
    "run_kernel_bench",
    "check_regression",
    "write_kernel_bench",
    "run_protocol_bench",
    "write_protocol_bench",
    "run_scale_bench",
    "write_scale_bench",
    "run_workload_bench",
    "check_workload",
    "write_workload_bench",
    "MesoConfig",
    "run_meso_bench",
    "write_meso_bench",
    "RunSpec",
    "execute_specs",
    "execute_tasks",
    "resolve_jobs",
    "SweepResult",
    "seed_sweep",
]


def test_top_level_all_is_pinned():
    assert repro.__all__ == TOP_LEVEL_API


def test_experiments_all_is_pinned():
    assert experiments.__all__ == EXPERIMENTS_API


def test_top_level_names_resolve():
    # PEP 562 lazy exports: every advertised name must actually resolve.
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_experiments_names_resolve():
    for name in experiments.__all__:
        assert getattr(experiments, name) is not None


def test_top_level_dir_covers_all():
    assert set(repro.__all__) <= set(dir(repro))


def test_unknown_attribute_raises():
    try:
        repro.no_such_name
    except AttributeError as exc:
        assert "no_such_name" in str(exc)
    else:
        raise AssertionError("expected AttributeError")


def test_scenario_identity_across_import_paths():
    # The convenience re-export is the same object as the defining module's.
    from repro.experiments.scenario import Scenario as defining

    assert repro.Scenario is defining
    assert experiments.Scenario is defining


def test_scenario_is_hashable_and_picklable():
    workload = repro.Workload("static", rate=1000.0)
    scenario = repro.Scenario(protocol="rbft", workload=workload)
    assert hash(scenario) == hash(
        repro.Scenario(protocol="rbft", workload=workload)
    )
    assert pickle.loads(pickle.dumps(scenario)) == scenario
