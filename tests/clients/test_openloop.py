"""Unit tests for open-loop clients."""


from repro.clients import OpenLoopClient
from repro.common import Cluster, ClusterConfig, Reply
from repro.crypto import Mac
from repro.protocols.base import ReplyMsg
from repro.sim import Simulator


def build(f=1, **client_kwargs):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=f))
    client = OpenLoopClient(cluster, "client0", **client_kwargs)
    return sim, cluster, client


def reply_from(cluster, node_index, client, rid, result="ok"):
    machine = cluster.machines[node_index]
    machine.send_to_client(
        client.name,
        ReplyMsg(
            Reply(machine.name, client.name, rid, result), Mac(machine.name)
        ),
    )


def test_request_ids_are_sequential():
    sim, cluster, client = build()
    first = client.send_request()
    second = client.send_request()
    assert first.rid == 1
    assert second.rid == 2
    assert client.sent == 2


def test_completion_requires_f_plus_one_matching_replies():
    sim, cluster, client = build()
    request = client.send_request()
    reply_from(cluster, 0, client, request.rid)
    sim.run(until=0.1)
    assert client.completed == 0  # one reply is not enough
    reply_from(cluster, 1, client, request.rid)
    sim.run(until=0.2)
    assert client.completed == 1
    assert len(client.latencies) == 1


def test_duplicate_replies_from_same_node_do_not_count():
    sim, cluster, client = build()
    request = client.send_request()
    reply_from(cluster, 0, client, request.rid)
    reply_from(cluster, 0, client, request.rid)
    sim.run(until=0.1)
    assert client.completed == 0


def test_mismatched_results_do_not_combine():
    sim, cluster, client = build()
    request = client.send_request()
    reply_from(cluster, 0, client, request.rid, result="a")
    reply_from(cluster, 1, client, request.rid, result="b")
    sim.run(until=0.1)
    assert client.completed == 0
    # A second vote for one of the results completes it.
    reply_from(cluster, 2, client, request.rid, result="a")
    sim.run(until=0.2)
    assert client.completed == 1


def test_invalid_reply_mac_ignored():
    sim, cluster, client = build()
    request = client.send_request()
    machine = cluster.machines[0]
    machine.send_to_client(
        client.name,
        ReplyMsg(
            Reply(machine.name, client.name, request.rid, "ok"),
            Mac(machine.name, valid=False),
        ),
    )
    reply_from(cluster, 1, client, request.rid)
    sim.run(until=0.1)
    assert client.completed == 0


def test_replies_for_unknown_rid_ignored():
    sim, cluster, client = build()
    reply_from(cluster, 0, client, 42)
    reply_from(cluster, 1, client, 42)
    sim.run(until=0.1)
    assert client.completed == 0


def test_targets_restrict_recipients():
    sim, cluster, client = build()
    got = {name: [] for name in cluster.node_names()}
    for machine in cluster.machines:
        machine.handler = got[machine.name].append
    client.send_request(targets=["node1", "node2"])
    sim.run(until=0.1)
    assert len(got["node1"]) == 1 and len(got["node2"]) == 1
    assert len(got["node0"]) == 0 and len(got["node3"]) == 0


def test_fault_knobs_shape_the_request():
    sim, cluster, client = build()
    request = client.send_request(
        signature_valid=False, mac_invalid_for=["node0"], exec_cost=1e-3,
        payload_size=512,
    )
    assert not request.signature.valid
    assert not request.authenticator.valid_for("node0")
    assert request.authenticator.valid_for("node1")
    assert request.exec_cost == 1e-3
    assert request.payload_size == 512


def test_outstanding_tracks_incomplete_requests():
    sim, cluster, client = build()
    request = client.send_request()
    assert client.outstanding == 1
    reply_from(cluster, 0, client, request.rid)
    reply_from(cluster, 1, client, request.rid)
    sim.run(until=0.1)
    assert client.outstanding == 0
