"""Tests for closed-loop clients."""


from repro.clients.closedloop import ClosedLoopClient
from repro.core import RBFTConfig
from repro.experiments.deployments import build_rbft


def build(think_time=0.0, n=2):
    config = RBFTConfig(f=1, batch_size=4, batch_delay=2e-4)
    dep = build_rbft(config, n_clients=0)
    clients = [
        ClosedLoopClient(dep.cluster, "client%d" % i, think_time=think_time)
        for i in range(n)
    ]
    return dep, clients


def test_one_outstanding_request_at_a_time():
    dep, clients = build()
    client = clients[0]
    client.start()
    samples = []

    def sample():
        samples.append(client.outstanding)
        dep.sim.call_after(1e-3, sample)

    dep.sim.call_after(1e-3, sample)
    dep.sim.run(until=0.1)
    assert client.completed > 10
    assert all(outstanding <= 1 for outstanding in samples)


def test_think_time_paces_the_loop():
    dep, clients = build(think_time=10e-3)
    client = clients[0]
    client.start()
    dep.sim.run(until=0.5)
    # Roughly one request per (latency + think time) ~= 11-12 ms.
    assert 25 <= client.completed <= 60


def test_stop_ends_the_loop():
    dep, clients = build()
    client = clients[0]
    client.start()
    dep.sim.run(until=0.05)
    client.stop()
    done = client.completed
    dep.sim.run(until=0.3)
    assert client.sent <= done + 1


def test_closed_loop_rate_tracks_service_latency():
    """The defining property: slower service => slower arrivals."""
    results = {}
    for delay in (0.0, 5e-3):
        dep, clients = build()
        if delay:
            # The master primary delays every batch: latency rises.
            dep.nodes[0].engines[0].preprepare_delay_fn = lambda msg: delay
        for client in clients:
            client.start()
        dep.sim.run(until=0.5)
        results[delay] = sum(client.completed for client in clients)
    assert results[5e-3] < 0.5 * results[0.0]


def test_closed_loop_blinds_rbft_monitoring():
    """§I: backup instances are never faster than the master in a closed
    loop, so the Δ ratio cannot expose a delaying master primary."""
    config = RBFTConfig(f=1, batch_size=4, batch_delay=2e-4,
                        monitoring_period=0.1, min_monitor_requests=5)
    dep = build_rbft(config, n_clients=0)
    clients = [
        ClosedLoopClient(dep.cluster, "client%d" % i) for i in range(4)
    ]
    # A malicious master primary delays every batch by 5 ms — an attack
    # the open-loop monitoring catches easily (see the Δ tests).
    dep.nodes[0].engines[0].preprepare_delay_fn = lambda msg: 5e-3
    for client in clients:
        client.start()
    dep.sim.run(until=1.5)
    observer = dep.nodes[1]
    # Throughput is crushed ...
    assert sum(c.completed for c in clients) < 1500
    # ... yet the monitoring never saw a ratio violation: the arrival
    # process itself was throttled, so the backups starved equally.
    assert observer.instance_changes == 0
    reasons = [r for _, r in observer.monitor.triggers]
    assert "throughput-delta" not in reasons
