"""Unit tests for workload profiles and the load generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clients import (
    LoadGenerator,
    OpenLoopClient,
    dynamic_profile,
    static_profile,
)
from repro.common import Cluster, ClusterConfig
from repro.sim import RngTree, Simulator


def build_clients(n=3):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    clients = [OpenLoopClient(cluster, "client%d" % i) for i in range(n)]
    return sim, cluster, clients


def test_static_profile_constant_rate_and_clients():
    profile = static_profile(1000.0, duration=2.0, clients=7)
    assert profile.rate(0.0) == 1000.0
    assert profile.rate(1.9) == 1000.0
    assert profile.active(1.0) == 7
    assert profile.duration == 2.0


def test_dynamic_profile_matches_paper_phases():
    """§VI-A: 1 client, ramp to 10, spike at 50, ramp back down to 1."""
    profile = dynamic_profile(per_client_rate=100.0, duration=10.0)
    assert profile.active(0.0) == 1
    assert profile.active(3.5) == 10  # plateau before the spike
    assert profile.active(5.0) == 50  # the spike
    assert profile.active(6.5) == 10  # plateau after the spike
    assert profile.active(9.99) <= 2  # ramped back down
    assert profile.rate(5.0) == 50 * 100.0


def test_dynamic_profile_monotone_ramp_up():
    profile = dynamic_profile(per_client_rate=1.0, duration=10.0)
    counts = [profile.active(t) for t in [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 2.9]]
    assert counts == sorted(counts)


def test_generator_approximates_offered_rate():
    sim, cluster, clients = build_clients()
    generator = LoadGenerator(
        sim, clients, static_profile(2000.0, 1.0), RngTree(1).stream("load")
    )
    generator.start()
    sim.run(until=1.0)
    assert generator.generated == pytest.approx(2000, rel=0.15)
    assert generator.total_sent() == generator.generated


def test_generator_round_robins_over_active_clients():
    sim, cluster, clients = build_clients(n=3)
    generator = LoadGenerator(
        sim, clients, static_profile(300.0, 1.0, clients=3),
        RngTree(2).stream("load"),
    )
    generator.start()
    sim.run(until=1.0)
    sents = [client.sent for client in clients]
    assert max(sents) - min(sents) <= 1


def test_generator_deterministic_per_seed():
    def run(seed):
        sim, cluster, clients = build_clients()
        generator = LoadGenerator(
            sim, clients, static_profile(500.0, 0.5), RngTree(seed).stream("load")
        )
        generator.start()
        sim.run(until=0.5)
        return generator.generated

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_generator_stops_at_profile_end():
    sim, cluster, clients = build_clients()
    generator = LoadGenerator(
        sim, clients, static_profile(1000.0, 0.3), RngTree(3).stream("load")
    )
    generator.start()
    sim.run(until=1.0)
    generated_at_end = generator.generated
    sim.run(until=2.0)
    assert generator.generated == generated_at_end


def test_send_kwargs_forwarded():
    sim, cluster, clients = build_clients()
    generator = LoadGenerator(
        sim, clients, static_profile(100.0, 0.2), RngTree(4).stream("load"),
        send_kwargs={"mac_invalid_for": ["node0"]},
    )
    captured = []
    cluster.machines[0].handler = captured.append
    generator.start()
    sim.run(until=0.3)
    assert captured
    assert all(not m.request.authenticator.valid_for("node0") for m in captured)


def test_empty_client_pool_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        LoadGenerator(sim, [], static_profile(1.0, 1.0), RngTree(0).stream("x"))


@given(duration=st.floats(min_value=1.0, max_value=50.0))
@settings(max_examples=25)
def test_dynamic_profile_scales_to_any_duration(duration):
    profile = dynamic_profile(per_client_rate=10.0, duration=duration)
    assert profile.active(0.0) == 1
    assert profile.active(duration * 0.5) == 50
    assert 1 <= profile.active(duration * 0.999) <= 10
    assert profile.rate(duration * 0.5) == 500.0


def test_static_profile_mean_rate_equals_rate():
    profile = static_profile(1000.0, duration=2.0)
    assert profile.mean_rate() == pytest.approx(1000.0)


def test_dynamic_profile_mean_rate_reflects_spike():
    per_client = 100.0
    profile = dynamic_profile(per_client, duration=10.0)
    mean = profile.mean_rate()
    # The spike phase (50 clients for 20 % of the run) pushes the true
    # average well above the 10-client plateau rate...
    assert mean > 10 * per_client
    # ...but the ramps keep it below a full-run 50-client load.
    assert mean < 50 * per_client
    # Piecewise-constant integral: ramps average ~5.5 clients for 60 %,
    # plateaus 10 for 20 %, spike 50 for 20 % => ~15.3 clients.
    assert mean == pytest.approx(15.3 * per_client, rel=0.05)
