"""Unit tests for the workload registry and the Workload value object."""

import dataclasses

import pytest

from repro.clients import Workload, build_profile
from repro.clients.registry import POPULATION_THRESHOLD, get, names


def test_names_are_sorted_and_complete():
    packs = names()
    assert packs == sorted(packs)
    assert set(packs) >= {
        "static", "spike", "diurnal", "flash-crowd", "churn", "heavy-mix",
    }


def test_dynamic_is_an_alias_for_spike():
    assert get("dynamic") is get("spike")
    assert Workload("dynamic", rate=300.0).shape == "spike"


def test_unknown_pack_rejected_with_candidates():
    with pytest.raises(ValueError, match="unknown workload"):
        get("bursty")
    with pytest.raises(ValueError, match="static"):
        get("bursty")  # the message lists the registered packs


def test_workload_validates_its_knobs():
    with pytest.raises(ValueError, match="unknown workload"):
        Workload("bursty")
    with pytest.raises(ValueError, match="sampling"):
        Workload("static", sampling="zipf")
    with pytest.raises(ValueError, match="clients"):
        Workload("static", clients=0)
    with pytest.raises(ValueError, match="rate"):
        Workload("static", rate=-1.0)


def test_workload_is_frozen_and_hashable():
    workload = Workload("static", rate=1000.0)
    with pytest.raises(dataclasses.FrozenInstanceError):
        workload.rate = 2000.0
    assert hash(workload) == hash(Workload("static", rate=1000.0))


def test_population_threshold_is_above_every_seeded_client_count():
    # Pre-population seeded runs use at most 50 clients (the §VI-A
    # spike); the threshold must leave them in the exploded regime.
    assert POPULATION_THRESHOLD > 50


def test_default_clients_per_pack():
    assert get("static").default_clients(8) == 12
    assert get("spike").default_clients(8) == 50
    assert get("spike").default_clients(1024) == 18
    assert get("diurnal").default_clients(8) == 1_000_000
    assert get("heavy-mix").default_clients(8) == 10_000


def test_probe_rates_scale_the_measured_capacity():
    capacity = 1200.0
    assert get("static").probe_rate(capacity) == pytest.approx(1500.0)
    assert get("spike").probe_rate(capacity) == pytest.approx(100.0)
    assert get("diurnal").probe_rate(capacity) == pytest.approx(1080.0)


def test_whole_run_flags():
    assert not get("static").whole_run
    assert get("spike").whole_run
    assert get("diurnal").whole_run
    assert get("flash-crowd").whole_run
    assert not get("churn").whole_run
    assert not get("heavy-mix").whole_run


def test_static_pack_profile_is_flat_with_declared_boundaries():
    profile = build_profile("static", 1000.0, 2.0)
    assert profile.rate(0.1) == profile.rate(1.9) == 1000.0
    assert profile.boundaries == ()


def test_spike_pack_head_count_tracks_payload():
    small = build_profile("spike", 100.0, 10.0, payload=8)
    large = build_profile("spike", 100.0, 10.0, payload=1024)
    assert small.active(5.0) == 50
    assert large.active(5.0) == 18


def test_diurnal_profile_quantizes_a_day():
    profile = build_profile("diurnal", 1000.0, 24.0, clients=100)
    # 24 hourly levels -> 23 interior boundaries, all declared so the
    # mesoscale controller can bound its windows.
    assert len(profile.boundaries) == 23
    assert profile.active(12.0) == 100
    # Night floor well below the midday peak.
    assert profile.rate(0.1) < 0.25 * profile.rate(12.0)
    assert profile.rate(12.0) <= 1000.0
    assert profile.mean_rate() < 1000.0


def test_flash_crowd_surges_inside_a_declared_window():
    profile = build_profile("flash-crowd", 100.0, 10.0, clients=1000)
    lo, hi = profile.boundaries
    assert profile.rate(lo + 0.01) == pytest.approx(500.0)
    assert profile.rate(lo - 0.01) == pytest.approx(100.0)
    assert profile.rate(hi + 0.01) == pytest.approx(100.0)
    # Only a tenth of the population is active outside the surge.
    assert profile.active(lo + 0.01) == 1000
    assert profile.active(0.0) == 100


def test_churn_profile_rolls_the_identity_window():
    profile = build_profile("churn", 100.0, 10.0, clients=1000)
    assert profile.boundaries == ()
    assert profile.window_fn is not None
    assert profile.window_fn(0.0) == 0
    assert profile.window_fn(5.0) == 500
    assert profile.active(3.0) == 100  # 10 % of the population at once


def test_heavy_mix_profile_carries_the_payload_mix():
    profile = build_profile("heavy-mix", 100.0, 10.0)
    assert profile.mix is not None and len(profile.mix) == 8
    assert profile.mix[5] == (1024, None)
    payload, cost = profile.mix[7]
    assert payload == 4096 and cost > 0
    assert profile.boundaries == ()


def test_build_profile_rejects_unknown_pack():
    with pytest.raises(ValueError, match="unknown workload"):
        build_profile("bursty", 100.0, 1.0)
