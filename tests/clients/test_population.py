"""Unit tests for client populations (virtual identity aggregation).

A :class:`ClientPopulation` must be indistinguishable, from the
protocol side, from a pool of exploded clients: per-identity ids,
signatures and MACs; reply quorums per request; reply routing back to
the owner port.  These tests pin that contract at the unit level — the
scenario-level equivalence lives in ``bench workload``.
"""

import pytest

from repro.clients import ClientPopulation, LoadGenerator
from repro.clients.registry import build_profile
from repro.common import Cluster, ClusterConfig, Reply
from repro.crypto import Mac, principal_owner
from repro.protocols.base import ReplyMsg
from repro.sim import RngTree, Simulator


def build(f=1, **pop_kwargs):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=f))
    population = ClientPopulation(cluster, size=1000, **pop_kwargs)
    return sim, cluster, population


def reply_from(cluster, node_index, identity, rid, result="ok"):
    machine = cluster.machines[node_index]
    machine.send_to_client(
        identity,
        ReplyMsg(Reply(machine.name, identity, rid, result), Mac(machine.name)),
    )


def test_requests_carry_virtual_identities_and_unique_rids():
    sim, cluster, population = build()
    first = population.send_request(index=3)
    second = population.send_request(index=3)
    third = population.send_request(index=999)
    assert first.client == "pop0#3"
    assert third.client == "pop0#999"
    # One global counter: rids never collide across identities.
    assert (first.rid, second.rid, third.rid) == (1, 2, 3)
    assert population.sent == 3
    assert population.identities_seen == {3, 999}


def test_identity_index_is_validated():
    sim, cluster, population = build()
    with pytest.raises(ValueError, match="outside population"):
        population.send_request(index=1000)
    with pytest.raises(ValueError, match="outside population"):
        population.send_request(index=-1)


def test_population_size_and_sampling_are_validated():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    with pytest.raises(ValueError, match="size"):
        ClientPopulation(cluster, size=0)
    with pytest.raises(ValueError, match="sampling"):
        ClientPopulation(cluster, size=10, name="p2", sampling="zipf")


def test_uniform_sampling_is_seeded_and_in_range():
    def indices(seed):
        sim = Simulator()
        cluster = Cluster(sim, ClusterConfig(f=1, seed=seed))
        population = ClientPopulation(cluster, size=50, sampling="uniform")
        return [population.send_request().client for _ in range(20)]

    first = indices(7)
    assert first == indices(7)
    assert first != indices(8)
    assert all(0 <= int(c.partition("#")[2]) < 50 for c in first)


def test_reply_quorum_completes_per_sampled_identity():
    sim, cluster, population = build()
    request = population.send_request(index=42)
    reply_from(cluster, 0, request.client, request.rid)
    sim.run(until=0.1)
    assert population.completed == 0  # one reply is not enough (f=1)
    reply_from(cluster, 1, request.client, request.rid)
    sim.run(until=0.2)
    assert population.completed == 1
    assert len(population.latencies) == 1
    assert population.outstanding == 0


def test_replies_for_foreign_owner_are_ignored():
    sim, cluster, population = build()
    request = population.send_request(index=0)
    # A reply naming another population's identity must not count even
    # if it lands on this port with a matching rid.
    foreign = Reply(
        cluster.machines[0].name, "other#0", request.rid, "ok"
    )
    population._on_message(ReplyMsg(foreign, Mac(cluster.machines[0].name)))
    population._on_message(
        ReplyMsg(
            Reply(cluster.machines[1].name, "other#0", request.rid, "ok"),
            Mac(cluster.machines[1].name),
        )
    )
    assert population.completed == 0


def test_invalid_reply_mac_is_ignored():
    sim, cluster, population = build()
    request = population.send_request(index=5)
    machine = cluster.machines[0]
    population._on_message(
        ReplyMsg(
            Reply(machine.name, request.client, request.rid, "ok"),
            Mac(machine.name, valid=False),
        )
    )
    reply_from(cluster, 1, request.client, request.rid)
    sim.run(until=0.1)
    assert population.completed == 0


def test_reply_routing_resolves_owner_alias():
    sim, cluster, population = build()
    machine = cluster.machines[0]
    # The alias resolves to the owner port's downlink channel.
    assert machine.channel_to_client("pop0#7") is machine.channel_to_client(
        "pop0"
    )
    assert machine.channel_to_client("ghost#7") is None


def test_reply_routing_does_not_grow_per_identity_state():
    """Regression: replying to a million identities must stay O(#ports).

    ``channel_to_client`` used to memoise one ``channels_to_clients``
    entry per sampled population identity, so a diurnal run over a
    million-client population grew the dict without bound.
    """
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    population = ClientPopulation(cluster, size=1_000_000)
    machine = cluster.machines[0]
    ports_before = dict(machine.channels_to_clients)
    # A spread of identities across the full million-client range; every
    # one resolves to the owner channel and none leaves a dict entry.
    owner = machine.channel_to_client("pop0")
    for index in range(0, 1_000_000, 9973):
        assert machine.channel_to_client("pop0#%d" % index) is owner
    assert machine.channels_to_clients == ports_before
    assert len(machine.channels_to_clients) == len(cluster.clients)


def test_add_client_rejects_hash_in_names():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    with pytest.raises(ValueError, match="'#'"):
        cluster.add_client("pop0#raw")


def test_principal_owner_strips_identity_index():
    assert principal_owner("pop0#42") == "pop0"
    assert principal_owner("client3") == "client3"


def test_fault_knobs_apply_to_the_sampled_identity():
    sim, cluster, population = build()
    request = population.send_request(
        index=2, signature_valid=False, mac_invalid_for=["node0"],
        exec_cost=1e-3, payload_size=512,
    )
    assert request.signature.signer == "pop0#2"
    assert not request.signature.valid
    assert not request.authenticator.valid_for("node0")
    assert request.authenticator.valid_for("node1")
    assert request.exec_cost == 1e-3
    assert request.payload_size == 512


def test_targets_restrict_recipients():
    sim, cluster, population = build()
    got = {name: [] for name in cluster.node_names()}
    for machine in cluster.machines:
        machine.handler = got[machine.name].append
    population.send_request(index=0, targets=["node1", "node2"])
    sim.run(until=0.1)
    assert len(got["node1"]) == 1 and len(got["node2"]) == 1
    assert len(got["node0"]) == 0 and len(got["node3"]) == 0


def test_time_shift_moves_in_flight_timestamps():
    sim, cluster, population = build()
    request = population.send_request(index=0)
    # A mesoscale fast-forward jumps the clock by dt and shifts in-flight
    # send times with it, so the recorded latency excludes the skipped
    # window.
    sim.run(until=0.5)
    population.time_shift(0.4)
    reply_from(cluster, 0, request.client, request.rid)
    reply_from(cluster, 1, request.client, request.rid)
    sim.run(until=0.6)
    assert population.completed == 1
    # Sent at t=0 (shifted to 0.4), completed just after t=0.5: without
    # the shift the latency would read the full 0.5 s.
    (latency,) = population.latencies.samples
    assert latency == pytest.approx(0.1, abs=0.05)


def test_load_generator_paces_identities_round_robin():
    sim, cluster, population = build()
    generator = LoadGenerator(
        sim, population,
        build_profile("static", 300.0, 1.0, clients=3),
        RngTree(2).stream("load"),
    )
    generator.start()
    sim.run(until=1.0)
    assert generator.generated > 0
    assert generator.total_sent() == generator.generated
    # static packs round-robin over the profile's active window.
    assert population.identities_seen == set(range(10))


def test_load_generator_uniform_population_samples_identities():
    sim, cluster, population = build(sampling="uniform")
    generator = LoadGenerator(
        sim, population,
        build_profile("static", 500.0, 1.0),
        RngTree(3).stream("load"),
    )
    generator.start()
    sim.run(until=1.0)
    assert generator.generated > 0
    # 1000 identities, ~500 draws: far more distinct ids than the
    # 10-wide paced window could ever produce.
    assert len(population.identities_seen) > 100
