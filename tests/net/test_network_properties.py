"""Property-based tests of the network model."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import LinkProfile, Message, Network, NIC
from repro.sim import Simulator


class Blob(Message):
    __slots__ = ("body_size", "tag")

    def __init__(self, sender, body_size, tag):
        super().__init__(sender)
        self.body_size = body_size
        self.tag = tag


@given(
    sizes=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=40),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=50)
def test_tcp_fifo_holds_for_any_size_mix(sizes, seed):
    sim = Simulator()
    network = Network(sim, random.Random(seed))
    received = []
    channel = network.connect(
        "a",
        "b",
        NIC(sim, "a", 1e6),
        NIC(sim, "b", 1e6),
        lambda m: received.append(m.tag),
        profile=LinkProfile(jitter=5e-4),
        tcp=True,
    )
    for tag, size in enumerate(sizes):
        channel.send(Blob("a", size, tag))
    sim.run()
    assert received == list(range(len(sizes)))


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=5_000), min_size=1, max_size=30),
)
@settings(max_examples=50)
def test_bandwidth_lower_bounds_delivery_time(sizes):
    sim = Simulator()
    network = Network(sim, random.Random(0))
    done = []
    bandwidth = 1e5
    channel = network.connect(
        "a",
        "b",
        NIC(sim, "a", bandwidth),
        NIC(sim, "b", bandwidth),
        lambda m: done.append(sim.now),
        profile=LinkProfile(latency=0.0, jitter=0.0, tcp_overhead=0.0),
        tcp=True,
    )
    for size in sizes:
        channel.send(Blob("a", size, 0))
    sim.run()
    total_bytes = sum(size + 48 for size in sizes)
    # All bytes must cross the sender NIC and the receiver NIC.
    assert done[-1] >= total_bytes / bandwidth


@given(dup=st.floats(min_value=0.0, max_value=1.0), seed=st.integers(0, 99))
@settings(max_examples=30)
def test_udp_duplicate_rate_is_plausible(dup, seed):
    sim = Simulator()
    network = Network(sim, random.Random(seed))
    received = []
    channel = network.connect(
        "a",
        "b",
        NIC(sim, "a", 1e9),
        NIC(sim, "b", 1e9),
        lambda m: received.append(m),
        profile=LinkProfile(jitter=0.0, udp_duplicate=dup),
        tcp=False,
    )
    n = 200
    for _ in range(n):
        channel.send(Blob("a", 10, 0))
    sim.run()
    assert len(received) == n + channel.duplicated
    if dup == 0.0:
        assert channel.duplicated == 0
    if dup == 1.0:
        assert channel.duplicated == n


@given(
    loss=st.floats(min_value=0.0, max_value=0.5),
    dup=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(0, 99),
)
@settings(max_examples=30)
def test_udp_loss_and_duplicate_conserve_messages(loss, dup, seed):
    """Every datagram is dropped, delivered once, or delivered twice."""
    sim = Simulator()
    network = Network(sim, random.Random(seed))
    received = []
    channel = network.connect(
        "a",
        "b",
        NIC(sim, "a", 1e9),
        NIC(sim, "b", 1e9),
        lambda m: received.append(m),
        profile=LinkProfile(jitter=0.0, udp_loss=loss, udp_duplicate=dup),
        tcp=False,
    )
    n = 200
    for _ in range(n):
        channel.send(Blob("a", 10, 0))
    sim.run()
    assert len(received) == n - channel.dropped + channel.duplicated


@given(loss=st.floats(min_value=0.0, max_value=1.0), seed=st.integers(0, 99))
@settings(max_examples=30)
def test_udp_loss_rate_is_plausible(loss, seed):
    sim = Simulator()
    network = Network(sim, random.Random(seed))
    received = []
    channel = network.connect(
        "a",
        "b",
        NIC(sim, "a", 1e9),
        NIC(sim, "b", 1e9),
        lambda m: received.append(m),
        profile=LinkProfile(jitter=0.0, udp_loss=loss),
        tcp=False,
    )
    n = 200
    for _ in range(n):
        channel.send(Blob("a", 10, 0))
    sim.run()
    assert len(received) + channel.dropped == n
    if loss == 0.0:
        assert channel.dropped == 0
    if loss == 1.0:
        assert len(received) == 0
