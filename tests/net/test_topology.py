"""Unit tests for the geo-topology layer (regions, matrices, placement)."""

import pickle

import pytest

from repro.net import GIGABIT_BPS, LinkProfile, Region, Topology, flat, named
from repro.net.network import LAN
from repro.net.topology import TOPOLOGY_PACKS, wan3, wan5


def test_round_robin_placement_spreads_replicas():
    topology = wan3()
    regions = [topology.node_region_index(i) for i in range(10)]
    assert regions == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]
    # 3f+1 = 10 replicas across 3 regions: at most f+1 = 4 per region,
    # so no region holds a 2f+1 = 7 quorum by itself.
    assert max(regions.count(r) for r in set(regions)) == 4
    assert [topology.client_region_index(i) for i in range(4)] == [0, 1, 2, 0]


def test_explicit_placement_pins_prefix_and_falls_back():
    topology = Topology(
        regions=(Region("a"), Region("b")),
        latency=((0.0, 0.01), (0.01, 0.0)),
        placement=(1, 1, 0),
    )
    assert [topology.node_region_index(i) for i in range(5)] == [1, 1, 0, 1, 0]


def test_intra_region_traffic_sees_the_region_link():
    lan2 = LinkProfile(latency=123e-6)
    topology = Topology(
        regions=(Region("a", link=lan2), Region("b")),
        latency=((0.0, 0.05), (0.05, 0.0)),
    )
    assert topology.link_for(0, 0) is lan2
    assert topology.link_for(1, 1) is LAN


def test_cross_region_traffic_adds_matrix_latency_and_bandwidth():
    base = LinkProfile(latency=1e-3, jitter=2e-4)
    topology = Topology(
        regions=(Region("a"), Region("b")),
        latency=((0.0, 0.05), (0.07, 0.0)),
        bandwidth=((0.0, 1e6), (2e6, 0.0)),
        base=base,
    )
    forward = topology.link_for(0, 1)
    assert forward.latency == pytest.approx(1e-3 + 0.05)
    assert forward.jitter == base.jitter
    assert forward.bandwidth == 1e6
    reverse = topology.link_for(1, 0)
    assert reverse.latency == pytest.approx(1e-3 + 0.07)
    assert reverse.bandwidth == 2e6


def test_pair_profiles_matches_link_for():
    topology = wan5()
    profiles = topology.pair_profiles()
    for i in range(5):
        for j in range(5):
            assert profiles[i][j] == topology.link_for(i, j)


def test_flat_topology_profiles_equal_the_flat_link():
    topology = flat(3)
    for i in range(3):
        for j in range(3):
            assert topology.link_for(i, j) == LAN
        assert topology.regions[i].nic_bandwidth == GIGABIT_BPS


def test_validation_rejects_bad_shapes():
    with pytest.raises(ValueError):
        Topology(regions=(), latency=())
    with pytest.raises(ValueError):
        Topology(regions=(Region("a"),), latency=((0.0, 0.0),))
    with pytest.raises(ValueError):
        Topology(
            regions=(Region("a"), Region("b")),
            latency=((0.0, 0.01), (0.01, 0.0)),
            bandwidth=((0.0,),),
        )
    with pytest.raises(ValueError):
        Topology(
            regions=(Region("a"),),
            latency=((0.0,),),
            placement=(1,),
        )


def test_topology_is_hashable_and_picklable():
    topology = wan3()
    assert hash(topology) == hash(wan3())
    clone = pickle.loads(pickle.dumps(topology))
    assert clone == topology
    assert clone.pair_profiles() == topology.pair_profiles()


def test_named_packs_resolve():
    assert named("wan3") == wan3()
    assert named("wan5") == wan5()
    assert set(TOPOLOGY_PACKS) == {"wan3", "wan5"}
    with pytest.raises(ValueError):
        named("wan9")


def test_wan_packs_are_symmetric_and_constrained():
    for pack in TOPOLOGY_PACKS:
        topology = named(pack)
        count = len(topology.regions)
        for i in range(count):
            assert topology.latency[i][i] == 0.0
            for j in range(count):
                assert topology.latency[i][j] == topology.latency[j][i]
                if i != j:
                    assert topology.latency[i][j] > 0.0
                    assert topology.bandwidth[i][j] > 0.0
