"""Unit tests for the NIC model."""

import pytest

from repro.net import NIC
from repro.sim import Simulator


def test_transmission_takes_size_over_bandwidth():
    sim = Simulator()
    nic = NIC(sim, "n", bandwidth_bytes_per_s=100.0)
    assert nic.reserve_tx(50) == pytest.approx(0.5)


def test_back_to_back_transmissions_queue():
    sim = Simulator()
    nic = NIC(sim, "n", bandwidth_bytes_per_s=100.0)
    nic.reserve_tx(100)
    assert nic.reserve_tx(100) == pytest.approx(2.0)
    assert nic.bytes_tx == 200
    assert nic.msgs_tx == 2


def test_rx_reservation_respects_arrival_time():
    sim = Simulator()
    nic = NIC(sim, "n", bandwidth_bytes_per_s=100.0)
    assert nic.reserve_rx(100, arrival=5.0) == pytest.approx(6.0)
    # A second message arriving during the first reception queues behind it.
    assert nic.reserve_rx(100, arrival=5.5) == pytest.approx(7.0)


def test_close_marks_nic_closed_for_duration():
    sim = Simulator()
    nic = NIC(sim, "n", bandwidth_bytes_per_s=100.0)
    assert not nic.closed
    nic.close(2.0)
    assert nic.closed
    sim.run(until=3.0)
    assert not nic.closed


def test_close_extends_not_shrinks():
    sim = Simulator()
    nic = NIC(sim, "n", bandwidth_bytes_per_s=100.0)
    nic.close(5.0)
    nic.close(1.0)
    assert nic.closed_until == 5.0


def test_zero_bandwidth_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        NIC(sim, "n", bandwidth_bytes_per_s=0.0)
