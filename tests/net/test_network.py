"""Unit tests for channels and the network fabric."""

import random

import pytest

from repro.net import GIGABIT_BPS, LinkProfile, Message, Network, NIC
from repro.sim import Simulator


class Blob(Message):
    __slots__ = ("body_size",)

    def __init__(self, sender, body_size=0):
        super().__init__(sender)
        self.body_size = body_size


def make_pair(sim, profile=LinkProfile(jitter=0.0), tcp=True, bandwidth=1000.0):
    network = Network(sim, random.Random(1))
    inbox = []
    src_nic = NIC(sim, "src", bandwidth)
    dst_nic = NIC(sim, "dst", bandwidth)
    channel = network.connect(
        "a", "b", src_nic, dst_nic, lambda m: inbox.append((sim.now, m)),
        profile=profile, tcp=tcp,
    )
    return network, channel, inbox


def test_delivery_includes_tx_latency_and_rx():
    sim = Simulator()
    profile = LinkProfile(latency=0.1, jitter=0.0, tcp_overhead=0.0)
    _, channel, inbox = make_pair(sim, profile)
    channel.send(Blob("a", body_size=952))  # wire size 1000 -> 1s tx, 1s rx
    sim.run()
    assert len(inbox) == 1
    assert inbox[0][0] == pytest.approx(2.1)


def test_bottleneck_bandwidth_adds_serialisation_delay():
    sim = Simulator()
    profile = LinkProfile(
        latency=0.1, jitter=0.0, tcp_overhead=0.0, bandwidth=500.0
    )
    _, channel, inbox = make_pair(sim, profile)
    channel.send(Blob("a", body_size=952))  # wire size 1000 -> +2s on the pipe
    sim.run()
    assert len(inbox) == 1
    assert inbox[0][0] == pytest.approx(4.1)  # 1 tx + 0.1 + 2 pipe + 1 rx


def test_zero_bandwidth_means_unconstrained():
    sim1 = Simulator()
    profile = LinkProfile(latency=0.1, jitter=0.0, tcp_overhead=0.0)
    _, channel, inbox = make_pair(sim1, profile)
    channel.send(Blob("a", body_size=952))
    sim1.run()

    sim2 = Simulator()
    constrained = LinkProfile(
        latency=0.1, jitter=0.0, tcp_overhead=0.0, bandwidth=0.0
    )
    _, channel2, inbox2 = make_pair(sim2, constrained)
    channel2.send(Blob("a", body_size=952))
    sim2.run()

    assert inbox2[0][0] == pytest.approx(inbox[0][0])


def test_tcp_preserves_fifo_order():
    sim = Simulator()
    _, channel, inbox = make_pair(sim)
    for i in range(20):
        channel.send(Blob("a", body_size=i))
    sim.run()
    assert [m.body_size for _, m in inbox] == list(range(20))


def test_tcp_adds_overhead_versus_udp():
    sim1 = Simulator()
    profile = LinkProfile(latency=0.0, jitter=0.0, tcp_overhead=0.05)
    _, tcp_channel, tcp_inbox = make_pair(sim1, profile, tcp=True)
    tcp_channel.send(Blob("a"))
    sim1.run()

    sim2 = Simulator()
    _, udp_channel, udp_inbox = make_pair(sim2, profile, tcp=False)
    udp_channel.send(Blob("a"))
    sim2.run()

    assert tcp_inbox[0][0] == pytest.approx(udp_inbox[0][0] + 0.05)


def test_udp_loss_drops_messages():
    sim = Simulator()
    profile = LinkProfile(jitter=0.0, udp_loss=1.0)
    _, channel, inbox = make_pair(sim, profile, tcp=False)
    channel.send(Blob("a"))
    sim.run()
    assert inbox == []
    assert channel.dropped == 1


def test_udp_duplicate_delivers_twice():
    sim = Simulator()
    profile = LinkProfile(jitter=0.0, udp_duplicate=1.0)
    _, channel, inbox = make_pair(sim, profile, tcp=False)
    channel.send(Blob("a"))
    sim.run()
    assert len(inbox) == 2
    assert channel.duplicated == 1
    assert channel.delivered == 2


def test_udp_duplicate_copies_pay_their_own_reception():
    sim = Simulator()
    profile = LinkProfile(latency=0.0, jitter=0.0, udp_duplicate=1.0)
    _, channel, inbox = make_pair(sim, profile, tcp=False, bandwidth=1000.0)
    channel.send(Blob("a", body_size=952))  # 1000 B: 1 s tx, 1 s rx each
    sim.run()
    times = [t for t, _ in inbox]
    assert times == pytest.approx([2.0, 3.0])


def test_tcp_ignores_duplicate_profile():
    sim = Simulator()
    profile = LinkProfile(jitter=0.0, udp_duplicate=1.0)
    _, channel, inbox = make_pair(sim, profile, tcp=True)
    channel.send(Blob("a"))
    sim.run()
    assert len(inbox) == 1
    assert channel.duplicated == 0


def test_duplicate_knob_does_not_perturb_existing_draws():
    # udp_duplicate=0 must leave the RNG stream untouched so seeded
    # runs predating the knob replay byte-identically.
    def arrival_times(duplicate):
        sim = Simulator()
        profile = LinkProfile(jitter=1e-3, udp_loss=0.3, udp_duplicate=duplicate)
        _, channel, inbox = make_pair(sim, profile, tcp=False)
        for _ in range(50):
            channel.send(Blob("a"))
        sim.run()
        return [t for t, _ in inbox]

    assert arrival_times(0.0) == arrival_times(0)


def test_intercept_hook_owns_the_send_path():
    sim = Simulator()
    _, channel, inbox = make_pair(sim)
    seen = []
    channel.intercept = lambda chan, msg: seen.append(msg)
    channel.send(Blob("a"))
    sim.run()
    assert inbox == [] and len(seen) == 1  # hook swallowed it
    channel.intercept = None
    channel.send(Blob("a"))
    sim.run()
    assert len(inbox) == 1


def test_send_direct_bypasses_intercept():
    sim = Simulator()
    _, channel, inbox = make_pair(sim)
    channel.intercept = lambda chan, msg: None  # drop everything
    channel.send_direct(Blob("a"))
    sim.run()
    assert len(inbox) == 1


def test_tcp_never_drops_despite_loss_profile():
    sim = Simulator()
    profile = LinkProfile(jitter=0.0, udp_loss=1.0)
    _, channel, inbox = make_pair(sim, profile, tcp=True)
    channel.send(Blob("a"))
    sim.run()
    assert len(inbox) == 1


def test_closed_nic_drops_in_hardware():
    sim = Simulator()
    _, channel, inbox = make_pair(sim)
    channel.dst_nic.close(100.0)
    rx_before = channel.dst_nic.rx_free_at
    channel.send(Blob("a", body_size=1000))
    sim.run(until=50.0)
    assert inbox == []
    assert channel.dropped == 1
    # No reception bandwidth consumed: the drop is free for the receiver.
    assert channel.dst_nic.rx_free_at == rx_before
    assert channel.dst_nic.dropped_while_closed == 1


def test_delivery_resumes_after_nic_reopens():
    sim = Simulator()
    _, channel, inbox = make_pair(sim)
    channel.dst_nic.close(1.0)
    sim.call_after(2.0, channel.send, Blob("a"))
    sim.run()
    assert len(inbox) == 1


def test_multicast_charges_sender_once():
    sim = Simulator()
    network = Network(sim, random.Random(1))
    profile = LinkProfile(latency=0.0, jitter=0.0)
    src_nic = NIC(sim, "src", 1000.0)
    inboxes = [[], [], []]
    channels = [
        network.connect(
            "a", "b%d" % i, src_nic, NIC(sim, "dst%d" % i, 1000.0),
            inboxes[i].append, profile=profile, tcp=False,
        )
        for i in range(3)
    ]
    msg = Blob("a", body_size=952)  # 1000B on the wire
    Network.multicast(channels, msg)
    sim.run()
    assert all(len(inbox) == 1 for inbox in inboxes)
    # One transmission charged, not three.
    assert src_nic.bytes_tx == 1000
    assert src_nic.tx_free_at == pytest.approx(1.0)


def test_jitter_is_deterministic_per_seed():
    def run(seed):
        sim = Simulator()
        network = Network(sim, random.Random(seed))
        times = []
        src, dst = NIC(sim, "s", GIGABIT_BPS), NIC(sim, "d", GIGABIT_BPS)
        channel = network.connect(
            "a", "b", src, dst, lambda m: times.append(sim.now),
            profile=LinkProfile(jitter=1e-3), tcp=False,
        )
        for _ in range(5):
            channel.send(Blob("a"))
        sim.run()
        return times

    assert run(3) == run(3)
    assert run(3) != run(4)
