"""Mechanism tests for the attack installers.

These verify that each installer wires the right malicious behaviour —
the quantitative effects are covered by the benchmark harness.
"""

import pytest

from repro.experiments import QUICK, make_deployment
from repro.faults import (
    install_aardvark_attack,
    install_prime_attack,
    install_rbft_worst_attack_1,
    install_rbft_worst_attack_2,
    install_spinning_attack,
    install_unfair_primary,
)


def test_prime_attack_installs_period_override_and_heavy_client():
    dep = make_deployment("prime", 8, QUICK)
    heavy = install_prime_attack(dep, heavy_rate=100.0)
    assert dep.nodes[0].ordering_period_fn is not None
    # The malicious period tracks the (inflatable) acceptable delay.
    dep.nodes[0].batch_exec_estimate = 0.5
    assert dep.nodes[0].ordering_period_fn() >= 0.85 * 0.5
    dep.sim.run(until=0.1)
    assert heavy.client.sent >= 5
    heavy.stop()


def test_prime_heavy_requests_carry_heavy_exec_cost():
    dep = make_deployment("prime", 8, QUICK)
    heavy = install_prime_attack(dep, heavy_rate=100.0, heavy_exec_cost=1e-3)
    dep.sim.run(until=0.05)
    request = heavy.client.send_request(exec_cost=1e-3)
    assert request.exec_cost == 1e-3
    heavy.stop()


def test_aardvark_attack_paces_only_after_activation():
    dep = make_deployment("aardvark", 8, QUICK)
    install_aardvark_attack(dep, activate_after=0.5)
    engine = dep.nodes[0].engine

    class FakeMsg:
        items = (1, 2, 3)

    assert engine.preprepare_delay_fn(FakeMsg()) == 0.0  # before activation
    dep.sim.run(until=0.6)
    dep.nodes[0].history.append(1000.0)
    first = engine.preprepare_delay_fn(FakeMsg())
    second = engine.preprepare_delay_fn(FakeMsg())
    assert second > first  # pacing horizon advances


def test_spinning_attack_delay_just_below_stimeout():
    dep = make_deployment("spinning", 8, QUICK)
    delay = install_spinning_attack(dep)
    s_timeout = dep.nodes[0].sconfig.s_timeout
    assert 0.5 * s_timeout < delay < s_timeout

    class FakeMsg:
        items = (1,)

    assert dep.nodes[0].engine.preprepare_delay_fn(FakeMsg()) == delay


def test_worst1_silences_master_replicas_only():
    dep = make_deployment("rbft", 8, QUICK)
    handle = install_rbft_worst_attack_1(dep)
    assert len(handle.faulty_nodes) == 1
    faulty = handle.faulty_nodes[0]
    assert faulty.name == "node3"  # not hosting any primary
    assert faulty.engines[0].silent  # master replica mute
    assert not faulty.engines[1].silent  # backup replica participates
    assert handle.client_send_kwargs == {"mac_invalid_for": ["node0"]}
    assert handle.flooders and all(f._running for f in handle.flooders)


def test_worst1_f2_picks_non_primary_hosts():
    dep = make_deployment("rbft", 8, QUICK, f=2)
    handle = install_rbft_worst_attack_1(dep)
    names = {node.name for node in handle.faulty_nodes}
    assert names == {"node5", "node6"}  # primaries live on nodes 0..2


def test_worst2_leader_is_master_primary_host():
    dep = make_deployment("rbft", 8, QUICK)
    handle = install_rbft_worst_attack_2(dep)
    leader = handle.faulty_nodes[0]
    assert leader.name == "node0"
    assert leader.engines[0].preprepare_delay_fn is not None
    assert leader.engines[1].silent  # its backup replica is mute
    assert handle.pacer is not None
    assert handle.junk_clients


def test_worst2_f2_avoids_backup_primary_hosts():
    dep = make_deployment("rbft", 8, QUICK, f=2)
    handle = install_rbft_worst_attack_2(dep)
    names = [node.name for node in handle.faulty_nodes]
    assert names[0] == "node0"
    assert set(names[1:]).isdisjoint({"node1", "node2"})


def test_worst2_pacer_targets_delta_ratio():
    dep = make_deployment("rbft", 8, QUICK)
    handle = install_rbft_worst_attack_2(dep, margin=0.01)
    leader = handle.faulty_nodes[0]
    leader.monitor.last_rates = [0.0, 1000.0]
    target = handle.pacer.target_rate_fn()
    assert target == pytest.approx((leader.config.delta + 0.01) * 1000.0)


def test_unfair_primary_delays_only_the_victim():
    dep = make_deployment("rbft", 8, QUICK, n_clients=2)
    counter = install_unfair_primary(
        dep, "client0", lambda i: 5e-3 if i >= 2 else 0.0
    )
    for _ in range(4):
        dep.clients[0].send_request()
        dep.clients[1].send_request()
    dep.sim.run(until=0.5)
    assert counter["n"] == 4  # schedule consulted once per victim request
    # Both clients still complete everything (delay, not censorship).
    assert dep.clients[0].completed == 4
    assert dep.clients[1].completed == 4
    # The victim's later requests are visibly slower.
    v = dep.clients[0].latencies.samples
    o = dep.clients[1].latencies.samples
    assert max(v) > max(o) + 3e-3
