"""Tests for flooding attackers and the NIC-closing defence."""


from repro.core import RBFTConfig
from repro.experiments.deployments import build_rbft
from repro.faults import MAX_FLOOD_SIZE, Flooder


def build(flood_threshold=32, flood_window=0.5):
    config = RBFTConfig(
        f=1, flood_threshold=flood_threshold, flood_window=flood_window,
        nic_close_duration=1.0,
    )
    return build_rbft(config, n_clients=1)


def test_flooder_sends_to_all_victims():
    dep = build()
    flooder = Flooder(dep.cluster.machines[3], ["node0", "node1"], rate=1000)
    flooder.start()
    dep.sim.run(until=0.1)
    assert flooder.sent >= 150  # ~100 per victim


def test_flood_above_threshold_closes_nic():
    dep = build(flood_threshold=16)
    flooder = Flooder(dep.cluster.machines[3], ["node0"], rate=2000)
    flooder.start()
    dep.sim.run(until=0.2)
    assert dep.nodes[0].nics_closed >= 1
    assert dep.nodes[0].machine.peer_nics["node3"].closed


def test_flood_below_threshold_keeps_nic_open():
    dep = build(flood_threshold=1000, flood_window=0.1)
    flooder = Flooder(dep.cluster.machines[3], ["node0"], rate=100)
    flooder.start()
    dep.sim.run(until=0.3)
    assert dep.nodes[0].nics_closed == 0
    assert not dep.nodes[0].machine.peer_nics["node3"].closed


def test_nic_reopens_after_close_duration():
    dep = build(flood_threshold=8)
    flooder = Flooder(dep.cluster.machines[3], ["node0"], rate=5000)
    flooder.start()
    dep.sim.run(until=0.05)
    assert dep.nodes[0].machine.peer_nics["node3"].closed
    flooder.stop()
    dep.sim.run(until=2.0)  # nic_close_duration = 1.0
    assert not dep.nodes[0].machine.peer_nics["node3"].closed


def test_flood_costs_victim_cpu_until_closed():
    dep = build(flood_threshold=10_000)  # never closes
    victim = dep.nodes[0]
    busy_before = victim.propagation_core.busy_time
    flooder = Flooder(dep.cluster.machines[3], ["node0"], rate=2000)
    flooder.start()
    dep.sim.run(until=0.5)
    assert victim.propagation_core.busy_time > busy_before


def test_flood_messages_are_maximal_size():
    assert MAX_FLOOD_SIZE >= 9000
    from repro.core.messages import FloodMsg

    assert FloodMsg("node3", MAX_FLOOD_SIZE).wire_size() == MAX_FLOOD_SIZE


def test_stopped_flooder_goes_quiet():
    dep = build()
    flooder = Flooder(dep.cluster.machines[3], ["node0"], rate=1000)
    flooder.start()
    dep.sim.run(until=0.05)
    sent = flooder.sent
    flooder.stop()
    dep.sim.run(until=0.5)
    assert flooder.sent <= sent + 1  # at most the in-flight iteration
