"""Unit tests for the batch pacer used by smart attackers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import BatchPacer
from repro.sim import Simulator


def test_first_batch_goes_immediately():
    sim = Simulator()
    pacer = BatchPacer(sim, lambda: 100.0)
    assert pacer.delay_for(10) == 0.0


def test_subsequent_batches_are_spaced_by_rate():
    sim = Simulator()
    pacer = BatchPacer(sim, lambda: 100.0)
    pacer.delay_for(10)  # horizon moves to 0.1
    assert pacer.delay_for(10) == pytest.approx(0.1)
    assert pacer.delay_for(10) == pytest.approx(0.2)


def test_elapsed_time_consumes_the_horizon():
    sim = Simulator()
    pacer = BatchPacer(sim, lambda: 100.0)
    pacer.delay_for(10)
    sim.call_after(0.1, lambda: None)
    sim.run()
    assert pacer.delay_for(10) == pytest.approx(0.0)


def test_zero_rate_means_no_delay():
    sim = Simulator()
    pacer = BatchPacer(sim, lambda: 0.0)
    assert pacer.delay_for(64) == 0.0
    assert pacer.delay_for(64) == 0.0


def test_adaptive_rate_is_sampled_per_batch():
    sim = Simulator()
    rates = [100.0, 200.0]
    pacer = BatchPacer(sim, lambda: rates[0])
    pacer.delay_for(10)
    rates[0] = 200.0
    # Second gap uses the new rate: 10/200 = 0.05 after the first 0.1.
    assert pacer.delay_for(10) == pytest.approx(0.1)
    assert pacer.delay_for(10) == pytest.approx(0.1 + 0.05)


def test_reset_clears_horizon():
    sim = Simulator()
    pacer = BatchPacer(sim, lambda: 10.0)
    pacer.delay_for(100)
    pacer.reset()
    assert pacer.delay_for(1) == 0.0


@given(
    batches=st.lists(st.integers(1, 100), min_size=1, max_size=50),
    rate=st.floats(min_value=1.0, max_value=1e5),
)
@settings(max_examples=50)
def test_property_long_run_rate_never_exceeds_target(batches, rate):
    """Total items / horizon span respects the target rate."""
    sim = Simulator()
    pacer = BatchPacer(sim, lambda: rate)
    for items in batches:
        pacer.delay_for(items)
    span = pacer._next_send_at - 0.0
    assert span * rate >= sum(batches) * (1 - 1e-9)
