"""Unit tests for the tracer, its sinks, and JSONL round-trips."""

import gc
import io

import pytest

from repro.sim import Simulator
from repro.sim.resources import Core
from repro.trace import (
    JsonlStreamSink,
    ListSink,
    RingBufferSink,
    TraceEvent,
    Tracer,
    export_jsonl,
    load_jsonl,
)


def _run_workload(sim):
    """A small deterministic workload touching the instrumented kernel paths."""
    core = Core(sim, "node0/verification")
    for i in range(5):
        sim.call_after(0.1 * i, core.charge, 0.05)
    sim.run(until=1.0)
    return core


# --------------------------------------------------------- disabled fast path
def test_disabled_tracer_allocates_no_events():
    """With tracing off, instrumented paths must not build TraceEvents."""
    sim = Simulator()
    sim.tracer = Tracer(enabled=False)
    gc.collect()
    before = sum(1 for obj in gc.get_objects() if isinstance(obj, TraceEvent))
    _run_workload(sim)
    gc.collect()
    after = sum(1 for obj in gc.get_objects() if isinstance(obj, TraceEvent))
    assert after == before
    assert sim.tracer.emitted == 0
    assert sim.tracer.events() == []


def test_no_tracer_is_the_default_and_traces_nothing():
    sim = Simulator()
    assert sim.tracer is None
    _run_workload(sim)  # must not raise on the guarded call sites


def test_emit_while_disabled_is_a_noop():
    tracer = Tracer(enabled=False)
    tracer.emit(1.0, "core.job", "x", cost=1.0)
    assert tracer.emitted == 0
    assert tracer.events() == []


# ------------------------------------------------------------------ emission
def test_enabled_tracer_collects_kernel_and_core_events():
    sim = Simulator()
    sim.tracer = Tracer()
    core = _run_workload(sim)
    events = sim.tracer.events()
    kinds = {event.kind for event in events}
    assert "sim.dispatch" in kinds
    assert "core.job" in kinds
    jobs = [event for event in events if event.kind == "core.job"]
    assert len(jobs) == core.jobs
    assert all(event.name == "node0/verification" for event in jobs)
    # events are emitted in nondecreasing virtual time
    times = [event.t for event in events]
    assert times == sorted(times)


def test_kinds_filter_drops_other_kinds_at_the_source():
    sim = Simulator()
    sim.tracer = Tracer(kinds=frozenset({"core.job"}))
    _run_workload(sim)
    events = sim.tracer.events()
    assert events
    assert all(event.kind == "core.job" for event in events)
    # filtered emissions are not counted as emitted
    assert sim.tracer.emitted == len(events)


# --------------------------------------------------------------------- sinks
def test_ring_buffer_sink_keeps_tail_and_counts_drops():
    sink = RingBufferSink(capacity=3)
    tracer = Tracer(sink=sink)
    for i in range(5):
        tracer.emit(float(i), "core.job", "c")
    assert len(sink) == 3
    assert sink.dropped == 2
    assert [event.t for event in sink] == [2.0, 3.0, 4.0]


def test_ring_buffer_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        RingBufferSink(0)


def test_jsonl_stream_sink_retains_nothing_in_memory():
    stream = io.StringIO()
    tracer = Tracer(sink=JsonlStreamSink(stream))
    tracer.emit(0.5, "nic.tx", "node0/nic", size=128)
    tracer.emit(0.7, "nic.rx", "node1/nic", size=128)
    assert len(tracer.sink) == 2
    assert tracer.events() == []  # streamed away
    stream.seek(0)
    loaded = load_jsonl(stream)
    assert [event.kind for event in loaded] == ["nic.tx", "nic.rx"]
    assert loaded[0].data == {"size": 128}


# --------------------------------------------------------------- round-trips
def test_jsonl_export_round_trips(tmp_path):
    events = [
        TraceEvent(0.0, "core.job", "node0/cpu0", {"cost": 0.001, "start": 0.0, "done": 0.001}),
        TraceEvent(0.5, "node.stage", "node1", {"stage": "verification.mac"}),
        TraceEvent(1.0, "pbft.phase", "node2/i0", {"phase": "ordered", "seq": 7}),
        TraceEvent(2.0, "nic.drop", "node3/nic", {}),
    ]
    path = str(tmp_path / "run.trace.jsonl")
    written = export_jsonl(events, path)
    assert written == len(events)
    assert load_jsonl(path) == events


def test_jsonl_round_trip_through_file_objects():
    events = [TraceEvent(1.5, "monitor.tick", "node0", {"rates": [1.0, 2.0]})]
    stream = io.StringIO()
    export_jsonl(events, stream)
    stream.seek(0)
    assert load_jsonl(stream) == events


def test_list_sink_iterates_in_order():
    sink = ListSink()
    tracer = Tracer(sink=sink)
    tracer.emit(0.0, "a", "x")
    tracer.emit(1.0, "b", "y")
    assert [event.kind for event in sink] == ["a", "b"]
    assert len(sink) == 2
