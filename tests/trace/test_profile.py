"""Unit tests for offline profile reconstruction from core.job spans."""

import pytest

from repro.sim import Simulator
from repro.sim.resources import Core
from repro.trace import (
    TraceEvent,
    Tracer,
    build_core_profiles,
    format_profile_report,
    stage_counts,
    utilization_timeline,
)


def _traced_cores():
    """Two cores with uneven load; returns (cores, events, horizon)."""
    sim = Simulator()
    sim.tracer = Tracer()
    hot = Core(sim, "node0/verification")
    cold = Core(sim, "node0/execution")
    # saturate `hot` (jobs arrive faster than they are served)...
    for i in range(10):
        sim.call_after(0.01 * i, hot.charge, 0.05)
    # ...and leave `cold` mostly idle
    sim.call_after(0.0, cold.charge, 0.01)
    sim.call_after(0.5, cold.charge, 0.01)
    sim.run(until=1.0)
    return (hot, cold), sim.tracer.events(), 1.0


def test_profile_busy_matches_core_busy_time():
    """Reconstructed busy seconds equal the core's own accounting."""
    cores, events, _ = _traced_cores()
    profiles = build_core_profiles(events)
    for core in cores:
        profile = profiles[core.name]
        assert profile.busy == pytest.approx(core.busy_time)
        assert profile.jobs == core.jobs


def test_profile_utilization_sums_to_busy_over_horizon():
    cores, events, horizon = _traced_cores()
    profiles = build_core_profiles(events)
    for core in cores:
        profile = profiles[core.name]
        expected = core.busy_time / horizon
        # utilization over [first_t, horizon]; first submit is at t=0 here
        assert profile.utilization(horizon) == pytest.approx(expected)


def test_timeline_integrates_to_total_busy_time():
    """Windowed busy fractions re-integrate to the core's busy seconds."""
    (hot, _), events, horizon = _traced_cores()
    window = 0.1
    timeline = utilization_timeline(events, hot.name, window, until=horizon)
    integrated = sum(util * window for _, util in timeline)
    assert integrated == pytest.approx(hot.busy_time)


def test_queue_depth_counts_overlapping_jobs():
    # three jobs submitted at t=0 into a serial core: depth peaks at 3
    events = [
        TraceEvent(0.0, "core.job", "c", {"cost": 1.0, "start": 0.0, "done": 1.0}),
        TraceEvent(0.0, "core.job", "c", {"cost": 1.0, "start": 1.0, "done": 2.0}),
        TraceEvent(0.0, "core.job", "c", {"cost": 1.0, "start": 2.0, "done": 3.0}),
        # a fourth arriving exactly when the first completes reuses its slot
        TraceEvent(1.0, "core.job", "c", {"cost": 1.0, "start": 3.0, "done": 4.0}),
    ]
    profile = build_core_profiles(events)["c"]
    assert profile.max_queue_depth == 3
    assert profile.wait == pytest.approx(0.0 + 1.0 + 2.0 + 2.0)


def test_module_and_node_split():
    events = [
        TraceEvent(0.0, "core.job", "node3/propagation", {"cost": 1.0, "start": 0.0, "done": 1.0}),
    ]
    profile = build_core_profiles(events)["node3/propagation"]
    assert profile.module == "propagation"
    assert profile.node == "node3"


def test_stage_counts():
    events = [
        TraceEvent(0.0, "node.stage", "node0", {"stage": "verification.mac"}),
        TraceEvent(0.1, "node.stage", "node0", {"stage": "verification.mac"}),
        TraceEvent(0.2, "node.stage", "node0", {"stage": "execution"}),
        TraceEvent(0.3, "core.job", "c", {"cost": 0.0, "start": 0.3, "done": 0.3}),
    ]
    assert stage_counts(events) == {"verification.mac": 2, "execution": 1}


def test_report_names_the_busiest_core_and_module():
    (hot, _), events, horizon = _traced_cores()
    report = format_profile_report(events, horizon=horizon)
    assert "Busiest core: %s" % hot.name in report
    assert "module 'verification'" in report


def test_report_on_empty_trace_is_helpful():
    assert "no core.job events" in format_profile_report([])
