"""Unit tests for deterministic RNG streams."""

from repro.sim import RngTree


def test_same_name_returns_same_stream():
    tree = RngTree(7)
    assert tree.stream("arrivals") is tree.stream("arrivals")


def test_streams_are_independent_of_creation_order():
    tree1 = RngTree(7)
    a_first = [tree1.stream("a").random() for _ in range(5)]

    tree2 = RngTree(7)
    tree2.stream("b")  # create another stream first
    a_second = [tree2.stream("a").random() for _ in range(5)]

    assert a_first == a_second


def test_different_names_give_different_draws():
    tree = RngTree(7)
    a = [tree.stream("a").random() for _ in range(5)]
    b = [tree.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_give_different_draws():
    a = RngTree(1).stream("x").random()
    b = RngTree(2).stream("x").random()
    assert a != b


def test_fork_is_deterministic():
    a = RngTree(3).fork("node1").stream("jitter").random()
    b = RngTree(3).fork("node1").stream("jitter").random()
    assert a == b


def test_fork_diverges_from_parent():
    parent = RngTree(3)
    child = parent.fork("node1")
    assert parent.stream("x").random() != child.stream("x").random()
