"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Interrupt, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_call_after_fires_in_order():
    sim = Simulator()
    fired = []
    sim.call_after(2.0, fired.append, "b")
    sim.call_after(1.0, fired.append, "a")
    sim.call_after(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_callbacks_fire_fifo():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.call_after(1.0, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.call_after(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(0.5, lambda: None)


def test_handle_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.call_after(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert not handle.active


def test_handle_active_transitions_across_firing():
    sim = Simulator()
    handle = sim.call_after(1.0, lambda: None)
    assert handle.active
    sim.run()
    assert handle.done
    assert not handle.active


def test_handle_cancel_is_idempotent_and_safe_after_fire():
    sim = Simulator()
    fired = []
    early = sim.call_after(1.0, fired.append, "early")
    late = sim.call_after(2.0, fired.append, "late")
    late.cancel()
    late.cancel()  # repeat cancels are allowed
    sim.run()
    assert fired == ["early"]
    early.cancel()  # cancelling after the callback ran is a no-op
    assert not early.active
    assert early.done


def test_handle_cancel_mid_run_prevents_pending_callback():
    """A callback can cancel a later handle while the loop is draining."""
    sim = Simulator()
    fired = []
    victim = sim.call_after(2.0, fired.append, "victim")
    sim.call_after(1.0, victim.cancel)
    sim.run()
    assert fired == []
    assert not victim.active


def test_cancelled_handle_can_be_rescheduled_fresh():
    """Refire pattern: cancel the old handle, schedule a new one."""
    sim = Simulator()
    fired = []
    old = sim.call_after(1.0, fired.append, "x")
    old.cancel()
    renewed = sim.call_after(3.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.now == 3.0
    assert renewed.done and not old.done


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.call_after(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert sim.now == 2.0
    assert fired == []
    sim.run()
    assert fired == ["late"]


def test_run_until_advances_clock_when_queue_empty():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_nested_scheduling():
    sim = Simulator()
    times = []

    def outer():
        times.append(sim.now)
        sim.call_after(1.0, inner)

    def inner():
        times.append(sim.now)

    sim.call_after(1.0, outer)
    sim.run()
    assert times == [1.0, 2.0]


def test_event_succeed_runs_callbacks():
    sim = Simulator()
    got = []
    event = sim.event()
    event.add_callback(lambda e: got.append(e.value))
    sim.call_after(1.0, event.succeed, 42)
    sim.run()
    assert got == [42]


def test_event_double_trigger_raises():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_callback_added_after_processing_fires_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed("v")
    sim.run()
    got = []
    event.add_callback(lambda e: got.append(e.value))
    assert got == ["v"]


def test_timeout_value():
    sim = Simulator()
    got = []
    timeout = sim.timeout(3.0, "done")
    timeout.add_callback(lambda e: got.append((sim.now, e.value)))
    sim.run()
    assert got == [(3.0, "done")]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_process_waits_on_timeouts():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield sim.timeout(1.5)
        trace.append(sim.now)
        yield sim.timeout(2.5)
        trace.append(sim.now)

    sim.process(proc())
    sim.run()
    assert trace == [0.0, 1.5, 4.0]


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return "result"

    results = []

    def parent():
        value = yield sim.process(child())
        results.append(value)

    sim.process(parent())
    sim.run()
    assert results == ["result"]


def test_process_interrupt():
    sim = Simulator()
    trace = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            trace.append("slept")
        except Interrupt as intr:
            trace.append(("interrupted", sim.now, intr.cause))

    proc = sim.process(sleeper())
    sim.call_after(2.0, proc.interrupt, "wake")
    sim.run()
    assert trace == [("interrupted", 2.0, "wake")]


def test_process_yield_non_event_raises():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_all_of_waits_for_every_event():
    sim = Simulator()
    done = []

    def proc():
        yield sim.all_of([sim.timeout(1.0), sim.timeout(3.0), sim.timeout(2.0)])
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [3.0]


def test_any_of_fires_on_first():
    sim = Simulator()
    done = []

    def proc():
        yield sim.any_of([sim.timeout(5.0), sim.timeout(1.0)])
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [1.0]


def test_peek_returns_next_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.call_after(4.0, lambda: None)
    sim.call_after(2.0, lambda: None)
    assert sim.peek() == 2.0


def test_determinism_same_schedule_twice():
    def build_and_run():
        sim = Simulator()
        trace = []

        def proc(name, delay):
            for _ in range(3):
                yield sim.timeout(delay)
                trace.append((name, sim.now))

        sim.process(proc("a", 1.0))
        sim.process(proc("b", 0.7))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()


# ------------------------------------------------------- run(until) composition
def test_run_until_event_exactly_at_limit_fires():
    sim = Simulator()
    fired = []
    sim.call_after(2.0, fired.append, "on-limit")
    sim.call_after(2.0 + 1e-9, fired.append, "past-limit")
    sim.run(until=2.0)
    assert fired == ["on-limit"]
    assert sim.now == 2.0


def test_run_until_segments_compose():
    sim = Simulator()
    fired = []
    for t in (0.5, 1.5, 2.5, 3.5):
        sim.call_at(t, fired.append, t)
    sim.run(until=1.0)
    assert fired == [0.5] and sim.now == 1.0
    sim.run(until=2.0)
    assert fired == [0.5, 1.5] and sim.now == 2.0
    # A run over an empty stretch still lands exactly on its limit...
    sim.run(until=2.2)
    assert fired == [0.5, 1.5] and sim.now == 2.2
    # ...and the remaining events are neither lost nor re-fired.
    sim.run()
    assert fired == [0.5, 1.5, 2.5, 3.5] and sim.now == 3.5


def test_run_until_pushed_back_entry_survives_for_next_run():
    # The hot loop pops the first beyond-limit entry and pushes it back;
    # a subsequent run() must still dispatch it exactly once.
    sim = Simulator()
    fired = []
    sim.call_after(1.0, fired.append, "x")
    sim.run(until=0.25)
    sim.run(until=0.5)  # pops + pushes back "x" again
    assert fired == []
    sim.run(until=1.0)
    assert fired == ["x"]


# ----------------------------------------------------- anonymous fast path
def test_call_soon_runs_fifo_with_handles_at_same_time():
    # Ties at equal times break by scheduling sequence, regardless of
    # whether the entry is a Handle or an anonymous fast-path callback.
    sim = Simulator()
    order = []

    def kickoff():
        sim.call_after(0.0, order.append, "handle-1")
        sim.call_soon(order.append, "anon-1")
        sim.call_after(0.0, order.append, "handle-2")
        sim.call_soon(order.append, "anon-2")

    sim.call_soon(kickoff)
    sim.run()
    assert order == ["handle-1", "anon-1", "handle-2", "anon-2"]


def test_call_anon_orders_by_time_then_sequence():
    sim = Simulator()
    order = []
    sim.call_anon(2.0, order.append, ("late",))
    sim.call_anon(1.0, order.append, ("early-1",))
    sim.call_anon(1.0, order.append, ("early-2",))
    sim.call_at(1.0, order.append, "handle-last")
    sim.run()
    assert order == ["early-1", "early-2", "handle-last", "late"]


def test_call_soon_counts_in_dispatched_and_peek():
    sim = Simulator()
    sim.call_soon(lambda: None)
    assert sim.peek() == 0.0
    before = sim.dispatched
    sim.run()
    assert sim.dispatched == before + 1


def test_handle_cancel_between_run_segments():
    # Cancellation must keep working alongside the fast-path entries:
    # cancelled handles are popped and skipped, anonymous entries fire.
    sim = Simulator()
    fired = []
    handle = sim.call_after(1.0, fired.append, "cancelled")
    sim.call_anon(1.0, fired.append, ("kept",))
    sim.run(until=0.5)
    handle.cancel()
    sim.run()
    assert fired == ["kept"]
