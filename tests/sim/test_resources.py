"""Unit tests for the CPU core model."""

import pytest

from repro.sim import Core, CoreSet, Simulator


def test_idle_core_runs_job_after_cost():
    sim = Simulator()
    core = Core(sim, "c")
    done = []
    core.submit(2.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [2.0]


def test_jobs_queue_fifo():
    sim = Simulator()
    core = Core(sim, "c")
    done = []
    core.submit(1.0, done.append, "a")
    core.submit(1.0, done.append, "b")
    core.submit(0.5, done.append, "c")
    sim.run()
    assert done == ["a", "b", "c"]
    assert sim.now == 2.5


def test_core_becomes_idle_between_bursts():
    sim = Simulator()
    core = Core(sim, "c")
    done = []
    core.submit(1.0, done.append, None)
    # Second burst submitted at t=5, well after the first completes.
    sim.call_after(5.0, core.submit, 1.0, lambda: done.append(sim.now))
    sim.run()
    assert sim.now == 6.0


def test_charge_accumulates_without_callback():
    sim = Simulator()
    core = Core(sim, "c")
    assert core.charge(3.0) == 3.0
    assert core.charge(1.0) == 4.0
    assert core.busy_until == 4.0
    assert core.jobs == 2


def test_queue_delay():
    sim = Simulator()
    core = Core(sim, "c")
    assert core.queue_delay == 0.0
    core.charge(2.0)
    assert core.queue_delay == 2.0


def test_negative_cost_rejected():
    sim = Simulator()
    core = Core(sim, "c")
    with pytest.raises(ValueError):
        core.submit(-0.1)


def test_utilization_tracks_busy_fraction():
    sim = Simulator()
    core = Core(sim, "c")
    core.charge(2.0)
    sim.run(until=4.0)
    assert core.utilization() == pytest.approx(0.5)


def test_zero_cost_jobs_preserve_order():
    sim = Simulator()
    core = Core(sim, "c")
    done = []
    core.submit(0.0, done.append, 1)
    core.submit(0.0, done.append, 2)
    sim.run()
    assert done == [1, 2]


def test_coreset_allocates_distinct_cores():
    sim = Simulator()
    cores = CoreSet(sim, 4, "node0")
    a = cores.allocate("verification")
    b = cores.allocate("propagation")
    assert a is not b
    assert cores.allocated == 2
    assert cores.available == 2


def test_coreset_exhaustion_raises():
    sim = Simulator()
    cores = CoreSet(sim, 2, "node0")
    cores.allocate()
    cores.allocate()
    with pytest.raises(RuntimeError):
        cores.allocate("one too many")


def test_coreset_requires_positive_count():
    sim = Simulator()
    with pytest.raises(ValueError):
        CoreSet(sim, 0)
