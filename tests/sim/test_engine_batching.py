"""Batched-execution and fast-forward tests for the kernel run loop.

The untraced run loop drains same-timestamp entries as one batch (one
clock store, one limit check per distinct timestamp).  These tests pin
the behaviours that batching must not change: the ``(time, seq, ...)``
tie-break contract (on the batched *and* the traced per-entry loop),
cancellation of entries already conceptually inside the current batch,
zero-delay rescheduling, and the mid-run :meth:`Simulator.fast_forward`
jump the mesoscale controller relies on.
"""

import pytest

from repro.sim import Simulator
from repro.trace import ListSink, Tracer


def _run_interleaving(traced):
    """One mixed workload; return the observed (label, now) firing log."""
    sim = Simulator()
    if traced:
        sim.tracer = Tracer(sink=ListSink(), enabled=True)
    log = []

    def fire(label):
        log.append((label, sim.now))

    # Two timestamp groups, scheduled out of order on purpose: within a
    # group, firing order must be scheduling (seq) order regardless of
    # scheduling API; across groups, time order wins.
    sim.call_at(2.0, fire, "late-0")
    sim.call_at(1.0, fire, "tie-0")
    sim.call_anon(1.0, fire, ("tie-1",))
    sim.call_at(2.0, fire, "late-1")
    sim.call_at(1.0, fire, "tie-2")

    # Entries *added from inside* the t=1.0 batch: same-time additions
    # get fresh (higher) sequence numbers, so they run after the already
    # queued t=1.0 entries but still at time 1.0, before the t=2.0 batch.
    def spawner():
        sim.call_soon(fire, "soon")
        sim.call_at(1.0, fire, "same-time")

    sim.call_at(1.0, spawner)
    sim.run()
    return log


@pytest.mark.parametrize("traced", [False, True], ids=["batched", "traced"])
def test_time_seq_contract_holds_on_both_loops(traced):
    assert _run_interleaving(traced) == [
        ("tie-0", 1.0),
        ("tie-1", 1.0),
        ("tie-2", 1.0),
        ("soon", 1.0),
        ("same-time", 1.0),
        ("late-0", 2.0),
        ("late-1", 2.0),
    ]


def test_traced_and_batched_loops_agree():
    assert _run_interleaving(False) == _run_interleaving(True)


def test_cancel_within_current_batch_prevents_firing():
    """Cancelling a later same-timestamp handle from an earlier one works.

    When the victim's heap entry is drained as part of the batch the loop
    is already executing, the cancel must still win — the Handle checks
    its flag at fire time, not at pop time.
    """
    sim = Simulator()
    fired = []
    handles = {}

    sim.call_at(1.0, lambda: handles["victim"].cancel())
    handles["victim"] = sim.call_at(1.0, fired.append, "victim")
    sim.call_at(1.0, fired.append, "survivor")
    sim.run()
    assert fired == ["survivor"]
    assert not handles["victim"].active


def test_zero_delay_reschedule_lands_in_same_batch():
    """A callback re-arming itself at ``now`` fires again without the
    clock moving — the batch extends to the new entry."""
    sim = Simulator()
    times = []

    def rearm():
        times.append(sim.now)
        if len(times) < 3:
            sim.call_after(0.0, rearm)

    sim.call_at(1.0, rearm)
    sim.call_at(2.0, times.append, None)
    sim.run()
    assert times == [1.0, 1.0, 1.0, None]


def test_call_soon_from_batch_runs_before_clock_advances():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, lambda: sim.call_soon(seen.append, sim.now))
    sim.call_at(1.0 + 1e-9, seen.append, "next")
    sim.run()
    # call_soon's callback observed now == 1.0, i.e. it ran inside the
    # t=1.0 batch, before the marginally later entry.
    assert seen == [1.0, "next"]


def test_run_until_splits_a_batch_boundary_exactly():
    """Entries at exactly ``until`` fire; the first beyond it is pushed
    back untouched and the clock parks at ``until``."""
    sim = Simulator()
    fired = []
    sim.call_at(1.0, fired.append, "at-limit-0")
    sim.call_at(1.0, fired.append, "at-limit-1")
    sim.call_at(1.5, fired.append, "beyond")
    sim.run(until=1.0)
    assert fired == ["at-limit-0", "at-limit-1"]
    assert sim.now == 1.0
    sim.run()
    assert fired == ["at-limit-0", "at-limit-1", "beyond"]


# ---------------------------------------------------------- fast_forward


def test_fast_forward_shifts_clock_and_pending_entries():
    sim = Simulator()
    fired = []
    sim.call_at(2.0, fired.append, "a")
    sim.call_at(3.0, fired.append, "b")
    sim.fast_forward(10.0)
    assert sim.now == 10.0
    assert sim.peek() == 12.0
    sim.run()
    assert fired == ["a", "b"]
    assert sim.now == 13.0


def test_fast_forward_preserves_tie_order():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.call_at(1.0, fired.append, i)
    sim.fast_forward(4.0)
    sim.run()
    assert fired == list(range(5))
    assert sim.now == 5.0


def test_fast_forward_mid_run_from_a_callback():
    """The jump the meso controller performs: from inside a callback,
    while the loop is draining.  Later entries shift, the stale batch
    timestamp re-triggers the clock-update branch, and cancellation
    handles created before the jump still work after it."""
    sim = Simulator()
    log = []
    sim.call_at(1.0, lambda: sim.fast_forward(5.0))
    sim.call_at(1.0, lambda: log.append(("same-batch", sim.now)))
    sim.call_at(2.0, lambda: log.append(("later", sim.now)))
    doomed = sim.call_at(2.5, log.append, "doomed")
    sim.call_at(2.0, doomed.cancel)
    sim.run()
    # The rest of the t=1.0 batch runs at the post-jump clock (its heap
    # entries were shifted to 6.0 along with everything else).
    assert log == [("same-batch", 6.0), ("later", 7.0)]
    assert sim.now == 7.5  # the cancelled entry still advanced the clock


def test_fast_forward_mid_run_respects_run_limit():
    """A jump past ``until`` stops the loop: shifted entries land beyond
    the limit and are pushed back, and the clock stays at the landed
    time (not clamped back to ``until``)."""
    sim = Simulator()
    fired = []
    sim.call_at(1.0, lambda: sim.fast_forward(3.0))
    sim.call_at(1.5, fired.append, "shifted-beyond-limit")
    sim.run(until=2.0)
    assert fired == []
    assert sim.now == 4.0
    assert sim.peek() == 4.5
    sim.run()
    assert fired == ["shifted-beyond-limit"]


def test_fast_forward_rejects_negative_and_ignores_zero():
    sim = Simulator()
    sim.call_at(1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.fast_forward(-0.5)
    sim.fast_forward(0.0)
    assert sim.now == 0.0
    assert sim.peek() == 1.0
