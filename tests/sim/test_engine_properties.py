"""Property-based tests of the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Core, Simulator


@given(delays=st.lists(st.floats(min_value=0, max_value=100), max_size=40))
def test_callbacks_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.call_after(delay, lambda d=delay: fired.append((sim.now, d)))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert all(t == d for t, d in fired)


@given(delays=st.lists(st.floats(min_value=0, max_value=10), max_size=30))
def test_equal_times_preserve_submission_order(delays):
    sim = Simulator()
    fired = []
    for index, delay in enumerate(delays):
        sim.call_after(round(delay), fired.append, index)
    sim.run()
    # Among equal firing times, submission order is preserved.
    by_time = {}
    for index in fired:
        by_time.setdefault(round(delays[index]), []).append(index)
    for indices in by_time.values():
        assert indices == sorted(indices)


@given(
    jobs=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=5),  # submission time
            st.floats(min_value=0, max_value=2),  # cost
        ),
        max_size=30,
    )
)
def test_core_work_conservation(jobs):
    """A core's total busy time equals the sum of job costs, and jobs
    complete in submission order."""
    sim = Simulator()
    core = Core(sim, "c")
    completions = []
    jobs = sorted(jobs)
    for at, cost in jobs:
        sim.call_at(at, core.submit, cost, lambda: completions.append(sim.now))
    sim.run()
    assert len(completions) == len(jobs)
    assert completions == sorted(completions)
    assert core.busy_time == sum(cost for _, cost in jobs)
    if jobs:
        # The last completion is bounded below by total work.
        assert completions[-1] >= sum(cost for _, cost in jobs) * 0  # sanity


@given(
    spec=st.lists(
        st.tuples(st.floats(min_value=0.01, max_value=3), st.booleans()),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=30)
def test_processes_accumulate_timeouts(spec):
    sim = Simulator()
    trace = []

    def proc():
        for delay, _ in spec:
            yield sim.timeout(delay)
            trace.append(sim.now)

    sim.process(proc())
    sim.run()
    expected = []
    acc = 0.0
    for delay, _ in spec:
        acc += delay
        expected.append(acc)
    assert len(trace) == len(expected)
    for got, want in zip(trace, expected):
        assert abs(got - want) < 1e-9
