"""Tests for the learned adversary: the action space, both search
strategies, the reward, and end-to-end seeded determinism (including
artifact byte-identity across worker counts)."""

import filecmp
import json

import pytest

from repro.verify import (
    DIMENSIONS,
    BanditStrategy,
    EpisodeResult,
    EpisodeSpec,
    EvolutionStrategy,
    FAULT_KINDS,
    compute_reward,
    fault,
    resolve_strategies,
    run_episode,
    run_search,
)
from repro.verify.search import (
    LEADERBOARD_NAME,
    MAX_PLAN_FAULTS,
    SCRIPTED_PLANS,
    ActionContext,
    plan_key,
)

#: short load window — determinism and wiring are duration-independent.
SHORT = dict(duration=0.4, drain=0.6)

CTX = ActionContext(duration=0.4, n_nodes=4)


# ------------------------------------------------------------ action space
def test_every_dimension_samples_a_registered_fault():
    import random

    for name, dimension in DIMENSIONS.items():
        spec = dimension.sample(random.Random(1), CTX)
        assert spec.kind in FAULT_KINDS, name
        again = dimension.sample(random.Random(1), CTX)
        assert spec == again, "sampling must be a pure function of the rng"


def test_every_dimension_mutates_within_its_kind():
    import random

    for name, dimension in DIMENSIONS.items():
        spec = dimension.sample(random.Random(2), CTX)
        mutated = dimension.mutate(random.Random(3), spec, CTX)
        assert mutated.kind == spec.kind, name
        assert mutated.kind in FAULT_KINDS


def test_plan_key_is_canonical():
    plan = (fault("delay", extra=1e-3, p=0.5),)
    assert plan_key(plan) == plan_key((fault("delay", p=0.5, extra=1e-3),))
    assert plan_key(plan) != plan_key((fault("delay", extra=2e-3, p=0.5),))


def test_scripted_references_are_the_paper_worst_attacks():
    names = [name for name, _ in SCRIPTED_PLANS]
    assert names == ["rbft-worst1", "rbft-worst2"]


# -------------------------------------------------------------- strategies
def _drive(strategy_cls, seed, rounds=3, batch=4):
    """Run ask/tell rounds with a synthetic deterministic reward."""
    strategy = strategy_cls(seed, CTX)
    history = []
    for _ in range(rounds):
        plans = strategy.ask(batch)
        assert len(plans) <= batch
        for plan in plans:
            assert 0 < len(plan) <= MAX_PLAN_FAULTS
        # Reward long plans slightly so tell() has a gradient to follow.
        rewards = [len(plan) / float(MAX_PLAN_FAULTS) for plan in plans]
        strategy.tell(plans, rewards)
        history.append([plan_key(plan) for plan in plans])
    return history


@pytest.mark.parametrize("strategy_cls", [BanditStrategy, EvolutionStrategy])
def test_strategies_are_deterministic_given_a_seed(strategy_cls):
    assert _drive(strategy_cls, seed=5) == _drive(strategy_cls, seed=5)
    assert _drive(strategy_cls, seed=5) != _drive(strategy_cls, seed=6)


@pytest.mark.parametrize("strategy_cls", [BanditStrategy, EvolutionStrategy])
def test_strategies_do_not_repropose_within_a_batch(strategy_cls):
    strategy = strategy_cls(7, CTX)
    plans = strategy.ask(8)
    keys = [plan_key(plan) for plan in plans]
    assert len(keys) == len(set(keys))


def test_bandit_credits_every_contributing_arm():
    strategy = BanditStrategy(11, CTX)
    plans = strategy.ask(6)
    strategy.tell(plans, [1.0] * len(plans))
    credited = sum(strategy.counts.values())
    # Paired proposals credit two arms, singles one.
    assert credited >= len(plans)
    assert sum(strategy.sums.values()) == pytest.approx(credited)


def test_resolve_strategies():
    assert resolve_strategies("both") == ("bandit", "evolve")
    assert resolve_strategies("all") == ("bandit", "evolve")
    assert resolve_strategies("bandit") == ("bandit",)
    assert resolve_strategies("evolve") == ("evolve",)
    with pytest.raises(ValueError):
        resolve_strategies("gradient-descent")


# ------------------------------------------------------------------ reward
def test_compute_reward_math():
    base_spec = EpisodeSpec(seed=0)
    baseline = EpisodeResult(
        spec=base_spec, digest="0" * 64, sent=100, completed=100,
        mean_latency=2e-3,
    )
    attacked = EpisodeResult(
        spec=base_spec, digest="1" * 64, sent=100, completed=25,
        mean_latency=4e-3,
    )
    verdict = compute_reward(baseline, attacked)
    assert verdict["degradation"] == pytest.approx(0.75)
    assert verdict["latency_ratio"] == pytest.approx(2.0)
    # degradation + 0.05 * min(latency_ratio - 1, 1)
    assert verdict["reward"] == pytest.approx(0.80)


def test_compute_reward_never_rewards_speedups():
    base_spec = EpisodeSpec(seed=0)
    baseline = EpisodeResult(
        spec=base_spec, digest="0" * 64, sent=100, completed=100,
        mean_latency=2e-3,
    )
    faster = EpisodeResult(
        spec=base_spec, digest="1" * 64, sent=100, completed=110,
        mean_latency=1e-3,
    )
    assert compute_reward(baseline, faster)["reward"] == 0.0


# ------------------------------------------------- instance-change trigger
def test_ic_trigger_fault_runs_clean_and_replays_identically():
    spec = EpisodeSpec(
        seed=13, plan=(fault("ic-trigger", node=2, at=0.2),), **SHORT
    )
    first = run_episode(spec)
    second = run_episode(spec)
    # The voting node is marked faulty, so the lone malicious vote is
    # within the fault model — no invariant violation, stable digest.
    assert first.ok, first.violations
    assert first.digest == second.digest


# -------------------------------------------------------------- end-to-end
def test_run_search_rejects_unknown_strategy_and_protocol():
    with pytest.raises(ValueError):
        run_search(strategy="simulated-annealing", budget=0)
    with pytest.raises(ValueError):
        run_search(protocol="pbft", budget=0, **SHORT)


def test_run_search_is_deterministic_across_worker_counts(tmp_path):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    serial = run_search(
        master_seed=2, budget=6, jobs=1, out_dir=str(serial_dir),
        top_n=3, **SHORT
    )
    parallel = run_search(
        master_seed=2, budget=6, jobs=4, out_dir=str(parallel_dir),
        top_n=3, **SHORT
    )
    names = sorted(p.name for p in serial_dir.iterdir())
    assert names == sorted(p.name for p in parallel_dir.iterdir())
    assert LEADERBOARD_NAME in names
    match, mismatch, errors = filecmp.cmpfiles(
        str(serial_dir), str(parallel_dir), names, shallow=False
    )
    assert mismatch == [] and errors == [], "artifacts must be byte-identical"
    assert [e.reward for e in serial.entries] == [
        e.reward for e in parallel.entries
    ]


def test_run_search_report_and_leaderboard_shape(tmp_path):
    report = run_search(
        master_seed=4, budget=4, strategy="bandit", jobs=1,
        out_dir=str(tmp_path), top_n=2, **SHORT
    )
    assert report.strategies == ("bandit",)
    assert report.baseline.completed > 0
    assert set(report.scripted) == {"rbft-worst1", "rbft-worst2"}
    rewards = [entry.reward for entry in report.entries]
    assert rewards == sorted(rewards, reverse=True)
    # budget-many searched proposals plus the scripted references.
    assert report.evaluations <= 4 + len(report.scripted)
    with open(tmp_path / LEADERBOARD_NAME, "r", encoding="utf-8") as fileobj:
        board = json.load(fileobj)
    assert board["format"] == 1
    assert board["protocol"] == "rbft"
    assert board["master_seed"] == 4
    assert len(board["entries"]) == len(report.entries)
    for entry, artifact in zip(board["entries"], report.entries):
        assert entry["artifact"] == artifact.artifact
        assert (tmp_path / entry["artifact"]).exists()
    # Leaderboard artifacts replay: spec + digest round-trip.
    from repro.verify import check_replay

    champion = tmp_path / board["entries"][0]["artifact"]
    assert check_replay(str(champion))["match"]


def test_champions_are_shrunk_to_load_bearing_plans(tmp_path):
    report = run_search(
        master_seed=2, budget=6, jobs=1, out_dir=str(tmp_path),
        top_n=1, **SHORT
    )
    best = report.best
    assert best is not None
    # ddmin guarantee: dropping any single fault loses >=5% of the
    # champion's reward, otherwise the shrinker would have dropped it.
    assert 0 < len(best.plan) <= MAX_PLAN_FAULTS
