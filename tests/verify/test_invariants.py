"""Unit tests of the invariant checkers over synthetic trace events."""

from types import SimpleNamespace

from repro.trace import TraceEvent
from repro.trace.events import K_IC_VOTE, K_PHASE, K_STAGE, K_STATE_TRANSFER
from repro.verify import InvariantSuite
from repro.verify.invariants import MAX_VIOLATIONS


class StubMonitor:
    def __init__(self, breach):
        self.breach = breach

    def observes_breach(self):
        return self.breach


class StubNode:
    def __init__(self, name, executed_ids=(), executed_count=None,
                 master_instance=0, monitor=None):
        self.name = name
        self.executed_ids = set(executed_ids)
        self.executed_count = (
            executed_count if executed_count is not None
            else len(self.executed_ids)
        )
        self.master_instance = master_instance
        self.monitor = monitor or StubMonitor(False)


def make_suite(nodes=(), faulty=(), expect_complete=True):
    """A suite wired to stub nodes, bypassing a real deployment."""
    suite = InvariantSuite(expect_complete=expect_complete)
    suite.faulty = frozenset(faulty)
    suite.nodes = {node.name: node for node in nodes}
    suite.deployment = SimpleNamespace(
        nodes=list(nodes), sim=SimpleNamespace(now=0.0)
    )
    return suite


def ordered(t, engine, seq, rids, view=0):
    return TraceEvent(t, K_PHASE, engine,
                      {"phase": "ordered", "seq": seq, "view": view,
                       "rids": tuple(rids)})


def committed(t, engine, seq, digest, view=0):
    return TraceEvent(t, K_PHASE, engine,
                      {"phase": "committed", "seq": seq, "view": view,
                       "digest": digest})


def executed(t, node, client, rid):
    return TraceEvent(t, K_STAGE, node,
                      {"stage": "execution", "client": client, "rid": rid})


def ic_vote(t, node, reason):
    return TraceEvent(t, K_IC_VOTE, node,
                      {"reason": reason, "cpi": 1, "choice": 1})


# --------------------------------------------------- ordered-batch agreement
def test_matching_batches_are_no_violation():
    suite = make_suite()
    suite.append(ordered(0.1, "node0/i0", 1, [("c0", 1)]))
    suite.append(ordered(0.2, "node1/i0", 1, [("c0", 1)]))
    assert suite.finalize() == []


def test_diverging_batches_violate_agreement():
    suite = make_suite()
    suite.append(ordered(0.1, "node0/i0", 1, [("c0", 1)]))
    suite.append(ordered(0.2, "node1/i0", 1, [("c0", 2)]))
    names = {v.invariant for v in suite.violations}
    assert "order-agreement" in names
    # The violation points at the trace event that exposed it.
    bad = next(v for v in suite.violations if v.invariant == "order-agreement")
    assert bad.event["kind"] == K_PHASE
    assert bad.t == 0.2


def test_instances_are_compared_separately():
    suite = make_suite()
    suite.append(ordered(0.1, "node0/i0", 1, [("c0", 1)]))
    suite.append(ordered(0.2, "node0/i1", 1, [("c0", 2)]))  # other instance
    assert suite.violations == []


def test_faulty_nodes_do_not_count():
    suite = make_suite(faulty={"node3"})
    suite.append(ordered(0.1, "node0/i0", 1, [("c0", 1)]))
    suite.append(ordered(0.2, "node3/i0", 1, [("c0", 2)]))
    assert suite.violations == []


# ------------------------------------------------------- commit certificates
def test_conflicting_commit_digests_violate():
    suite = make_suite()
    suite.append(committed(0.1, "node0/i0", 5, "aa"))
    suite.append(committed(0.2, "node1/i0", 5, "bb"))
    assert {v.invariant for v in suite.violations} == {"commit-certificate"}


def test_same_digest_or_other_view_is_fine():
    suite = make_suite()
    suite.append(committed(0.1, "node0/i0", 5, "aa"))
    suite.append(committed(0.2, "node1/i0", 5, "aa"))
    suite.append(committed(0.3, "node2/i0", 5, "bb", view=1))  # new view
    assert suite.violations == []


# ----------------------------------------------------- execution consistency
def test_duplicate_execution_is_caught_online():
    suite = make_suite()
    suite.append(executed(0.1, "node0", "c0", 1))
    suite.append(executed(0.2, "node0", "c0", 1))
    assert {v.invariant for v in suite.violations} == {"exec-duplicate"}


def test_cross_node_reordering_is_caught():
    suite = make_suite()
    suite.append(executed(0.1, "node0", "c0", 1))
    suite.append(executed(0.2, "node0", "c0", 2))
    suite.append(executed(0.3, "node1", "c0", 2))
    suite.append(executed(0.4, "node1", "c0", 1))  # swapped vs node0
    assert {v.invariant for v in suite.violations} == {"exec-order"}


def test_finalize_flags_skipped_master_requests():
    nodes = [
        StubNode("node0", executed_ids=[("c0", 1), ("c0", 2)]),
        StubNode("node1", executed_ids=[("c0", 1), ("c0", 2)]),
    ]
    suite = make_suite(nodes)
    suite.append(ordered(0.1, "node0/i0", 1, [("c0", 1), ("c0", 2), ("c0", 3)]))
    suite.append(ordered(0.1, "node1/i0", 1, [("c0", 1), ("c0", 2), ("c0", 3)]))
    violations = {v.invariant for v in suite.finalize()}
    assert "exec-skip" in violations


def test_finalize_flags_executed_set_divergence():
    nodes = [
        StubNode("node0", executed_ids=[("c0", 1)]),
        StubNode("node1", executed_ids=[("c0", 2)]),
    ]
    suite = make_suite(nodes)
    violations = {v.invariant for v in suite.finalize()}
    assert "exec-agreement" in violations


def test_state_transfer_waives_completeness_but_not_duplicates():
    nodes = [
        StubNode("node0", executed_ids=[("c0", 1)], executed_count=2),
        StubNode("node1", executed_ids=[("c0", 2)]),
    ]
    suite = make_suite(nodes)
    suite.append(TraceEvent(0.1, K_STATE_TRANSFER, "node0/i0",
                            {"src": 1, "dst": 9, "via": "stable-checkpoint"}))
    violations = {v.invariant for v in suite.finalize()}
    # Divergent sets are excused by the transfer; the duplicate is not.
    assert "exec-agreement" not in violations
    assert "exec-duplicate" in violations


def test_incomplete_episodes_skip_set_comparisons():
    nodes = [
        StubNode("node0", executed_ids=[("c0", 1)]),
        StubNode("node1", executed_ids=[]),  # stalled behind a partition
    ]
    suite = make_suite(nodes, expect_complete=False)
    assert suite.finalize() == []


# ---------------------------------------------------- monitoring consistency
def test_self_initiated_vote_without_breach_violates():
    nodes = [StubNode("node0", monitor=StubMonitor(False))]
    suite = make_suite(nodes)
    suite.append(ic_vote(0.1, "node0", "throughput-delta"))
    assert {v.invariant for v in suite.violations} == {"monitor-consistency"}


def test_vote_with_observed_breach_is_fine():
    nodes = [StubNode("node0", monitor=StubMonitor(True))]
    suite = make_suite(nodes)
    suite.append(ic_vote(0.1, "node0", "latency-lambda"))
    assert suite.violations == []


def test_quorum_following_votes_are_exempt():
    nodes = [StubNode("node0", monitor=StubMonitor(False))]
    suite = make_suite(nodes)
    suite.append(ic_vote(0.1, "node0", "join-support"))
    suite.append(ic_vote(0.2, "node0", "adopt"))
    assert suite.violations == []


# ------------------------------------------------------------ suite plumbing
def test_digest_is_deterministic_and_event_sensitive():
    def digest_of(events):
        suite = make_suite()
        for event in events:
            suite.append(event)
        suite.finalize()
        return suite.digest()

    events = [ordered(0.1, "node0/i0", 1, [("c0", 1)]),
              committed(0.2, "node0/i0", 1, "aa")]
    assert digest_of(events) == digest_of(events)
    assert digest_of(events) != digest_of(events[:1])


def test_violations_cap_at_max():
    suite = make_suite()
    for i in range(MAX_VIOLATIONS + 50):
        suite.append(executed(0.1 * i, "node0", "c0", 7))  # all duplicates
    assert len(suite.violations) == MAX_VIOLATIONS
    assert suite._state.dropped_violations == 49  # first event is legal
