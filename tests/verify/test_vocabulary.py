"""Unit tests of the fault vocabulary, plans and the interceptor."""

import random

import pytest

from repro.core import RBFTConfig
from repro.experiments.deployments import build_rbft
from repro.verify import NetworkInterceptor, Rule, fault, install_plan
from repro.verify.vocabulary import FAULT_KINDS, FaultSpec


def build(seed=1):
    config = RBFTConfig(
        f=1, batch_size=8, batch_delay=1e-3, monitoring_period=0.1,
        min_monitor_requests=10, flood_threshold=32,
    )
    return build_rbft(config, n_clients=6, seed=seed)


def test_unknown_fault_kind_is_rejected():
    with pytest.raises(ValueError):
        fault("meteor-strike")


def test_fault_spec_round_trips_through_dict():
    spec = fault("crash", node=2, at=0.3, until=0.9)
    assert FaultSpec.from_dict(spec.to_dict()) == spec


def test_every_vocabulary_kind_installs():
    for kind in FAULT_KINDS:
        handle = install_plan(build(), (fault(kind),))
        assert handle is not None, kind


def test_expect_complete_reflects_the_fault_model():
    # In-model Byzantine faults keep the completion claim ...
    assert install_plan(build(), ()).expect_complete
    assert install_plan(build(), (fault("silent-replicas"),)).expect_complete
    assert install_plan(build(), (fault("junk-clients"),)).expect_complete
    # ... network faults legitimately stall in-flight requests ...
    assert not install_plan(build(), (fault("crash"),)).expect_complete
    assert not install_plan(build(), (fault("partition"),)).expect_complete
    # ... and so does corrupting more than f nodes.
    both = (fault("rbft-worst1"), fault("rbft-worst2"))
    handle = install_plan(build(), both)
    assert len(handle.faulty) > 1
    assert not handle.expect_complete


def test_installers_classify_faulty_nodes():
    handle = install_plan(build(), (fault("silent-replicas", node=2),))
    assert handle.faulty == {"node2"}
    handle = install_plan(build(), (fault("throttled-master"),))
    assert handle.faulty == {"node0"}
    handle = install_plan(build(), (fault("junk-clients"),))
    assert handle.faulty == set()


# --------------------------------------------------------------- interceptor
def test_rule_endpoint_matching():
    rule = Rule("drop", src=frozenset({"a"}), dst=None)
    assert rule.matches_endpoints("a", "x")
    assert not rule.matches_endpoints("b", "x")
    wildcard = Rule("drop")
    assert wildcard.matches_endpoints("anything", "at-all")


def test_isolate_and_partition_expand_to_drop_rules():
    dep = build()
    interceptor = NetworkInterceptor(dep, rng=random.Random(0))
    interceptor.isolate("node3", start=0.1, until=0.9)
    assert len(interceptor.rules) == 2
    interceptor.partition([["node0", "node1"], ["node2", "node3"]])
    assert len(interceptor.rules) == 4  # + one drop per crossing direction
    assert all(channel.intercept is not None for channel in interceptor.channels)
    interceptor.uninstall()
    assert all(channel.intercept is None for channel in interceptor.channels)


def test_isolated_node_is_cut_off_for_the_window():
    dep = build()
    interceptor = NetworkInterceptor(dep).isolate("node3", until=10.0)
    victim = next(
        c for c in interceptor.channels if c.src == "node0" and c.dst == "node3"
    )
    outbound = next(
        c for c in interceptor.channels if c.src == "node3" and c.dst == "node0"
    )
    before = (victim.delivered, interceptor.dropped)
    # Drive the hook directly: messages in either direction vanish.
    victim.intercept(victim, _Probe())
    outbound.intercept(outbound, _Probe())
    dep.sim.run(until=1.0)
    assert victim.delivered == before[0]
    assert interceptor.dropped == before[1] + 2


def test_rules_expire_outside_their_window():
    dep = build()
    interceptor = NetworkInterceptor(dep).isolate("node3", start=5.0, until=6.0)
    channel = next(
        c for c in interceptor.channels if c.src == "node0" and c.dst == "node3"
    )
    channel.intercept(channel, _Probe())  # t=0: before the window
    dep.sim.run(until=1.0)
    assert interceptor.dropped == 0
    assert channel.delivered == 1


def test_delay_rule_defers_delivery():
    dep = build()
    interceptor = NetworkInterceptor(dep).delay(0.25, src="node0", dst="node1")
    channel = next(
        c for c in interceptor.channels if c.src == "node0" and c.dst == "node1"
    )
    channel.intercept(channel, _Probe())
    dep.sim.run(until=0.2)
    assert channel.delivered == 0  # still in flight
    dep.sim.run(until=1.0)
    assert channel.delivered == 1
    assert interceptor.delayed == 1


def test_duplicate_rule_delivers_twice():
    dep = build()
    interceptor = NetworkInterceptor(dep).duplicate(src="node0", dst="node1")
    channel = next(
        c for c in interceptor.channels if c.src == "node0" and c.dst == "node1"
    )
    channel.intercept(channel, _Probe())
    dep.sim.run(until=1.0)
    assert channel.delivered == 2
    assert interceptor.duplicated == 1


class _Probe:
    """Minimal message stand-in for driving the hook directly."""

    sender = "node0"

    def wire_size(self):
        return 64
