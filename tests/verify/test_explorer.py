"""End-to-end tests of episodes, replay artifacts, shrinking and the
mutation check: a deliberately broken engine must be caught."""

import json

from repro.verify import (
    EpisodeSpec,
    check_replay,
    explore,
    fault,
    load_episode,
    make_spec,
    run_episode,
    shrink,
    write_episode,
)

#: short load window — safety invariants are duration-independent.
SHORT = dict(duration=0.4, drain=0.6)

#: the validated counterexample recipe for the lowered commit quorum:
#: a throttled master forces view changes while the delay skews message
#: arrival enough that prepared certificates diverge across replicas.
MUTANT_PLAN = (
    fault("throttled-master", rate=400.0),
    fault("delay", extra=5e-3, p=0.5),
)
MUTANT_SEED = 3


def break_commit_quorum(deployment):
    """Lower COMMIT from 2f+1 to f: commit no longer implies quorum."""
    for node in deployment.nodes:
        for engine in node.engines:
            engine._commit_votes.threshold = engine.config.f


def test_episode_spec_round_trips_through_json():
    spec = EpisodeSpec(seed=42, plan=MUTANT_PLAN, duration=0.7)
    assert EpisodeSpec.from_json(spec.to_json()) == spec


def test_episode_spec_omits_default_topology_for_artifact_compat():
    # Pre-WAN artifacts carry no "topology" key; regenerating them must
    # stay byte-identical (same rule as the "protocol" field).
    assert "topology" not in EpisodeSpec(seed=1).to_dict()
    wan = EpisodeSpec(seed=1, topology="wan3")
    assert wan.to_dict()["topology"] == "wan3"
    assert EpisodeSpec.from_json(wan.to_json()) == wan


def test_wan_episode_is_deterministic_and_distinct():
    flat = run_episode(EpisodeSpec(seed=7, **SHORT))
    first = run_episode(EpisodeSpec(seed=7, topology="wan3", **SHORT))
    second = run_episode(EpisodeSpec(seed=7, topology="wan3", **SHORT))
    assert first.ok, first.violations
    assert first.digest == second.digest
    assert first.digest != flat.digest  # the geo layout must matter


def test_make_spec_is_deterministic():
    assert make_spec(0, 5) == make_spec(0, 5)
    assert make_spec(0, 5) != make_spec(0, 6)
    assert all(make_spec(0, i).plan for i in range(20))


def test_fault_free_episode_is_clean_and_replays_identically():
    spec = EpisodeSpec(seed=7, **SHORT)
    first = run_episode(spec)
    second = run_episode(spec)
    assert first.ok, first.violations
    assert first.events_seen > 0
    assert first.completed >= 0.95 * first.sent
    assert first.digest == second.digest
    assert first.sent == second.sent and first.completed == second.completed


def test_replay_artifact_round_trips(tmp_path):
    result = run_episode(EpisodeSpec(seed=9, **SHORT))
    path = write_episode(result, str(tmp_path / "episode.json"))
    record = load_episode(path)
    assert record["digest"] == result.digest
    verdict = check_replay(path)
    assert verdict["match"], verdict
    assert verdict["violations"] == sorted(result.violated())


def test_check_replay_detects_digest_drift(tmp_path):
    result = run_episode(EpisodeSpec(seed=9, **SHORT))
    path = write_episode(result, str(tmp_path / "episode.json"))
    record = load_episode(path)
    record["digest"] = "0" * 64
    with open(path, "w", encoding="utf-8") as fileobj:
        json.dump(record, fileobj)
    assert not check_replay(path)["match"]


def test_stock_engine_survives_the_mutant_plan():
    result = run_episode(EpisodeSpec(seed=MUTANT_SEED, plan=MUTANT_PLAN))
    assert result.ok, result.violations


def test_lowered_commit_quorum_is_caught_deterministically():
    spec = EpisodeSpec(seed=MUTANT_SEED, plan=MUTANT_PLAN)
    first = run_episode(spec, mutate=break_commit_quorum)
    assert "order-agreement" in first.violated(), first.violations
    # The counterexample replays byte-identically: same digest, same
    # violation set, pointing at the same trace instant.
    second = run_episode(spec, mutate=break_commit_quorum)
    assert first.digest == second.digest
    assert first.violated() == second.violated()
    assert [v["t"] for v in first.violations] == [
        v["t"] for v in second.violations
    ]


def inject_rogue_vote(deployment):
    """Make node1 vote INSTANCE-CHANGE with no observed breach — a
    plan-independent monitoring-consistency violation."""
    deployment.sim.call_after(
        0.2, deployment.nodes[1].vote_instance_change, "rogue"
    )


def test_shrinker_drops_irrelevant_faults():
    # The rogue vote fires no matter what the plan does, so both faults
    # are irrelevant and the 1-minimal counterexample is the empty plan.
    spec = EpisodeSpec(
        seed=5, plan=(fault("junk-clients"), fault("duplicate", p=0.2)),
        **SHORT
    )
    original = run_episode(spec, mutate=inject_rogue_vote)
    assert "monitor-consistency" in original.violated(), original.violations
    minimal_spec, minimal = shrink(
        spec, frozenset({"monitor-consistency"}), mutate=inject_rogue_vote
    )
    assert "monitor-consistency" in minimal.violated()
    assert minimal_spec.plan == ()


def test_shrinker_keeps_load_bearing_faults():
    # Both faults are needed for the quorum mutant to diverge: the
    # throttled master forces view changes, the delay skews arrival.
    # The plan is already 1-minimal and must come back unchanged.
    spec = EpisodeSpec(seed=MUTANT_SEED, plan=MUTANT_PLAN)
    minimal_spec, minimal = shrink(
        spec, frozenset({"order-agreement"}), mutate=break_commit_quorum
    )
    assert minimal_spec.plan == spec.plan
    assert "order-agreement" in minimal.violated()


def test_explore_writes_episode_artifacts(tmp_path):
    report = explore(
        master_seed=1, episodes=2, jobs=1, out_dir=str(tmp_path),
        shrink_failures=False, **SHORT
    )
    assert len(report.results) == 2
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "episode-0000.json", "episode-0001.json",
    ]
    for path in report.artifacts:
        record = load_episode(path)
        assert EpisodeSpec.from_dict(record["spec"]).plan
