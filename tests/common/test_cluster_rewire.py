"""Regression tests for Cluster.rewire: no stale channel caches.

``Machine.broadcast_to_nodes`` and ``ClientPort.broadcast`` memoise
their fan-out channel lists, and every endpoint keeps per-destination
channel dicts plus an ``_inbound`` registration list.  Rebinding a
deployment to a different topology creates brand-new Channel objects;
if any of those caches survived, later traffic would ride the old,
disconnected channels — delivered nowhere, or with the previous
topology's latency.  These tests rebuild the wiring twice with
different region maps and assert the caches were invalidated.
"""

from repro.common import Cluster, ClusterConfig
from repro.net.message import Message
from repro.net.topology import flat, wan3, wan5
from repro.sim import Simulator


class Ping(Message):
    __slots__ = ()


def _collect(machines):
    inboxes = {machine.name: [] for machine in machines}
    for machine in machines:
        machine.handler = inboxes[machine.name].append
    return inboxes


def test_rewire_replaces_node_channels():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1, topology=wan3()))
    old_channels = dict(cluster.machines[0].channels_to_nodes)
    # Materialise the broadcast cache under the old wiring.
    inboxes = _collect(cluster.machines)
    cluster.machines[0].broadcast_to_nodes(Ping("node0"))
    sim.run()
    assert all(len(inboxes[m.name]) == 1 for m in cluster.machines[1:])

    cluster.rewire(wan5())
    for name, channel in cluster.machines[0].channels_to_nodes.items():
        assert channel is not old_channels[name], "stale channel survived rewire"

    cluster.machines[0].broadcast_to_nodes(Ping("node0"))
    sim.run()
    # Delivered exactly once more — on the new channels, not the old.
    assert all(len(inboxes[m.name]) == 2 for m in cluster.machines[1:])


def test_rewire_updates_latency_arithmetic():
    def broadcast_span(cluster, sim):
        inboxes = _collect(cluster.machines)
        start = sim.now
        cluster.machines[0].broadcast_to_nodes(Ping("node0"))
        sim.run()
        arrival = {}
        for machine in cluster.machines[1:]:
            assert len(inboxes[machine.name]) >= 1
            arrival[machine.name] = sim.now - start
        return arrival

    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    flat_span = max(broadcast_span(cluster, sim).values())

    cluster.rewire(wan3())
    wan_span = max(broadcast_span(cluster, sim).values())
    # node0 (us-east) -> node2 (ap-south) pays ~90 ms of one-way matrix
    # latency; the flat LAN pays microseconds.
    assert wan_span > flat_span + 0.05

    cluster.rewire(None)
    back_span = max(broadcast_span(cluster, sim).values())
    assert back_span < 0.01


def test_rewire_rebinds_client_ports():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    port = cluster.add_client("client0")
    received = []
    port.handler = received.append
    old_up = dict(port.channels_to_nodes)

    cluster.rewire(wan3())
    assert port.region == "us-east"
    for name, channel in port.channels_to_nodes.items():
        assert channel is not old_up[name]

    inboxes = _collect(cluster.machines)
    port.broadcast(Ping("client0"))
    sim.run()
    assert all(len(inbox) == 1 for inbox in inboxes.values())
    cluster.machines[0].send_to_client("client0", Ping("node0"))
    sim.run()
    assert len(received) == 1


def test_rewire_updates_region_metadata_and_nic_bandwidth():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1, topology=wan3()))
    assert [m.region for m in cluster.machines] == [
        "us-east", "eu-west", "ap-south", "us-east",
    ]
    cluster.rewire(wan5())
    assert [m.region for m in cluster.machines] == [
        "us-east", "us-west", "eu-west", "ap-south",
    ]
    cluster.rewire(None)
    assert all(m.region is None for m in cluster.machines)
    assert all(
        m.client_nic.bandwidth == cluster.config.nic_bandwidth
        for m in cluster.machines
    )


def test_rewire_equivalent_flat_topology_preserves_wiring_order():
    """Rewiring to flat(k) recreates the same channel graph shape."""
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    before = [(c.src, c.dst) for c in cluster.network.channels]
    cluster.rewire(flat(3))
    after = [(c.src, c.dst) for c in cluster.network.channels]
    assert after == before
