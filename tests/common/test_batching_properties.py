"""Property-based tests for the batcher and blacklists."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import Batcher
from repro.crypto import BoundedBlacklist
from repro.sim import Simulator


@given(
    arrivals=st.lists(st.floats(min_value=0, max_value=0.1), min_size=1, max_size=60),
    max_size=st.integers(1, 10),
    max_delay=st.floats(min_value=1e-4, max_value=0.05),
)
@settings(max_examples=50)
def test_batcher_loses_and_duplicates_nothing(arrivals, max_size, max_delay):
    sim = Simulator()
    flushed = []
    batcher = Batcher(sim, max_size, max_delay, flushed.extend)
    for i, at in enumerate(sorted(arrivals)):
        sim.call_at(at, batcher.add, i)
    sim.run()
    assert flushed == sorted(flushed)  # FIFO
    assert flushed == list(range(len(arrivals)))  # nothing lost/duplicated


@given(
    arrivals=st.integers(1, 100),
    max_size=st.integers(1, 10),
)
@settings(max_examples=30)
def test_batches_never_exceed_max_size(arrivals, max_size):
    sim = Simulator()
    batches = []
    batcher = Batcher(sim, max_size, 1e-3, batches.append)
    for i in range(arrivals):
        batcher.add(i)
    sim.run()
    assert all(len(batch) <= max_size for batch in batches)
    assert sum(len(batch) for batch in batches) == arrivals


@given(
    bans=st.lists(st.sampled_from("abcdefgh"), max_size=60),
    capacity=st.integers(0, 5),
)
def test_bounded_blacklist_never_exceeds_capacity(bans, capacity):
    blacklist = BoundedBlacklist(capacity)
    for replica in bans:
        blacklist.ban(replica)
        assert len(blacklist) <= capacity
    # The most recent distinct bans are the ones retained.
    if capacity > 0 and bans:
        distinct_recent = []
        for replica in reversed(bans):
            if replica not in distinct_recent:
                distinct_recent.append(replica)
            if len(distinct_recent) == capacity:
                break
        for replica in distinct_recent:
            assert blacklist.banned(replica)
