"""Unit tests for cluster wiring."""

import pytest

from repro.common import Cluster, ClusterConfig
from repro.net import Message
from repro.sim import Simulator


class Ping(Message):
    pass


def test_cluster_size_is_3f_plus_1():
    assert ClusterConfig(f=1).n == 4
    assert ClusterConfig(f=2).n == 7


def test_machines_fully_connected():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    for machine in cluster.machines:
        peers = set(machine.channels_to_nodes)
        assert peers == set(cluster.node_names()) - {machine.name}


def test_separate_nics_per_peer_plus_client_nic():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1, separate_nics=True))
    machine = cluster.machines[0]
    # 3 peer NICs + 1 client NIC = 3f+1 NICs, as in §V.
    assert len(machine.peer_nics) == 3
    assert machine.client_nic not in machine.peer_nics.values()


def test_shared_nic_mode():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1, separate_nics=False))
    machine = cluster.machines[0]
    nics = {channel.src_nic for channel in machine.channels_to_nodes.values()}
    assert len(nics) == 1
    assert machine.client_nic in nics


def test_node_to_node_delivery():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    got = []
    cluster.machines[1].handler = got.append
    cluster.machines[0].send_to_node("node1", Ping("node0"))
    sim.run()
    assert len(got) == 1
    assert got[0].sender == "node0"


def test_broadcast_reaches_all_other_nodes():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    got = {name: [] for name in cluster.node_names()}
    for machine in cluster.machines:
        machine.handler = got[machine.name].append
    cluster.machines[2].broadcast_to_nodes(Ping("node2"))
    sim.run()
    assert len(got["node2"]) == 0
    assert all(len(got["node%d" % i]) == 1 for i in (0, 1, 3))


def test_client_roundtrip():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    port = cluster.add_client("client0")
    at_node = []
    cluster.machines[0].handler = at_node.append
    at_client = []
    port.handler = at_client.append

    port.send_to_node("node0", Ping("client0"))
    sim.run()
    assert len(at_node) == 1
    cluster.machines[0].send_to_client("client0", Ping("node0"))
    sim.run()
    assert len(at_client) == 1


def test_client_broadcast():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    port = cluster.add_client("client0")
    counts = []
    for machine in cluster.machines:
        machine.handler = counts.append
    port.broadcast(Ping("client0"))
    sim.run()
    assert len(counts) == 4


def test_duplicate_client_name_rejected():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    cluster.add_client("client0")
    with pytest.raises(ValueError):
        cluster.add_client("client0")


def test_unrouted_messages_counted_not_raised():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    cluster.machines[0].send_to_node("node1", Ping("node0"))
    sim.run()
    assert cluster.machines[1].dropped_unrouted == 1


def test_machine_lookup():
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    assert cluster.machine("node2").name == "node2"


def test_udp_shared_nic_broadcast_is_multicast():
    sim = Simulator()
    cluster = Cluster(
        sim, ClusterConfig(f=1, tcp=False, separate_nics=False)
    )
    machine = cluster.machines[0]
    for other in cluster.machines[1:]:
        other.handler = lambda m: None
    msg = Ping("node0")
    machine.broadcast_to_nodes(msg)
    # One transmission charged on the shared NIC, not three.
    assert machine._shared_nic.msgs_tx == 1
