"""Unit tests for the request batcher."""

import pytest

from repro.common import Batcher
from repro.sim import Simulator


def make(sim, max_size=3, max_delay=1.0):
    batches = []
    batcher = Batcher(sim, max_size, max_delay, batches.append)
    return batcher, batches


def test_flushes_when_full():
    sim = Simulator()
    batcher, batches = make(sim, max_size=2)
    batcher.add("a")
    batcher.add("b")
    assert batches == [["a", "b"]]


def test_flushes_on_timer_when_not_full():
    sim = Simulator()
    batcher, batches = make(sim, max_size=10, max_delay=0.5)
    batcher.add("a")
    assert batches == []
    sim.run()
    assert batches == [["a"]]
    assert sim.now == pytest.approx(0.5)


def test_timer_measured_from_first_item():
    sim = Simulator()
    batcher, batches = make(sim, max_size=10, max_delay=1.0)
    sim.call_after(0.0, batcher.add, "a")
    sim.call_after(0.9, batcher.add, "b")
    sim.run()
    assert batches == [["a", "b"]]
    assert sim.now == pytest.approx(1.0)


def test_full_flush_cancels_timer():
    sim = Simulator()
    batcher, batches = make(sim, max_size=2, max_delay=5.0)
    batcher.add("a")
    batcher.add("b")
    sim.run()
    assert batches == [["a", "b"]]
    assert sim.now < 5.0 or sim.peek() is None


def test_pause_holds_items():
    sim = Simulator()
    batcher, batches = make(sim, max_size=2)
    batcher.pause()
    for item in "abcde":
        batcher.add(item)
    sim.run(until=10.0)
    assert batches == []
    assert batcher.pending == 5


def test_resume_drains_backlog_in_batches():
    sim = Simulator()
    batcher, batches = make(sim, max_size=2, max_delay=0.5)
    batcher.pause()
    for item in "abcde":
        batcher.add(item)
    batcher.resume()
    assert batches == [["a", "b"], ["c", "d"]]
    sim.run()
    assert batches[-1] == ["e"]


def test_counters():
    sim = Simulator()
    batcher, _ = make(sim, max_size=2)
    for item in "abcd":
        batcher.add(item)
    assert batcher.flushed_batches == 2
    assert batcher.flushed_items == 4


def test_invalid_parameters():
    sim = Simulator()
    with pytest.raises(ValueError):
        Batcher(sim, 0, 1.0, lambda b: None)
    with pytest.raises(ValueError):
        Batcher(sim, 1, -1.0, lambda b: None)


def test_empty_flush_is_noop():
    sim = Simulator()
    batcher, batches = make(sim)
    batcher.flush()
    assert batches == []
