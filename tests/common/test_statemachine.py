"""Unit tests for replicated services."""

import pytest

from repro.common import KeyValueService, NullService
from repro.crypto import MacAuthenticator, Signature
from repro.common.types import Request


def make_request(rid=1, exec_cost=None):
    return Request(
        client="c0",
        rid=rid,
        payload_size=8,
        signature=Signature("c0"),
        authenticator=MacAuthenticator("c0"),
        exec_cost=exec_cost,
    )


def test_null_service_counts_executions():
    service = NullService()
    result, size = service.apply(make_request())
    assert result == "ok"
    assert size == 8
    assert service.executed == 1


def test_exec_cost_default_and_override():
    service = NullService(exec_cost=1e-4)
    assert service.exec_cost(make_request()) == 1e-4
    # Heavy request (Prime attack, §III-A): 1 ms instead of 0.1 ms.
    assert service.exec_cost(make_request(exec_cost=1e-3)) == 1e-3


def test_kv_put_get_roundtrip():
    service = KeyValueService()
    put = make_request(rid=1)
    service.register_op(put.request_id, ("put", "k", "v"))
    assert service.apply(put)[0] == "stored"

    get = make_request(rid=2)
    service.register_op(get.request_id, ("get", "k"))
    assert service.apply(get)[0] == "v"


def test_kv_get_missing_returns_none():
    service = KeyValueService()
    get = make_request(rid=1)
    service.register_op(get.request_id, ("get", "nope"))
    assert service.apply(get)[0] is None


def test_kv_delete():
    service = KeyValueService()
    put = make_request(rid=1)
    service.register_op(put.request_id, ("put", "k", "v"))
    service.apply(put)
    delete = make_request(rid=2)
    service.register_op(delete.request_id, ("delete", "k"))
    assert service.apply(delete)[0] is True
    assert "k" not in service.store


def test_kv_unknown_op_raises():
    service = KeyValueService()
    bad = make_request(rid=1)
    service.register_op(bad.request_id, ("frobnicate",))
    with pytest.raises(ValueError):
        service.apply(bad)


def test_kv_unregistered_request_is_noop_ok():
    service = KeyValueService()
    assert service.apply(make_request())[0] == "ok"
