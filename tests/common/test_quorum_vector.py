"""VectorQuorumTracker vs the reference QuorumTracker.

The vectorised tracker (shared sender universe, completed keys stored
as negative masks) must be observably indistinguishable from the
per-tracker-bitmask reference: same firings, same counts, same
completion reports, for any interleaving of votes.  These tests pin
that equivalence with randomized cross-checks plus the exact threshold
edges the large-n deployments sit on (f = 33 and f = 100).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import (
    QuorumTracker,
    SenderUniverse,
    VectorQuorumTracker,
    quorum_size,
    weak_quorum_size,
)


def _pair(threshold, universe=None):
    return (
        QuorumTracker(threshold),
        VectorQuorumTracker(threshold, universe or SenderUniverse()),
    )


def test_invalid_threshold():
    with pytest.raises(ValueError):
        VectorQuorumTracker(0, SenderUniverse())


def test_threshold_one_fires_immediately():
    _, tracker = _pair(1)
    assert tracker.add("k", "a")
    assert not tracker.add("k", "a")
    assert tracker.complete("k")
    assert tracker.count("k") == 1


def test_completed_key_reports_threshold_count():
    _, tracker = _pair(2)
    tracker.add("k", "a")
    assert tracker.add("k", "b")
    assert tracker.count("k") == 2
    assert not tracker.add("k", "c")  # late votes: no second firing
    assert tracker.count("k") == 2


def test_discard_and_prune_forget_completed_keys():
    _, tracker = _pair(2)
    tracker.add(("seq", 1), "a")
    tracker.add(("seq", 1), "b")
    tracker.add(("seq", 9), "a")
    assert tracker.complete(("seq", 1))
    assert len(tracker) == 2
    tracker.discard(("seq", 1))
    assert not tracker.complete(("seq", 1))
    assert tracker.count(("seq", 1)) == 0
    assert tracker.prune(lambda key: key[1] < 10) == 1
    assert len(tracker) == 0


def test_shared_universe_keeps_trackers_independent():
    universe = SenderUniverse()
    prepare = VectorQuorumTracker(2, universe)
    commit = VectorQuorumTracker(3, universe)
    prepare.add("k", "a")
    assert prepare.add("k", "b")
    commit.add("k", "a")
    commit.add("k", "b")
    assert not commit.complete("k")
    assert commit.add("k", "c")
    # one interning for both trackers
    assert len(universe) == 3


@pytest.mark.parametrize("f", [33, 100])
def test_large_n_threshold_edges(f):
    """2f+1 and f+1 quorums fire on exactly the threshold-th sender."""
    n = 3 * f + 1
    names = ["node%d" % i for i in range(n)]
    universe = SenderUniverse()
    for threshold in (quorum_size(f), weak_quorum_size(f)):
        tracker = VectorQuorumTracker(threshold, universe)
        for i, name in enumerate(names):
            fired = tracker.add("cert", name)
            assert fired == (i == threshold - 1)
            assert tracker.complete("cert") == (i >= threshold - 1)
        assert tracker.count("cert") == threshold


@settings(max_examples=200, deadline=None)
@given(
    votes=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 25)), max_size=80
    ),
    threshold=st.integers(1, 6),
)
def test_property_matches_reference_tracker(votes, threshold):
    """Both trackers agree on every firing, count and completion."""
    reference, vector = _pair(threshold)
    for key, sender_id in votes:
        sender = "s%d" % sender_id
        assert vector.add(key, sender) == reference.add(key, sender)
        assert vector.count(key) == reference.count(key)
        assert vector.complete(key) == reference.complete(key)
    for key in set(k for k, _ in votes):
        assert vector.count(key) == reference.count(key)
        assert vector.complete(key) == reference.complete(key)
    assert len(vector) <= len(reference) + len(votes)  # both bounded


@settings(max_examples=100, deadline=None)
@given(
    votes=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 25)), max_size=80
    ),
    threshold=st.integers(1, 6),
    cutoff=st.integers(0, 4),
)
def test_property_prune_matches_reference(votes, threshold, cutoff):
    """Pruning below a watermark leaves identical observable state."""
    reference, vector = _pair(threshold)
    for key, sender_id in votes:
        sender = "s%d" % sender_id
        reference.add(key, sender)
        vector.add(key, sender)
    reference.prune(lambda key: key < cutoff)
    vector.prune(lambda key: key < cutoff)
    for key in range(5):
        assert vector.count(key) == reference.count(key)
        assert vector.complete(key) == reference.complete(key)


@settings(max_examples=50, deadline=None)
@given(
    sender_ids=st.lists(st.integers(0, 400), min_size=1, max_size=300),
    f=st.sampled_from([33, 100]),
)
def test_property_large_n_random_sender_sets(sender_ids, f):
    """Randomized sender sets at large n: firing iff distinct >= 2f+1."""
    threshold = quorum_size(f)
    reference, vector = _pair(threshold)
    fired_reference = fired_vector = False
    for sender_id in sender_ids:
        sender = "node%d" % sender_id
        fired_reference |= reference.add("k", sender)
        fired_vector |= vector.add("k", sender)
    assert fired_vector == fired_reference
    distinct = len(set(sender_ids))
    assert fired_vector == (distinct >= threshold)
    expected = min(distinct, threshold)
    assert vector.count("k") == reference.count("k") == expected
