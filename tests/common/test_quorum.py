"""Unit tests for quorum tracking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import QuorumTracker, quorum_size, weak_quorum_size


def test_quorum_sizes():
    assert quorum_size(1) == 3
    assert quorum_size(2) == 5
    assert weak_quorum_size(1) == 2
    assert weak_quorum_size(2) == 3


def test_fires_exactly_once_at_threshold():
    tracker = QuorumTracker(3)
    assert not tracker.add("k", "a")
    assert not tracker.add("k", "b")
    assert tracker.add("k", "c")
    assert not tracker.add("k", "d")  # after completion: no second firing


def test_duplicate_senders_do_not_advance():
    tracker = QuorumTracker(2)
    assert not tracker.add("k", "a")
    assert not tracker.add("k", "a")
    assert not tracker.add("k", "a")
    assert tracker.count("k") == 1
    assert tracker.add("k", "b")


def test_keys_are_independent():
    tracker = QuorumTracker(2)
    tracker.add("k1", "a")
    assert tracker.count("k2") == 0
    tracker.add("k2", "a")
    assert tracker.add("k1", "b")
    assert not tracker.complete("k2")


def test_discard_forgets_key():
    tracker = QuorumTracker(2)
    tracker.add("k", "a")
    tracker.add("k", "b")
    assert tracker.complete("k")
    tracker.discard("k")
    assert not tracker.complete("k")
    assert tracker.count("k") == 0


def test_threshold_one_fires_immediately():
    tracker = QuorumTracker(1)
    assert tracker.add("k", "a")


def test_invalid_threshold():
    with pytest.raises(ValueError):
        QuorumTracker(0)


@given(
    votes=st.lists(
        st.tuples(st.integers(0, 3), st.sampled_from("abcdefg")), max_size=60
    ),
    threshold=st.integers(1, 5),
)
def test_property_fires_once_iff_enough_distinct_senders(votes, threshold):
    tracker = QuorumTracker(threshold)
    fired = {}
    seen = {}
    for key, sender in votes:
        completed = tracker.add(key, sender)
        seen.setdefault(key, set()).add(sender)
        if completed:
            assert key not in fired, "quorum fired twice"
            fired[key] = True
            assert len(seen[key]) >= threshold
    for key, senders in seen.items():
        assert (key in fired) == (len(senders) >= threshold)
