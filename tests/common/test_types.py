"""Unit tests for request/reply types."""

from repro.common import Reply, Request
from repro.crypto import MacAuthenticator, Signature


def make_request(client="client0", rid=1, payload=8):
    return Request(
        client=client,
        rid=rid,
        payload_size=payload,
        signature=Signature(client),
        authenticator=MacAuthenticator(client),
    )


def test_request_id_combines_client_and_rid():
    assert make_request("c1", 7).request_id == ("c1", 7)


def test_digest_depends_on_identity_only():
    assert make_request(rid=1).digest() == make_request(rid=1).digest()
    assert make_request(rid=1).digest() != make_request(rid=2).digest()


def test_identifier_carries_digest():
    request = make_request("c2", 9)
    ident = request.identifier()
    assert ident.client == "c2"
    assert ident.rid == 9
    assert ident.digest == request.digest()
    assert ident.request_id == request.request_id


def test_wire_size_scales_with_payload():
    small = make_request(payload=8).wire_size()
    large = make_request(payload=4096).wire_size()
    assert large - small == 4096 - 8
    assert small > 8  # header + signature + authenticator overhead


def test_identifier_wire_size_is_constant_and_small():
    from repro.common import RequestIdentifier

    assert RequestIdentifier.WIRE_SIZE < make_request(payload=4096).wire_size()


def test_reply_request_id():
    reply = Reply(node="node0", client="c1", rid=3, result="ok")
    assert reply.request_id == ("c1", 3)
