"""Shared builders for protocol-level tests."""

from __future__ import annotations

from repro.common import Cluster, ClusterConfig, NullService
from repro.clients import OpenLoopClient
from repro.protocols.base import BftNode, NodeConfig
from repro.protocols.pbft.engine import InstanceConfig
from repro.sim import Simulator


def build_pbft(
    f=1,
    clients=2,
    payload=8,
    batch_size=8,
    batch_delay=1e-3,
    exec_cost=20e-6,
    checkpoint_interval=64,
    seed=1,
    node_cls=BftNode,
    node_config=None,
    cluster_config=None,
):
    """A wired 3f+1-node cluster of ``node_cls`` plus open-loop clients."""
    sim = Simulator()
    cluster = Cluster(
        sim, cluster_config or ClusterConfig(f=f, seed=seed)
    )
    config = node_config or NodeConfig(
        instance=InstanceConfig(
            f=f,
            batch_size=batch_size,
            batch_delay=batch_delay,
            checkpoint_interval=checkpoint_interval,
        )
    )
    nodes = [
        node_cls(machine, config, NullService(exec_cost=exec_cost))
        for machine in cluster.machines
    ]
    ports = [
        OpenLoopClient(cluster, "client%d" % i, payload_size=payload)
        for i in range(clients)
    ]
    return sim, cluster, nodes, ports
