"""Chaos matrix: the five classic fault cocktails, singly and pairwise.

The old hand-written scenarios now ride the fault-space explorer's
episode runner: each cell of the matrix is one :class:`EpisodeSpec`, the
full online invariant suite (ordered-batch agreement, commit
certificates, execution consistency, monitoring consistency, completion
within the fault model) replaces the ad-hoc end-state assertions, and
the cells fan out across worker processes via
:func:`repro.experiments.execute_tasks` where cores allow.
"""

import itertools

import pytest

from repro.experiments import execute_tasks
from repro.verify import EpisodeSpec, fault, run_episode

CHAOS_FAULTS = [
    "silent-replicas",
    "flooding-node",
    "throttled-master",
    "mute-propagation",
    "junk-clients",
]
SEEDS = [11, 12, 13, 14, 15]


class _Task:
    """Picklable episode runner for the process fan-out."""

    def __init__(self, spec):
        self.spec = spec

    def __call__(self):
        return run_episode(self.spec)


def spec_for(kinds, seed):
    return EpisodeSpec(
        seed=seed,
        plan=tuple(fault(kind) for kind in kinds),
        duration=0.4,
        drain=0.6,
    )


@pytest.mark.parametrize("kind", CHAOS_FAULTS)
def test_single_fault_matrix_preserves_invariants(kind):
    specs = [spec_for([kind], seed) for seed in SEEDS]
    results = execute_tasks([_Task(spec) for spec in specs])
    for spec, result in zip(specs, results):
        assert result.ok, (kind, spec.seed, result.violations)
        assert result.completed > 0


def test_pairwise_fault_matrix_preserves_safety():
    pairs = list(itertools.combinations(CHAOS_FAULTS, 2))
    specs = [spec_for(pair, seed=21) for pair in pairs]
    results = execute_tasks([_Task(spec) for spec in specs])
    for spec, result in zip(specs, results):
        kinds = tuple(s.kind for s in spec.plan)
        assert result.ok, (kinds, result.violations)


def test_throttled_master_is_evicted():
    result = run_episode(spec_for(["throttled-master"], seed=11))
    assert result.ok, result.violations
    assert all(n >= 1 for n in result.instance_changes.values())
