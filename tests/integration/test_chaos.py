"""Chaos runs: random fault cocktails against RBFT.

Each scenario mixes delays, floods, silence and client misbehaviour; the
invariants checked are the ones that must survive *anything* within the
fault model: executed-set agreement among correct nodes, no duplicate
execution, and eventual completion of correct clients' requests.
"""

import pytest

from repro.clients import LoadGenerator, static_profile
from repro.core import RBFTConfig
from repro.experiments.deployments import build_rbft
from repro.faults import BatchPacer, Flooder


def build(seed):
    config = RBFTConfig(
        f=1,
        batch_size=8,
        batch_delay=1e-3,
        monitoring_period=0.1,
        min_monitor_requests=10,
        flood_threshold=32,
    )
    return build_rbft(config, n_clients=6, seed=seed)


CHAOS = {
    "silent-replicas": lambda dep: [
        setattr(engine, "silent", True) for engine in dep.nodes[3].engines
    ],
    "flooding-node": lambda dep: Flooder(
        dep.cluster.machines[3], ["node0", "node1", "node2"], rate=3000
    ).start(),
    "throttled-master": lambda dep: setattr(
        dep.nodes[0].engines[0],
        "preprepare_delay_fn",
        (lambda pacer: lambda msg: pacer.delay_for(len(msg.items)))(
            BatchPacer(dep.sim, lambda: 400.0)
        ),
    ),
    "mute-propagation": lambda dep: setattr(
        dep.nodes[3], "propagate_silent", True
    ),
    "junk-clients": lambda dep: [
        dep.clients[0].send_request(signature_valid=False) for _ in range(3)
    ],
}


@pytest.mark.parametrize("fault", sorted(CHAOS))
def test_single_fault_preserves_agreement(fault):
    dep = build(seed=11)
    CHAOS[fault](dep)
    generator = LoadGenerator(
        dep.sim,
        dep.clients[1:],  # client0 may be the misbehaving one
        static_profile(1500.0, 1.0),
        dep.rng.stream("load"),
    )
    generator.start()
    dep.sim.run(until=2.0)
    correct = dep.nodes[:3]
    # Executed sets agree among correct nodes.
    sets = [node.executed_ids for node in correct]
    assert sets[0] == sets[1] == sets[2], fault
    # No duplicate execution anywhere.
    for node in correct:
        assert node.executed_count == len(node.executed_ids), fault
    # Correct clients' requests completed.
    assert generator.total_completed() >= 0.98 * generator.total_sent(), fault


def test_combined_fault_cocktail():
    dep = build(seed=12)
    CHAOS["flooding-node"](dep)
    CHAOS["throttled-master"](dep)
    CHAOS["junk-clients"](dep)
    generator = LoadGenerator(
        dep.sim,
        dep.clients[1:],
        static_profile(1200.0, 1.2),
        dep.rng.stream("load"),
    )
    generator.start()
    dep.sim.run(until=2.5)
    correct = dep.nodes[:3]
    sets = [node.executed_ids for node in correct]
    assert sets[0] == sets[1] == sets[2]
    assert generator.total_completed() >= 0.95 * generator.total_sent()
    # The throttled master primary was evicted along the way.
    assert all(node.instance_changes >= 1 for node in correct)
