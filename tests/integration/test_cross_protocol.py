"""Cross-protocol integration tests.

The same workload runs against every protocol; the invariants that must
hold everywhere (completion, agreement, deduplication) are checked in
one place.
"""

import pytest

from repro.clients import LoadGenerator, static_profile
from repro.experiments import ScenarioScale, make_deployment

FAST = ScenarioScale(
    name="it",
    duration=0.4,
    warmup=0.1,
    probe_duration=0.1,
    sizes=(8,),
    rate_points=2,
    monitoring_period=0.05,
    aardvark_grace=0.2,
    aardvark_period=0.05,
)

PROTOCOLS = ("rbft", "rbft-udp", "aardvark", "spinning", "prime", "pbft")


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_moderate_load_completes_everywhere(protocol):
    dep = make_deployment(protocol, 8, FAST, n_clients=6)
    generator = LoadGenerator(
        dep.sim, dep.clients, static_profile(1500.0, 0.4), dep.rng.stream("load")
    )
    generator.start()
    dep.sim.run(until=0.8)
    assert generator.total_completed() >= 0.97 * generator.total_sent()
    executed = [node.executed_count for node in dep.nodes]
    assert max(executed) - min(executed) <= 0.05 * max(executed) + 5


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_single_silent_replica_tolerated(protocol):
    dep = make_deployment(protocol, 8, FAST, n_clients=4)
    node = dep.nodes[2]  # never the initial primary
    if protocol == "prime":
        node.silent = True
    elif hasattr(node, "engines"):  # RBFT: silence all local replicas
        for engine in node.engines:
            engine.silent = True
    else:
        node.engine.silent = True
    generator = LoadGenerator(
        dep.sim, dep.clients, static_profile(800.0, 0.4), dep.rng.stream("load")
    )
    generator.start()
    dep.sim.run(until=1.0)
    assert generator.total_completed() >= 0.95 * generator.total_sent()


@pytest.mark.parametrize("protocol", ("rbft", "aardvark", "spinning", "pbft"))
def test_larger_payloads_flow_end_to_end(protocol):
    dep = make_deployment(protocol, 4096, FAST, n_clients=4)
    generator = LoadGenerator(
        dep.sim, dep.clients, static_profile(500.0, 0.4), dep.rng.stream("load")
    )
    generator.start()
    dep.sim.run(until=0.8)
    assert generator.total_completed() >= 0.95 * generator.total_sent()


@pytest.mark.parametrize("protocol", ("rbft", "aardvark", "pbft"))
def test_f2_clusters_work(protocol):
    dep = make_deployment(protocol, 8, FAST, f=2, n_clients=4)
    assert len(dep.nodes) == 7
    generator = LoadGenerator(
        dep.sim, dep.clients, static_profile(800.0, 0.4), dep.rng.stream("load")
    )
    generator.start()
    dep.sim.run(until=0.8)
    assert generator.total_completed() >= 0.95 * generator.total_sent()


def test_rbft_latency_close_to_pbft_fault_free():
    """RBFT's redundancy must not cost much latency at low load."""
    latencies = {}
    for protocol in ("rbft", "pbft"):
        dep = make_deployment(protocol, 8, FAST, n_clients=2)
        generator = LoadGenerator(
            dep.sim, dep.clients, static_profile(200.0, 0.4),
            dep.rng.stream("load"),
        )
        generator.start()
        dep.sim.run(until=0.6)
        latencies[protocol] = generator.mean_latency()
    assert latencies["rbft"] < 3 * latencies["pbft"]


def test_spinning_rotation_does_not_reorder():
    dep = make_deployment("spinning", 8, FAST, n_clients=4)
    orders = {node.name: [] for node in dep.nodes}
    for node in dep.nodes:
        original = node._on_ordered

        def spy(seq, items, _orig=original, _name=node.name):
            orders[_name].extend(item.request_id for item in items)
            _orig(seq, items)

        node.engine.on_ordered = spy
    generator = LoadGenerator(
        dep.sim, dep.clients, static_profile(2000.0, 0.3), dep.rng.stream("load")
    )
    generator.start()
    dep.sim.run(until=0.6)
    sequences = list(orders.values())
    assert all(seq == sequences[0] for seq in sequences)
