"""WAN ≡ LAN equivalence: the topology layer is a strict generalisation.

For every registry protocol variant, a degenerate topology — zero
inter-region latency, unconstrained bandwidth, every region profile
equal to the flat link (:func:`repro.net.topology.flat`) — must wire
channels with arithmetic identical to no topology at all, so the seeded
run produces a **byte-identical** RunResult.  This is the property that
lets the geo layer ship without re-validating every figure of the
paper: the flat path is untouched by construction, and these tests pin
it per protocol.
"""

import pytest

from repro.experiments import SMOKE, Scenario, Workload, run
from repro.net.topology import flat, wan3
from repro.protocols import registry


def _scenario(protocol, **overrides):
    base = dict(
        protocol=protocol,
        workload=Workload(
            "static", rate=1500.0, clients=4, population=False
        ),
        seed=11,
        scale=SMOKE,
        duration=0.2,
        warmup=0.05,
    )
    base.update(overrides)
    return Scenario(**base)


@pytest.mark.parametrize("protocol", registry.names())
def test_flat_topology_is_byte_identical_to_lan(protocol):
    lan = run(_scenario(protocol))
    wan = run(_scenario(protocol, topology=flat(3)))
    assert wan == lan


def test_flat_single_region_is_byte_identical_too():
    lan = run(_scenario("rbft"))
    wan = run(_scenario("rbft", topology=flat(1)))
    assert wan == lan


def test_wan_topology_actually_changes_the_run():
    """Sanity: a real WAN matrix must NOT be equivalent to the LAN."""
    lan = run(_scenario("rbft"))
    wan = run(_scenario("rbft", topology=wan3()))
    assert wan != lan
    # cross-region quorum paths add tens of milliseconds of latency
    assert wan.mean_latency > lan.mean_latency + 0.02


def test_wan_runs_are_deterministic():
    first = run(_scenario("rbft", topology=wan3()))
    second = run(_scenario("rbft", topology=wan3()))
    assert first == second
