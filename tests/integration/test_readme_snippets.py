"""The README and package-docstring snippets must keep working."""


def test_package_docstring_quickstart():
    from repro.core import RBFTConfig
    from repro.experiments import build_rbft

    deployment = build_rbft(RBFTConfig(f=1), n_clients=3)
    deployment.clients[0].send_request()
    deployment.sim.run(until=0.5)
    assert deployment.clients[0].completed == 1


def test_readme_promotion_flag():
    from repro.core import RBFTConfig

    config = RBFTConfig(promote_best_backup=True)
    assert config.promote_best_backup


def test_readme_cli_entrypoints_exist():
    from repro.experiments.cli import COMMANDS

    for name in ("table1", "fig1", "fig7", "fig12"):
        assert name in COMMANDS


def test_version_exposed():
    import repro

    assert repro.__version__
