"""Large-n smoke tests: hundreds of replicas, fault-free, bounded state.

The topology/scale refactor exists so n = 100–300 replicas is practical;
these tests pin that claim across the protocol matrix at n ∈ {16, 64,
148}.  Three assertions per cell, all of which catch a distinct way a
scale-out regression would show up:

* **completion floor** — clients finish at least 40 % of the offered
  requests inside the short window (liveness at scale; a
  quorum-threshold bug at large f shows up here first — Prime's
  pre-ordering phase leaves the least headroom, ~48 % at n = 148);
* **bounded protocol logs** — the peak per-instance log size stays
  inside the checkpoint collector's analytical envelope
  (``watermark_window + checkpoint_interval``), so per-sequence state
  does not balloon with n;
* **no instance-change storms** — a fault-free run must never trigger
  the monitoring protocol, however large the cluster.

RBFT runs f+1 ordering instances per node — its certificate traffic is
a factor of n beyond the single-instance protocols.  Above the pacing
threshold its backup instances coalesce that traffic into per-sender
envelopes (``RBFTConfig.batching_active``), which is what lets the rbft
column climb the same n = 148 rung as its peers here.
"""

import pytest

from repro.experiments import SMOKE, Scenario, Workload, run
from repro.protocols.pbft.engine import InstanceConfig

PROTOCOLS = ("rbft", "aardvark", "spinning", "prime", "pbft")

#: per-instance protocol-log envelope (see repro.experiments.soak).
_DEFAULTS = InstanceConfig()
LOG_BOUND = _DEFAULTS.watermark_window + _DEFAULTS.checkpoint_interval

#: (f, offered rps, measured duration, warmup) per cluster size.
_LOADS = {
    16: (5, 1000.0, 0.20, 0.05),
    64: (21, 500.0, 0.06, 0.02),
    148: (49, 400.0, 0.08, 0.02),
}


def _cases():
    for n, (f, rate, duration, warmup) in sorted(_LOADS.items()):
        for protocol in PROTOCOLS:
            marks = [pytest.mark.slow] if n > 16 else []
            yield pytest.param(
                protocol, f, rate, duration, warmup,
                id="%s-n%d" % (protocol, n), marks=marks,
            )


@pytest.mark.parametrize("protocol,f,rate,duration,warmup", _cases())
def test_fault_free_at_scale(protocol, f, rate, duration, warmup):
    result = run(Scenario(
        protocol=protocol,
        f=f,
        workload=Workload("static", rate=rate, clients=4, population=False),
        seed=5,
        scale=SMOKE,
        duration=duration,
        warmup=warmup,
        track_log_sizes=True,
    ))
    offered = rate * duration
    assert result.completed >= 0.4 * offered, (
        "only %d of ~%.0f requests completed at n=%d"
        % (result.completed, offered, 3 * f + 1)
    )
    assert result.peak_log_size <= LOG_BOUND, (
        "peak log %d above the %d-entry envelope at n=%d"
        % (result.peak_log_size, LOG_BOUND, 3 * f + 1)
    )
    assert result.instance_changes == 0, (
        "fault-free run triggered %d instance changes at n=%d"
        % (result.instance_changes, 3 * f + 1)
    )
