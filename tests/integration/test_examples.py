"""Smoke tests: the example scripts must keep working."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "60/60 requests completed" in out


def test_kv_store_runs(capsys):
    run_example("kv_store.py")
    out = capsys.readouterr().out
    assert "all replicas converged" in out


def test_unfair_primary_runs(capsys):
    run_example("unfair_primary.py")
    out = capsys.readouterr().out
    assert "instance change" in out


@pytest.mark.slow
def test_promotion_demo_runs(capsys):
    run_example("promotion_demo.py")
    out = capsys.readouterr().out
    assert "promotion" in out
