"""Checkpoint garbage collection keeps protocol logs bounded.

The property under test (the soak gate's analytical bound, scaled down
so a short run orders many multiples of it): with checkpoint GC running,
no per-sequence structure ever holds more than
``watermark_window + checkpoint_interval`` entries, no matter how many
batches the run orders.  Without GC every structure grows with the
number of ordered sequences instead, so a run ordering ~250 sequences
against a bound of 40 fails loudly on any leak.
"""

import pytest

from repro.clients import LoadGenerator, static_profile
from repro.core import RBFTConfig
from repro.crypto import MacAuthenticator
from repro.crypto.primitives import Digest
from repro.experiments import (
    build_aardvark,
    build_pbft,
    build_prime,
    build_rbft,
    build_spinning,
)
from repro.protocols.aardvark import AardvarkConfig
from repro.protocols.base import NodeConfig
from repro.protocols.pbft.engine import InstanceConfig
from repro.protocols.pbft.messages import PrePrepare
from repro.protocols.spinning import SpinningConfig
from repro.trace import K_LOG_SIZE, LogSizeWatch, Tracer, collect_final
from tests.protocols.test_engine_unit import make_group, request, submit_all

#: tiny windows so ~250 ordered sequences dwarf the bound.
INTERVAL = 8
WINDOW = 32
BOUND = WINDOW + INTERVAL

#: structures the bound covers (each indexed by sequence number or view).
BOUNDED_FIELDS = (
    "log",
    "prepare_votes",
    "commit_votes",
    "checkpoint_votes",
    "vc_votes",
    "waiting_guard",
)


def _small_instance(**overrides):
    return InstanceConfig(
        f=1, batch_size=4, checkpoint_interval=INTERVAL,
        watermark_window=WINDOW, **overrides,
    )


def _deployment(protocol):
    if protocol == "rbft":
        return build_rbft(RBFTConfig(
            batch_size=4, checkpoint_interval=INTERVAL,
            watermark_window=WINDOW,
        ), n_clients=6)
    if protocol == "aardvark":
        return build_aardvark(
            AardvarkConfig(instance=_small_instance()), n_clients=6
        )
    if protocol == "spinning":
        return build_spinning(SpinningConfig(instance=_small_instance(
            auto_advance_view=True, multicast_auth=True,
        )), n_clients=6)
    return build_pbft(NodeConfig(instance=_small_instance()), n_clients=6)


def _run_watched(dep, rate=2000.0, duration=0.5):
    watch = LogSizeWatch()
    dep.sim.tracer = Tracer(sink=watch, kinds=frozenset({K_LOG_SIZE}))
    generator = LoadGenerator(
        dep.sim, dep.clients, static_profile(rate, duration),
        dep.rng.stream("load"),
    )
    generator.start()
    dep.sim.run(until=duration + 0.3)
    collect_final(watch, dep.nodes)
    return watch, generator


@pytest.mark.parametrize("protocol", ["rbft", "aardvark", "spinning", "pbft"])
def test_per_sequence_structures_stay_bounded(protocol):
    dep = _deployment(protocol)
    watch, generator = _run_watched(dep)
    assert generator.total_completed() > 200  # the run genuinely ordered
    assert watch.observed > 0  # the gauge genuinely fired
    for emitter, peaks in watch.peaks.items():
        for field in BOUNDED_FIELDS:
            assert peaks.get(field, 0) <= BOUND, (
                "%s: %s peaked at %d > %d (watermark_window + "
                "checkpoint_interval) — per-sequence state is leaking"
                % (emitter, field, peaks.get(field, 0), BOUND)
            )


def test_prime_log_peak_is_horizon_independent():
    # Prime has no PBFT watermarks; its collector is bounded by the
    # pre-ordering frontiers instead.  Doubling the horizon must not
    # move the peak: a leak scales it with the number of ordered
    # batches, roughly doubling it here.
    peaks = {}
    for duration in (0.3, 0.6):
        dep = build_prime(n_clients=6)
        watch, generator = _run_watched(dep, rate=1500.0, duration=duration)
        assert generator.total_completed() > 0
        peaks[duration] = watch.peak("total")
    assert peaks[0.6] <= 1.5 * peaks[0.3] + 25


def test_stabilize_discards_checkpoint_and_viewchange_votes():
    # Satellite of the GC change: QuorumTracker.discard/prune must leave
    # no checkpoint votes at or below the stable low watermark and no
    # view-change votes for unreachable (<= current) views.
    sim, fabric, engines, ordered = make_group(checkpoint_interval=4)
    submit_all(engines, [request(i) for i in range(64)])
    sim.run(until=0.5)
    for engine in engines:
        assert engine.low_watermark >= 12
        retained = (
            engine._checkpoint_votes._masks.keys()
            | engine._checkpoint_votes._complete
        )
        assert all(seq > engine.low_watermark for seq, _ in retained)
        assert all(view > engine.view for view in engine._vc_votes)


def test_admission_floor_follows_weak_checkpoint_fast_forward():
    # Regression pin for the admission window: after a weak-checkpoint
    # state transfer the execution frontier sits *above*
    # ``low_watermark + 1``, so the accept interval is
    # ``max(low_watermark, next_exec - 1) < seq <= low_watermark +
    # watermark_window`` — a pre-prepare for an already-executed
    # sequence below the frontier must not re-enter the log.
    sim, fabric, engines, _ = make_group(
        checkpoint_interval=4, watermark_window=16
    )
    backup = engines[1]
    backup._catch_up(8)  # weak certificate: state-transfer to seq 8
    assert backup.next_exec == 9
    assert backup.low_watermark == 0  # no stable checkpoint yet

    def preprepare(seq):
        return PrePrepare(
            "node0", 0, 0, seq, (request(seq),), Digest("d%d" % seq), 100,
            MacAuthenticator("node0"),
        )

    for seq in (5, 8):  # at or below the executed frontier: rejected
        backup.receive(preprepare(seq))
    for seq in (9, 16):  # inside the window: admitted
        backup.receive(preprepare(seq))
    backup.receive(preprepare(17))  # beyond low_watermark + window
    sim.run(until=0.05)
    assert 5 not in backup.log
    assert 8 not in backup.log
    assert 9 in backup.log
    assert 16 in backup.log
    assert 17 not in backup.log
