"""Unit tests for Prime's internal mechanics."""

import pytest

from repro.common import Cluster, ClusterConfig, NullService
from repro.protocols.prime import PrimeConfig, PrimeNode
from repro.sim import Simulator


def lone_node(**config_overrides):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=1))
    config = PrimeConfig(f=1, **config_overrides)
    nodes = [PrimeNode(m, config, NullService()) for m in cluster.machines]
    return sim, nodes


def test_originator_assignment_is_deterministic_and_total():
    sim, nodes = lone_node()
    node = nodes[0]
    for client in ("client0", "alice", "bob", "x" * 30):
        owner = node.originator_of(client)
        assert owner in {"node0", "node1", "node2", "node3"}
        assert all(other.originator_of(client) == owner for other in nodes)


def test_capped_vector_limits_new_coverage():
    sim, nodes = lone_node(window=3)
    node = nodes[0]
    # Five single-request bundles pre-ordered from node1.
    from repro.common.types import Request
    from repro.crypto import MacAuthenticator, Signature

    for bundle_id in range(1, 6):
        req = Request(
            client="c", rid=bundle_id, payload_size=8,
            signature=Signature("c"), authenticator=MacAuthenticator("c"),
        )
        node.bundles[("node1", bundle_id)] = (req,)
    node.aru["node1"] = 5
    vector = node._capped_vector()
    assert vector["node1"] == 3  # capped at the window


def test_capped_vector_covers_everything_when_under_window():
    sim, nodes = lone_node(window=100)
    node = nodes[0]
    node.bundles[("node2", 1)] = ()
    node.aru["node2"] = 1
    assert node._capped_vector()["node2"] == 1


def test_acceptable_delay_composition():
    sim, nodes = lone_node(k_lat=0.02)
    node = nodes[0]
    node.rtt_estimate = 0.001
    node.batch_exec_estimate = 0.005
    assert node.acceptable_order_delay() == pytest.approx(0.026)


def test_rtt_estimate_follows_pong_samples():
    sim, nodes = lone_node()
    node = nodes[0]
    before = node.rtt_estimate
    node._pings_in_flight[1] = 0.0
    sim.call_after(0.01, lambda: None)
    sim.run(until=0.01)
    from repro.crypto.primitives import Signature
    from repro.protocols.prime.messages import PrimePong

    node._on_pong(PrimePong("node1", 1, Signature("node1")))
    assert node.rtt_estimate > before  # 10 ms sample pulled the EWMA up


def test_unknown_pong_ignored():
    sim, nodes = lone_node()
    node = nodes[0]
    before = node.rtt_estimate
    from repro.crypto.primitives import Signature
    from repro.protocols.prime.messages import PrimePong

    node._on_pong(PrimePong("node1", 999, Signature("node1")))
    assert node.rtt_estimate == before


def test_suspect_quorum_advances_view():
    sim, nodes = lone_node()
    node = nodes[1]
    from repro.crypto.primitives import Signature
    from repro.protocols.prime.messages import PrimeSuspect

    node._on_suspect(PrimeSuspect("node2", 0, Signature("node2")))
    node._on_suspect(PrimeSuspect("node3", 0, Signature("node3")))
    assert node.view == 0  # 2 < 2f+1
    node._on_suspect(PrimeSuspect("node0", 0, Signature("node0")))
    assert node.view == 1
    assert node.primary_name() == "node1"


def test_stale_suspects_ignored():
    sim, nodes = lone_node()
    node = nodes[1]
    node.view = 3
    from repro.crypto.primitives import Signature
    from repro.protocols.prime.messages import PrimeSuspect

    for sender in ("node0", "node2", "node3"):
        node._on_suspect(PrimeSuspect(sender, 1, Signature(sender)))
    assert node.view == 3


def test_primary_rotates_with_view():
    sim, nodes = lone_node()
    node = nodes[0]
    assert node.is_primary
    node._install_view(1)
    assert not node.is_primary
    assert node.primary_name() == "node1"


def test_install_view_resets_ordering_round_state():
    sim, nodes = lone_node()
    node = nodes[0]
    node.seq = 7
    node._ordered_vectors[3] = {}
    node._install_view(2)
    assert node.seq == 0
    assert node._ordered_vectors == {}
    assert node.view_changes == 1
