"""Tests for the Spinning baseline."""

import pytest

from repro.clients import LoadGenerator, OpenLoopClient, static_profile
from repro.common import Cluster, ClusterConfig, NullService
from repro.protocols.pbft.engine import InstanceConfig
from repro.protocols.spinning import SpinningConfig, SpinningNode
from repro.sim import RngTree, Simulator


def build_spinning(f=1, clients=4, s_timeout=40e-3, batch_size=8, seed=4):
    sim = Simulator()
    # Spinning uses UDP multicast over a shared NIC (§VI-B).
    cluster = Cluster(
        sim, ClusterConfig(f=f, seed=seed, tcp=False, separate_nics=False)
    )
    config = SpinningConfig(
        instance=InstanceConfig(
            f=f, batch_size=batch_size, batch_delay=5e-4, auto_advance_view=True
        ),
        s_timeout=s_timeout,
    )
    nodes = [
        SpinningNode(machine, config, NullService()) for machine in cluster.machines
    ]
    ports = [OpenLoopClient(cluster, "client%d" % i) for i in range(clients)]
    return sim, cluster, nodes, ports


def test_orders_and_executes_requests():
    sim, cluster, nodes, ports = build_spinning()
    for i in range(20):
        sim.call_after(i * 1e-4, ports[i % 4].send_request)
    sim.run(until=0.5)
    assert all(node.executed_count == 20 for node in nodes)


def test_primary_rotates_after_every_batch():
    sim, cluster, nodes, ports = build_spinning(batch_size=4)
    for i in range(32):
        sim.call_after(i * 1e-4, ports[i % 4].send_request)
    sim.run(until=0.5)
    # 32 requests / batches of <=4 => at least 8 views consumed.
    assert all(node.engine.view >= 8 for node in nodes)


def test_rotation_visits_all_replicas():
    sim, cluster, nodes, ports = build_spinning(batch_size=1)
    leaders = set()
    node = nodes[0]
    original = node.engine.on_view_entered

    def spy(view):
        leaders.add(node.engine.primary_index(view))
        original(view)

    node.engine.on_view_entered = spy
    for i in range(20):
        sim.call_after(i * 1e-3, ports[i % 4].send_request)
    sim.run(until=0.5)
    assert leaders == {0, 1, 2, 3}


def test_requests_use_macs_only():
    # A request with an invalid signature but valid MACs is still ordered:
    # Spinning never checks signatures.
    sim, cluster, nodes, ports = build_spinning()
    ports[0].send_request(signature_valid=False)
    sim.run(until=0.3)
    assert all(node.executed_count == 1 for node in nodes)
    assert not any(node.blacklist.banned("client0") for node in nodes)


def test_stimeout_blacklists_stalled_primary():
    sim, cluster, nodes, ports = build_spinning(s_timeout=20e-3)
    # node0 (first primary) refuses to order anything.
    nodes[0].engine.silent = True
    ports[0].send_request()
    sim.run(until=1.0)
    for node in nodes[1:]:
        assert node.replica_blacklist.banned("node0")
        assert node.merges >= 1
        assert node.executed_count == 1


def test_stimeout_doubles_then_resets():
    sim, cluster, nodes, ports = build_spinning(s_timeout=20e-3)
    nodes[0].engine.silent = True
    ports[0].send_request()
    sim.run(until=0.1)
    watcher = nodes[1]
    assert watcher.current_timeout >= 20e-3  # doubled at least once or reset
    # After recovery and a successful ordering, the timeout is back to base.
    sim.run(until=1.0)
    assert watcher.executed_count == 1
    assert watcher.current_timeout == pytest.approx(20e-3)


def test_blacklisted_replica_skipped_in_rotation():
    sim, cluster, nodes, ports = build_spinning(batch_size=1)
    node = nodes[1]
    node.replica_blacklist.ban("node0")
    assert node._primary_for_view(0) == 1  # view 0 would be node0: skipped
    assert node._primary_for_view(4) == 1
    assert node._primary_for_view(2) == 2


def test_blacklist_bounded_to_f():
    sim, cluster, nodes, ports = build_spinning()
    node = nodes[0]
    node.replica_blacklist.ban("node1")
    node.replica_blacklist.ban("node2")  # f=1: evicts node1
    assert not node.replica_blacklist.banned("node1")
    assert node.replica_blacklist.banned("node2")


def test_sustained_throughput():
    sim, cluster, nodes, ports = build_spinning(batch_size=64)
    gen = LoadGenerator(
        sim, ports, static_profile(5000, 1.0), RngTree(7).stream("load")
    )
    gen.start()
    sim.run(until=1.3)
    assert gen.total_completed() >= 0.98 * gen.total_sent()
