"""Integration tests of the three-phase ordering engine via BftNode."""



from tests.helpers import build_pbft


def drive(sim, clients, count, gap=1e-4, **send_kwargs):
    """Send ``count`` requests round-robin with fixed spacing."""
    for i in range(count):
        client = clients[i % len(clients)]
        sim.call_after(i * gap, client.send_request, **send_kwargs)


def test_single_request_is_ordered_and_replied():
    sim, cluster, nodes, clients = build_pbft()
    clients[0].send_request()
    sim.run(until=0.5)
    assert clients[0].completed == 1
    assert clients[0].latencies.mean() > 0
    # Every correct node executed it.
    assert all(node.executed_count == 1 for node in nodes)


def test_many_requests_all_complete():
    sim, cluster, nodes, clients = build_pbft()
    drive(sim, clients, 100)
    sim.run(until=1.0)
    assert sum(c.completed for c in clients) == 100
    assert all(node.executed_count == 100 for node in nodes)


def test_nodes_agree_on_order():
    sim, cluster, nodes, clients = build_pbft(clients=4)
    orders = {node.name: [] for node in nodes}
    for node in nodes:
        original = node._on_ordered

        def spy(seq, items, _orig=original, _name=node.name):
            orders[_name].append([item.request_id for item in items])
            _orig(seq, items)

        node.engine.on_ordered = spy
    drive(sim, clients, 60)
    sim.run(until=1.0)
    sequences = list(orders.values())
    assert all(seq == sequences[0] for seq in sequences)
    assert sum(len(batch) for batch in sequences[0]) == 60


def test_batching_groups_requests():
    sim, cluster, nodes, clients = build_pbft(batch_size=10, batch_delay=0.5)
    drive(sim, clients, 30, gap=1e-5)
    sim.run(until=1.0)
    primary = nodes[0]
    assert primary.engine.ordered_batches <= 6  # ~3 full batches, not 30


def test_duplicate_request_not_executed_twice():
    sim, cluster, nodes, clients = build_pbft()
    client = clients[0]
    request = client.send_request()
    sim.run(until=0.3)
    assert nodes[0].executed_count == 1
    # Replay the exact same request (e.g. a retransmission).
    from repro.protocols.base import ClientRequestMsg

    client.port.broadcast(ClientRequestMsg(request))
    sim.run(until=0.6)
    assert all(node.executed_count == 1 for node in nodes)


def test_invalid_signature_blacklists_client():
    sim, cluster, nodes, clients = build_pbft()
    client = clients[0]
    client.send_request(signature_valid=False)
    sim.run(until=0.3)
    assert client.completed == 0
    assert all(node.blacklist.banned(client.name) for node in nodes)
    # Further requests from the blacklisted client are ignored.
    client.send_request()
    sim.run(until=0.6)
    assert client.completed == 0


def test_invalid_mac_is_dropped_without_blacklist():
    sim, cluster, nodes, clients = build_pbft()
    client = clients[0]
    client.send_request(mac_invalid_for=[n.name for n in nodes])
    sim.run(until=0.3)
    assert client.completed == 0
    assert all(not node.blacklist.banned(client.name) for node in nodes)
    assert all(node.invalid_requests == 1 for node in nodes)
    # The client is still allowed to send correct requests.
    client.send_request()
    sim.run(until=0.6)
    assert client.completed == 1


def test_request_verifiable_by_only_some_nodes():
    # MAC invalid for the primary only: others propagate nothing in plain
    # PBFT, so the request stalls (no PROPAGATE phase in the baseline).
    sim, cluster, nodes, clients = build_pbft()
    clients[0].send_request(mac_invalid_for=["node0"])
    sim.run(until=0.3)
    assert nodes[0].invalid_requests == 1


def test_view_change_replaces_primary_and_recovers():
    sim, cluster, nodes, clients = build_pbft()
    drive(sim, clients, 10)
    sim.run(until=0.3)
    executed_before = nodes[1].executed_count
    assert executed_before == 10
    # All replicas vote the primary out.
    for node in nodes:
        sim.call_after(0.0, node.engine.start_view_change)
    sim.run(until=0.6)
    assert all(node.engine.view == 1 for node in nodes)
    assert nodes[1].is_primary  # view 1 -> node1
    drive(sim, clients, 10)
    sim.run(until=1.2)
    assert all(node.executed_count == 20 for node in nodes)


def test_view_change_preserves_in_flight_requests():
    sim, cluster, nodes, clients = build_pbft(batch_size=4, batch_delay=5e-4)
    # Submit requests, then immediately trigger a view change so some are
    # still in flight; they must still execute exactly once in view >= 1.
    drive(sim, clients, 20, gap=2e-5)
    sim.call_after(3e-4, lambda: [n.engine.start_view_change() for n in nodes])
    sim.run(until=2.0)
    assert all(node.executed_count == 20 for node in nodes)
    assert sum(c.completed for c in clients) == 20


def test_two_view_changes_in_a_row():
    sim, cluster, nodes, clients = build_pbft()
    for node in nodes:
        sim.call_after(0.0, node.engine.start_view_change)
    sim.run(until=0.3)
    for node in nodes:
        sim.call_after(0.0, node.engine.start_view_change)
    sim.run(until=0.6)
    assert all(node.engine.view == 2 for node in nodes)
    clients[0].send_request()
    sim.run(until=1.0)
    assert clients[0].completed == 1


def test_checkpoint_advances_watermark_and_gc():
    sim, cluster, nodes, clients = build_pbft(
        batch_size=1, batch_delay=1e-4, checkpoint_interval=8
    )
    drive(sim, clients, 40)
    sim.run(until=1.5)
    for node in nodes:
        assert node.engine.low_watermark >= 8
        assert all(seq > node.engine.low_watermark for seq in node.engine.log)


def test_f2_cluster_orders_requests():
    sim, cluster, nodes, clients = build_pbft(f=2)
    assert len(nodes) == 7
    drive(sim, clients, 30)
    sim.run(until=1.0)
    assert all(node.executed_count == 30 for node in nodes)


def test_silent_faulty_replicas_do_not_block_progress():
    sim, cluster, nodes, clients = build_pbft()
    nodes[3].engine.silent = True  # one faulty node (f=1)
    drive(sim, clients, 30)
    sim.run(until=1.0)
    correct = nodes[:3]
    assert all(node.executed_count == 30 for node in correct)


def test_silent_primary_stalls_without_view_change():
    sim, cluster, nodes, clients = build_pbft()
    nodes[0].engine.silent = True
    drive(sim, clients, 10)
    sim.run(until=0.5)
    assert all(node.executed_count == 0 for node in nodes[1:])
    # The recovery mechanism (view change) unblocks the system.
    for node in nodes[1:]:
        node.engine.start_view_change()
    sim.run(until=1.5)
    assert all(node.executed_count == 10 for node in nodes[1:])
