"""Tests for the Prime baseline."""

import pytest

from repro.clients import LoadGenerator, OpenLoopClient, static_profile
from repro.common import Cluster, ClusterConfig, NullService
from repro.protocols.prime import PrimeConfig, PrimeNode
from repro.sim import RngTree, Simulator


def build_prime(
    f=1,
    clients=4,
    ordering_period=5e-3,
    k_lat=15e-3,
    window=192,
    exec_cost=20e-6,
    seed=5,
):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=f, seed=seed))
    config = PrimeConfig(
        f=f, ordering_period=ordering_period, k_lat=k_lat, window=window
    )
    nodes = [
        PrimeNode(machine, config, NullService(exec_cost=exec_cost))
        for machine in cluster.machines
    ]
    ports = [OpenLoopClient(cluster, "client%d" % i) for i in range(clients)]
    return sim, cluster, nodes, ports


def test_single_request_executes_everywhere():
    sim, cluster, nodes, ports = build_prime()
    ports[0].send_request()
    sim.run(until=0.5)
    assert all(node.executed_count == 1 for node in nodes)
    assert ports[0].completed == 1


def test_latency_dominated_by_ordering_period():
    sim, cluster, nodes, ports = build_prime(ordering_period=10e-3)
    for i in range(20):
        sim.call_after(i * 5e-3, ports[i % 4].send_request)
    sim.run(until=0.5)
    # Periodic ordering: latency is on the order of the period, an order
    # of magnitude above the ~1 ms of the other protocols (§VI-B).
    assert ports[0].latencies.mean() > 3e-3


def test_requests_are_signature_checked():
    sim, cluster, nodes, ports = build_prime()
    ports[0].send_request(signature_valid=False)
    sim.run(until=0.3)
    assert all(node.executed_count == 0 for node in nodes)
    assert all(node.blacklist.banned("client0") for node in nodes)


def test_nodes_agree_on_execution_order():
    sim, cluster, nodes, ports = build_prime()
    orders = {node.name: [] for node in nodes}
    for node in nodes:
        original = node._execute_one

        def spy(request, _orig=original, _name=node.name):
            orders[_name].append(request.request_id)
            _orig(request)

        node._execute_one = spy
    for i in range(40):
        sim.call_after(i * 2e-4, ports[i % 4].send_request)
    sim.run(until=1.0)
    sequences = list(orders.values())
    assert all(len(seq) == 40 for seq in sequences)
    assert all(seq == sequences[0] for seq in sequences)


def test_bundles_preordered_with_2f_acks():
    sim, cluster, nodes, ports = build_prime()
    ports[0].send_request()
    sim.run(until=0.2)
    originator = nodes[0].originator_of("client0")
    for node in nodes:
        assert node.aru[originator] >= 1


def test_throughput_sustained_under_load():
    sim, cluster, nodes, ports = build_prime(clients=8)
    gen = LoadGenerator(
        sim,
        [OpenLoopClient.__new__(OpenLoopClient)] and ports,
        static_profile(2000, 1.0),
        RngTree(11).stream("load"),
    )
    gen.start()
    sim.run(until=1.5)
    assert gen.total_completed() >= 0.95 * gen.total_sent()


def test_silent_primary_is_suspected_and_replaced():
    sim, cluster, nodes, ports = build_prime(k_lat=10e-3)
    nodes[0].silent = True  # view-0 primary sends no ordering messages
    for i in range(5):
        sim.call_after(i * 1e-3, ports[i % 4].send_request)
    sim.run(until=2.0)
    assert all(node.view >= 1 for node in nodes[1:])
    assert all(node.executed_count == 5 for node in nodes[1:])


def test_acceptable_delay_tracks_batch_execution_time():
    sim, cluster, nodes, ports = build_prime()
    node = nodes[1]
    base = node.acceptable_order_delay()
    node.batch_exec_estimate = 50e-3
    assert node.acceptable_order_delay() == pytest.approx(base + 50e-3)


def test_heavy_requests_inflate_the_threshold():
    """The measurement behind the Prime attack (§III-A)."""
    sim, cluster, nodes, ports = build_prime(exec_cost=1e-4)
    before = [node.acceptable_order_delay() for node in nodes]
    # A colluding client sends heavy 1 ms requests.
    for i in range(30):
        sim.call_after(i * 2e-3, lambda: ports[0].send_request(exec_cost=1e-3))
    sim.run(until=0.5)
    after = [node.acceptable_order_delay() for node in nodes]
    assert all(b > a for a, b in zip(before, after))


def test_delaying_primary_within_threshold_is_not_suspected():
    sim, cluster, nodes, ports = build_prime(k_lat=20e-3)
    # Malicious primary stretches its period to 80% of the threshold.
    node0 = nodes[0]
    node0.ordering_period_fn = lambda: 0.8 * node0.acceptable_order_delay()
    gen = LoadGenerator(
        sim, ports, static_profile(1000, 1.0), RngTree(13).stream("load")
    )
    gen.start()
    sim.run(until=1.2)
    assert all(node.view == 0 for node in nodes)  # never caught
    assert nodes[1].executed_count > 0


def test_window_caps_coverage_per_ordering_message():
    sim, cluster, nodes, ports = build_prime(window=4, ordering_period=20e-3)
    for i in range(40):
        sim.call_after(i * 1e-4, ports[i % 4].send_request)
    sim.run(until=0.060)
    # With a 4-request window and ~2 periods elapsed, coverage is capped.
    assert nodes[1].executed_count <= 16
