"""Checkpoint-driven state transfer for lagging replicas."""

from tests.protocols.test_engine_unit import make_group, request, submit_all


def cut_node(fabric, name, n=4):
    for i in range(n):
        other = "node%d" % i
        if other != name:
            fabric.cut.add((other, name))
            fabric.cut.add((name, other))


def heal(fabric):
    fabric.cut.clear()


def test_laggard_fast_forwards_past_stable_checkpoint():
    sim, fabric, engines, ordered = make_group(checkpoint_interval=4)
    # node3 disappears; the other three keep ordering well past several
    # checkpoint intervals (quorums of 3 = 2f+1 still form).
    cut_node(fabric, "node3")
    reqs = [request(i) for i in range(64)]
    for i, req in enumerate(reqs):
        sim.call_after(i * 1e-4, submit_all, engines[:3], [req])
    sim.run(until=0.1)
    assert engines[0].low_watermark >= 8
    assert engines[3].next_exec == 1  # the laggard saw nothing

    # node3 reconnects; the next stable checkpoint fast-forwards it.
    heal(fabric)
    more = [request(100 + i) for i in range(32)]
    for i, req in enumerate(more):
        sim.call_after(i * 1e-4, submit_all, engines, [req])
    sim.run(until=0.3)
    assert engines[3].low_watermark >= 8
    assert engines[3].next_exec > 8  # jumped, not replayed
    # Requests ordered below the transferred checkpoint arrive as state,
    # not as deliveries; traffic ordered after the sync is delivered.
    tail_ids = {r.request_id for r in more[16:]}
    got = {rid for _, batch in ordered[3] for rid in batch}
    assert tail_ids <= got


def test_laggard_does_not_deliver_garbage_for_skipped_range():
    sim, fabric, engines, ordered = make_group(checkpoint_interval=4)
    cut_node(fabric, "node3")
    for i in range(32):
        sim.call_after(i * 1e-4, submit_all, engines[:3], [request(i)])
    sim.run(until=0.1)
    heal(fabric)
    for i in range(8):
        sim.call_after(i * 1e-4, submit_all, engines, [request(200 + i)])
    sim.run(until=0.3)
    # Whatever node3 delivered is a subset of what the others delivered,
    # in a consistent per-sequence way.
    reference = {seq: batch for seq, batch in ordered[0]}
    for seq, batch in ordered[3]:
        assert reference.get(seq) == batch


def test_checkpoint_quorum_requires_2f_plus_1():
    sim, fabric, engines, _ = make_group(checkpoint_interval=4)
    # With two nodes cut off, only 2 replicas checkpoint: no stability.
    cut_node(fabric, "node2")
    cut_node(fabric, "node3")
    for i in range(32):
        sim.call_after(i * 1e-4, submit_all, engines[:2], [request(i)])
    sim.run(until=0.2)
    assert engines[0].low_watermark == 0  # nothing could stabilise
