"""Property-based safety tests of the ordering engine.

The central BFT safety invariant: no two correct replicas deliver
different batches at the same sequence number, under any mix of request
schedules, view changes, and up to f silent replicas.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.protocols.test_engine_unit import make_group, request, submit_all


@st.composite
def schedules(draw):
    events = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("req"), st.integers(0, 200)),
                st.tuples(st.just("vc"), st.just(0)),
            ),
            min_size=1,
            max_size=25,
        )
    )
    silent = draw(st.sampled_from([None, 1, 2, 3]))
    return events, silent


@given(schedule=schedules())
@settings(max_examples=25, deadline=None)
def test_agreement_under_random_schedules(schedule):
    events, silent = schedule
    sim, fabric, engines, ordered = make_group()
    if silent is not None:
        engines[silent].silent = True

    time = 0.0
    rid = 0
    for kind, value in events:
        time += 1e-3
        if kind == "req":
            rid += 1
            req = request(rid)
            sim.call_after(time, submit_all, engines, [req])
        else:
            sim.call_after(
                time, lambda: [e.start_view_change() for e in engines if not e.silent]
            )
    sim.run(until=time + 0.5)

    # Safety: per-sequence agreement across replicas.
    per_seq = {}
    for node, node_ordered in ordered.items():
        for seq, batch in node_ordered:
            if seq in per_seq:
                assert per_seq[seq] == batch, "divergence at seq %d" % seq
            else:
                per_seq[seq] = batch

    # No request is delivered twice on any single replica.
    for node_ordered in ordered.values():
        seen = set()
        for _, batch in node_ordered:
            for req_id in batch:
                assert req_id not in seen, "duplicate delivery of %r" % (req_id,)
                seen.add(req_id)


@given(
    n_requests=st.integers(4, 40),
    vc_at=st.floats(min_value=5e-4, max_value=3e-2),
    silent=st.sampled_from([None, 1, 2, 3]),
)
@settings(max_examples=25, deadline=None)
def test_prepared_certificates_survive_view_changes(n_requests, vc_at, silent):
    """A batch prepared at f+1 *correct* replicas is never committed with
    a different digest after a view change.

    Any view-change quorum of 2f+1 replicas intersects those f+1 correct
    holders, so the new primary must carry the certificate over — the
    batch can only ever be re-proposed at the same sequence number with
    the same content.  The view-change instant is randomized so the
    snapshot catches batches at every stage of the three-phase pipeline.
    """
    sim, fabric, engines, ordered = make_group()
    if silent is not None:
        engines[silent].silent = True
    correct = [e for i, e in enumerate(engines) if i != silent]

    for i in range(n_requests):
        sim.call_after(i * 3e-4, submit_all, engines, [request(i)])

    prepared_at_quorum = {}

    def snapshot_and_view_change():
        counts = {}
        for engine in correct:
            for seq, entry in engine.log.items():
                if entry.prepared:
                    key = (seq, tuple(it.request_id for it in entry.items))
                    counts[key] = counts.get(key, 0) + 1
        for (seq, rids), holders in counts.items():
            if holders >= 2:  # f+1 correct replicas hold the certificate
                prepared_at_quorum[seq] = rids
        for engine in correct:
            engine.start_view_change()

    sim.call_after(vc_at, snapshot_and_view_change)
    sim.run(until=1.0)

    for node, node_ordered in ordered.items():
        if silent is not None and node == silent:
            continue
        delivered = dict(node_ordered)
        for seq, rids in prepared_at_quorum.items():
            assert seq in delivered, (
                "node%d never delivered prepared seq %d" % (node, seq)
            )
            assert delivered[seq] == rids, (
                "node%d delivered %r at seq %d, but %r was prepared at "
                "f+1 correct replicas before the view change"
                % (node, delivered[seq], seq, rids)
            )


@given(
    n_requests=st.integers(1, 40),
    vc_at=st.floats(min_value=1e-4, max_value=2e-2),
)
@settings(max_examples=20, deadline=None)
def test_liveness_after_view_change(n_requests, vc_at):
    """Every submitted request is eventually delivered by every correct
    replica, even with a view change racing the traffic."""
    sim, fabric, engines, ordered = make_group()
    reqs = [request(i) for i in range(n_requests)]
    for i, req in enumerate(reqs):
        sim.call_after(i * 2e-4, submit_all, engines, [req])
    sim.call_after(vc_at, lambda: [e.start_view_change() for e in engines])
    sim.run(until=1.0)
    want = {req.request_id for req in reqs}
    for node_ordered in ordered.values():
        got = {rid for _, batch in node_ordered for rid in batch}
        assert got == want
