"""Safety under an equivocating primary.

The attacks in the paper are *performance* attacks; equivocation (the
primary proposing different batches at the same sequence number to
different replicas) is the classic *safety* attack, and the three-phase
commit must neutralise it: conflicting batches can never both commit,
and a view change restores liveness.
"""

from repro.crypto import MacAuthenticator
from repro.crypto.primitives import Digest
from repro.protocols.pbft.messages import PrePrepare, batch_payload_size

from tests.protocols.test_engine_unit import make_group, request, submit_all


def equivocate(sim, fabric, engines, seq, view=0):
    """node0 sends batch A to node1 and batch B to nodes 2 and 3."""
    batch_a = (request(1000 + seq, client="cA"),)
    batch_b = (request(2000 + seq, client="cB"),)

    def preprepare(items):
        return PrePrepare(
            "node0",
            0,
            view,
            seq,
            items,
            Digest(("batch", 0, seq, tuple(i.request_id for i in items))),
            batch_payload_size(items, True),
            MacAuthenticator("node0"),
        )

    engines[1].receive(preprepare(batch_a))
    engines[2].receive(preprepare(batch_b))
    engines[3].receive(preprepare(batch_b))
    return batch_a, batch_b


def test_conflicting_batches_never_both_commit():
    sim, fabric, engines, ordered = make_group()
    batch_a, batch_b = equivocate(sim, fabric, engines, seq=1)
    sim.run(until=0.2)
    committed = {}
    for node, node_ordered in ordered.items():
        for seq, batch in node_ordered:
            committed.setdefault(seq, set()).add(batch)
    for seq, batches in committed.items():
        assert len(batches) == 1, "equivocation committed twice at %d" % seq


def test_minority_batch_cannot_commit():
    sim, fabric, engines, ordered = make_group()
    equivocate(sim, fabric, engines, seq=1)
    sim.run(until=0.2)
    # Batch A was sent to a single replica: it can never assemble 2f
    # prepares, so node1 must not deliver anything for it.
    a_ids = {("cA", 1001)}
    for node_ordered in ordered.values():
        got = {rid for _, batch in node_ordered for rid in batch}
        assert not (got & a_ids)


def test_view_change_recovers_liveness_after_equivocation():
    sim, fabric, engines, ordered = make_group()
    equivocate(sim, fabric, engines, seq=1)
    sim.run(until=0.1)
    # The stuck replicas vote the equivocator out; node0 is Byzantine and
    # does not participate, but 3 = 2f+1 correct votes complete the change.
    for engine in engines[1:]:
        engine.start_view_change()
    engines[0].silent = True  # the exposed primary goes quiet
    sim.run(until=0.3)
    assert all(engine.view == 1 for engine in engines[1:])
    # New requests flow under the new primary.
    reqs = [request(i) for i in range(4)]
    submit_all(engines[1:], reqs)
    sim.run(until=0.6)
    delivered = {rid for _, batch in ordered[1] for rid in batch}
    assert {r.request_id for r in reqs} <= delivered


def test_majority_branch_may_commit_exactly_once():
    sim, fabric, engines, ordered = make_group()
    _, batch_b = equivocate(sim, fabric, engines, seq=1)
    sim.run(until=0.3)
    # Batch B reached 2 backups; with the primary's implicit prepare it
    # can prepare, and commits require 2f+1 = 3 replicas. Whether it
    # commits depends on node0's own (Byzantine) behaviour — the
    # invariant is that IF it commits anywhere, it is batch B, once.
    b_ids = {("cB", 2001)}
    for node_ordered in ordered.values():
        got = [rid for _, batch in node_ordered for rid in batch]
        assert len(got) == len(set(got))
        assert set(got) <= b_ids
