"""Direct unit tests of OrderingInstance with an in-memory transport.

These bypass the network entirely: four engines share a loopback fabric
with optional per-link suppression, so every corner of the three-phase
state machine can be driven deterministically.
"""


from repro.common.types import Request
from repro.crypto import CryptoCostModel, MacAuthenticator, Signature
from repro.protocols.pbft.engine import InstanceConfig, OrderingInstance
from repro.sim import Core, Simulator


class LoopbackFabric:
    """Delivers broadcasts between engines with a tiny fixed delay."""

    def __init__(self, sim, delay=1e-5):
        self.sim = sim
        self.delay = delay
        self.engines = {}
        self.cut = set()  # (src, dst) pairs whose messages are dropped
        self.log = []

    def transport_for(self, name):
        fabric = self

        class _Transport:
            def broadcast(self, msg):
                fabric.log.append(msg)
                for dst, engine in fabric.engines.items():
                    if dst == name or (name, dst) in fabric.cut:
                        continue
                    fabric.sim.call_after(fabric.delay, engine.receive, msg)

            def send(self, dst, msg):
                if (name, dst) not in fabric.cut:
                    fabric.sim.call_after(
                        fabric.delay, fabric.engines[dst].receive, msg
                    )

        return _Transport()


def make_group(f=1, sim=None, **config_overrides):
    sim = sim or Simulator()
    fabric = LoopbackFabric(sim)
    config = InstanceConfig(
        f=f, batch_size=4, batch_delay=1e-4, **config_overrides
    )
    costs = CryptoCostModel()
    ordered = {i: [] for i in range(config.n)}
    engines = []
    for i in range(config.n):
        name = "node%d" % i

        def on_ordered(seq, items, _i=i):
            ordered[_i].append((seq, tuple(item.request_id for item in items)))

        engine = OrderingInstance(
            sim,
            Core(sim, name),
            fabric.transport_for(name),
            config,
            costs,
            replica=name,
            on_ordered=on_ordered,
            primary_offset=0,
        )
        engines.append(engine)
        fabric.engines[name] = engine
    return sim, fabric, engines, ordered


def request(rid, client="c0"):
    return Request(
        client=client,
        rid=rid,
        payload_size=8,
        signature=Signature(client),
        authenticator=MacAuthenticator(client),
    )


def submit_all(engines, requests):
    for engine in engines:
        for req in requests:
            engine.submit(req)


def test_basic_ordering_all_replicas_agree():
    sim, fabric, engines, ordered = make_group()
    submit_all(engines, [request(i) for i in range(8)])
    sim.run(until=0.2)
    assert all(len(seq) == 2 for seq in ordered.values())  # 8 reqs / batch 4
    assert len(set(map(tuple, ordered.values()))) == 1


def test_primary_is_offset_rotation():
    sim, fabric, engines, _ = make_group()
    assert engines[0].is_primary
    assert engines[0].primary_index(0) == 0
    assert engines[0].primary_index(1) == 1
    assert engines[0].primary_index(4) == 0


def test_primary_offset_shifts_rotation():
    sim = Simulator()
    fabric = LoopbackFabric(sim)
    config = InstanceConfig(f=1)
    engine = OrderingInstance(
        sim,
        Core(sim, "x"),
        fabric.transport_for("node2"),
        config,
        CryptoCostModel(),
        replica="node2",
        instance=1,
    )
    # RBFT: primary of instance k in view v is node (v + k) mod n.
    assert engine.primary_index(0) == 1
    assert engine.primary_index(3) == 0


def test_duplicate_submissions_are_ordered_once():
    sim, fabric, engines, ordered = make_group()
    reqs = [request(i) for i in range(4)]
    submit_all(engines, reqs)
    submit_all(engines, reqs)  # duplicates
    sim.run(until=0.2)
    all_ids = [rid for _, batch in ordered[1] for rid in batch]
    assert sorted(all_ids) == sorted(r.request_id for r in reqs)


def test_ordering_is_sequential_even_with_out_of_order_commits():
    sim, fabric, engines, ordered = make_group()
    submit_all(engines, [request(i) for i in range(16)])
    sim.run(until=0.3)
    for node_ordered in ordered.values():
        seqs = [seq for seq, _ in node_ordered]
        assert seqs == sorted(seqs)
        assert seqs[0] == 1


def test_guard_defers_preprepare_until_satisfied():
    sim = Simulator()
    ready = set()
    fabric = LoopbackFabric(sim)
    config = InstanceConfig(f=1, batch_size=2, batch_delay=1e-4)
    costs = CryptoCostModel()
    ordered = []
    engines = []
    for i in range(4):
        name = "node%d" % i
        engine = OrderingInstance(
            sim,
            Core(sim, name),
            fabric.transport_for(name),
            config,
            costs,
            replica=name,
            on_ordered=lambda seq, items: ordered.append(seq),
            guard=(lambda items: all(x.request_id in ready for x in items))
            if i != 0
            else None,
        )
        engines.append(engine)
        fabric.engines[name] = engine
    reqs = [request(1), request(2)]
    submit_all(engines, reqs)
    sim.run(until=0.05)
    assert ordered == []  # backups refuse to prepare: guard unsatisfied
    for req in reqs:
        ready.add(req.request_id)
    for engine in engines:
        engine.recheck_guards()
    sim.run(until=0.2)
    assert ordered  # guard satisfied: ordering completes


def test_silent_replica_sends_nothing():
    sim, fabric, engines, ordered = make_group()
    engines[3].silent = True
    before = len(fabric.log)
    submit_all(engines, [request(i) for i in range(4)])
    sim.run(until=0.2)
    assert all(msg.sender != "node3" for msg in fabric.log[before:])
    assert len(ordered[0]) == 1  # the other 3 = 2f+1 still suffice


def test_two_silent_replicas_block_f1_group():
    sim, fabric, engines, ordered = make_group()
    engines[2].silent = True
    engines[3].silent = True
    submit_all(engines, [request(i) for i in range(4)])
    sim.run(until=0.3)
    assert all(len(o) == 0 for o in ordered.values())  # quorum impossible


def test_checkpoint_gc_keeps_log_bounded():
    sim, fabric, engines, ordered = make_group(checkpoint_interval=4)
    submit_all(engines, [request(i) for i in range(64)])
    sim.run(until=0.5)
    for engine in engines:
        assert engine.low_watermark >= 12
        assert len(engine.log) <= 8


def test_watermark_rejects_far_future_seq():
    sim, fabric, engines, _ = make_group(watermark_window=2)
    from repro.crypto.primitives import Digest
    from repro.protocols.pbft.messages import PrePrepare

    msg = PrePrepare(
        "node0", 0, 0, 99, (request(1),), Digest("x"), 100,
        MacAuthenticator("node0"),
    )
    engines[1].receive(msg)
    sim.run(until=0.05)
    assert 99 not in engines[1].log


def test_view_change_quorum_required():
    sim, fabric, engines, _ = make_group()
    engines[1].start_view_change()
    engines[2].start_view_change()
    sim.run(until=0.1)
    # Only 2 votes (< 2f+1): nobody installs view 1... but the f+1 join
    # rule makes the remaining correct replicas join, completing it.
    assert all(engine.view == 1 for engine in engines)


def test_single_view_change_vote_goes_nowhere():
    sim, fabric, engines, _ = make_group()
    engines[1].start_view_change()
    sim.run(until=0.1)
    # One vote is below the f+1 join threshold: view 0 stands elsewhere.
    assert engines[0].view == 0
    assert engines[2].view == 0


def test_view_change_reproposes_prepared_batch():
    sim, fabric, engines, ordered = make_group()
    # Cut node3 off so commits stall at 2 votes (prepared, uncommitted).
    for dst in ("node0", "node1", "node2"):
        fabric.cut.add(("node3", dst))
    fabric.cut.add(("node0", "node3"))
    submit_all(engines[:3], [request(i) for i in range(4)])
    sim.run(until=0.05)
    committed_before = sum(len(o) for o in ordered.values())
    # Heal the network and change views; the prepared batch must survive.
    fabric.cut.clear()
    for engine in engines:
        engine.start_view_change()
    sim.run(until=0.3)
    assert sum(len(o) for o in ordered.values()) >= committed_before
    ids = {rid for _, batch in ordered[1] for rid in batch}
    assert ids == {("c0", i) for i in range(4)}


def test_no_two_batches_committed_at_same_seq():
    """Safety invariant across a view change."""
    sim, fabric, engines, ordered = make_group()
    submit_all(engines, [request(i) for i in range(12)])
    sim.call_after(0.01, lambda: [e.start_view_change() for e in engines])
    submit_all(engines, [request(i + 100) for i in range(12)])
    sim.run(until=0.5)
    per_seq = {}
    for node, node_ordered in ordered.items():
        for seq, batch in node_ordered:
            if seq in per_seq:
                assert per_seq[seq] == batch, "divergence at seq %d" % seq
            else:
                per_seq[seq] = batch


def test_auto_advance_rotates_every_batch():
    sim, fabric, engines, ordered = make_group(auto_advance_view=True)
    submit_all(engines, [request(i) for i in range(12)])
    sim.run(until=0.3)
    assert all(engine.view >= 3 for engine in engines)
    assert all(len(o) >= 3 for o in ordered.values())
    seqs = [seq for seq, _ in ordered[0]]
    assert seqs == sorted(seqs)


def test_primary_selector_override():
    sim, fabric, engines, ordered = make_group()
    for engine in engines:
        engine.primary_selector = lambda view: 2  # node2 is always primary
    assert engines[2].is_primary
    assert not engines[0].is_primary
    submit_all(engines, [request(i) for i in range(4)])
    sim.run(until=0.2)
    assert len(ordered[0]) == 1


def test_invalid_authenticator_reported_and_dropped():
    sim, fabric, engines, ordered = make_group()
    reported = []
    engines[1].on_invalid = reported.append
    from repro.crypto.primitives import Digest
    from repro.protocols.pbft.messages import Prepare

    bogus = Prepare(
        "node3", 0, 0, 1, Digest("x"), MacAuthenticator.corrupt("node3")
    )
    engines[1].receive(bogus)
    sim.run(until=0.05)
    assert reported == ["node3"]


def test_delayed_preprepare_dropped_after_view_change():
    sim, fabric, engines, ordered = make_group()
    engines[0].preprepare_delay_fn = lambda msg: 0.05
    submit_all(engines, [request(i) for i in range(4)])
    sim.call_after(0.01, lambda: [e.start_view_change() for e in engines])
    sim.run(until=0.5)
    # The delayed view-0 pre-prepare must not be emitted into view 1;
    # the requests are re-proposed by the new primary instead.
    ids = {rid for _, batch in ordered[1] for rid in batch}
    assert ids == {("c0", i) for i in range(4)}


def test_backlog_counts_unordered_requests():
    sim, fabric, engines, _ = make_group()
    engines[1].submit(request(1))
    assert engines[1].backlog() == 1
