"""Tests for the Aardvark baseline."""

import pytest

from repro.clients import LoadGenerator, OpenLoopClient, static_profile
from repro.common import Cluster, ClusterConfig, NullService
from repro.protocols.aardvark import AardvarkConfig, AardvarkNode
from repro.protocols.pbft.engine import InstanceConfig
from repro.sim import RngTree, Simulator


def build_aardvark(
    f=1,
    clients=4,
    grace=0.2,
    requirement_period=0.05,
    heartbeat=0.15,
    batch_size=16,
    seed=3,
):
    sim = Simulator()
    cluster = Cluster(sim, ClusterConfig(f=f, seed=seed))
    config = AardvarkConfig(
        instance=InstanceConfig(f=f, batch_size=batch_size, batch_delay=1e-3),
        grace_period=grace,
        requirement_period=requirement_period,
        heartbeat_timeout=heartbeat,
    )
    nodes = [
        AardvarkNode(machine, config, NullService()) for machine in cluster.machines
    ]
    ports = [OpenLoopClient(cluster, "client%d" % i) for i in range(clients)]
    return sim, cluster, nodes, ports


def saturate(sim, ports, rate, duration, seed=9):
    gen = LoadGenerator(
        sim, ports, static_profile(rate, duration), RngTree(seed).stream("load")
    )
    gen.start()
    return gen


def test_orders_requests_like_pbft():
    sim, cluster, nodes, ports = build_aardvark()
    for i in range(20):
        sim.call_after(i * 1e-4, ports[i % 4].send_request)
    sim.run(until=0.15)
    assert all(node.executed_count == 20 for node in nodes)


def test_regular_view_changes_under_sustained_load():
    """The rising requirement eventually exceeds the peak: view change."""
    sim, cluster, nodes, ports = build_aardvark()
    saturate(sim, ports, rate=5000, duration=3.0)
    sim.run(until=3.0)
    # At least one regular view change happened, and the system kept going.
    assert all(node.engine.view >= 1 for node in nodes)
    assert nodes[0].executed_count > 10_000


def test_throughput_history_tracks_views():
    sim, cluster, nodes, ports = build_aardvark()
    saturate(sim, ports, rate=5000, duration=3.0)
    sim.run(until=3.0)
    node = nodes[0]
    assert len(node.history) >= 1
    assert max(node.history) > 1000  # near the offered 5k


def test_required_throughput_is_90_percent_of_reference():
    sim, cluster, nodes, ports = build_aardvark()
    node = nodes[0]
    node.history.append(1000.0)
    assert node.required_throughput() == pytest.approx(900.0)


def test_required_throughput_rises_one_percent_per_raise():
    sim, cluster, nodes, ports = build_aardvark()
    node = nodes[0]
    node.history.append(1000.0)
    node._raises = 3
    assert node.required_throughput() == pytest.approx(900.0 * 1.01**3)


def test_heartbeat_recovers_from_silent_primary():
    sim, cluster, nodes, ports = build_aardvark()
    nodes[0].engine.silent = True  # the view-0 primary goes mute
    for i in range(10):
        sim.call_after(i * 1e-4, ports[i % 4].send_request)
    sim.run(until=2.0)
    # The heartbeat timeout voted the primary out; requests got executed.
    assert all(node.engine.view >= 1 for node in nodes[1:])
    assert all(node.executed_count == 10 for node in nodes[1:])


def test_delaying_primary_is_evicted_when_below_requirement():
    sim, cluster, nodes, ports = build_aardvark(grace=0.3)
    # A crude attacker: the primary simply delays every batch far beyond
    # what the requirement allows once history exists.
    nodes[0].engine.preprepare_delay_fn = lambda msg: 50e-3
    saturate(sim, ports, rate=5000, duration=3.0)
    sim.run(until=3.0)
    assert all(node.engine.view >= 1 for node in nodes[1:])


def test_clients_complete_during_regular_view_changes():
    sim, cluster, nodes, ports = build_aardvark()
    gen = saturate(sim, ports, rate=3000, duration=2.0)
    sim.run(until=2.5)
    assert gen.total_completed() >= 0.98 * gen.total_sent()
