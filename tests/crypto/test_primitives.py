"""Unit tests for virtual crypto objects."""

from repro.crypto import Digest, Mac, MacAuthenticator, Signature


def test_digest_structural_equality():
    assert Digest(("client1", 4)) == Digest(("client1", 4))
    assert Digest(("client1", 4)) != Digest(("client1", 5))


def test_digest_is_hashable():
    seen = {Digest("a"), Digest("a"), Digest("b")}
    assert len(seen) == 2


def test_mac_validity_flag():
    assert Mac("node0").valid
    assert not Mac("node0", valid=False).valid


def test_authenticator_default_valid_for_everyone():
    auth = MacAuthenticator("node1")
    assert auth.valid_for("node0")
    assert auth.valid_for("node3")
    assert auth.valid_for_any()


def test_authenticator_selective_corruption():
    # worst-attack-1: valid for everyone except the master primary's node.
    auth = MacAuthenticator("client7", invalid_for=frozenset({"node0"}))
    assert not auth.valid_for("node0")
    assert auth.valid_for("node1")


def test_fully_corrupt_authenticator():
    auth = MacAuthenticator.corrupt("node3")
    assert not auth.valid_for_any()


def test_signature_convinces_everyone_or_no_one():
    assert Signature("client2").valid
    assert not Signature("client2", valid=False).valid
