"""Unit tests for blacklists."""

from repro.crypto import BoundedBlacklist, ClientBlacklist


def test_client_blacklist_bans_persistently():
    blacklist = ClientBlacklist()
    assert not blacklist.banned("c1")
    blacklist.ban("c1")
    assert blacklist.banned("c1")
    assert not blacklist.banned("c2")
    assert len(blacklist) == 1


def test_bounded_blacklist_holds_up_to_capacity():
    blacklist = BoundedBlacklist(2)
    assert blacklist.ban("r0") is None
    assert blacklist.ban("r1") is None
    assert blacklist.banned("r0") and blacklist.banned("r1")


def test_bounded_blacklist_evicts_oldest():
    # Spinning: with f entries present, the oldest is removed (liveness).
    blacklist = BoundedBlacklist(2)
    blacklist.ban("r0")
    blacklist.ban("r1")
    evicted = blacklist.ban("r2")
    assert evicted == "r0"
    assert not blacklist.banned("r0")
    assert blacklist.banned("r1") and blacklist.banned("r2")


def test_reban_refreshes_position():
    blacklist = BoundedBlacklist(2)
    blacklist.ban("r0")
    blacklist.ban("r1")
    blacklist.ban("r0")  # refresh r0: r1 is now oldest
    evicted = blacklist.ban("r2")
    assert evicted == "r1"


def test_zero_capacity_never_stores():
    blacklist = BoundedBlacklist(0)
    assert blacklist.ban("r0") == "r0"
    assert not blacklist.banned("r0")
    assert len(blacklist) == 0


def test_negative_capacity_rejected():
    import pytest

    with pytest.raises(ValueError):
        BoundedBlacklist(-1)
