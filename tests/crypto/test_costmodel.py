"""Unit tests for the crypto cost model."""

import pytest

from repro.crypto import DEFAULT_COST_MODEL, DIGEST_SIZE, CryptoCostModel


def test_signatures_cost_an_order_of_magnitude_more_than_macs():
    model = DEFAULT_COST_MODEL
    # §VI-B: "signatures are an order of magnitude more costly than MACs".
    assert model.sig_verify(8) >= 10 * model.mac_verify(8)
    assert model.sig_gen(8) >= 10 * model.mac_gen(8)


def test_costs_grow_with_payload_size():
    model = DEFAULT_COST_MODEL
    assert model.mac_gen(4096) > model.mac_gen(8)
    assert model.digest(4096) > model.digest(8)
    assert model.sig_verify(4096) > model.sig_verify(8)


def test_authenticator_is_one_digest_plus_per_recipient_macs():
    model = DEFAULT_COST_MODEL
    n = 4
    expected = model.digest(1000) + n * model.mac_gen(DIGEST_SIZE)
    assert model.authenticator_gen(1000, n) == pytest.approx(expected)


def test_authenticator_verify_checks_single_entry():
    model = DEFAULT_COST_MODEL
    expected = model.digest(1000) + model.mac_verify(DIGEST_SIZE)
    assert model.authenticator_verify(1000) == pytest.approx(expected)


def test_authenticator_cheaper_than_per_recipient_full_macs():
    # This asymmetry is why ordering identifiers beats ordering requests.
    model = DEFAULT_COST_MODEL
    assert model.authenticator_gen(4096, 3) < 3 * model.mac_gen(4096)


def test_scaled_model_preserves_ratios():
    model = DEFAULT_COST_MODEL
    slow = model.scaled(10.0)
    assert slow.mac_gen(100) == pytest.approx(10 * model.mac_gen(100))
    ratio = model.sig_verify(8) / model.mac_verify(8)
    slow_ratio = slow.sig_verify(8) / slow.mac_verify(8)
    assert slow_ratio == pytest.approx(ratio)


def test_model_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_COST_MODEL.mac_base = 0.0  # type: ignore[misc]


def test_custom_model():
    model = CryptoCostModel(mac_base=1.0, hash_per_byte=0.0)
    assert model.mac_gen(10_000) == 1.0
