"""Tests for the command-line interface (wiring, not physics)."""

import pytest

from repro.experiments.cli import COMMANDS, main


def test_every_figure_has_a_command():
    expected = {"table1", "fig1", "fig2", "fig3", "fig7", "fig8", "fig9",
                "fig10", "fig11", "fig12"}
    assert set(COMMANDS) == expected


def test_missing_command_exits_with_usage():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_fig9_runs_end_to_end(capsys, monkeypatch):
    # The smallest real command: one monitored run.
    monkeypatch.delenv("RBFT_FULL", raising=False)
    assert main(["fig9", "--payload", "1024"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 9" in out
    assert "master=" in out


def test_explore_and_check_round_trip(capsys, tmp_path):
    out_dir = str(tmp_path)
    assert main([
        "explore", "--episodes", "1", "--seed", "1",
        "--out", out_dir, "--duration", "0.4", "--check",
    ]) == 0
    stdout = capsys.readouterr().out
    assert "1/1 episodes passed" in stdout
    assert "wrote 1 artifacts" in stdout

    artifact = str(tmp_path / "episode-0000.json")
    assert main(["check", "--replay", artifact]) == 0
    assert "byte-identical replay" in capsys.readouterr().out


def test_fig12_runs_end_to_end(capsys):
    assert main(["fig12"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 12" in out
    assert "instance change" in out


# --------------------------------------------------- exit-code discipline
#
# 0 = success, 1 = a gate caught a genuine finding (--check failure,
# replay mismatch), 2 = usage error (bad arguments, unreadable
# artifacts).  CI relies on 1-vs-2 to tell "the protocol regressed"
# apart from "the job is misconfigured".


def test_search_unknown_strategy_is_a_usage_error(capsys):
    assert main([
        "explore", "--search", "--strategy", "simulated-annealing",
        "--budget", "1",
    ]) == 2
    assert "unknown search strategy" in capsys.readouterr().err


def test_search_unknown_protocol_is_a_usage_error(capsys):
    assert main([
        "explore", "--search", "--protocol", "zyzzyva",
        "--budget", "1", "--duration", "0.4",
    ]) == 2
    assert "zyzzyva" in capsys.readouterr().err


def test_check_replay_of_a_directory(capsys, tmp_path):
    import json

    out_dir = str(tmp_path)
    assert main([
        "explore", "--episodes", "2", "--seed", "1",
        "--out", out_dir, "--duration", "0.4",
    ]) == 0
    capsys.readouterr()

    # A directory expands to every episode artifact inside it.
    assert main(["check", "--replay", out_dir]) == 0
    assert "2/2 byte-identical replays" in capsys.readouterr().out

    # Digest drift in any one artifact is a gate failure (exit 1), the
    # negative test the adversary-regression CI job depends on.
    victim = tmp_path / "episode-0001.json"
    record = json.loads(victim.read_text())
    record["digest"] = "0" * 64
    victim.write_text(json.dumps(record))
    assert main(["check", "--replay", out_dir]) == 1
    assert "MISMATCH" in capsys.readouterr().out


def test_check_replay_usage_errors(capsys, tmp_path):
    # An empty directory has nothing to replay: usage error, not a gate.
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["check", "--replay", str(empty)]) == 2
    assert "no episode artifacts" in capsys.readouterr().err

    # Malformed JSON is a usage error too — a broken pin must not read
    # as "the protocol regressed".
    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    assert main(["check", "--replay", str(broken)]) == 2
    assert "malformed" in capsys.readouterr().err


def test_search_cli_round_trip(capsys, tmp_path):
    out_dir = str(tmp_path / "board")
    assert main([
        "explore", "--search", "--budget", "2", "--seed", "1",
        "--strategy", "bandit", "--out", out_dir,
        "--duration", "0.4", "--check",
    ]) == 0
    stdout = capsys.readouterr().out
    assert "adversary search:" in stdout
    assert "scripted rbft-worst1" in stdout
    assert "scripted rbft-worst2" in stdout

    # The leaderboard's episode artifacts replay like explorer episodes.
    assert main(["check", "--replay", out_dir]) == 0
    assert "byte-identical replays" in capsys.readouterr().out


def test_pinned_episode_validator(tmp_path):
    import json
    import subprocess
    import sys
    from pathlib import Path

    repo = Path(__file__).resolve().parents[2]
    script = str(repo / "tools" / "check_episodes.py")

    def run(directory):
        return subprocess.run(
            [sys.executable, script, str(directory)],
            capture_output=True, text=True,
        )

    # The committed pins must validate.
    assert run(repo / "benchmarks" / "adversary").returncode == 0

    # A pin with a bogus protocol, an unknown fault kind or a missing
    # digest is caught at lint time.
    bad_dir = tmp_path / "pins"
    bad_dir.mkdir()
    (bad_dir / "bad.json").write_text(json.dumps({
        "spec": {
            "seed": 1,
            "protocol": "zyzzyva",
            "plan": [{"kind": "not-a-fault", "params": {}}],
        },
    }))
    verdict = run(bad_dir)
    assert verdict.returncode == 1
    assert "unknown protocol" in verdict.stderr
    assert "unknown fault kind" in verdict.stderr
    assert "digest" in verdict.stderr

    # A pin whose spec crosses the instance-batching threshold is also
    # rejected: replay digests hash the exact per-message schedule, so
    # adversary replays must stay on the exact path.
    deep_dir = tmp_path / "deep"
    deep_dir.mkdir()
    (deep_dir / "deep.json").write_text(json.dumps({
        "spec": {"seed": 1, "f": 5, "plan": []},
        "digest": "0" * 64,
    }))
    verdict = run(deep_dir)
    assert verdict.returncode == 1
    assert "batching threshold" in verdict.stderr
