"""Tests for the command-line interface (wiring, not physics)."""

import pytest

from repro.experiments.cli import COMMANDS, main


def test_every_figure_has_a_command():
    expected = {"table1", "fig1", "fig2", "fig3", "fig7", "fig8", "fig9",
                "fig10", "fig11", "fig12"}
    assert set(COMMANDS) == expected


def test_missing_command_exits_with_usage():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_fig9_runs_end_to_end(capsys, monkeypatch):
    # The smallest real command: one monitored run.
    monkeypatch.delenv("RBFT_FULL", raising=False)
    assert main(["fig9", "--payload", "1024"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 9" in out
    assert "master=" in out


def test_explore_and_check_round_trip(capsys, tmp_path):
    out_dir = str(tmp_path)
    assert main([
        "explore", "--episodes", "1", "--seed", "1",
        "--out", out_dir, "--duration", "0.4", "--check",
    ]) == 0
    stdout = capsys.readouterr().out
    assert "1/1 episodes passed" in stdout
    assert "wrote 1 artifacts" in stdout

    artifact = str(tmp_path / "episode-0000.json")
    assert main(["check", "--replay", artifact]) == 0
    assert "byte-identical replay" in capsys.readouterr().out


def test_fig12_runs_end_to_end(capsys):
    assert main(["fig12"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 12" in out
    assert "instance change" in out
