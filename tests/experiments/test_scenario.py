"""Scenario/run(): equivalence with the legacy entry points.

The redesign's contract: ``run(Scenario(...))`` is the only internal
run path, ``Workload`` is the one way to describe traffic, and the
deprecated ``run_static``/``run_dynamic`` shims and ``load``/``rate``/
``n_clients`` fields are thin folds over it — so for every protocol the
old and new spellings must produce *identical* results (RunResult is a
plain dataclass; equality is field-by-field, covering rates, latencies
and event counts).
"""

import warnings

import pytest

from repro.experiments import (
    SMOKE,
    Scenario,
    Workload,
    run,
    run_dynamic,
    run_static,
)

#: one representative per protocol family (variants share the builders).
PROTOCOLS = ["rbft", "aardvark", "spinning", "prime", "pbft"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_scenario_matches_run_static(protocol):
    scenario = Scenario(
        protocol=protocol,
        workload=Workload("static", rate=2000.0, population=False),
        scale=SMOKE, seed=3,
    )
    via_scenario = run(scenario)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        via_legacy = run_static(protocol, 8, rate=2000.0, scale=SMOKE, seed=3)
    assert via_scenario == via_legacy


def test_scenario_matches_run_dynamic():
    scenario = Scenario(
        protocol="rbft",
        workload=Workload("spike", rate=300.0, population=False),
        scale=SMOKE, seed=1,
    )
    via_scenario = run(scenario)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        via_legacy = run_dynamic(
            "rbft", 8, per_client_rate=300.0, scale=SMOKE, seed=1
        )
    assert via_scenario == via_legacy


def test_runs_are_deterministic():
    scenario = Scenario(
        protocol="rbft", workload=Workload("static", rate=2000.0), scale=SMOKE
    )
    assert run(scenario) == run(scenario)


def test_scenario_run_method_delegates():
    scenario = Scenario(
        protocol="pbft", workload=Workload("static", rate=2000.0), scale=SMOKE
    )
    assert scenario.run() == run(scenario)


def test_attack_scenarios_run():
    scenario = Scenario(
        protocol="rbft", workload=Workload("static", rate=2000.0),
        attack="rbft-worst1", scale=SMOKE,
    )
    result = run(scenario)
    assert result.executed_rate > 0


def test_legacy_entry_points_warn():
    with pytest.warns(DeprecationWarning, match="run_static"):
        run_static("pbft", 8, rate=2000.0, scale=SMOKE)
    with pytest.warns(DeprecationWarning, match="run_dynamic"):
        run_dynamic("pbft", 8, per_client_rate=300.0, scale=SMOKE)


def test_legacy_fields_warn_and_fold_to_workload():
    with pytest.warns(DeprecationWarning, match="load/rate/n_clients"):
        legacy = Scenario(protocol="rbft", rate=2000.0, n_clients=4)
    # The fold is canonical: the legacy fields are cleared, the workload
    # carries their meaning, and the result equals the modern spelling.
    assert legacy.rate is None and legacy.load is None
    assert legacy.n_clients is None
    assert legacy == Scenario(
        protocol="rbft",
        workload=Workload("static", rate=2000.0, clients=4, population=False),
    )


def test_legacy_dynamic_folds_to_spike():
    with pytest.warns(DeprecationWarning):
        legacy = Scenario(protocol="rbft", load="dynamic", rate=300.0)
    assert legacy.workload.shape == "spike"


def test_legacy_and_workload_together_is_an_error():
    with pytest.raises(ValueError, match="not both"):
        Scenario(protocol="rbft", rate=2000.0, workload="static")


def test_scenario_rejects_unknown_load():
    with pytest.raises(ValueError, match="unknown load"):
        Scenario(protocol="rbft", load="bursty")


def test_scenario_rejects_unknown_workload():
    with pytest.raises(ValueError, match="unknown workload"):
        Scenario(protocol="rbft", workload="bursty")


def test_workload_accepts_pack_name_string():
    scenario = Scenario(protocol="rbft", workload="diurnal")
    assert isinstance(scenario.workload, Workload)
    assert scenario.workload.shape == "diurnal"


def test_unrated_topology_scenario_is_rejected():
    """rate=None means "probe the flat LAN" — silently doing that under
    a WAN topology would measure the wrong deployment."""
    from repro.net.topology import named

    scenario = Scenario(
        protocol="rbft", workload="static", topology=named("wan3"),
        scale=SMOKE,
    )
    with pytest.raises(ValueError, match="topology"):
        run(scenario)


def test_with_replaces_fields():
    base = Scenario(protocol="rbft", workload=Workload("static", rate=2000.0))
    attacked = base.with_(attack="rbft-worst1", seed=9)
    assert attacked.protocol == "rbft"
    assert attacked.attack == "rbft-worst1"
    assert attacked.seed == 9
    assert base.attack is None  # frozen: the original is untouched
