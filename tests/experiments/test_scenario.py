"""Scenario/run(): equivalence with the legacy entry points.

The redesign's contract: ``run(Scenario(...))`` is the only internal
run path, and the deprecated ``run_static``/``run_dynamic`` shims are
thin wrappers over it — so for every protocol the two must produce
*identical* results (RunResult is a plain dataclass; equality is
field-by-field, covering rates, latencies and event counts).
"""

import warnings

import pytest

from repro.experiments import SMOKE, Scenario, run, run_dynamic, run_static

#: one representative per protocol family (variants share the builders).
PROTOCOLS = ["rbft", "aardvark", "spinning", "prime", "pbft"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_scenario_matches_run_static(protocol):
    scenario = Scenario(protocol=protocol, rate=2000.0, scale=SMOKE, seed=3)
    via_scenario = run(scenario)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        via_legacy = run_static(protocol, 8, rate=2000.0, scale=SMOKE, seed=3)
    assert via_scenario == via_legacy


def test_scenario_matches_run_dynamic():
    scenario = Scenario(
        protocol="rbft", load="dynamic", rate=300.0, scale=SMOKE, seed=1
    )
    via_scenario = run(scenario)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        via_legacy = run_dynamic(
            "rbft", 8, per_client_rate=300.0, scale=SMOKE, seed=1
        )
    assert via_scenario == via_legacy


def test_runs_are_deterministic():
    scenario = Scenario(protocol="rbft", rate=2000.0, scale=SMOKE)
    assert run(scenario) == run(scenario)


def test_scenario_run_method_delegates():
    scenario = Scenario(protocol="pbft", rate=2000.0, scale=SMOKE)
    assert scenario.run() == run(scenario)


def test_attack_scenarios_run():
    scenario = Scenario(
        protocol="rbft", rate=2000.0, attack="rbft-worst1", scale=SMOKE
    )
    result = run(scenario)
    assert result.executed_rate > 0


def test_legacy_entry_points_warn():
    with pytest.warns(DeprecationWarning, match="run_static"):
        run_static("pbft", 8, rate=2000.0, scale=SMOKE)
    with pytest.warns(DeprecationWarning, match="run_dynamic"):
        run_dynamic("pbft", 8, per_client_rate=300.0, scale=SMOKE)


def test_scenario_rejects_unknown_load():
    with pytest.raises(ValueError, match="unknown load"):
        Scenario(protocol="rbft", load="bursty")


def test_with_replaces_fields():
    base = Scenario(protocol="rbft", rate=2000.0)
    attacked = base.with_(attack="rbft-worst1", seed=9)
    assert attacked.protocol == "rbft"
    assert attacked.attack == "rbft-worst1"
    assert attacked.seed == 9
    assert base.attack is None  # frozen: the original is untouched
