"""Tests for the ASCII chart renderer."""

from repro.experiments.ascii_chart import multi_scatter, scatter


def test_scatter_renders_all_rows():
    text = scatter([(0, 0), (1, 1), (2, 4)], width=20, height=8)
    lines = text.splitlines()
    assert len(lines) >= 10  # 8 grid rows + axis + footer
    assert any("o" in line for line in lines)


def test_axis_labels_present():
    text = scatter(
        [(0, 0), (10, 5)], width=20, height=5,
        x_label="throughput", y_label="latency",
    )
    assert "latency" in text
    assert "throughput" in text


def test_extremes_land_on_plot_corners():
    text = scatter([(0, 0), (100, 10)], width=30, height=6)
    grid_lines = [l for l in text.splitlines() if "|" in l]
    # Max-y point is in the first grid row, min-y point in the last.
    assert "o" in grid_lines[0]
    assert "o" in grid_lines[-1]


def test_multi_series_markers_and_legend():
    text = multi_scatter(
        {"rbft": [(0, 1), (1, 2)], "prime": [(0, 5), (1, 9)]},
        width=20,
        height=6,
    )
    assert "r" in text and "p" in text
    assert "r = rbft" in text
    assert "p = prime" in text


def test_degenerate_inputs():
    assert multi_scatter({}) == "(no data)"
    # A single point (zero range on both axes) must not crash.
    text = scatter([(5, 5)], width=10, height=4)
    assert "o" in text


def test_y_axis_shows_value_range():
    text = scatter([(0, 2.0), (1, 8.0)], width=10, height=4)
    assert "8" in text
    assert "2" in text
