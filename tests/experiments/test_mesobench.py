"""``bench meso`` record shape and gate logic (no full runs: the real
benchmark's exact twin takes seconds; these tests monkeypatch the
workload and drive ``check_regression`` with synthetic records)."""

from types import SimpleNamespace

import pytest

from repro.experiments import mesobench
from repro.experiments.mesobench import (
    MESO_SPEEDUP_FLOOR,
    check_regression,
    run_meso_bench,
    write_meso_bench,
)


def _fake_result(events, mode):
    meso = mode == "meso"
    return SimpleNamespace(
        events=events,
        executed_rate=1000.0 if not meso else 1004.0,
        mean_latency=0.004 if not meso else 0.00401,
        p99_latency=0.009 if not meso else 0.00905,
        ff_time=1.5 if meso else 0.0,
        ff_windows=1 if meso else 0,
        meso_fallback=None,
    )


@pytest.fixture
def fake_points(monkeypatch):
    walls = {"exact": 4.0, "meso": 1.0}

    def fake(mode):
        return _fake_result(1_000_000 if mode == "exact" else 250_000, mode), walls[mode]

    monkeypatch.setattr(mesobench, "_meso_point", fake)
    return walls


def test_record_shape_and_effective_rate(fake_points, tmp_path):
    baseline = tmp_path / "kernel_baseline.json"
    baseline.write_text('{"fig7": {"events_per_sec": 100000.0}}')
    record = run_meso_bench(repeat=2, baseline_path=str(baseline))
    assert record["schema"] == "rbft-bench-meso/1"
    assert set(record["host"]) == {"python", "platform", "cpu_count"}
    # Effective rate: exact twin's events over the meso run's wall.
    assert record["events_per_sec"] == pytest.approx(1_000_000 / 1.0)
    assert record["meso_speedup"] == pytest.approx(4.0)
    assert record["speedup"] == pytest.approx(10.0)
    assert record["meso"]["ff_windows"] == 1
    assert record["accuracy"]["throughput_rel_err"] == pytest.approx(
        0.004, abs=1e-4
    )
    assert check_regression(record) is None


def test_write_meso_bench_artifact_and_exit_code(fake_points, tmp_path, capsys):
    out = tmp_path / "BENCH_meso.json"
    code = write_meso_bench(
        output=str(out), baseline_path=None, repeat=1, check=True
    )
    assert code == 0
    assert out.exists()
    assert "bench meso" in capsys.readouterr().out


def test_determinism_breakage_is_detected(monkeypatch):
    events = iter([1_000_000, 250_000, 1_000_001])

    def fake(mode):
        return _fake_result(next(events), mode), 1.0

    monkeypatch.setattr(mesobench, "_meso_point", fake)
    with pytest.raises(RuntimeError):
        run_meso_bench(repeat=2)


def _passing_record():
    return {
        "events_per_sec": 1_000_000.0,
        "meso_speedup": 4.0,
        "speedup": 5.0,
        "exact": {"wall_clock_s": 4.0},
        "meso": {"wall_clock_s": 1.0, "ff_time_s": 1.5, "ff_windows": 1,
                 "fallback": None},
        "accuracy": {
            "throughput_rel_err": 0.004,
            "mean_latency_rel_err": 0.002,
            "p99_latency_rel_err": 0.005,
        },
    }


def test_gate_passes_on_good_record():
    assert check_regression(_passing_record()) is None


def test_gate_fails_when_meso_fell_back():
    record = _passing_record()
    record["meso"]["fallback"] = "attack 'rbft-worst1' armed"
    assert "fell back" in check_regression(record)


def test_gate_fails_when_no_fast_forward_happened():
    record = _passing_record()
    record["meso"]["ff_time_s"] = 0.0
    assert "never fast-forwarded" in check_regression(record)


@pytest.mark.parametrize("key", [
    "throughput_rel_err", "mean_latency_rel_err", "p99_latency_rel_err",
])
def test_gate_fails_on_accuracy_drift(key):
    record = _passing_record()
    record["accuracy"][key] = 0.5
    assert "diverged" in check_regression(record)


def test_gate_fails_below_wall_clock_speedup_floor():
    record = _passing_record()
    record["meso_speedup"] = MESO_SPEEDUP_FLOOR - 0.1
    assert "wall-clock speedup" in check_regression(record)


def test_gate_fails_below_baseline_speedup_floor():
    record = _passing_record()
    record["speedup"] = MESO_SPEEDUP_FLOOR - 0.1
    assert "baseline fig7" in check_regression(record)


def test_gate_tolerates_missing_baseline():
    record = _passing_record()
    del record["speedup"]
    assert check_regression(record) is None
