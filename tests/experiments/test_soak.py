"""Unit tests for the soak gate's bound checking (no long runs)."""

from repro.experiments.soak import LARGE_N_RATE, SOAK_BOUNDS, check_soak


def _record(**overrides):
    record = {
        "soak": {
            "peak_log_size": 900,
            "throughput_rps": 15_000.0,
        },
        "large_n": {
            "n": 148,
            "peak_log_size": 101,
            "throughput_rps": LARGE_N_RATE,
        },
        "bounds": dict(SOAK_BOUNDS),
    }
    for key, value in overrides.items():
        section, field = key.split(".")
        record[section][field] = value
    return record


def test_clean_record_passes():
    assert check_soak(_record()) == []


def test_large_n_log_leak_is_flagged():
    violations = check_soak(_record(**{"large_n.peak_log_size": 5000}))
    assert len(violations) == 1
    assert "n=148" in violations[0] and "leak" in violations[0]


def test_large_n_stall_is_flagged():
    violations = check_soak(_record(**{"large_n.throughput_rps": 10.0}))
    assert len(violations) == 1
    assert "stalled" in violations[0]


def test_small_n_bounds_still_checked():
    violations = check_soak(_record(**{"soak.peak_log_size": 5000}))
    assert len(violations) == 1
    assert "leaking" in violations[0]


def test_record_without_large_n_section_is_accepted():
    record = _record()
    del record["large_n"]
    assert check_soak(record) == []
