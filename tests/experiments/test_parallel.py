"""Tests for the process-parallel experiment fan-out."""

import json
import os
import subprocess
import sys

from repro.experiments import ScenarioScale, attack_sweep, latency_throughput_curve
from repro.experiments.parallel import RunSpec, execute_specs, resolve_jobs
from repro.experiments.runner import _capacity_cache, _capacity_key_string

FAST = ScenarioScale(
    name="ptest",
    duration=0.2,
    warmup=0.05,
    probe_duration=0.1,
    sizes=(8,),
    rate_points=2,
    monitoring_period=0.05,
    aardvark_grace=0.1,
    aardvark_period=0.02,
)


def test_resolve_jobs_order(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(3) == 3
    assert resolve_jobs() == max(1, (os.cpu_count() or 2) - 1)
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5
    assert resolve_jobs(2) == 2  # explicit argument wins
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    assert resolve_jobs() == max(1, (os.cpu_count() or 2) - 1)


def test_execute_specs_serial_matches_parallel_results(monkeypatch):
    monkeypatch.delenv("REPRO_CAPACITY_CACHE", raising=False)
    spec = RunSpec(kind="static", protocol="pbft", payload=8,
                   rate=2000.0, scale=FAST)
    _capacity_cache.clear()
    (serial,) = execute_specs([spec], jobs=1)
    _capacity_cache.clear()
    two_serial, two_parallel = execute_specs([spec, spec], jobs=2)
    assert serial == two_serial == two_parallel


def test_attack_sweep_parallel_identical_to_serial(monkeypatch):
    """REPRO_JOBS=1 and REPRO_JOBS=2 must produce identical rows."""
    monkeypatch.delenv("REPRO_CAPACITY_CACHE", raising=False)
    monkeypatch.setenv("REPRO_JOBS", "1")
    _capacity_cache.clear()
    serial = attack_sweep("spinning", scale=FAST)
    monkeypatch.setenv("REPRO_JOBS", "2")
    _capacity_cache.clear()
    parallel = attack_sweep("spinning", scale=FAST)
    assert parallel == serial


def test_latency_curve_parallel_identical_to_serial(monkeypatch):
    monkeypatch.delenv("REPRO_CAPACITY_CACHE", raising=False)
    _capacity_cache.clear()
    serial = latency_throughput_curve("pbft", scale=FAST, jobs=1)
    # The probe is cached in the parent now; only the points fan out.
    parallel = latency_throughput_curve("pbft", scale=FAST, jobs=2)
    assert parallel == serial


_PROBE_SNIPPET = """
import sys
from repro.experiments import ScenarioScale
from repro.experiments.runner import probe_capacity

scale = ScenarioScale(
    name="ptest", duration=0.2, warmup=0.05, probe_duration=0.1,
    sizes=(8,), rate_points=2, monitoring_period=0.05,
    aardvark_grace=0.1, aardvark_period=0.02,
)
print(probe_capacity("pbft", 8, scale, seed=3))
"""


def _run_probe_subprocess(cache_path):
    env = dict(os.environ)
    env["REPRO_CAPACITY_CACHE"] = str(cache_path)
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    out = subprocess.run(
        [sys.executable, "-c", _PROBE_SNIPPET],
        capture_output=True, text=True, env=env, check=True,
    )
    return float(out.stdout.strip())


def test_persistent_capacity_cache_survives_fresh_process(tmp_path):
    cache_path = tmp_path / "capacity.json"
    first = _run_probe_subprocess(cache_path)
    assert first > 0

    key = _capacity_key_string(("pbft", 8, 1, 20e-6, "ptest", 3))
    data = json.loads(cache_path.read_text())
    assert data[key] == first

    # Plant a sentinel: if the fresh process returns it, the value came
    # from the persistent file, not from a silent re-probe.
    data[key] = 54321.0
    cache_path.write_text(json.dumps(data))
    assert _run_probe_subprocess(cache_path) == 54321.0
