"""Mesoscale fast-forward: accuracy, determinism and fallback rules.

The ``mode="meso"`` contract (docs/simulator.md, "Execution modes"):
exact stays the default and is byte-identical to the pre-meso kernel;
meso is opt-in, deletes provably steady windows, and silently falls
back to exact — with the reason recorded on the result — whenever the
run is not eligible (faults armed, non-fast-forwardable node class,
unknown load boundaries, tracing).
"""

import dataclasses

import pytest

from repro.experiments import SMOKE, MesoConfig, Scenario, Workload, run

#: steady-state-heavy workload, small enough for the unit-test budget.
MESO_KW = dict(
    protocol="rbft", workload=Workload("static", rate=1500.0),
    duration=1.0, warmup=0.2, scale=SMOKE, seed=5,
)


def test_scenario_rejects_unknown_mode():
    with pytest.raises(ValueError):
        Scenario(
            protocol="rbft", workload=Workload("static", rate=1000.0),
            mode="approximate",
        )


def test_exact_mode_is_the_default():
    scenario = Scenario(
        protocol="rbft", workload=Workload("static", rate=1000.0)
    )
    assert scenario.mode == "exact"


def test_exact_result_reports_exact_mode():
    result = run(Scenario(**MESO_KW))
    assert result.mode == "exact"
    assert result.ff_time == 0.0
    assert result.ff_windows == 0
    assert result.meso_fallback is None


def test_meso_engages_and_skips_steady_state():
    result = run(Scenario(mode="meso", **MESO_KW))
    assert result.meso_fallback is None
    assert result.mode == "meso"
    assert result.ff_windows >= 1
    assert result.ff_time > 0.0
    # Fewer simulated events than the exact twin: that's the point.
    assert result.events < run(Scenario(**MESO_KW)).events


def test_meso_matches_exact_close_to_documented_tolerances():
    """Throughput gets a wider band here than ``bench meso``'s 5 % gate:
    arrivals are Poisson, and this deliberately tiny workload leaves only
    ~375 samples in the non-skipped window (sigma ~5 %), where the bench
    workload's ~10k samples make 5 % a meaningful bound.  CI enforces the
    documented tolerances at the bench scale via ``bench meso --check``."""
    exact = run(Scenario(**MESO_KW))
    meso = run(Scenario(mode="meso", **MESO_KW))
    assert meso.executed_rate == pytest.approx(exact.executed_rate, rel=0.15)
    assert meso.mean_latency == pytest.approx(exact.mean_latency, rel=0.10)
    assert meso.p99_latency == pytest.approx(exact.p99_latency, rel=0.15)


def test_meso_is_deterministic():
    scenario = Scenario(mode="meso", **MESO_KW)
    assert run(scenario) == run(scenario)


def test_meso_exact_twin_unchanged_by_mode_field():
    """Adding the mode machinery must not perturb exact runs: a Scenario
    with mode="exact" equals one built before the field existed (same
    defaults, same RunResult)."""
    legacy = run(Scenario(**MESO_KW))
    explicit = run(Scenario(mode="exact", **MESO_KW))
    assert legacy == explicit


def test_attack_falls_back_to_exact():
    result = run(Scenario(mode="meso", attack="rbft-worst1", **MESO_KW))
    assert result.mode == "exact"
    assert result.ff_time == 0.0
    assert "rbft-worst1" in result.meso_fallback


def test_non_fast_forwardable_protocol_falls_back():
    result = run(Scenario(
        mode="meso", protocol="spinning",
        workload=Workload("static", rate=1500.0),
        duration=1.0, warmup=0.2, scale=SMOKE, seed=5,
    ))
    assert result.mode == "exact"
    assert "SpinningNode" in result.meso_fallback


def test_dynamic_load_still_eligible_but_respects_boundaries():
    """dynamic_profile publishes its phase boundaries, so meso is
    eligible but may only skip inside a phase.  At the SMOKE scale the
    phases are too short for the detector to confirm stationarity, so
    the run must degrade gracefully to (near-)exact — never jump across
    a load step."""
    kw = dict(
        protocol="rbft", workload=Workload("spike", rate=400.0),
        scale=SMOKE, seed=2,
    )
    exact = run(Scenario(**kw))
    meso = run(Scenario(mode="meso", **kw))
    assert meso.meso_fallback is None
    assert meso.mode == "meso"
    assert meso.executed_rate == pytest.approx(exact.executed_rate, rel=0.05)
    assert meso.mean_latency == pytest.approx(exact.mean_latency, rel=0.10)


def test_meso_config_is_frozen_with_sane_defaults():
    config = MesoConfig()
    assert config.probe_window > 0
    assert 0 < config.rho_max < 1
    assert config.calibration >= 1
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.probe_window = 1.0
