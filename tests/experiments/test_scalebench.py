"""Unit tests for the scale benchmark harness (no full ladder runs)."""

import json

import pytest

from repro.experiments.scalebench import (
    SCALE_POINTS,
    WAN_PACK,
    WAN_POINT,
    _scale_point,
    check_regression,
)
from repro.net.topology import TOPOLOGY_PACKS
from repro.protocols import registry


def _record(events_per_sec=1000.0, baseline=None, **point_overrides):
    point = {
        "f": 1,
        "n": 4,
        "offered_rps": 2000.0,
        "throughput_rps": 1900.0,
        "kreq_per_sec": 1.9,
        "completed": 600,
        "events": 100_000,
        "wall_clock_s": 1.0,
    }
    point.update(point_overrides)
    record = {
        "schema": "rbft-bench-scale/1",
        "events_per_sec": events_per_sec,
        "curves": {"pbft": [point]},
        "wan": dict(point, protocol="rbft", topology="wan3"),
    }
    if baseline is not None:
        record["baseline"] = {"path": None, "events_per_sec": baseline}
    return record


def test_ladder_covers_every_protocol_and_reaches_148():
    protocols = {p for p, _, _, _ in SCALE_POINTS}
    assert protocols == set(registry.names()) - {
        "rbft-udp", "rbft-full-order", "aardvark-no-vc",
    }
    assert max(3 * f + 1 for _, f, _, _ in SCALE_POINTS) == 148
    # Instance batching put RBFT on the same n = 148 rung as its peers.
    assert max(3 * f + 1 for p, f, _, _ in SCALE_POINTS if p == "rbft") == 148
    assert WAN_PACK in TOPOLOGY_PACKS
    assert WAN_POINT[0] == "rbft"


def test_rbft_large_rungs_run_on_the_batched_tier():
    from repro.experiments.scalebench import _pacing_tier

    assert _pacing_tier("rbft", 1) == "exact"
    assert _pacing_tier("rbft", 33) == "batched"
    assert _pacing_tier("rbft", 49) == "batched"
    assert _pacing_tier("pbft", 49) == "exact"


def test_check_regression_flags_tier_drift():
    record = _record(events_per_sec=1000.0, baseline=1000.0, tier="batched")
    baseline = json.loads(json.dumps(_record(tier="exact")))
    violation = check_regression(record, baseline=baseline)
    assert violation is not None and "tier" in violation


def test_check_regression_passes_without_baseline():
    assert check_regression(_record()) is None


def test_check_regression_flags_events_per_sec_floor():
    record = _record(events_per_sec=700.0, baseline=1000.0)
    violation = check_regression(record, baseline=None)
    assert violation is not None and "regressed" in violation


def test_check_regression_flags_deterministic_drift():
    record = _record(events_per_sec=1000.0, baseline=1000.0)
    baseline = json.loads(json.dumps(_record()))
    baseline["curves"]["pbft"][0]["events"] = 100_001
    violation = check_regression(record, baseline=baseline)
    assert violation is not None and "drifted" in violation
    assert "pbft f=1" in violation


def test_check_regression_flags_wan_drift():
    record = _record(events_per_sec=1000.0, baseline=1000.0)
    baseline = json.loads(json.dumps(_record()))
    baseline["wan"]["completed"] = 599
    violation = check_regression(record, baseline=baseline)
    assert violation is not None and "wan" in violation


def test_check_regression_flags_vanished_point():
    record = _record(events_per_sec=1000.0, baseline=1000.0)
    baseline = json.loads(json.dumps(_record()))
    baseline["curves"]["pbft"].append(
        dict(baseline["curves"]["pbft"][0], f=5, n=16)
    )
    violation = check_regression(record, baseline=baseline)
    assert violation is not None and "vanished" in violation


def test_check_regression_accepts_identical_baseline():
    record = _record(events_per_sec=1000.0, baseline=1000.0)
    baseline = json.loads(json.dumps(_record()))
    assert check_regression(record, baseline=baseline) is None


def test_scale_point_is_deterministic_and_shaped():
    first = _scale_point("pbft", 1, 2000.0, 0.05)
    second = _scale_point("pbft", 1, 2000.0, 0.05)
    for key in ("events", "completed", "throughput_rps", "kreq_per_sec"):
        assert first[key] == second[key]
    assert first["n"] == 4
    assert first["events"] > 0
    assert first["kreq_per_sec"] == pytest.approx(
        first["throughput_rps"] / 1000.0, abs=1e-3
    )
