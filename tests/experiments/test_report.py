"""Tests for the report formatters."""

from repro.experiments.report import (
    format_attack_rows,
    format_curve,
    format_monitoring_view,
    format_table1,
)


def test_format_attack_rows():
    text = format_attack_rows(
        "Fig X", [{"size": 8, "static_pct": 97.5, "dynamic_pct": 100.0}],
        paper_note="note",
    )
    assert "Fig X" in text
    assert "note" in text
    assert "8 B" in text
    assert "97.5" in text


def test_format_curve():
    text = format_curve(
        "Curve", [{"offered": 1000.0, "throughput": 900.0, "latency_ms": 1.25}]
    )
    assert "Curve" in text
    assert "1.25" in text
    assert "0.9" in text  # kreq/s


def test_format_monitoring_view():
    text = format_monitoring_view(
        "View", {"node0": [5000.0, 5100.0], "node1": [5000.0, 5100.0]}
    )
    assert "node0" in text and "node1" in text
    assert "master=5.00" in text
    assert "backup1=5.10" in text


def test_format_table1():
    text = format_table1({"prime": 60.0, "aardvark": 75.0, "spinning": 94.0})
    assert "Prime" in text and "Spinning" in text
    assert "94.0" in text
    assert "paper" in text
