"""Host fingerprints on benchmark artifacts and the cross-host warning."""

from repro.experiments.benchutil import (
    fingerprint_mismatch,
    host_fingerprint,
    warn_on_foreign_baseline,
)


def test_fingerprint_shape():
    fp = host_fingerprint()
    assert set(fp) == {"python", "platform", "cpu_count"}
    assert isinstance(fp["python"], str) and fp["python"]
    assert isinstance(fp["platform"], str) and fp["platform"]
    assert isinstance(fp["cpu_count"], int) and fp["cpu_count"] >= 0


def test_fingerprint_is_stable_within_a_process():
    assert host_fingerprint() == host_fingerprint()


def test_same_host_has_no_mismatches():
    fp = host_fingerprint()
    assert fingerprint_mismatch(fp, dict(fp)) == []


def test_differing_fields_are_named():
    fp = host_fingerprint()
    other = dict(fp, python="0.0.0")
    mismatches = fingerprint_mismatch(fp, other)
    assert len(mismatches) == 1
    assert "python" in mismatches[0]


def test_missing_baseline_fingerprint_flags_every_field():
    fp = host_fingerprint()
    mismatches = fingerprint_mismatch(fp, None)
    assert len(mismatches) == len(fp)
    assert all("no host fingerprint" in m for m in mismatches)


def test_warning_printed_for_foreign_baseline(capsys):
    record = {"host": host_fingerprint()}
    baseline = {"host": dict(host_fingerprint(), cpu_count=-1)}
    warn_on_foreign_baseline(record, baseline)
    out = capsys.readouterr().out
    assert "BENCH WARNING" in out
    assert "cpu_count" in out


def test_no_warning_on_same_host(capsys):
    record = {"host": host_fingerprint()}
    warn_on_foreign_baseline(record, {"host": host_fingerprint()})
    assert capsys.readouterr().out == ""


def test_no_warning_without_a_baseline(capsys):
    warn_on_foreign_baseline({"host": host_fingerprint()}, None)
    assert capsys.readouterr().out == ""


def test_fingerprintless_baseline_still_warns(capsys):
    """Baselines recorded before fingerprints existed must not silently
    pass as same-host."""
    warn_on_foreign_baseline({"host": host_fingerprint()}, {"events_per_sec": 1.0})
    assert "BENCH WARNING" in capsys.readouterr().out
