"""Tests for the deployment builders."""


from repro.core import RBFTConfig
from repro.experiments import (
    build_aardvark,
    build_pbft,
    build_prime,
    build_rbft,
    build_spinning,
)


def test_rbft_deployment_shape():
    dep = build_rbft(RBFTConfig(f=1), n_clients=3)
    assert len(dep.nodes) == 4
    assert len(dep.clients) == 3
    assert all(len(node.engines) == 2 for node in dep.nodes)
    assert dep.cluster.config.tcp


def test_rbft_udp_deployment():
    dep = build_rbft(RBFTConfig(f=1), tcp=False)
    assert not dep.cluster.config.tcp


def test_spinning_uses_udp_shared_nic():
    dep = build_spinning()
    assert not dep.cluster.config.tcp
    assert not dep.cluster.config.separate_nics


def test_aardvark_and_pbft_use_tcp_separate_nics():
    for dep in (build_aardvark(), build_pbft()):
        assert dep.cluster.config.tcp
        assert dep.cluster.config.separate_nics


def test_prime_deployment():
    dep = build_prime(n_clients=2)
    assert len(dep.nodes) == 4
    assert dep.nodes[0].is_primary


def test_deployment_helpers():
    dep = build_pbft(n_clients=2)
    assert dep.node(1).name == "node1"
    assert dep.total_executed() == 0
    assert dep.total_completed() == 0


def test_seed_controls_rng():
    a = build_pbft(seed=1).rng.stream("x").random()
    b = build_pbft(seed=1).rng.stream("x").random()
    c = build_pbft(seed=2).rng.stream("x").random()
    assert a == b != c


def test_clients_have_requested_payload():
    dep = build_rbft(RBFTConfig(f=1), n_clients=1, payload=2048)
    request = dep.clients[0].send_request()
    assert request.payload_size == 2048
