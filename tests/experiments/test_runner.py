"""Tests for the experiment runner (fast paths)."""

import pytest

from repro.experiments import (
    Scenario,
    ScenarioScale,
    Workload,
    current_scale,
    make_deployment,
    run,
)
from repro.experiments.runner import _attack_for, _capacity_cache, probe_capacity

FAST = ScenarioScale(
    name="test",
    duration=0.2,
    warmup=0.05,
    probe_duration=0.1,
    sizes=(8,),
    rate_points=2,
    monitoring_period=0.05,
    aardvark_grace=0.1,
    aardvark_period=0.02,
)


def test_all_variants_build():
    for protocol in (
        "rbft",
        "rbft-udp",
        "rbft-full-order",
        "aardvark",
        "aardvark-no-vc",
        "spinning",
        "prime",
        "pbft",
    ):
        dep = make_deployment(protocol, 8, FAST)
        assert len(dep.nodes) == 4


def test_unknown_variant_rejected():
    with pytest.raises(ValueError):
        make_deployment("zyzzyva", 8, FAST)


def test_full_order_variant_orders_whole_requests():
    dep = make_deployment("rbft-full-order", 8, FAST)
    assert all(e.config.full_payload for n in dep.nodes for e in n.engines)
    dep = make_deployment("rbft", 8, FAST)
    assert all(not e.config.full_payload for n in dep.nodes for e in n.engines)


def test_no_vc_variant_has_huge_grace():
    dep = make_deployment("aardvark-no-vc", 8, FAST)
    assert dep.nodes[0].aconfig.grace_period > 1e6


def test_attack_name_resolution():
    assert _attack_for("prime", None) is None
    assert _attack_for("prime", "default") == "prime"
    assert _attack_for("rbft", "default") is None  # no default RBFT attack
    assert _attack_for("rbft", "rbft-worst1") == "rbft-worst1"


def test_probe_capacity_cached():
    _capacity_cache.clear()
    first = probe_capacity("pbft", 8, FAST)
    assert ("pbft", 8, 1, 20e-6, "test", 0) in _capacity_cache
    second = probe_capacity("pbft", 8, FAST)
    assert first == second


def test_probe_capacity_key_includes_seed():
    # Two sweeps probing under different seeds are different
    # measurements; the cache must not hand one the other's value.
    _capacity_cache.clear()
    probe_capacity("pbft", 8, FAST, seed=0)
    _capacity_cache[("pbft", 8, 1, 20e-6, "test", 7)] = 123.0
    assert probe_capacity("pbft", 8, FAST, seed=7) == 123.0
    assert probe_capacity("pbft", 8, FAST, seed=0) != 123.0


def test_static_scenario_returns_populated_result():
    result = run(Scenario(
        protocol="pbft", workload=Workload("static", rate=2000.0), scale=FAST,
    ))
    assert result.protocol == "pbft"
    assert result.payload == 8
    assert result.offered_rate == 2000.0
    assert result.executed_rate > 1000.0
    assert result.completed > 0
    assert result.mean_latency > 0


def test_dynamic_scenario_reports_true_offered_rate():
    from repro.clients import dynamic_profile

    result = run(Scenario(
        protocol="pbft", workload=Workload("spike", rate=500.0), scale=FAST,
    ))
    profile = dynamic_profile(500.0, FAST.duration, spike_clients=50)
    # The spike profile averages ~15.3 active clients, not 10: the
    # reported offered rate is the profile's true time average.
    assert result.offered_rate == pytest.approx(profile.mean_rate())
    assert result.offered_rate > 500.0 * 10


def test_current_scale_reads_environment(monkeypatch):
    monkeypatch.delenv("RBFT_FULL", raising=False)
    assert current_scale().name == "quick"
    monkeypatch.setenv("RBFT_FULL", "1")
    assert current_scale().name == "full"
