"""Tests for multi-seed statistics."""

import pytest

from repro.experiments.stats import seed_sweep


def test_sweep_runs_each_seed_once():
    calls = []
    result = seed_sweep(lambda seed: calls.append(seed) or float(seed), seeds=(3, 5, 7))
    assert calls == [3, 5, 7]
    assert result.values == [3.0, 5.0, 7.0]
    assert result.mean == pytest.approx(5.0)


def test_sweep_summary_statistics():
    result = seed_sweep(lambda seed: 10.0, seeds=(0, 1))
    assert result.mean == 10.0
    assert result.stdev == 0.0
    assert "10.00 ± 0.00" in str(result)


def test_sweep_over_real_runs_is_reproducible():
    from repro.experiments import Scenario, ScenarioScale, run

    scale = ScenarioScale(
        name="t", duration=0.15, warmup=0.05, probe_duration=0.1,
        sizes=(8,), rate_points=2, monitoring_period=0.05,
        aardvark_grace=0.1, aardvark_period=0.02,
    )

    def measure(seed):
        from repro.experiments import Workload

        return run(Scenario(
            protocol="pbft", workload=Workload("static", rate=2000.0),
            scale=scale, seed=seed,
        )).executed_rate

    first = seed_sweep(measure, seeds=(0, 1))
    second = seed_sweep(measure, seeds=(0, 1))
    assert first.values == second.values
    assert first.values[0] != first.values[1]  # seeds genuinely differ
