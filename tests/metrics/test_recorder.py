"""Unit tests for measurement instruments."""

import pytest

from repro.metrics import (
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
    WindowedCounter,
    summarize,
)
from repro.sim import Simulator


def test_windowed_counter_take_resets_window_not_total():
    counter = WindowedCounter()
    counter.add()
    counter.add(2)
    assert counter.take() == 3
    assert counter.take() == 0
    counter.add()
    assert counter.total == 4


def test_windowed_counter_take_on_empty_window():
    counter = WindowedCounter()
    assert counter.take() == 0
    assert counter.total == 0
    # a drained window stays empty until the next add
    counter.add(5)
    counter.take()
    assert counter.take() == 0
    assert counter.total == 5


def test_throughput_meter_total_rate():
    sim = Simulator()
    meter = ThroughputMeter(sim)
    sim.call_after(1.0, meter.add, 10)
    sim.run(until=2.0)
    assert meter.total_rate() == pytest.approx(5.0)


def test_throughput_meter_rate_since_mark():
    sim = Simulator()
    meter = ThroughputMeter(sim)
    sim.call_after(1.0, meter.add, 100)
    sim.call_after(2.0, meter.mark)
    sim.call_after(3.0, meter.add, 10)
    sim.run(until=4.0)
    assert meter.rate_since(2.0) == pytest.approx(5.0)


def test_throughput_meter_zero_elapsed():
    sim = Simulator()
    meter = ThroughputMeter(sim)
    assert meter.rate_since(0.0) == 0.0


def test_throughput_meter_zero_length_interval_after_advancing():
    """Rate over a zero-length interval is 0.0, not a division error."""
    sim = Simulator()
    meter = ThroughputMeter(sim)
    sim.call_after(1.0, meter.add, 10)
    sim.run(until=2.0)
    assert meter.rate_since(sim.now) == 0.0
    assert meter.total_rate() == pytest.approx(5.0)  # unaffected


def test_throughput_meter_negative_interval_is_zero():
    sim = Simulator()
    meter = ThroughputMeter(sim)
    meter.add(3)
    sim.run(until=1.0)
    assert meter.rate_since(5.0) == 0.0


def test_latency_recorder_mean_and_percentiles():
    recorder = LatencyRecorder()
    for value in [1.0, 2.0, 3.0, 4.0]:
        recorder.record(value)
    assert recorder.mean() == pytest.approx(2.5)
    assert recorder.median() == pytest.approx(2.5)
    assert recorder.percentile(0.0) == 1.0
    assert recorder.percentile(1.0) == 4.0
    assert len(recorder) == 4


def test_latency_recorder_empty_is_safe():
    recorder = LatencyRecorder()
    assert recorder.mean() == 0.0
    assert recorder.percentile(0.9) == 0.0


def test_time_series_accumulates_points():
    series = TimeSeries("latency")
    series.append(0.0, 1.0)
    series.append(1.0, 2.0)
    assert series.times() == [0.0, 1.0]
    assert series.values() == [1.0, 2.0]
    assert len(series) == 2


def test_summarize():
    stats = summarize([1.0, 3.0])
    assert stats["mean"] == 2.0
    assert stats["min"] == 1.0
    assert stats["max"] == 3.0
    assert stats["stdev"] == pytest.approx(1.0)
    assert stats["n"] == 2


def test_summarize_empty():
    assert summarize([])["n"] == 0
