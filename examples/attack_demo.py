#!/usr/bin/env python3
"""Worst-attack-2 against RBFT, narrated.

The most interesting adversary in the paper: the master instance's
primary is Byzantine and colludes with faulty clients.  It delays
requests exactly down to the limit ratio Δ while the accomplices harass
the correct nodes, so the monitoring module sees a master instance that
is slow — but not *suspiciously* slow.

The demo runs the same static load twice (fault-free, then attacked) and
prints what every node's monitoring module measured, mirroring Figs 10
and 11 of the paper.

Run with:  python examples/attack_demo.py
"""

from repro.clients import LoadGenerator, static_profile
from repro.core import RBFTConfig
from repro.experiments import build_rbft
from repro.faults import install_rbft_worst_attack_2

RATE = 20_000.0
DURATION = 1.0


def run(attacked: bool) -> dict:
    config = RBFTConfig(f=1, monitoring_period=0.2)
    deployment = build_rbft(config, n_clients=10, payload=8)
    if attacked:
        install_rbft_worst_attack_2(deployment)
    generator = LoadGenerator(
        deployment.sim,
        deployment.clients,
        static_profile(RATE, DURATION),
        deployment.rng.stream("load"),
    )
    generator.start()
    deployment.sim.run(until=DURATION)
    observer = deployment.nodes[1]  # a correct node in both runs
    return {
        "executed": observer.executed_count,
        "rates": {
            node.name: list(node.monitor.last_rates)
            for node in deployment.nodes[1:]
        },
        "instance_changes": observer.instance_changes,
    }


def main() -> None:
    fault_free = run(attacked=False)
    attacked = run(attacked=True)

    print("Worst-attack-2 against RBFT (f=1, static load, 8 B requests)")
    print()
    print("  fault-free: %6d requests executed" % fault_free["executed"])
    print("  attacked:   %6d requests executed" % attacked["executed"])
    ratio = attacked["executed"] / fault_free["executed"]
    print("  relative throughput: %.1f %%  (paper: at least 97 %%)" % (100 * ratio))
    print()
    print("  monitoring view of the correct nodes under attack (kreq/s):")
    for name, rates in sorted(attacked["rates"].items()):
        print(
            "    %s: master=%.2f  backup=%.2f  ratio=%.3f"
            % (name, rates[0] / 1e3, rates[1] / 1e3,
               rates[0] / rates[1] if rates[1] else float("nan"))
        )
    print()
    if attacked["instance_changes"] == 0:
        print("  no instance change was triggered: the attacker hugged the")
        print("  Δ = 0.97 ratio (single-window dips are tolerated) — and that")
        print("  is precisely why its damage is bounded to a few percent.")
    else:
        print("  the attacker slipped below Δ and was evicted by a protocol")
        print("  instance change after %d round(s)." % attacked["instance_changes"])
    assert ratio > 0.9


if __name__ == "__main__":
    main()
