#!/usr/bin/env python3
"""A replicated key-value store on top of RBFT.

The intro of the paper motivates BFT replication for coordination
services such as ZooKeeper; this example replicates a small key-value
store across the four nodes of an f=1 RBFT deployment and shows that
every node applies the same operations in the same order, even with a
Byzantine (silent) replica in the cluster.

Run with:  python examples/kv_store.py
"""

from repro.common import KeyValueService
from repro.core import RBFTConfig
from repro.experiments import build_rbft


def main() -> None:
    config = RBFTConfig(f=1, batch_size=4, batch_delay=5e-4)
    deployment = build_rbft(
        config, n_clients=2, payload=128, service_factory=KeyValueService
    )
    sim = deployment.sim
    alice, bob = deployment.clients

    # One faulty node: its master-instance replica stops participating.
    deployment.nodes[3].engines[0].silent = True

    operations = [
        (alice, ("put", "color", "blue")),
        (bob, ("put", "animal", "tortoise")),
        (alice, ("put", "color", "green")),  # overwrite
        (bob, ("get", "color")),
        (alice, ("delete", "animal")),
        (bob, ("get", "animal")),
    ]

    def submit(client, op):
        request = client.send_request()
        # Register the concrete operation with every node's service.
        for node in deployment.nodes:
            node.service.register_op(request.request_id, op)

    for i, (client, op) in enumerate(operations):
        sim.call_after(i * 5e-3, submit, client, op)

    sim.run(until=0.5)

    print("Replicated key-value store over RBFT (one silent faulty replica)")
    print()
    for node in deployment.nodes:
        print("  %-6s store=%r executed=%d"
              % (node.name, node.service.store, node.executed_count))
    stores = [node.service.store for node in deployment.nodes]
    assert all(store == stores[0] for store in stores), "replica divergence!"
    assert stores[0] == {"color": "green"}
    print()
    print("  all replicas converged to %r" % stores[0])
    completed = alice.completed + bob.completed
    print("  %d/%d operations acknowledged with f+1 matching replies"
          % (completed, len(operations)))


if __name__ == "__main__":
    main()
