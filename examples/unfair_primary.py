#!/usr/bin/env python3
"""The unfair-primary experiment (Fig. 12), as a runnable demo.

Two clients share an RBFT deployment.  The master primary serves both
fairly for 500 requests, then starts delaying one client's requests —
keeping its latency under the Λ = 1.5 ms threshold — and finally lets a
single request exceed Λ.  The nodes vote a protocol instance change, the
unfair primary loses its role, and both clients see identical latency
again.

Run with:  python examples/unfair_primary.py
"""

from repro.experiments import QUICK, unfair_primary_run


def segment_mean(values, lo, hi):
    segment = values[lo:hi]
    return sum(segment) / len(segment) * 1e3 if segment else 0.0


def main() -> None:
    result = unfair_primary_run(scale=QUICK)
    attacked = result["series"]["client0"].values()
    other = result["series"]["client1"].values()

    print("Unfair master primary vs the latency monitor (Λ = %.1f ms)"
          % (result["lambda_max"] * 1e3))
    print()
    print("  %-28s %12s %12s" % ("phase", "attacked", "other client"))
    for label, lo, hi in [
        ("fair (requests 100-450)", 100, 450),
        ("delayed (requests 600-950)", 600, 950),
        ("after instance change", 1060, None),
    ]:
        print("  %-28s %9.2f ms %9.2f ms"
              % (label, segment_mean(attacked, lo, hi), segment_mean(other, lo, hi)))
    print()
    if result["instance_change_at"] is not None:
        print("  the Λ violation at request ~1000 triggered a protocol")
        print("  instance change at t=%.3f s — the unfair primary is gone."
              % result["instance_change_at"])
    print("  peak latency seen by the attacked client: %.2f ms"
          % (max(attacked) * 1e3))


if __name__ == "__main__":
    main()
