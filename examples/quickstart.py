#!/usr/bin/env python3
"""Quickstart: stand up an RBFT cluster and replicate some requests.

This is the smallest end-to-end use of the library's public API:

1. build a simulated 3f+1-node RBFT deployment (f=1: four machines,
   each running the Verification / Propagation / Dispatch & Monitoring /
   Execution pipeline plus f+1 protocol-instance replicas);
2. attach open-loop clients;
3. send requests and wait for f+1 matching replies;
4. inspect what the nodes and the monitoring module saw.

Run with:  python examples/quickstart.py
"""

from repro.core import RBFTConfig
from repro.experiments import build_rbft


def main() -> None:
    config = RBFTConfig(f=1, batch_size=16, batch_delay=1e-3)
    deployment = build_rbft(config, n_clients=3, payload=64)
    sim = deployment.sim

    # Open-loop clients: send on a schedule, never wait for replies.
    for i in range(60):
        client = deployment.clients[i % len(deployment.clients)]
        sim.call_after(i * 1e-3, client.send_request)

    sim.run(until=0.5)

    print("RBFT quickstart (f=%d, %d nodes, %d protocol instances per node)"
          % (config.f, config.n, config.instances))
    print()
    for client in deployment.clients:
        print("  %-8s sent=%2d completed=%2d mean latency=%.2f ms"
              % (client.name, client.sent, client.completed,
                 client.latencies.mean() * 1e3))
    print()
    for node in deployment.nodes:
        primary = ["instance %d" % k for k, engine in enumerate(node.engines)
                   if engine.is_primary]
        print("  %-6s executed=%2d ordered per instance=%s %s"
              % (node.name, node.executed_count,
                 [engine.ordered_items for engine in node.engines],
                 ("(primary of %s)" % ", ".join(primary)) if primary else ""))
    print()
    total = sum(client.completed for client in deployment.clients)
    print("  %d/%d requests completed with f+1 matching replies" % (total, 60))
    assert total == 60


if __name__ == "__main__":
    main()
