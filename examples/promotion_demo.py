#!/usr/bin/env python3
"""Best-backup promotion (§IV-A future work), demonstrated.

The paper: "An alternative could be to change the master instance to the
instance which provides the highest throughput."  This library implements
that alternative behind ``RBFTConfig(promote_best_backup=True)``.

The demo throttles the master instance's primary and shows the two
recovery styles side by side:

* classic RBFT: the instance change rotates every primary and the master
  *instance* stays instance 0;
* promotion: the nodes agree to crown the faster backup instance as the
  new master and replay its backlog.

Run with:  python examples/promotion_demo.py
"""

from repro.clients import LoadGenerator, static_profile
from repro.core import RBFTConfig
from repro.experiments import build_rbft
from repro.faults import BatchPacer

RATE = 3000.0
DURATION = 1.5


def run(promote: bool) -> dict:
    config = RBFTConfig(
        f=1,
        batch_size=8,
        monitoring_period=0.1,
        delta=0.9,
        min_monitor_requests=10,
        promote_best_backup=promote,
    )
    deployment = build_rbft(config, n_clients=4)
    # The master primary (node0) paces itself to a crawl.
    pacer = BatchPacer(deployment.sim, lambda: 300.0)
    deployment.nodes[0].engines[0].preprepare_delay_fn = (
        lambda msg: pacer.delay_for(len(msg.items))
    )
    generator = LoadGenerator(
        deployment.sim,
        deployment.clients,
        static_profile(RATE, DURATION),
        deployment.rng.stream("load"),
    )
    generator.start()
    deployment.sim.run(until=DURATION)
    observer = deployment.nodes[1]
    return {
        "completed": generator.total_completed(),
        "sent": generator.total_sent(),
        "instance_changes": observer.instance_changes,
        "master_instance": observer.master_instance,
        "master_primary": observer.master_engine.primary_name(),
    }


def main() -> None:
    classic = run(promote=False)
    promoted = run(promote=True)

    print("A throttled master primary, two recovery styles")
    print()
    for label, result in (("classic rotation", classic), ("promotion", promoted)):
        print(
            "  %-18s instance changes=%d, master instance=%d, "
            "master primary=%s, completed %d/%d"
            % (
                label,
                result["instance_changes"],
                result["master_instance"],
                result["master_primary"],
                result["completed"],
                result["sent"],
            )
        )
    print()
    print("Both styles evict the slow primary; promotion additionally moves")
    print("the master role onto the instance that was already proven fast.")
    assert classic["master_instance"] == 0
    assert promoted["master_instance"] == 1


if __name__ == "__main__":
    main()
