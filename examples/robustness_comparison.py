#!/usr/bin/env python3
"""The paper's headline, in one script.

For each of the four protocols, run the same static load fault-free and
under that protocol's worst attack, and print the relative throughput —
a one-screen reproduction of the story behind Table I and Figs 8/10:
the "robust" baselines collapse or stumble, RBFT loses a few percent.

This takes a couple of minutes (four protocols × two runs each).

Run with:  python examples/robustness_comparison.py
"""

from repro.experiments import QUICK, relative_throughput

SCENARIOS = [
    # (label, protocol, attack, exec_cost, paper number)
    ("Prime", "prime", "default", 1e-4, "22-40 %"),
    ("Aardvark (dynamic load)", "aardvark", "default", 20e-6, "down to 13 %"),
    ("Spinning", "spinning", "default", 20e-6, "~1 %"),
    ("RBFT (worst-attack-1)", "rbft", "rbft-worst1", 20e-6, ">= 97.8 %"),
    ("RBFT (worst-attack-2)", "rbft", "rbft-worst2", 20e-6, ">= 97 %"),
]


def main() -> None:
    print("Throughput under attack, relative to fault-free (8 B requests)")
    print()
    print("  %-26s %12s %14s" % ("protocol", "measured", "paper"))
    for label, protocol, attack, exec_cost, paper in SCENARIOS:
        dynamic = "dynamic" in label
        percent, fault_free, attacked = relative_throughput(
            protocol,
            payload=8,
            dynamic=dynamic,
            scale=QUICK,
            attack=attack,
            exec_cost=exec_cost,
        )
        print(
            "  %-26s %10.1f %% %14s   (%.1f -> %.1f kreq/s)"
            % (
                label,
                percent,
                paper,
                fault_free.executed_rate / 1e3,
                attacked.executed_rate / 1e3,
            )
        )
    print()
    print("The baselines rely on guessing what a correct primary *should*")
    print("achieve; RBFT instead compares the master against f+1 redundant")
    print("instances ordering the same requests, so a smartly malicious")
    print("primary has almost no room to hide.")


if __name__ == "__main__":
    main()
